// E9 — §1.2 corollary: the §4 advice is a 1-bit-per-node locally checkable
// proof. Rows: completeness (honest proofs accepted, verifier rounds flat
// in n), soundness on unsolvable instances (all sampled proofs rejected),
// and behavior under random corruption.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/proofs.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "lcl/problems.hpp"

namespace lad {
namespace {

SubexpLclParams params() {
  SubexpLclParams p;
  p.x = 100;
  return p;
}

void BM_ProofCompleteness(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomDense, 21);
  VertexColoringLcl p(3);

  ProofVerificationResult res;
  std::vector<char> proof;
  for (auto _ : state) {
    proof = make_lcl_proof(g, p, params());
    res = verify_lcl_proof(g, p, proof, params());
  }
  bench::report_advice(state, proof);
  state.counters["accepted"] = res.accepted ? 1 : 0;
  state.counters["verifier_rounds"] = res.rounds;
  state.SetLabel("honest proof, 3-coloring on cycle");
}

void BM_ProofSoundness(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0)) | 1;  // odd: no 2-coloring
  const Graph g = make_cycle(n, IdMode::kRandomDense, 22);
  VertexColoringLcl p(2);

  int rejected = 0;
  const int trials = 20;
  for (auto _ : state) {
    Rng rng(5);
    rejected = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<char> proof(static_cast<std::size_t>(g.n()));
      for (auto& b : proof) b = rng.flip(0.3) ? 1 : 0;
      if (!verify_lcl_proof(g, p, proof, params()).accepted) ++rejected;
    }
  }
  state.counters["rejected"] = rejected;
  state.counters["trials"] = trials;
  state.SetLabel("random proofs of a false statement (2-colorable?)");
}

void BM_ProofCorruption(benchmark::State& state) {
  const int flips = static_cast<int>(state.range(0));
  const Graph g = make_cycle(3000, IdMode::kRandomDense, 23);
  MisLcl p;
  const auto honest = make_lcl_proof(g, p, params());

  int rejected = 0;
  int accepted_valid = 0;
  const int trials = 10;
  for (auto _ : state) {
    Rng rng(7);
    rejected = accepted_valid = 0;
    for (int t = 0; t < trials; ++t) {
      auto proof = honest;
      for (int k = 0; k < flips; ++k) {
        proof[static_cast<std::size_t>(rng.uniform(0, g.n() - 1))] ^= 1;
      }
      const auto res = verify_lcl_proof(g, p, proof, params());
      if (!res.accepted) {
        ++rejected;
      } else {
        ++accepted_valid;  // acceptance implies a valid decoded solution
      }
    }
  }
  state.counters["bit_flips"] = flips;
  state.counters["rejected"] = rejected;
  state.counters["accepted_still_valid"] = accepted_valid;
  state.SetLabel("corrupted honest proofs (MIS)");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_ProofCompleteness)
    ->Arg(2000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_ProofSoundness)->Arg(301)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_ProofCorruption)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
