// E1 — Theorem 4.1: any LCL on subexponential-growth graphs is solvable
// with 1 bit of advice per node in O(1) rounds, and the advice can be made
// arbitrarily sparse. Families: paths and cycles (linear growth). Reported
// per row: ones ratio of the 1-bit advice, LOCAL decode rounds (constant in
// n), number of clusters, and validity of the decoded solution.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "core/subexp_lcl.hpp"
#include "graph/generators.hpp"
#include "lcl/problems.hpp"

namespace lad {
namespace {

std::unique_ptr<LclProblem> problem_by_index(int p) {
  switch (p) {
    case 0:
      return std::make_unique<VertexColoringLcl>(3);
    case 1:
      return std::make_unique<MisLcl>();
    default:
      return std::make_unique<MaximalMatchingLcl>();
  }
}

void BM_SubexpLcl(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool cycle = state.range(1) != 0;
  const auto problem = problem_by_index(static_cast<int>(state.range(2)));
  const Graph g = cycle ? make_cycle(n, IdMode::kRandomDense, 42)
                        : make_path(n, IdMode::kRandomDense, 42);
  SubexpLclParams params;
  params.x = 100;

  SubexpLclEncoding enc;
  SubexpLclDecodeResult dec;
  for (auto _ : state) {
    enc = encode_subexp_lcl_advice(g, *problem, params);
    dec = decode_subexp_lcl(g, *problem, enc.bits, params);
  }
  const bool valid = is_valid_labeling(g, *problem, dec.labeling);
  bench::report_advice(state, enc.bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["clusters"] = enc.num_clusters;
  state.counters["valid"] = valid ? 1 : 0;
  state.SetLabel(problem->name() + (cycle ? " cycle" : " path"));
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_SubexpLcl)
    ->ArgsProduct({{2000, 4000, 8000}, {0, 1}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
