// A1 — ablations of the design choices DESIGN.md calls out:
//   * marker spacing vs the constructive-LLL re-sampling cost (the Δ^O(α)
//     dependence made visible: tighter spacing = more stray collisions =
//     more re-sampling; too tight = infeasible);
//   * short-trail threshold: how much advice the canonical ID rule saves;
//   * stage-2.5 local-fix passes vs the number of stage-3 repair regions in
//     the Δ-coloring pipeline;
//   * cluster spacing vs schema size and decode rounds in §6 stage 1.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/delta_coloring.hpp"
#include "core/orientation.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

void BM_AblationSpacingVsResampling(benchmark::State& state) {
  const int spacing = static_cast<int>(state.range(0));
  const Graph g = make_random_regular(2400, 6, 7);
  OrientationParams params;
  params.marker_spacing = spacing;

  OrientationEncoding enc;
  for (auto _ : state) {
    enc = encode_orientation_advice(g, params);
  }
  bench::report_advice(state, enc.bits);
  state.counters["requested_spacing"] = spacing;
  state.counters["effective_spacing"] = degree_scaled_spacing(spacing, g.max_degree());
  state.counters["resample_rounds"] = enc.resample_rounds;
  state.SetLabel("random 6-regular: re-sampling cost vs marker spacing");
}

void BM_AblationShortTrailThreshold(benchmark::State& state) {
  const int threshold = static_cast<int>(state.range(0));
  const Graph g = disjoint_union(
      {make_cycle(2000), make_cycle(60), make_cycle(90), make_cycle(120), make_grid(30, 30)},
      IdMode::kRandomDense, 8);
  OrientationParams params;
  params.short_trail_threshold = threshold;

  OrientationEncoding enc;
  OrientationDecodeResult dec;
  for (auto _ : state) {
    enc = encode_orientation_advice(g, params);
    dec = decode_orientation(g, enc.bits, params);
  }
  bench::report_advice(state, enc.bits);
  state.counters["threshold"] = threshold;
  state.counters["marked_trails"] = enc.num_marked_trails;
  state.counters["rounds"] = dec.rounds;
  state.counters["balanced"] = is_balanced_orientation(g, dec.orientation, 1) ? 1 : 0;
  state.SetLabel("mixed family: canonical rule vs markers");
}

void BM_AblationLocalFixPasses(benchmark::State& state) {
  const int passes = static_cast<int>(state.range(0));
  const int m = 3000;
  const Graph g = make_circular_ladder(m, IdMode::kRandomDense, 10);
  std::vector<int> witness(static_cast<std::size_t>(g.n()));
  for (int i = 0; i < m; ++i) {
    witness[i] = 1 + i % 2;
    witness[m + i] = 2 - i % 2;
  }
  DeltaColoringParams params;
  params.cluster_spacing = 400;
  params.repair_radius = 3;
  params.max_repair_radius = 8;
  params.local_fix_passes = passes;

  DeltaColoringEncoding enc;
  for (auto _ : state) {
    enc = encode_delta_coloring_advice(g, witness, params);
  }
  state.counters["local_fix_passes"] = passes;
  state.counters["stage3_repairs"] = enc.num_repairs;
  state.SetLabel("Δ-coloring: advice-free fixes shrink the repair set");
}

void BM_AblationClusterSpacing(benchmark::State& state) {
  const int spacing = static_cast<int>(state.range(0));
  const auto pc = make_planted_colorable(3000, 5, 3.4, 5, 11);
  DeltaColoringParams params;
  params.cluster_spacing = spacing;

  DeltaColoringEncoding enc;
  DeltaColoringDecodeResult dec;
  for (auto _ : state) {
    enc = encode_delta_coloring_advice(pc.graph, pc.coloring, params);
    dec = decode_delta_coloring(pc.graph, enc.advice, params);
  }
  state.counters["cluster_spacing"] = spacing;
  state.counters["clusters"] = enc.num_clusters;
  state.counters["rounds"] = dec.rounds;
  state.counters["valid"] = is_proper_coloring(pc.graph, dec.coloring, 5) ? 1 : 0;
  state.SetLabel("Δ-coloring stage 1: fewer clusters = fewer anchors, more rounds");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_AblationSpacingVsResampling)
    ->Arg(40)
    ->Arg(300)
    ->Arg(600)
    ->Arg(1200)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_AblationShortTrailThreshold)
    ->Arg(40)
    ->Arg(100)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_AblationLocalFixPasses)
    ->DenseRange(0, 6, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_AblationClusterSpacing)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
