// E2 — §5: almost-balanced orientation with 1 bit of advice per node in
// T(Δ) rounds, versus the advice-free baseline that needs Θ(n) (the whole
// cycle must be traversed). The "shape" to observe: rounds_advice is flat
// in n, rounds_baseline grows linearly; advice wins by an unbounded factor.
#include <benchmark/benchmark.h>

#include "baselines/global_orientation.hpp"
#include "bench_common.hpp"
#include "core/orientation.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

Graph family(int which, int n) {
  switch (which) {
    case 0:
      return make_cycle(n, IdMode::kRandomDense, 7);
    case 1:
      return make_random_regular(n, 4, 7);
    case 2: {
      int side = 1;
      while (side * side < n) ++side;
      return make_grid(side, side, IdMode::kRandomDense, 7);
    }
    default:
      return make_bounded_degree_tree(n, 4, 7);
  }
}

const char* family_name(int which) {
  switch (which) {
    case 0:
      return "cycle";
    case 1:
      return "random-4-regular";
    case 2:
      return "grid";
    default:
      return "tree(Δ<=4)";
  }
}

void BM_OrientationAdvice(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int which = static_cast<int>(state.range(1));
  const Graph g = family(which, n);

  OrientationEncoding enc;
  OrientationDecodeResult dec;
  for (auto _ : state) {
    enc = encode_orientation_advice(g);
    dec = decode_orientation(g, enc.bits);
  }
  const auto baseline = orient_without_advice(g);
  bench::report_advice(state, enc.bits);
  state.counters["rounds_advice"] = dec.rounds;
  state.counters["rounds_baseline"] = baseline.rounds;
  state.counters["balanced"] = is_balanced_orientation(g, dec.orientation, 1) ? 1 : 0;
  state.counters["marked_trails"] = enc.num_marked_trails;
  state.SetLabel(family_name(which));
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_OrientationAdvice)
    ->ArgsProduct({{2000, 8000, 32000}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
