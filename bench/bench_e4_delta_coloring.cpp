// E4 — Theorem 6.1 / Corollary 6.2: Δ-coloring Δ-colorable graphs with
// advice in T(Δ) rounds. Rows report the decode rounds (flat in n), the
// size of the variable-length schema (sparse cluster anchors), and — on the
// roomy circular-ladder family — the uniform 1-bit conversion.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/delta_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

void BM_DeltaColoringPlanted(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto pc = make_planted_colorable(n, delta, delta * 0.7, delta, 1234 + delta);

  DeltaColoringEncoding enc;
  DeltaColoringDecodeResult dec;
  for (auto _ : state) {
    enc = encode_delta_coloring_advice(pc.graph, pc.coloring);
    dec = decode_delta_coloring(pc.graph, enc.advice);
  }
  long long bits = 0;
  for (const auto& [node, packed] : pack_var_advice(enc.advice)) {
    (void)node;
    bits += packed.size();
  }
  state.counters["rounds"] = dec.rounds;
  state.counters["storage_nodes"] = static_cast<double>(enc.advice.size());
  state.counters["total_advice_bits"] = static_cast<double>(bits);
  state.counters["bits_per_node_avg"] = static_cast<double>(bits) / pc.graph.n();
  state.counters["clusters"] = enc.num_clusters;
  state.counters["repairs"] = enc.num_repairs;
  state.counters["valid"] = is_proper_coloring(pc.graph, dec.coloring, delta) ? 1 : 0;
}

void BM_DeltaColoringUniformOneBit(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const Graph g = make_circular_ladder(m, IdMode::kRandomDense, 10);
  std::vector<int> witness(static_cast<std::size_t>(g.n()));
  for (int i = 0; i < m; ++i) {
    witness[i] = 1 + i % 2;
    witness[m + i] = 2 - i % 2;
  }
  DeltaColoringParams params;
  params.uniform_one_bit = true;
  params.cluster_spacing = 400;
  params.repair_radius = 3;
  params.max_repair_radius = 8;

  DeltaColoringEncoding enc;
  DeltaColoringDecodeResult dec;
  for (auto _ : state) {
    enc = encode_delta_coloring_advice(g, witness, params);
    dec = decode_delta_coloring_one_bit(g, enc.uniform_bits, enc.uniform_max_payload_bits,
                                        params);
  }
  bench::report_advice(state, enc.uniform_bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["valid"] = is_proper_coloring(g, dec.coloring, 3) ? 1 : 0;
  state.SetLabel("circular ladder, Δ=3, uniform 1-bit");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_DeltaColoringPlanted)
    ->ArgsProduct({{4, 6, 8}, {500, 1000, 2000}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_DeltaColoringUniformOneBit)
    ->Arg(4000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
