// Shared helpers for the experiment harness. Each bench binary regenerates
// one row family of EXPERIMENTS.md; the paper's quantities are reported as
// benchmark counters (bits per node, ones ratio, LOCAL rounds, ...).
#pragma once

#include <benchmark/benchmark.h>

#include "advice/advice.hpp"

namespace lad::bench {

inline void report_advice(benchmark::State& state, const std::vector<char>& bits) {
  const auto stats = advice_stats(advice_from_bits(bits));
  // A raw bit vector is one bit per node by construction, but the honest
  // number is the measured ratio (0 on the empty graph), not a constant.
  state.counters["bits_per_node"] =
      stats.n > 0 ? static_cast<double>(stats.total_bits) / stats.n : 0.0;
  state.counters["total_bits"] = static_cast<double>(stats.total_bits);
  state.counters["ones_ratio"] = stats.ones_ratio;
}

}  // namespace lad::bench
