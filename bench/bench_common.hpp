// Shared helpers for the experiment harness. Each bench binary regenerates
// one row family of EXPERIMENTS.md; the paper's quantities are reported as
// benchmark counters (bits per node, ones ratio, LOCAL rounds, ...).
#pragma once

#include <benchmark/benchmark.h>

#include "advice/advice.hpp"
#include "obs/stopwatch.hpp"

namespace lad::bench {

inline void report_advice(benchmark::State& state, const std::vector<char>& bits) {
  const auto stats = advice_stats(advice_from_bits(bits));
  // A raw bit vector is one bit per node by construction, but the honest
  // number is the measured ratio (0 on the empty graph), not a constant —
  // obs::per_node is the same normalization `lad bench` reports.
  state.counters["bits_per_node"] = obs::per_node(stats.total_bits, stats.n);
  state.counters["total_bits"] = static_cast<double>(stats.total_bits);
  state.counters["ones_ratio"] = stats.ones_ratio;
}

}  // namespace lad::bench
