// B1 — advice-free context lines: Cole–Vishkin 3-coloring (Θ(log* n), the
// optimal advice-free bound by Linial's lower bound), Linial's O(Δ^2)
// coloring from IDs, and the Θ(n) advice-free balanced orientation. These
// are the curves the 1-bit-advice algorithms are compared against.
#include <benchmark/benchmark.h>

#include "baselines/cole_vishkin.hpp"
#include "baselines/global_orientation.hpp"
#include "baselines/linial.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomSparse, 31);
  const auto succ = cycle_successors(g);

  ColeVishkinResult res;
  for (auto _ : state) {
    res = cole_vishkin_cycle(g, succ);
  }
  state.counters["rounds"] = res.rounds;
  state.counters["valid"] = is_proper_coloring(g, res.colors, 3) ? 1 : 0;
  state.SetLabel("3-coloring a cycle without advice: Θ(log* n)");
}

void BM_LinialFromIds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_random_regular(n, 4, 33);

  LinialResult res;
  for (auto _ : state) {
    res = linial_coloring_from_ids(g);
  }
  state.counters["rounds"] = res.rounds;
  state.counters["colors"] = res.num_colors;
  state.counters["delta_sq"] = g.max_degree() * g.max_degree();
  state.SetLabel("Linial O(Δ^2)-coloring from IDs");
}

void BM_GlobalOrientation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomDense, 35);

  GlobalOrientationResult res;
  for (auto _ : state) {
    res = orient_without_advice(g);
  }
  state.counters["rounds"] = res.rounds;  // = n: the advice-free cost
  state.counters["balanced"] = is_balanced_orientation(g, res.orientation, 1) ? 1 : 0;
  state.SetLabel("balanced orientation without advice: Θ(n)");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_ColeVishkin)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_LinialFromIds)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_GlobalOrientation)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
