// R1 — robustness under the deterministic fault adversary.
//
// Two questions, per decoder:
//
//   * detection: under each fault layer separately (advice / graph /
//     engine) and under the mixed adversary, how many faults are injected,
//     how many are detected or repaired, and does any trial end in silent
//     corruption? (The layer's contract: silent_corruptions == 0, always.)
//
//   * blast radius: faults of constant radius must cause repairs of
//     constant radius — max dist(fault site -> repaired/flagged node) must
//     not grow with n. Reported on the cycle and grid families at doubling
//     sizes.
//
// Δ-coloring on a cycle is the one excluded pair: an even cycle's
// Δ-coloring is a 2-coloring, whose parity constraint is global, so a
// local fault legitimately needs Ω(n) reach (that is the paper's point
// about Δ-coloring being the hard case). The grid family (Δ = 4, slack
// colors) shows the constant blast radius for it.
#include <benchmark/benchmark.h>

#include <string>

#include "faults/campaign.hpp"

namespace lad::faults {
namespace {

void report_summary(benchmark::State& state, const CampaignSummary& s) {
  state.counters["trials"] = s.trials;
  state.counters["faults_injected"] = static_cast<double>(s.faults_injected);
  state.counters["detected"] = static_cast<double>(s.total_detected);
  state.counters["repaired_nodes"] = static_cast<double>(s.total_repaired_nodes);
  state.counters["flagged_nodes"] = static_cast<double>(s.total_flagged_nodes);
  state.counters["trials_output_valid"] = s.trials_output_valid;
  state.counters["trials_degraded"] = s.trials_degraded;
  state.counters["residual"] = s.trials_residual;
  state.counters["silent_corruptions"] = s.silent_corruptions;  // must be 0
  state.counters["max_blast_radius"] = s.max_blast_radius;
}

CampaignConfig base_config(DecoderKind decoder, GraphFamily family, int n, int trials) {
  CampaignConfig cfg;
  cfg.decoder = decoder;
  cfg.family = family;
  cfg.n = n;
  cfg.trials = trials;
  cfg.seed = 7;
  if (decoder == DecoderKind::kSubexpLcl) cfg.subexp.x = 60;
  return cfg;
}

// --- detection per fault layer -------------------------------------------

enum class Layer : int { kAdviceOnly, kGraphOnly, kEngineOnly, kMixed };

FaultPlan plan_for(Layer layer) {
  FaultPlan mixed = default_mixed_plan();
  FaultPlan plan;
  switch (layer) {
    case Layer::kAdviceOnly:
      plan.advice = mixed.advice;
      break;
    case Layer::kGraphOnly:
      plan.graph = mixed.graph;
      break;
    case Layer::kEngineOnly:
      plan.engine = mixed.engine;
      break;
    case Layer::kMixed:
      plan = mixed;
      break;
  }
  return plan;
}

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kAdviceOnly:
      return "advice";
    case Layer::kGraphOnly:
      return "graph";
    case Layer::kEngineOnly:
      return "engine";
    case Layer::kMixed:
      return "mixed";
  }
  return "?";
}

void BM_FaultDetection(benchmark::State& state) {
  const auto decoder = static_cast<DecoderKind>(state.range(0));
  const auto layer = static_cast<Layer>(state.range(1));
  auto cfg = base_config(decoder, GraphFamily::kCycle, 200, 20);
  if (decoder == DecoderKind::kSubexpLcl) cfg.n = 128;
  cfg.plan = plan_for(layer);

  CampaignSummary s;
  for (auto _ : state) {
    s = run_fault_campaign(cfg);
  }
  report_summary(state, s);
  state.SetLabel(std::string(to_string(decoder)) + " / " + layer_name(layer) + " faults");
}

// --- blast radius vs n ----------------------------------------------------

void BM_BlastRadiusCycle(benchmark::State& state) {
  const auto decoder = static_cast<DecoderKind>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  auto cfg = base_config(decoder, GraphFamily::kCycle, n, 10);
  // x is the §4 feasibility knob: the phase-code path budget y grows with
  // x, and the number of phase colors grows with n, so x must scale up
  // alongside n for the encode to exist at all.
  if (decoder == DecoderKind::kSubexpLcl) cfg.subexp.x = n >= 512 ? 150 : 60;

  CampaignSummary s;
  for (auto _ : state) {
    s = run_fault_campaign(cfg);
  }
  report_summary(state, s);
  state.SetLabel(std::string(to_string(decoder)) + " cycle: blast radius must not grow with n");
}

void BM_BlastRadiusGrid(benchmark::State& state) {
  const auto decoder = static_cast<DecoderKind>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  auto cfg = base_config(decoder, GraphFamily::kGrid, n, 10);
  // Splitting substitutes a torus (it needs even degrees); its exact-solver
  // repair over degree-4 edge-labeled regions is the expensive case, so it
  // runs with a reduced backtracking budget — exhaustion flags, never lies.
  if (decoder == DecoderKind::kSplitting) {
    cfg.trials = 3;
    cfg.policy.solver_budget = 100'000;
  }

  CampaignSummary s;
  for (auto _ : state) {
    s = run_fault_campaign(cfg);
  }
  report_summary(state, s);
  state.SetLabel(std::string(to_string(decoder)) + " grid: blast radius must not grow with n");
}

void DetectionArgs(benchmark::internal::Benchmark* b) {
  for (const auto decoder : all_decoders()) {
    for (const auto layer :
         {Layer::kAdviceOnly, Layer::kGraphOnly, Layer::kEngineOnly, Layer::kMixed}) {
      b->Args({static_cast<long>(decoder), static_cast<long>(layer)});
    }
  }
}

void CycleArgs(benchmark::internal::Benchmark* b) {
  for (const auto decoder : all_decoders()) {
    if (decoder == DecoderKind::kDeltaColoring) continue;  // global parity; see header
    const int base = decoder == DecoderKind::kSubexpLcl ? 128 : 200;
    b->Args({static_cast<long>(decoder), base});
    b->Args({static_cast<long>(decoder), 4 * base});
  }
}

void GridArgs(benchmark::internal::Benchmark* b) {
  for (const auto decoder : all_decoders()) {
    if (decoder == DecoderKind::kSubexpLcl) continue;  // §4 clusters want cycle-scale x
    // Splitting's exact-solver repair makes big tori minutes-per-trial;
    // 64 -> 256 still quadruples n (blast radius stays put regardless).
    const int base = decoder == DecoderKind::kSplitting ? 64 : 256;
    b->Args({static_cast<long>(decoder), base});
    b->Args({static_cast<long>(decoder), 4 * base});
  }
}

BENCHMARK(BM_FaultDetection)->Apply(DetectionArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlastRadiusCycle)->Apply(CycleArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlastRadiusGrid)->Apply(GridArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lad::faults
