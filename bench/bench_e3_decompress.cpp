// E3 — §1.5 / Contribution 4: an arbitrary edge set X ⊆ E is compressed to
// ceil(d/2)+1 bits at a degree-d node (information-theoretic lower bound:
// d/2 on d-regular graphs; trivial encoding: d). Rows report the measured
// average/max bits per node against both reference lines, plus the local
// decompression rounds (constant in n).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/decompress.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

namespace lad {
namespace {

void BM_Decompress(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const Graph g = make_random_regular(n, d, 77 + d);
  Rng rng(99);
  std::vector<char> x(static_cast<std::size_t>(g.m()));
  for (auto& b : x) b = rng.flip(0.5) ? 1 : 0;

  CompressedEdgeSet compressed;
  DecompressResult result;
  for (auto _ : state) {
    compressed = compress_edge_set(g, x);
    result = decompress_edge_set(g, compressed);
  }
  long long total_bits = 0;
  int max_bits = 0;
  for (int v = 0; v < g.n(); ++v) {
    total_bits += compressed.labels[static_cast<std::size_t>(v)].size();
    max_bits = std::max(max_bits, compressed.labels[static_cast<std::size_t>(v)].size());
  }
  state.counters["bits_per_node_avg"] = static_cast<double>(total_bits) / g.n();
  state.counters["bits_per_node_max"] = max_bits;
  state.counters["paper_bound"] = d / 2.0 + 2.0;
  state.counters["info_lower_bound"] = d / 2.0;
  state.counters["trivial_bits"] = d;
  state.counters["rounds"] = result.rounds;
  state.counters["exact_recovery"] = result.in_x == x ? 1 : 0;
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_Decompress)
    ->ArgsProduct({{2, 4, 6, 8}, {1600}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_Decompress)
    ->Args({4, 400})
    ->Args({4, 6400})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
