// E7 — §5 extensions: degree splitting on bipartite even-degree graphs with
// 1 bit of advice per node, and Δ-edge-coloring of bipartite Δ-regular
// graphs (Δ = 2^k) by recursive splitting. The edge-coloring rows report
// the per-node advice of the composed log Δ-level schema (≤ Δ-1 bits).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/running_example.hpp"
#include "core/splitting.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

void BM_Splitting(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Graph g;
  const char* label = "";
  if (which == 0) {
    int side = 3;
    while (2 * side * side < n) ++side;
    g = make_torus(side, 2 * side, IdMode::kRandomDense, 5);
    label = "torus (4-regular)";
  } else {
    g = make_bipartite_regular(n / 2, 4, 6);
    label = "bipartite 4-regular";
  }

  SplittingEncoding enc;
  SplittingDecodeResult dec;
  for (auto _ : state) {
    enc = encode_splitting_advice(g);
    dec = decode_splitting(g, enc.bits);
  }
  bench::report_advice(state, enc.bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["valid_splitting"] = is_splitting(g, dec.edge_color) ? 1 : 0;
  state.SetLabel(label);
}

void BM_EdgeColoring(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Graph g = make_bipartite_regular(std::max(200, 80 * d), d, 9 + d);

  EdgeColoringResult res;
  for (auto _ : state) {
    res = edge_color_bipartite_regular(g);
  }
  int max_bits = 0;
  long long total = 0;
  for (const int b : res.bits_per_node) {
    max_bits = std::max(max_bits, b);
    total += b;
  }
  state.counters["levels"] = res.levels;
  state.counters["rounds"] = res.rounds;
  state.counters["bits_per_node_max"] = max_bits;
  state.counters["bits_per_node_avg"] = static_cast<double>(total) / g.n();
  state.counters["valid"] = is_proper_edge_coloring(g, res.edge_color, d) ? 1 : 0;
  state.SetLabel("bipartite Δ-regular, Δ-edge-coloring");
}

void BM_RunningExample(benchmark::State& state) {
  // §3.5's modular route to the same splitting problem, through the generic
  // Lemma 1/Lemma 2 composition (uniform 1-bit on a roomy cycle).
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomDense, 11);
  RunningExampleParams params;
  params.uniform_one_bit = true;
  params.color_anchor_spacing = 600;
  params.orientation_anchor_spacing = 600;

  RunningExampleEncoding enc;
  RunningExampleDecodeResult dec;
  for (auto _ : state) {
    enc = encode_running_example(g, params);
    dec = decode_running_example_one_bit(g, enc.uniform_bits, enc.uniform_max_payload_bits,
                                         params);
  }
  bench::report_advice(state, enc.uniform_bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["valid_splitting"] = is_splitting(g, dec.edge_color) ? 1 : 0;
  state.SetLabel("§3.5 running example, composed 1-bit schema");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_Splitting)
    ->ArgsProduct({{0, 1}, {800, 3200, 12800}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_RunningExample)
    ->Arg(6000)
    ->Arg(12000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_EdgeColoring)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
