// E6 — §8: the centralized advice-enumeration solver runs in 2^{βn}·n·s(n)
// with s(n) = O(1) thanks to order-invariance (lookup table over canonical
// views). The unsolvable instance (2-coloring an odd cycle) forces full
// enumeration: time should double per added node, while the lookup table
// stays constant-size.
#include <benchmark/benchmark.h>

#include "core/eth.hpp"
#include "graph/generators.hpp"
#include "lcl/problems.hpp"

namespace lad {
namespace {

void BM_EthExhaustive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomDense, 3);
  VertexColoringLcl p(2);  // odd n: unsolvable, full 2^n scan

  AdviceSearchResult res;
  for (auto _ : state) {
    const auto dec = make_verbatim_decoder();
    res = enumerate_advice(g, p, 1, dec);
  }
  state.counters["assignments"] = static_cast<double>(res.assignments_tried);
  state.counters["two_pow_n"] = static_cast<double>(1LL << n);
  state.counters["table_size"] = static_cast<double>(res.table_size);
  state.counters["lookups"] = static_cast<double>(res.lookups);
  state.counters["found"] = res.found ? 1 : 0;
  state.SetLabel("2-coloring odd cycle (unsolvable): full 2^n enumeration");
}

void BM_EthEarlyExit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_cycle(n, IdMode::kRandomDense, 4);
  VertexColoringLcl p(2);  // even n: solvable; lexicographic scan exits early

  AdviceSearchResult res;
  for (auto _ : state) {
    const auto dec = make_verbatim_decoder();
    res = enumerate_advice(g, p, 1, dec);
  }
  state.counters["assignments"] = static_cast<double>(res.assignments_tried);
  state.counters["table_size"] = static_cast<double>(res.table_size);
  state.counters["found"] = res.found ? 1 : 0;
  state.SetLabel("2-coloring even cycle (solvable)");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_EthExhaustive)
    ->DenseRange(7, 19, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_EthEarlyExit)
    ->DenseRange(8, 16, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
