// Batched perf harness behind `lad bench` (DESIGN.md §8).
//
// The google-benchmark binaries (bench_e1..e9, bench_r1) remain the
// fine-grained microbenchmark surface; this runner is the *batched,
// registry-driven* counterpart: each suite runs a batch of pipeline
// workloads through core/pipeline.hpp on a ThreadPool, measures wall time
// at 1 thread and at the requested thread count, checks the outputs are
// byte-identical (the determinism contract of the parallel layer), and
// renders one machine-readable JSON document — no google-benchmark
// dependency, so the CLI can embed it.
//
// Suites: e1..e9 mirror the experiment families of EXPERIMENTS.md (e6 is
// the §8 order-invariance memo, e8 the sparsity sweep, e9 the §1.2 proofs);
// r1 is the fault-campaign suite (parallel trials); gather exercises the
// parallel ball gather; smoke is the fast CI subset.
#pragma once

#include <string>
#include <vector>

#include "graph/source.hpp"
#include "obs/telemetry.hpp"

namespace lad::bench {

struct BenchCaseResult {
  std::string name;  // e.g. "orientation/n=256"
  int n = 0;
  int m = 0;
  int rounds = 0;            // LOCAL rounds of the measured decode (0: n/a)
  double bits_per_node = 0;  // advice cost (0 where no advice is measured)
  long long total_bits = 0;
  double wall_ms_1 = 0;     // wall time of the whole batch at 1 thread (min of reps)
  double wall_ms = 0;       // ... at the requested thread count (min of reps)
  double speedup_vs_1 = 0;  // wall_ms_1 / wall_ms
  bool identical = true;    // multi-thread outputs byte-identical to serial
  /// 64-bit splitmix fingerprint (hex) of the serial output bytes — the
  /// machine-portable structural axis `lad diffbench` compares exactly.
  std::string digest;
  /// Graph provenance (schema v4), populated on source-driven cases only:
  /// the canonical GraphSource spec this case ran on, and the CSR digest
  /// of the loaded graph (graph_digest_hex) — byte-identical across
  /// load-from-.ladg, in-memory generation, and parallel reconstruction.
  std::string source;
  std::string graph_digest;
  /// Thread count this row measured (schema v5). With a thread list
  /// (`--threads 1,2,4`) each case emits one row per count, named
  /// "case/t=K"; with a single count the name is unchanged.
  int threads = 1;
  /// Hottest profiling phase of the serial run (schema v5; empty unless
  /// with_metrics): obs::top_phase_from_trace() over the case's spans —
  /// provenance for PERF-generated.md, never diffed.
  std::string top_phase;
  /// Measured serial fraction of the serial run (schema v6; negative unless
  /// with_metrics): obs::serial_split_from_trace() over the case's spans —
  /// the Amdahl `s` that bounds the speedup_vs_1 column. Provenance only,
  /// never diffed.
  double serial_fraction = -1;
  /// Telemetry counters attributed to the serial run of this case (empty
  /// unless the suite ran with with_metrics; zero-valued metrics skipped).
  /// With a thread list, only the case's first row carries them.
  std::vector<obs::MetricValue> metrics;
};

struct BenchSuiteResult {
  std::string suite;
  /// Highest thread count measured (max of the thread list).
  int threads = 1;
  /// std::thread::hardware_concurrency at run time — the honest context for
  /// the speedup numbers (a 1-core container cannot show real speedups).
  int hardware_threads = 1;
  /// Document format version (obs::kBenchSchemaVersion) — bump on any
  /// field change so downstream dashboards can dispatch.
  int schema_version = 0;
  /// `git describe --always --dirty` of the built tree (obs::kGitCommit).
  std::string git_commit;
  /// ISO-8601 UTC wall time the suite started.
  std::string timestamp;
  /// Timing repetitions per case (`lad bench --reps K`): one discarded
  /// warmup, then wall_ms_1 / wall_ms are the min over K timed runs.
  int reps = 1;
  std::vector<BenchCaseResult> cases;

  /// Deterministic except for the wall-time and timestamp fields.
  std::string to_json() const;
};

/// Registered suite names, in display order.
std::vector<std::string> bench_suite_names();

/// Runs one suite. `threads` <= 0 means ThreadPool::default_threads().
/// `with_metrics` enables telemetry and attributes per-case counter
/// snapshots (of the serial run) to each case — the `lad bench --trace`
/// path. `reps` > 1 runs one discarded warmup then takes the min wall time
/// over `reps` timed runs per case (the stable-axis timing `lad diffbench`
/// gates on). Throws on unknown suite names (callers validate via
/// bench_suite_names()).
BenchSuiteResult run_bench_suite(const std::string& suite, int threads,
                                 bool with_metrics = false, int reps = 1);

/// Thread-list variant (`lad bench --threads 1,2,4`): the serial batch is
/// measured once per case, then each listed count re-runs the batch and
/// emits its own "case/t=K" row (single-count lists keep the plain case
/// name), so a scaling curve lands in one JSON document. Entries <= 0 mean
/// ThreadPool::default_threads().
BenchSuiteResult run_bench_suite(const std::string& suite, const std::vector<int>& thread_list,
                                 bool with_metrics = false, int reps = 1);

/// Source-driven bench (`lad bench --graph SPEC[,SPEC...]`): one case per
/// source, each loading/generating the graph and running `pipeline_name`'s
/// encode -> decode -> verify on it. The serial run builds the CSR
/// serially; the multi-thread re-run rebuilds it through
/// Graph::Builder::build(pool), so `identical` certifies the parallel
/// construction determinism contract on that exact graph. Cases record
/// provenance (canonical spec + graph digest, the schema-v4 fields).
/// Throws on an unknown pipeline name (callers validate via
/// find_pipeline()); source load failures surface as GraphIoError.
BenchSuiteResult run_source_bench(const std::vector<GraphSource>& sources,
                                  const std::string& pipeline_name, int threads,
                                  bool with_metrics = false, int reps = 1);

/// Thread-list variant of run_source_bench; see the suite overload above.
BenchSuiteResult run_source_bench(const std::vector<GraphSource>& sources,
                                  const std::string& pipeline_name,
                                  const std::vector<int>& thread_list,
                                  bool with_metrics = false, int reps = 1);

}  // namespace lad::bench
