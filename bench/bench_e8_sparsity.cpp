// E8 — Definition 3 / §1.8: the advice can be made arbitrarily sparse, at
// the price of more decoding rounds. Two schemas are swept: the orientation
// schema (marker spacing) and the §4 LCL schema (scale x). Rows report the
// ε = ones ratio against the measured T(ε).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/orientation.hpp"
#include "core/subexp_lcl.hpp"
#include "graph/generators.hpp"
#include "lcl/problems.hpp"

namespace lad {
namespace {

void BM_SparsityOrientation(benchmark::State& state) {
  const int spacing = static_cast<int>(state.range(0));
  const Graph g = make_cycle(40000, IdMode::kRandomDense, 11);
  OrientationParams params;
  params.marker_spacing = spacing;

  OrientationEncoding enc;
  OrientationDecodeResult dec;
  for (auto _ : state) {
    enc = encode_orientation_advice(g, params);
    dec = decode_orientation(g, enc.bits, params);
  }
  bench::report_advice(state, enc.bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["spacing"] = spacing;
  state.counters["balanced"] = is_balanced_orientation(g, dec.orientation, 1) ? 1 : 0;
  state.SetLabel("orientation schema, spacing sweep");
}

void BM_SparsityLcl(benchmark::State& state) {
  const int x = static_cast<int>(state.range(0));
  const Graph g = make_cycle(15000, IdMode::kRandomDense, 12);
  VertexColoringLcl p(3);
  SubexpLclParams params;
  params.x = x;

  SubexpLclEncoding enc;
  SubexpLclDecodeResult dec;
  for (auto _ : state) {
    enc = encode_subexp_lcl_advice(g, p, params);
    dec = decode_subexp_lcl(g, p, enc.bits, params);
  }
  bench::report_advice(state, enc.bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["x"] = x;
  state.counters["valid"] = is_valid_labeling(g, p, dec.labeling) ? 1 : 0;
  state.SetLabel("§4 LCL schema, x sweep");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_SparsityOrientation)
    ->Arg(40)
    ->Arg(120)
    ->Arg(360)
    ->Arg(1080)
    ->Arg(3240)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_SparsityLcl)
    ->Arg(100)
    ->Arg(140)
    ->Arg(180)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
