// E5 — Theorem 7.1: 3-coloring 3-colorable graphs with exactly 1 bit of
// advice per node, in poly(Δ) rounds. Rows: planted 3-colorable graphs and
// the caterpillar family whose G_{2,3} is one long path (the hard case that
// exercises the parity groups). The trivial schema needs 2 bits per node.
#include <benchmark/benchmark.h>

#include "baselines/trivial_advice.hpp"
#include "bench_common.hpp"
#include "core/three_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

namespace lad {
namespace {

void run(benchmark::State& state, const Graph& g, const std::vector<int>& witness) {
  ThreeColoringEncoding enc;
  ThreeColoringDecodeResult dec;
  for (auto _ : state) {
    enc = encode_three_coloring_advice(g, witness);
    dec = decode_three_coloring(g, enc.bits);
  }
  bench::report_advice(state, enc.bits);
  state.counters["rounds"] = dec.rounds;
  state.counters["parity_groups"] = enc.num_groups;
  state.counters["trivial_bits_per_node"] = trivial_bits_per_node(3);
  state.counters["valid"] = is_proper_coloring(g, dec.coloring, 3) ? 1 : 0;
}

void BM_ThreeColoringPlanted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int max_deg = static_cast<int>(state.range(1));
  const auto pc = make_planted_colorable(n, 3, max_deg * 0.6, max_deg, 5 + n);
  run(state, pc.graph, pc.coloring);
  state.SetLabel("planted 3-colorable");
}

void BM_ThreeColoringCaterpillar(benchmark::State& state) {
  const int spine = static_cast<int>(state.range(0));
  const auto pc = make_planted_caterpillar(spine, 17);
  const Graph& g = pc.graph;
  const auto& witness = pc.coloring;
  run(state, g, witness);
  state.SetLabel("caterpillar (long G_{2,3} component)");
}

}  // namespace
}  // namespace lad

BENCHMARK(lad::BM_ThreeColoringPlanted)
    ->ArgsProduct({{500, 2000, 8000}, {4, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(lad::BM_ThreeColoringCaterpillar)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
