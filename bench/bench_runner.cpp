#include "bench/bench_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "core/pipeline.hpp"
#include "core/proofs.hpp"
#include "faults/campaign.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "lcl/problems.hpp"
#include "local/gather.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/stopwatch.hpp"
#include "obs/timeline.hpp"
#include "obs/version.hpp"
#include "util/contracts.hpp"
#include "util/hashing.hpp"
#include "util/thread_pool.hpp"

namespace lad::bench {
namespace {

/// One execution of a case's whole batch: everything the runner compares
/// across thread counts and reports, minus the timing.
struct CaseRun {
  std::string digest;  // byte-deterministic output fingerprint
  int n = 0;
  int m = 0;
  int rounds = 0;
  double bits_per_node = 0;
  long long total_bits = 0;
  /// Provenance (source-driven cases only; see BenchCaseResult).
  std::string source;
  std::string graph_digest;
};

struct Case {
  std::string name;
  std::function<CaseRun(int threads)> run;
};

using obs::time_ms;

/// Generic registry case: a batch of seeded instances, each taken through
/// encode -> decode -> verify. The batch items fan out over the pool (the
/// "batched execution" axis: LOCAL decoders are internally sequential
/// simulations, but independent instances are embarrassingly parallel).
Case pipeline_case(PipelineId id, int n, int batch, PipelineConfig cfg = {}, std::string tag = {}) {
  const Pipeline* p = &pipeline(id);
  std::string name = std::string(p->name()) + "/n=" + std::to_string(n) + tag;
  auto run = [p, n, batch, cfg](int threads) {
    struct Slot {
      std::string digest;
      int n = 0;
      int m = 0;
      int rounds = 0;
      AdviceStats stats;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(batch));
    ThreadPool pool(threads);
    pool.for_each(batch, [&](int i) {
      const Graph g = p->make_instance(n, 1000 + static_cast<std::uint64_t>(i));
      const auto adv = p->encode(g, cfg);
      const auto out = p->decode(g, adv, cfg);
      LAD_CHECK_MSG(p->verify(g, out, cfg), p->name() << " decode failed verification");
      auto& s = slots[static_cast<std::size_t>(i)];
      s.n = g.n();
      s.m = g.m();
      s.rounds = out.rounds;
      s.stats = adv.stats(g.n());
      for (const auto& d : p->node_digests(g, out)) {
        s.digest += d;
        s.digest += ';';
      }
    });
    CaseRun r;
    long long nodes = 0;
    for (const auto& s : slots) {
      r.digest += s.digest;
      r.digest += '|';
      r.rounds = std::max(r.rounds, s.rounds);
      r.total_bits += s.stats.total_bits;
      nodes += s.n;
    }
    r.n = slots.empty() ? 0 : slots.front().n;
    r.m = slots.empty() ? 0 : slots.front().m;
    r.bits_per_node = obs::per_node(r.total_bits, nodes);
    return r;
  };
  return {std::move(name), std::move(run)};
}

/// Fault-campaign case: the campaign's own parallel trial runner is the
/// measured axis; the digest folds in every per-trial report, so thread
/// count provably cannot perturb a single aggregate or report byte.
Case campaign_case(faults::DecoderKind decoder, faults::GraphFamily family, int n, int trials) {
  std::string name = std::string("campaign/") + faults::to_string(decoder) + "/" +
                     faults::to_string(family) + "/n=" + std::to_string(n);
  auto run = [decoder, family, n, trials](int threads) {
    faults::CampaignConfig cc;
    cc.decoder = decoder;
    cc.family = family;
    cc.n = n;
    cc.trials = trials;
    cc.threads = threads;
    if (decoder == faults::DecoderKind::kSubexpLcl) cc.subexp.x = 60;
    const auto s = faults::run_fault_campaign(cc);
    CaseRun r;
    r.n = s.n;
    r.m = s.m;
    std::string d = s.to_string();
    for (const auto& rep : s.reports) {
      d += rep.to_string();
      r.rounds = std::max(r.rounds, rep.rounds);
    }
    r.digest = std::move(d);
    return r;
  };
  return {std::move(name), std::move(run)};
}

/// Parallel radius-t ball gather + §8 canonical-view memo on one instance.
Case gather_case(std::string family, int n, int radius) {
  std::string name = "gather/" + family + "/n=" + std::to_string(n) + "/r=" +
                     std::to_string(radius);
  auto run = [family, n, radius](int threads) {
    Graph g;
    if (family == "grid") {
      const int side = std::max(4, static_cast<int>(std::sqrt(static_cast<double>(n))));
      g = make_grid(side, side, IdMode::kRandomDense, 5);
    } else {
      g = make_cycle(n, IdMode::kRandomDense, 5);
    }
    ThreadPool pool(threads);
    const auto balls = threads > 1 ? gather_balls_by_messages(g, radius, pool)
                                   : gather_balls_by_messages(g, radius);
    const auto views =
        gather_canonical_views(g, radius, {}, threads > 1 ? &pool : nullptr);
    CaseRun r;
    r.n = g.n();
    r.m = g.m();
    r.rounds = radius + 1;
    std::ostringstream d;
    for (const auto& b : balls) {
      d << b.center << ':' << b.graph.n() << ',' << b.graph.m() << ';';
    }
    for (const int c : views.view_class) d << c << ',';
    d << "distinct=" << views.distinct() << " hits=" << views.memo_hits;
    r.digest = d.str();
    return r;
  };
  return {std::move(name), std::move(run)};
}

/// §1.2 one-bit proofs: prove + verify a batch of instances per problem.
Case proofs_case(std::string problem, int n, int batch) {
  std::string name = "proofs/" + problem + "/n=" + std::to_string(n);
  auto run = [problem, n, batch](int threads) {
    struct Slot {
      std::string digest;
      long long bits = 0;
      int rounds = 0;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(batch));
    ThreadPool pool(threads);
    pool.for_each(batch, [&](int i) {
      const Graph g = make_cycle(n, IdMode::kRandomDense, 2000 + static_cast<std::uint64_t>(i));
      std::unique_ptr<LclProblem> p;
      if (problem == "mis") {
        p = std::make_unique<MisLcl>();
      } else {
        p = std::make_unique<VertexColoringLcl>(3);
      }
      SubexpLclParams params;
      params.x = 100;
      const auto proof = make_lcl_proof(g, *p, params);
      const auto res = verify_lcl_proof(g, *p, proof, params);
      LAD_CHECK_MSG(res.accepted, "honest " << problem << " proof rejected");
      auto& s = slots[static_cast<std::size_t>(i)];
      s.rounds = res.rounds;
      const auto stats = advice_stats(advice_from_bits(proof));
      s.bits = stats.total_bits;
      for (const char b : proof) s.digest += b != 0 ? '1' : '0';
    });
    CaseRun r;
    r.n = n;
    for (const auto& s : slots) {
      r.digest += s.digest;
      r.digest += '|';
      r.rounds = std::max(r.rounds, s.rounds);
      r.total_bits += s.bits;
    }
    r.bits_per_node = obs::per_node(r.total_bits, static_cast<long long>(batch) * n);
    return r;
  };
  return {std::move(name), std::move(run)};
}

/// Source-driven case (`lad bench --graph` and the scale suite): load or
/// generate the graph, then run one full pipeline stack over it. The
/// serial run builds the CSR serially; at `threads` > 1 the CSR is rebuilt
/// from raw edges through Graph::Builder::build(pool), so the `identical`
/// verdict certifies the parallel-construction determinism contract — the
/// graph digest leads the case digest, and the same graph_digest field is
/// where load-from-.ladg and in-memory generation meet.
Case source_case(const GraphSource& src, const Pipeline* p) {
  std::string name = "source/" + src.spec + "/" + p->name();
  auto run = [src, p](int threads) {
    LoadedGraph lg = load_graph_source(src);
    Graph g = std::move(lg.graph);
    if (threads > 1) {
      ThreadPool pool(threads);
      Graph::Builder b;
      b.reserve(static_cast<std::size_t>(g.n()), static_cast<std::size_t>(g.m()));
      for (const NodeId id : g.raw_ids()) b.add_node(id);
      const auto eu = g.raw_edge_u();
      const auto ev = g.raw_edge_v();
      for (int e = 0; e < g.m(); ++e) {
        b.add_edge(eu[static_cast<std::size_t>(e)], ev[static_cast<std::size_t>(e)]);
      }
      g = std::move(b).build(&pool);
    }
    PipelineConfig cfg = p->sweep_config(g.n());
    cfg.seed = hash2(1, static_cast<std::uint64_t>(g.n()));
    const auto adv = p->encode(g, cfg);
    const auto out = p->decode(g, adv, cfg);
    LAD_CHECK_MSG(p->verify(g, out, cfg),
                  p->name() << " decode failed verification on " << lg.spec);
    const AdviceStats stats = adv.stats(g.n());
    CaseRun r;
    r.n = g.n();
    r.m = g.m();
    r.rounds = out.rounds;
    r.total_bits = stats.total_bits;
    r.bits_per_node = obs::per_node(stats.total_bits, g.n());
    r.source = lg.spec;
    r.graph_digest = graph_digest_hex(g);
    r.digest = r.graph_digest;
    r.digest += '|';
    for (const auto& d : p->node_digests(g, out)) {
      r.digest += d;
      r.digest += ';';
    }
    return r;
  };
  return {std::move(name), std::move(run)};
}

PipelineConfig subexp_cfg() {
  PipelineConfig cfg;
  cfg.subexp.x = 60;  // cycle-scale clusters; keeps n <= 256 instances fast
  return cfg;
}

PipelineConfig spacing_cfg(int spacing) {
  PipelineConfig cfg;
  cfg.orientation.marker_spacing = spacing;
  return cfg;
}

std::vector<Case> suite_cases(const std::string& suite) {
  if (suite == "e1") return {pipeline_case(PipelineId::kSubexpLcl, 128, 4, subexp_cfg())};
  if (suite == "e2") {
    return {pipeline_case(PipelineId::kOrientation, 256, 4),
            pipeline_case(PipelineId::kOrientation, 512, 4)};
  }
  if (suite == "e3") return {pipeline_case(PipelineId::kDecompress, 256, 4)};
  if (suite == "e4") return {pipeline_case(PipelineId::kDeltaColoring, 144, 4)};
  if (suite == "e5") return {pipeline_case(PipelineId::kThreeColoring, 144, 4)};
  if (suite == "e6") return {gather_case("cycle", 512, 3), gather_case("grid", 256, 2)};
  if (suite == "e7") return {pipeline_case(PipelineId::kSplitting, 144, 4)};
  if (suite == "e8") {
    return {pipeline_case(PipelineId::kOrientation, 512, 2, spacing_cfg(20), "/spacing=20"),
            pipeline_case(PipelineId::kOrientation, 512, 2, spacing_cfg(80), "/spacing=80")};
  }
  if (suite == "e9") return {proofs_case("mis", 96, 4), proofs_case("3col", 96, 4)};
  if (suite == "r1") {
    return {campaign_case(faults::DecoderKind::kOrientation, faults::GraphFamily::kCycle, 120, 10),
            campaign_case(faults::DecoderKind::kThreeColoring, faults::GraphFamily::kGrid, 120,
                          10)};
  }
  if (suite == "gather") return {gather_case("grid", 400, 3), gather_case("cycle", 600, 4)};
  if (suite == "scale") {
    // Three decades of n on generated cycles through the source path: the
    // parallel axis is CSR construction itself. Deliberately not part of
    // "all" — the top point builds a million-node graph.
    std::vector<Case> cases;
    for (const char* spec : {"cycle:4096", "cycle:65536", "cycle:1048576"}) {
      std::string err;
      const auto src = parse_graph_source(spec, &err);
      LAD_CHECK_MSG(src.has_value(), "scale suite spec failed to parse: " << spec << ": " << err);
      cases.push_back(source_case(*src, &pipeline(PipelineId::kOrientation)));
    }
    return cases;
  }
  if (suite == "smoke") {
    return {pipeline_case(PipelineId::kOrientation, 96, 2),
            pipeline_case(PipelineId::kDecompress, 96, 2),
            campaign_case(faults::DecoderKind::kOrientation, faults::GraphFamily::kCycle, 64, 4)};
  }
  if (suite == "all") {
    std::vector<Case> all;
    for (const char* s : {"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "r1"}) {
      auto part = suite_cases(s);
      for (auto& c : part) all.push_back(std::move(c));
    }
    return all;
  }
  LAD_CHECK_MSG(false, "unknown bench suite: " << suite);
  return {};
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// 16-hex-digit splitmix fold of the raw (potentially huge) case digest —
/// platform-independent, cheap to diff, and still byte-sensitive.
std::string fingerprint(const std::string& bytes) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const char c : bytes) h = hash2(h, static_cast<unsigned char>(c));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::vector<std::string> bench_suite_names() {
  return {"e1", "e2",     "e3",    "e4",    "e5",  "e6", "e7",
          "e8", "e9",     "r1",    "gather", "scale", "smoke", "all"};
}

namespace {

/// The shared measurement loop: min-of-K serial timing per case, then one
/// row per listed thread count (digest-compared against the serial run),
/// with optional per-case telemetry attribution. Both the suite registry
/// and the source-driven bench funnel through here.
BenchSuiteResult run_cases(const std::string& label, std::vector<Case> cases,
                           std::vector<int> thread_list, bool with_metrics, int reps) {
  if (thread_list.empty()) thread_list.push_back(0);
  for (int& t : thread_list) {
    if (t <= 0) t = ThreadPool::default_threads();
  }
  // One row per listed count, named "case/t=K" only when the list has more
  // than one entry — single-count documents keep their schema-v4 case
  // names, so existing baselines stay comparable.
  const bool multi = thread_list.size() > 1;

  BenchSuiteResult out;
  out.suite = label;
  out.threads = *std::max_element(thread_list.begin(), thread_list.end());
  out.hardware_threads = ThreadPool::default_threads();
  out.schema_version = obs::kBenchSchemaVersion;
  out.git_commit = obs::kGitCommit;
  out.timestamp = obs::iso8601_utc_now();
  out.reps = std::max(1, reps);

  // --trace mode: telemetry on for the whole suite; the registry is reset
  // before each case's serial run and snapshotted right after it, so the
  // JSON attributes each counter delta to exactly one case (the threaded
  // re-runs are excluded — their counters are wiped by the next reset).
  const bool telemetry_was_enabled = obs::enabled();
  if (with_metrics) obs::set_enabled(true);

  for (auto& c : cases) {
    CaseRun serial;
    // Min-of-K timing: one discarded warmup (page-cache / allocator / CPU
    // governor effects land there), then the min over reps timed runs —
    // the most repeatable point statistic of a right-skewed wall-time
    // distribution. Execution is deterministic, so every rep produces the
    // same serial CaseRun and the metric snapshot of the last rep is the
    // metric snapshot of all of them.
    if (out.reps > 1) c.run(1);
    double wall_ms_1 = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < out.reps; ++rep) {
      if (with_metrics) obs::MetricsRegistry::instance().reset();
      wall_ms_1 = std::min(wall_ms_1, time_ms([&] { serial = c.run(1); }));
    }
    std::vector<obs::MetricValue> metrics;
    std::string top_phase;
    double serial_fraction = -1;
    if (with_metrics) {
      metrics = obs::MetricsRegistry::instance().snapshot(/*skip_zero=*/true);
      top_phase = obs::top_phase_from_trace();
      serial_fraction = obs::serial_split_from_trace().serial_fraction;
      obs::TraceRecorder::instance().clear();
    }
    const std::string digest = fingerprint(serial.digest);

    for (std::size_t ti = 0; ti < thread_list.size(); ++ti) {
      const int t = thread_list[ti];
      BenchCaseResult res;
      res.name = multi ? c.name + "/t=" + std::to_string(t) : c.name;
      res.threads = t;
      res.top_phase = top_phase;
      res.serial_fraction = serial_fraction;
      if (ti == 0) res.metrics = metrics;  // attributed once per case
      res.wall_ms_1 = wall_ms_1;
      res.digest = digest;
      if (t > 1) {
        CaseRun parallel;
        res.wall_ms = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < out.reps; ++rep) {
          res.wall_ms = std::min(res.wall_ms, time_ms([&] { parallel = c.run(t); }));
        }
        res.identical = parallel.digest == serial.digest;
      } else {
        res.wall_ms = res.wall_ms_1;
        res.identical = true;
      }
      res.n = serial.n;
      res.m = serial.m;
      res.rounds = serial.rounds;
      res.bits_per_node = serial.bits_per_node;
      res.total_bits = serial.total_bits;
      res.source = serial.source;
      res.graph_digest = serial.graph_digest;
      res.speedup_vs_1 = res.wall_ms > 0 ? res.wall_ms_1 / res.wall_ms : 1.0;
      out.cases.push_back(std::move(res));
    }
  }
  if (with_metrics) obs::set_enabled(telemetry_was_enabled);
  return out;
}

}  // namespace

BenchSuiteResult run_bench_suite(const std::string& suite, int threads, bool with_metrics,
                                 int reps) {
  return run_cases(suite, suite_cases(suite), std::vector<int>{threads}, with_metrics, reps);
}

BenchSuiteResult run_bench_suite(const std::string& suite, const std::vector<int>& thread_list,
                                 bool with_metrics, int reps) {
  return run_cases(suite, suite_cases(suite), thread_list, with_metrics, reps);
}

BenchSuiteResult run_source_bench(const std::vector<GraphSource>& sources,
                                  const std::string& pipeline_name, int threads,
                                  bool with_metrics, int reps) {
  return run_source_bench(sources, pipeline_name, std::vector<int>{threads}, with_metrics, reps);
}

BenchSuiteResult run_source_bench(const std::vector<GraphSource>& sources,
                                  const std::string& pipeline_name,
                                  const std::vector<int>& thread_list, bool with_metrics,
                                  int reps) {
  const Pipeline* p = find_pipeline(pipeline_name);
  LAD_CHECK_MSG(p != nullptr, "unknown pipeline: " << pipeline_name);
  std::vector<Case> cases;
  cases.reserve(sources.size());
  for (const GraphSource& src : sources) cases.push_back(source_case(src, p));
  return run_cases("source", std::move(cases), thread_list, with_metrics, reps);
}

std::string BenchSuiteResult::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << schema_version << ",\n"
     << "  \"git_commit\": \"" << git_commit << "\",\n"
     << "  \"timestamp\": \"" << timestamp << "\",\n"
     << "  \"suite\": \"" << suite << "\",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"hardware_threads\": " << hardware_threads << ",\n"
     << "  \"reps\": " << reps << ",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n << ", \"m\": " << c.m
       << ", \"rounds\": " << c.rounds << ", \"bits_per_node\": " << fmt(c.bits_per_node, 4)
       << ", \"total_bits\": " << c.total_bits << ", \"wall_ms_1t\": " << fmt(c.wall_ms_1, 3)
       << ", \"wall_ms\": " << fmt(c.wall_ms, 3) << ", \"speedup_vs_1\": "
       << fmt(c.speedup_vs_1, 3) << ", \"identical\": " << (c.identical ? "true" : "false")
       << ", \"digest\": \"" << c.digest << "\", \"threads\": " << c.threads;
    if (!c.top_phase.empty()) {
      os << ", \"top_phase\": \"" << c.top_phase << "\"";
    }
    if (c.serial_fraction >= 0) {
      os << ", \"serial_fraction\": " << fmt(c.serial_fraction, 4);
    }
    if (!c.source.empty()) {
      os << ", \"source\": \"" << c.source << "\", \"graph_digest\": \"" << c.graph_digest
         << "\"";
    }
    if (!c.metrics.empty()) {
      os << ", \"metrics\": {";
      for (std::size_t j = 0; j < c.metrics.size(); ++j) {
        os << "\"" << c.metrics[j].name << "\": " << c.metrics[j].value
           << (j + 1 < c.metrics.size() ? ", " : "");
      }
      os << "}";
    }
    os << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace lad::bench
