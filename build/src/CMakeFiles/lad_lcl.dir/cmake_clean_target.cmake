file(REMOVE_RECURSE
  "liblad_lcl.a"
)
