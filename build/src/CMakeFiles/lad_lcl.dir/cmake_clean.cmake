file(REMOVE_RECURSE
  "CMakeFiles/lad_lcl.dir/lcl/checker.cpp.o"
  "CMakeFiles/lad_lcl.dir/lcl/checker.cpp.o.d"
  "CMakeFiles/lad_lcl.dir/lcl/lcl.cpp.o"
  "CMakeFiles/lad_lcl.dir/lcl/lcl.cpp.o.d"
  "CMakeFiles/lad_lcl.dir/lcl/problems.cpp.o"
  "CMakeFiles/lad_lcl.dir/lcl/problems.cpp.o.d"
  "CMakeFiles/lad_lcl.dir/lcl/solver.cpp.o"
  "CMakeFiles/lad_lcl.dir/lcl/solver.cpp.o.d"
  "liblad_lcl.a"
  "liblad_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
