# Empty dependencies file for lad_lcl.
# This may be replaced when dependencies are built.
