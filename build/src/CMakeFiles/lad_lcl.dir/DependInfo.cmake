
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lcl/checker.cpp" "src/CMakeFiles/lad_lcl.dir/lcl/checker.cpp.o" "gcc" "src/CMakeFiles/lad_lcl.dir/lcl/checker.cpp.o.d"
  "/root/repo/src/lcl/lcl.cpp" "src/CMakeFiles/lad_lcl.dir/lcl/lcl.cpp.o" "gcc" "src/CMakeFiles/lad_lcl.dir/lcl/lcl.cpp.o.d"
  "/root/repo/src/lcl/problems.cpp" "src/CMakeFiles/lad_lcl.dir/lcl/problems.cpp.o" "gcc" "src/CMakeFiles/lad_lcl.dir/lcl/problems.cpp.o.d"
  "/root/repo/src/lcl/solver.cpp" "src/CMakeFiles/lad_lcl.dir/lcl/solver.cpp.o" "gcc" "src/CMakeFiles/lad_lcl.dir/lcl/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_local.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
