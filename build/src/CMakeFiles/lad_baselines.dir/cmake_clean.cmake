file(REMOVE_RECURSE
  "CMakeFiles/lad_baselines.dir/baselines/cole_vishkin.cpp.o"
  "CMakeFiles/lad_baselines.dir/baselines/cole_vishkin.cpp.o.d"
  "CMakeFiles/lad_baselines.dir/baselines/global_orientation.cpp.o"
  "CMakeFiles/lad_baselines.dir/baselines/global_orientation.cpp.o.d"
  "CMakeFiles/lad_baselines.dir/baselines/linial.cpp.o"
  "CMakeFiles/lad_baselines.dir/baselines/linial.cpp.o.d"
  "CMakeFiles/lad_baselines.dir/baselines/trivial_advice.cpp.o"
  "CMakeFiles/lad_baselines.dir/baselines/trivial_advice.cpp.o.d"
  "liblad_baselines.a"
  "liblad_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
