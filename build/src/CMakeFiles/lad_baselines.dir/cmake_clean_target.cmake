file(REMOVE_RECURSE
  "liblad_baselines.a"
)
