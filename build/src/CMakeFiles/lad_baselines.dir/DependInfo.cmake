
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cole_vishkin.cpp" "src/CMakeFiles/lad_baselines.dir/baselines/cole_vishkin.cpp.o" "gcc" "src/CMakeFiles/lad_baselines.dir/baselines/cole_vishkin.cpp.o.d"
  "/root/repo/src/baselines/global_orientation.cpp" "src/CMakeFiles/lad_baselines.dir/baselines/global_orientation.cpp.o" "gcc" "src/CMakeFiles/lad_baselines.dir/baselines/global_orientation.cpp.o.d"
  "/root/repo/src/baselines/linial.cpp" "src/CMakeFiles/lad_baselines.dir/baselines/linial.cpp.o" "gcc" "src/CMakeFiles/lad_baselines.dir/baselines/linial.cpp.o.d"
  "/root/repo/src/baselines/trivial_advice.cpp" "src/CMakeFiles/lad_baselines.dir/baselines/trivial_advice.cpp.o" "gcc" "src/CMakeFiles/lad_baselines.dir/baselines/trivial_advice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_lcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
