# Empty compiler generated dependencies file for lad_baselines.
# This may be replaced when dependencies are built.
