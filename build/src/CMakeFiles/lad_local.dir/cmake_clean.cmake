file(REMOVE_RECURSE
  "CMakeFiles/lad_local.dir/local/ball.cpp.o"
  "CMakeFiles/lad_local.dir/local/ball.cpp.o.d"
  "CMakeFiles/lad_local.dir/local/engine.cpp.o"
  "CMakeFiles/lad_local.dir/local/engine.cpp.o.d"
  "CMakeFiles/lad_local.dir/local/gather.cpp.o"
  "CMakeFiles/lad_local.dir/local/gather.cpp.o.d"
  "liblad_local.a"
  "liblad_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
