# Empty dependencies file for lad_local.
# This may be replaced when dependencies are built.
