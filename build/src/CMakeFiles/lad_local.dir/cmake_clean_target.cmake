file(REMOVE_RECURSE
  "liblad_local.a"
)
