
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/ball.cpp" "src/CMakeFiles/lad_local.dir/local/ball.cpp.o" "gcc" "src/CMakeFiles/lad_local.dir/local/ball.cpp.o.d"
  "/root/repo/src/local/engine.cpp" "src/CMakeFiles/lad_local.dir/local/engine.cpp.o" "gcc" "src/CMakeFiles/lad_local.dir/local/engine.cpp.o.d"
  "/root/repo/src/local/gather.cpp" "src/CMakeFiles/lad_local.dir/local/gather.cpp.o" "gcc" "src/CMakeFiles/lad_local.dir/local/gather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lad_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
