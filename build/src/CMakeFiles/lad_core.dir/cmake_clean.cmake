file(REMOVE_RECURSE
  "CMakeFiles/lad_core.dir/core/cluster_coloring.cpp.o"
  "CMakeFiles/lad_core.dir/core/cluster_coloring.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/decompress.cpp.o"
  "CMakeFiles/lad_core.dir/core/decompress.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/delta_coloring.cpp.o"
  "CMakeFiles/lad_core.dir/core/delta_coloring.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/eth.cpp.o"
  "CMakeFiles/lad_core.dir/core/eth.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/orientation.cpp.o"
  "CMakeFiles/lad_core.dir/core/orientation.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/proofs.cpp.o"
  "CMakeFiles/lad_core.dir/core/proofs.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/running_example.cpp.o"
  "CMakeFiles/lad_core.dir/core/running_example.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/splitting.cpp.o"
  "CMakeFiles/lad_core.dir/core/splitting.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/subexp_lcl.cpp.o"
  "CMakeFiles/lad_core.dir/core/subexp_lcl.cpp.o.d"
  "CMakeFiles/lad_core.dir/core/three_coloring.cpp.o"
  "CMakeFiles/lad_core.dir/core/three_coloring.cpp.o.d"
  "liblad_core.a"
  "liblad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
