
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_coloring.cpp" "src/CMakeFiles/lad_core.dir/core/cluster_coloring.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/cluster_coloring.cpp.o.d"
  "/root/repo/src/core/decompress.cpp" "src/CMakeFiles/lad_core.dir/core/decompress.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/decompress.cpp.o.d"
  "/root/repo/src/core/delta_coloring.cpp" "src/CMakeFiles/lad_core.dir/core/delta_coloring.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/delta_coloring.cpp.o.d"
  "/root/repo/src/core/eth.cpp" "src/CMakeFiles/lad_core.dir/core/eth.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/eth.cpp.o.d"
  "/root/repo/src/core/orientation.cpp" "src/CMakeFiles/lad_core.dir/core/orientation.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/orientation.cpp.o.d"
  "/root/repo/src/core/proofs.cpp" "src/CMakeFiles/lad_core.dir/core/proofs.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/proofs.cpp.o.d"
  "/root/repo/src/core/running_example.cpp" "src/CMakeFiles/lad_core.dir/core/running_example.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/running_example.cpp.o.d"
  "/root/repo/src/core/splitting.cpp" "src/CMakeFiles/lad_core.dir/core/splitting.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/splitting.cpp.o.d"
  "/root/repo/src/core/subexp_lcl.cpp" "src/CMakeFiles/lad_core.dir/core/subexp_lcl.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/subexp_lcl.cpp.o.d"
  "/root/repo/src/core/three_coloring.cpp" "src/CMakeFiles/lad_core.dir/core/three_coloring.cpp.o" "gcc" "src/CMakeFiles/lad_core.dir/core/three_coloring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_lcl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lad_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
