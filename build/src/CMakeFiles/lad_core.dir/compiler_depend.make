# Empty compiler generated dependencies file for lad_core.
# This may be replaced when dependencies are built.
