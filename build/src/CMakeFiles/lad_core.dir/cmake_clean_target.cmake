file(REMOVE_RECURSE
  "liblad_core.a"
)
