file(REMOVE_RECURSE
  "liblad_graph.a"
)
