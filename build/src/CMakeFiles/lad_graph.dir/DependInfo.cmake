
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/canonical.cpp" "src/CMakeFiles/lad_graph.dir/graph/canonical.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/canonical.cpp.o.d"
  "/root/repo/src/graph/checkers.cpp" "src/CMakeFiles/lad_graph.dir/graph/checkers.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/checkers.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/lad_graph.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/distance.cpp" "src/CMakeFiles/lad_graph.dir/graph/distance.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/distance.cpp.o.d"
  "/root/repo/src/graph/distance_coloring.cpp" "src/CMakeFiles/lad_graph.dir/graph/distance_coloring.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/distance_coloring.cpp.o.d"
  "/root/repo/src/graph/euler.cpp" "src/CMakeFiles/lad_graph.dir/graph/euler.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/euler.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/lad_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/lad_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/lad_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/rng.cpp" "src/CMakeFiles/lad_graph.dir/graph/rng.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/rng.cpp.o.d"
  "/root/repo/src/graph/ruling_set.cpp" "src/CMakeFiles/lad_graph.dir/graph/ruling_set.cpp.o" "gcc" "src/CMakeFiles/lad_graph.dir/graph/ruling_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
