# Empty dependencies file for lad_graph.
# This may be replaced when dependencies are built.
