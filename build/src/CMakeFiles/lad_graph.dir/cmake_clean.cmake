file(REMOVE_RECURSE
  "CMakeFiles/lad_graph.dir/graph/canonical.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/canonical.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/checkers.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/checkers.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/components.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/distance.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/distance.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/distance_coloring.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/distance_coloring.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/euler.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/euler.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/io.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/rng.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/rng.cpp.o.d"
  "CMakeFiles/lad_graph.dir/graph/ruling_set.cpp.o"
  "CMakeFiles/lad_graph.dir/graph/ruling_set.cpp.o.d"
  "liblad_graph.a"
  "liblad_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
