file(REMOVE_RECURSE
  "CMakeFiles/lad_advice.dir/advice/advice.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/advice.cpp.o.d"
  "CMakeFiles/lad_advice.dir/advice/bitstring.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/bitstring.cpp.o.d"
  "CMakeFiles/lad_advice.dir/advice/schema.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/schema.cpp.o.d"
  "CMakeFiles/lad_advice.dir/advice/sparsify.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/sparsify.cpp.o.d"
  "CMakeFiles/lad_advice.dir/advice/trailcode.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/trailcode.cpp.o.d"
  "CMakeFiles/lad_advice.dir/advice/uniform.cpp.o"
  "CMakeFiles/lad_advice.dir/advice/uniform.cpp.o.d"
  "liblad_advice.a"
  "liblad_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
