file(REMOVE_RECURSE
  "liblad_advice.a"
)
