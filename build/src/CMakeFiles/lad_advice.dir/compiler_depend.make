# Empty compiler generated dependencies file for lad_advice.
# This may be replaced when dependencies are built.
