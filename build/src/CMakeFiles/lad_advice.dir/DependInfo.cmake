
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advice/advice.cpp" "src/CMakeFiles/lad_advice.dir/advice/advice.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/advice.cpp.o.d"
  "/root/repo/src/advice/bitstring.cpp" "src/CMakeFiles/lad_advice.dir/advice/bitstring.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/bitstring.cpp.o.d"
  "/root/repo/src/advice/schema.cpp" "src/CMakeFiles/lad_advice.dir/advice/schema.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/schema.cpp.o.d"
  "/root/repo/src/advice/sparsify.cpp" "src/CMakeFiles/lad_advice.dir/advice/sparsify.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/sparsify.cpp.o.d"
  "/root/repo/src/advice/trailcode.cpp" "src/CMakeFiles/lad_advice.dir/advice/trailcode.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/trailcode.cpp.o.d"
  "/root/repo/src/advice/uniform.cpp" "src/CMakeFiles/lad_advice.dir/advice/uniform.cpp.o" "gcc" "src/CMakeFiles/lad_advice.dir/advice/uniform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lad_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
