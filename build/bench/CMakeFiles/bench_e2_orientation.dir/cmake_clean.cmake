file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_orientation.dir/bench_e2_orientation.cpp.o"
  "CMakeFiles/bench_e2_orientation.dir/bench_e2_orientation.cpp.o.d"
  "bench_e2_orientation"
  "bench_e2_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
