# Empty dependencies file for bench_e3_decompress.
# This may be replaced when dependencies are built.
