file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_decompress.dir/bench_e3_decompress.cpp.o"
  "CMakeFiles/bench_e3_decompress.dir/bench_e3_decompress.cpp.o.d"
  "bench_e3_decompress"
  "bench_e3_decompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_decompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
