file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_eth.dir/bench_e6_eth.cpp.o"
  "CMakeFiles/bench_e6_eth.dir/bench_e6_eth.cpp.o.d"
  "bench_e6_eth"
  "bench_e6_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
