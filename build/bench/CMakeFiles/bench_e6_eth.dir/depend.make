# Empty dependencies file for bench_e6_eth.
# This may be replaced when dependencies are built.
