# Empty compiler generated dependencies file for bench_e1_subexp_lcl.
# This may be replaced when dependencies are built.
