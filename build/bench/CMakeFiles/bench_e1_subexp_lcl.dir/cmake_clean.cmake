file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_subexp_lcl.dir/bench_e1_subexp_lcl.cpp.o"
  "CMakeFiles/bench_e1_subexp_lcl.dir/bench_e1_subexp_lcl.cpp.o.d"
  "bench_e1_subexp_lcl"
  "bench_e1_subexp_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_subexp_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
