file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_splitting.dir/bench_e7_splitting.cpp.o"
  "CMakeFiles/bench_e7_splitting.dir/bench_e7_splitting.cpp.o.d"
  "bench_e7_splitting"
  "bench_e7_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
