# Empty dependencies file for bench_e7_splitting.
# This may be replaced when dependencies are built.
