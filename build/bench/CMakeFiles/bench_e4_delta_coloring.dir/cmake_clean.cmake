file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_delta_coloring.dir/bench_e4_delta_coloring.cpp.o"
  "CMakeFiles/bench_e4_delta_coloring.dir/bench_e4_delta_coloring.cpp.o.d"
  "bench_e4_delta_coloring"
  "bench_e4_delta_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_delta_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
