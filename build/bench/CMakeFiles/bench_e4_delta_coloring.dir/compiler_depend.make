# Empty compiler generated dependencies file for bench_e4_delta_coloring.
# This may be replaced when dependencies are built.
