file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_baselines.dir/bench_b1_baselines.cpp.o"
  "CMakeFiles/bench_b1_baselines.dir/bench_b1_baselines.cpp.o.d"
  "bench_b1_baselines"
  "bench_b1_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
