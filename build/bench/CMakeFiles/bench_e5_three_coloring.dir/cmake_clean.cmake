file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_three_coloring.dir/bench_e5_three_coloring.cpp.o"
  "CMakeFiles/bench_e5_three_coloring.dir/bench_e5_three_coloring.cpp.o.d"
  "bench_e5_three_coloring"
  "bench_e5_three_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_three_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
