# Empty compiler generated dependencies file for bench_e5_three_coloring.
# This may be replaced when dependencies are built.
