file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_proofs.dir/bench_e9_proofs.cpp.o"
  "CMakeFiles/bench_e9_proofs.dir/bench_e9_proofs.cpp.o.d"
  "bench_e9_proofs"
  "bench_e9_proofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_proofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
