file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_coloring.dir/test_cluster_coloring.cpp.o"
  "CMakeFiles/test_cluster_coloring.dir/test_cluster_coloring.cpp.o.d"
  "test_cluster_coloring"
  "test_cluster_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
