# Empty compiler generated dependencies file for test_cluster_coloring.
# This may be replaced when dependencies are built.
