file(REMOVE_RECURSE
  "CMakeFiles/test_running_example.dir/test_running_example.cpp.o"
  "CMakeFiles/test_running_example.dir/test_running_example.cpp.o.d"
  "test_running_example"
  "test_running_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_running_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
