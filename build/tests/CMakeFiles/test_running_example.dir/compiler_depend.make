# Empty compiler generated dependencies file for test_running_example.
# This may be replaced when dependencies are built.
