file(REMOVE_RECURSE
  "CMakeFiles/test_advice.dir/test_advice.cpp.o"
  "CMakeFiles/test_advice.dir/test_advice.cpp.o.d"
  "test_advice"
  "test_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
