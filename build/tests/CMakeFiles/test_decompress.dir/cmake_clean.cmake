file(REMOVE_RECURSE
  "CMakeFiles/test_decompress.dir/test_decompress.cpp.o"
  "CMakeFiles/test_decompress.dir/test_decompress.cpp.o.d"
  "test_decompress"
  "test_decompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
