# Empty dependencies file for test_decompress.
# This may be replaced when dependencies are built.
