file(REMOVE_RECURSE
  "CMakeFiles/test_ruling_set.dir/test_ruling_set.cpp.o"
  "CMakeFiles/test_ruling_set.dir/test_ruling_set.cpp.o.d"
  "test_ruling_set"
  "test_ruling_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ruling_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
