# Empty compiler generated dependencies file for test_ruling_set.
# This may be replaced when dependencies are built.
