file(REMOVE_RECURSE
  "CMakeFiles/test_orientation.dir/test_orientation.cpp.o"
  "CMakeFiles/test_orientation.dir/test_orientation.cpp.o.d"
  "test_orientation"
  "test_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
