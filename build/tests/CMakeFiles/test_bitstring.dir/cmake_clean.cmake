file(REMOVE_RECURSE
  "CMakeFiles/test_bitstring.dir/test_bitstring.cpp.o"
  "CMakeFiles/test_bitstring.dir/test_bitstring.cpp.o.d"
  "test_bitstring"
  "test_bitstring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitstring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
