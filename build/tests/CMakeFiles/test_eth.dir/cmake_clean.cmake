file(REMOVE_RECURSE
  "CMakeFiles/test_eth.dir/test_eth.cpp.o"
  "CMakeFiles/test_eth.dir/test_eth.cpp.o.d"
  "test_eth"
  "test_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
