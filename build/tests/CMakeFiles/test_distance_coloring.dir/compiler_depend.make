# Empty compiler generated dependencies file for test_distance_coloring.
# This may be replaced when dependencies are built.
