file(REMOVE_RECURSE
  "CMakeFiles/test_distance_coloring.dir/test_distance_coloring.cpp.o"
  "CMakeFiles/test_distance_coloring.dir/test_distance_coloring.cpp.o.d"
  "test_distance_coloring"
  "test_distance_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
