file(REMOVE_RECURSE
  "CMakeFiles/test_subexp_lcl.dir/test_subexp_lcl.cpp.o"
  "CMakeFiles/test_subexp_lcl.dir/test_subexp_lcl.cpp.o.d"
  "test_subexp_lcl"
  "test_subexp_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subexp_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
