# Empty compiler generated dependencies file for test_subexp_lcl.
# This may be replaced when dependencies are built.
