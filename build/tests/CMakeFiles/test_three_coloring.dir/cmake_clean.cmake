file(REMOVE_RECURSE
  "CMakeFiles/test_three_coloring.dir/test_three_coloring.cpp.o"
  "CMakeFiles/test_three_coloring.dir/test_three_coloring.cpp.o.d"
  "test_three_coloring"
  "test_three_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_three_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
