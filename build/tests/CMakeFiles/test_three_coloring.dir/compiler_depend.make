# Empty compiler generated dependencies file for test_three_coloring.
# This may be replaced when dependencies are built.
