# Empty compiler generated dependencies file for test_trailcode.
# This may be replaced when dependencies are built.
