file(REMOVE_RECURSE
  "CMakeFiles/test_trailcode.dir/test_trailcode.cpp.o"
  "CMakeFiles/test_trailcode.dir/test_trailcode.cpp.o.d"
  "test_trailcode"
  "test_trailcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trailcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
