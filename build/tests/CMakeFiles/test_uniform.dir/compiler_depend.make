# Empty compiler generated dependencies file for test_uniform.
# This may be replaced when dependencies are built.
