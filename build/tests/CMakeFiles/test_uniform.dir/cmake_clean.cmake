file(REMOVE_RECURSE
  "CMakeFiles/test_uniform.dir/test_uniform.cpp.o"
  "CMakeFiles/test_uniform.dir/test_uniform.cpp.o.d"
  "test_uniform"
  "test_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
