# Empty compiler generated dependencies file for test_delta_coloring.
# This may be replaced when dependencies are built.
