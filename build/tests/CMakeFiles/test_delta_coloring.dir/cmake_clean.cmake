file(REMOVE_RECURSE
  "CMakeFiles/test_delta_coloring.dir/test_delta_coloring.cpp.o"
  "CMakeFiles/test_delta_coloring.dir/test_delta_coloring.cpp.o.d"
  "test_delta_coloring"
  "test_delta_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
