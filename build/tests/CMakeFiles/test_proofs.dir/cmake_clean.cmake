file(REMOVE_RECURSE
  "CMakeFiles/test_proofs.dir/test_proofs.cpp.o"
  "CMakeFiles/test_proofs.dir/test_proofs.cpp.o.d"
  "test_proofs"
  "test_proofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
