# Empty dependencies file for test_proofs.
# This may be replaced when dependencies are built.
