file(REMOVE_RECURSE
  "CMakeFiles/test_sparsify.dir/test_sparsify.cpp.o"
  "CMakeFiles/test_sparsify.dir/test_sparsify.cpp.o.d"
  "test_sparsify"
  "test_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
