# Empty compiler generated dependencies file for test_sparsify.
# This may be replaced when dependencies are built.
