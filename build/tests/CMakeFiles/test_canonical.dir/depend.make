# Empty dependencies file for test_canonical.
# This may be replaced when dependencies are built.
