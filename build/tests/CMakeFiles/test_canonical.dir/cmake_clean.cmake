file(REMOVE_RECURSE
  "CMakeFiles/test_canonical.dir/test_canonical.cpp.o"
  "CMakeFiles/test_canonical.dir/test_canonical.cpp.o.d"
  "test_canonical"
  "test_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
