file(REMOVE_RECURSE
  "CMakeFiles/lad_cli.dir/lad_cli.cpp.o"
  "CMakeFiles/lad_cli.dir/lad_cli.cpp.o.d"
  "lad"
  "lad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
