# Empty dependencies file for lad_cli.
# This may be replaced when dependencies are built.
