file(REMOVE_RECURSE
  "CMakeFiles/example_decompress_pipeline.dir/decompress_pipeline.cpp.o"
  "CMakeFiles/example_decompress_pipeline.dir/decompress_pipeline.cpp.o.d"
  "example_decompress_pipeline"
  "example_decompress_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_decompress_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
