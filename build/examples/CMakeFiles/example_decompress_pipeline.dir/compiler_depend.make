# Empty compiler generated dependencies file for example_decompress_pipeline.
# This may be replaced when dependencies are built.
