# Empty dependencies file for example_local_proofs.
# This may be replaced when dependencies are built.
