file(REMOVE_RECURSE
  "CMakeFiles/example_local_proofs.dir/local_proofs.cpp.o"
  "CMakeFiles/example_local_proofs.dir/local_proofs.cpp.o.d"
  "example_local_proofs"
  "example_local_proofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_local_proofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
