file(REMOVE_RECURSE
  "CMakeFiles/example_coloring_with_advice.dir/coloring_with_advice.cpp.o"
  "CMakeFiles/example_coloring_with_advice.dir/coloring_with_advice.cpp.o.d"
  "example_coloring_with_advice"
  "example_coloring_with_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_coloring_with_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
