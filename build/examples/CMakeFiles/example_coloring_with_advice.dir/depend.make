# Empty dependencies file for example_coloring_with_advice.
# This may be replaced when dependencies are built.
