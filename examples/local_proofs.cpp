// Scenario: auditable configuration certificates (§1.2).
//
// A controller claims "this network admits a maximal matching compatible
// with policy". Instead of shipping the full solution, it publishes a 1-bit
// certificate per node (the §4 advice). Any subset of nodes can audit the
// claim with constant-radius communication: they decode the certificate and
// check the LCL constraint locally. A forged or corrupted certificate that
// does not decode to a valid solution is rejected by some node.
#include <cstdio>

#include "core/proofs.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "lcl/problems.hpp"

int main() {
  using namespace lad;

  const Graph g = make_cycle(5000, IdMode::kRandomDense, 11);
  MaximalMatchingLcl policy;
  SubexpLclParams params;
  params.x = 100;

  // Honest certificate.
  const auto cert = make_lcl_proof(g, policy, params);
  auto res = verify_lcl_proof(g, policy, cert, params);
  std::printf("honest certificate: %s (verifier radius %d)\n",
              res.accepted ? "ACCEPTED" : "rejected", res.rounds);

  // An impossible claim: 2-colorability of an odd cycle. No certificate can
  // make the verifier accept, because acceptance requires decoding a valid
  // solution.
  const Graph odd = make_cycle(1001, IdMode::kRandomDense, 12);
  VertexColoringLcl two(2);
  Rng rng(3);
  int rejected = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    std::vector<char> forged(static_cast<std::size_t>(odd.n()));
    for (auto& b : forged) b = rng.flip(0.5) ? 1 : 0;
    if (!verify_lcl_proof(odd, two, forged, params).accepted) ++rejected;
  }
  std::printf("forged certificates for a false claim: %d/%d rejected\n", rejected, trials);

  // Corruption of an honest certificate: either some node rejects, or the
  // decoded solution still satisfies the policy (harmless).
  int rejected_c = 0, still_valid = 0;
  for (int t = 0; t < 10; ++t) {
    auto corrupted = cert;
    for (int k = 0; k < 8; ++k) {
      corrupted[static_cast<std::size_t>(rng.uniform(0, g.n() - 1))] ^= 1;
    }
    const auto r = verify_lcl_proof(g, policy, corrupted, params);
    (r.accepted ? still_valid : rejected_c) += 1;
  }
  std::printf("corrupted certificates: %d rejected, %d decoded to still-valid solutions\n",
              rejected_c, still_valid);
  return 0;
}
