// Scenario: frequency assignment with precomputed hints (§6 and §7).
//
// A planner computes an optimal channel assignment offline (an NP-hard
// 3-coloring / a tight Δ-coloring) and wants radio nodes to reconstruct it
// after a cold reboot with minimal persistent per-node state and only local
// communication. Storing the full assignment costs 2 bits per node for 3
// channels; the paper's schemas need exactly 1 bit — and for Δ-coloring a
// sparse set of variable-length hints.
#include <cstdio>

#include "advice/advice.hpp"
#include "core/delta_coloring.hpp"
#include "core/three_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lad;

  // Part 1 — 3 channels on a 3-colorable interference graph.
  {
    const auto planted = make_planted_colorable(4000, 3, 2.6, 6, 4242);
    const Graph& g = planted.graph;
    std::printf("[3-coloring] interference graph: n=%d, m=%d, Δ=%d\n", g.n(), g.m(),
                g.max_degree());

    const auto enc = encode_three_coloring_advice(g, planted.coloring);
    const auto stats = advice_stats(advice_from_bits(enc.bits));
    std::printf("[3-coloring] persistent state: 1 bit/node (trivial schema: 2), "
                "ones ratio %.4f, parity groups: %d\n",
                stats.ones_ratio, enc.num_groups);

    const auto dec = decode_three_coloring(g, enc.bits);
    std::printf("[3-coloring] rebooted assignment valid: %s, %d LOCAL rounds\n",
                is_proper_coloring(g, dec.coloring, 3) ? "yes" : "NO", dec.rounds);
  }

  // Part 2 — Δ channels on a Δ-colorable graph (one fewer channel than the
  // greedy Δ+1 guarantee; impossible to find quickly without hints).
  {
    const int delta = 5;
    const auto planted = make_planted_colorable(3000, delta, 3.4, delta, 777);
    const Graph& g = planted.graph;
    std::printf("[Δ-coloring] n=%d, Δ=%d\n", g.n(), delta);

    const auto enc = encode_delta_coloring_advice(g, planted.coloring);
    long long bits = 0;
    for (const auto& [node, packed] : pack_var_advice(enc.advice)) {
      (void)node;
      bits += packed.size();
    }
    std::printf("[Δ-coloring] hints: %zu storage nodes, %lld bits total "
                "(%.3f bits/node), %d clusters, %d local repairs\n",
                enc.advice.size(), bits, static_cast<double>(bits) / g.n(),
                enc.num_clusters, enc.num_repairs);

    const auto dec = decode_delta_coloring(g, enc.advice);
    std::printf("[Δ-coloring] assignment uses <= %d channels: %s, %d LOCAL rounds\n", delta,
                is_proper_coloring(g, dec.coloring, delta) ? "yes" : "NO", dec.rounds);
  }
  return 0;
}
