// Quickstart: solve a globally hard problem in O(1) LOCAL rounds with one
// bit of advice per node.
//
// Balanced orientation on a cycle needs Θ(n) rounds without advice — the
// two "ends" of any long arc must agree on a direction. With the §5 schema
// a centralized prover plants one bit per node, and every node orients its
// edges after a constant number of rounds.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>

#include "advice/advice.hpp"
#include "baselines/global_orientation.hpp"
#include "core/orientation.hpp"
#include "graph/checkers.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lad;

  // A LOCAL network: a 10,000-node cycle with random identifiers.
  const Graph g = make_cycle(10000, IdMode::kRandomSparse, 2024);
  std::printf("graph: cycle, n=%d, m=%d, Δ=%d\n", g.n(), g.m(), g.max_degree());

  // 1. The prover (sees the whole graph) computes the advice: one bit per
  //    node (Definition 2, uniform fixed-length schema).
  const auto advice = encode_orientation_advice(g);
  const auto stats = advice_stats(advice_from_bits(advice.bits));
  std::printf("advice: %lld bits total (1 per node), ones ratio %.4f\n",
              stats.total_bits, stats.ones_ratio);

  // 2. The distributed decoder runs in T(Δ) LOCAL rounds — independent of n.
  const auto result = decode_orientation(g, advice.bits);
  std::printf("decoded in %d LOCAL rounds\n", result.rounds);

  // 3. Validate: every node has |indeg - outdeg| <= 1 (= 0 on even degrees).
  std::printf("almost-balanced: %s\n",
              is_balanced_orientation(g, result.orientation, 1) ? "yes" : "NO");

  // 4. Compare with the advice-free world: Θ(n) rounds.
  const auto baseline = orient_without_advice(g);
  std::printf("without advice the same instance needs %d rounds (Θ(n))\n", baseline.rounds);
  std::printf("speedup: %.0fx\n",
              static_cast<double>(baseline.rounds) / std::max(1, result.rounds));
  return 0;
}
