// Scenario: distributed decompression of a routing overlay (§1.5).
//
// A data-center operator wants every switch to store a compressed copy of
// an overlay edge set X ⊆ E (e.g. "which links belong to the backup
// spanning structure") using as little per-switch memory as possible, while
// still letting the switches reconstruct X locally after a failover —
// without a central controller round-trip.
//
// Trivial encoding: a degree-d switch stores d bits (one per incident
// link). Information-theoretically at least d/2 bits are needed. The §1.5
// schema hits ceil(d/2)+1: one bit of orientation advice plus one bit per
// *outgoing* link under the almost-balanced orientation.
#include <cstdio>

#include "core/decompress.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

int main() {
  using namespace lad;

  // Leaf-spine-ish substrate: a random 6-regular network of 1200 switches.
  const int degree = 6;
  const Graph g = make_random_regular(1200, degree, 99);
  std::printf("network: %d switches, %d links, %d-regular\n", g.n(), g.m(), degree);

  // The overlay: a random 40%% subset of links.
  Rng rng(7);
  std::vector<char> overlay(static_cast<std::size_t>(g.m()));
  int overlay_size = 0;
  for (auto& b : overlay) {
    b = rng.flip(0.4) ? 1 : 0;
    overlay_size += b;
  }
  std::printf("overlay: %d of %d links\n", overlay_size, g.m());

  // Compress: ceil(d/2)+1 bits per switch.
  const auto compressed = compress_edge_set(g, overlay);
  long long ours = 0, trivial = 0;
  for (int v = 0; v < g.n(); ++v) {
    ours += compressed.labels[static_cast<std::size_t>(v)].size();
    trivial += g.degree(v);
  }
  std::printf("per-switch storage: %.2f bits (trivial: %.2f, lower bound: %.2f)\n",
              static_cast<double>(ours) / g.n(), static_cast<double>(trivial) / g.n(),
              degree / 2.0);

  // Decompress locally, in rounds independent of the network size.
  const auto result = decompress_edge_set(g, compressed);
  std::printf("decompressed in %d LOCAL rounds; exact recovery: %s\n", result.rounds,
              result.in_x == overlay ? "yes" : "NO");
  std::printf("total savings vs trivial: %lld bits (%.1f%%)\n", trivial - ours,
              100.0 * (trivial - ours) / trivial);
  return 0;
}
