// Guarded (fault-tolerant) counterpart of the core Pipeline registry.
//
// core/pipeline.hpp gives every consumer a uniform strict encode/decode
// view of the six paper pipelines; this layer is the same idea for the
// robustness story. A GuardedPipeline pairs a base Pipeline with:
//
//   * encode()          — the guarded prover (identical to the base one for
//                         every pipeline except §1.5, whose guarded
//                         compressor appends per-label integrity guards);
//   * decode_guarded()  — the proof-guarded decoder with local repair
//                         (robust.hpp), returning the uniform PipelineOutput
//                         plus the RobustnessReport;
//   * silent_corruption() — the ground-truth verdict the campaign layer
//                         records: an invalid output that produced zero
//                         detection. The default derives it from the report;
//                         §1.5 overrides it with a membership comparison
//                         against the regenerable hashed instance.
//
// It lives in the faults layer (not core) because repair needs the
// robustness machinery, which depends on core — the dependency only works
// in this direction. The campaign harness and the faultsim CLI iterate
// guarded_pipelines() instead of carrying six-way switches.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"
#include "faults/robust.hpp"
#include "graph/graph.hpp"

namespace lad::faults {

/// Uniform result of a guarded decode.
struct GuardedOutcome {
  PipelineOutput output;
  robust::RobustnessReport report;
};

class GuardedPipeline {
 public:
  virtual ~GuardedPipeline() = default;

  /// The strict pipeline this one hardens; id/name/carrier/digests are
  /// delegated to it.
  virtual const Pipeline& base() const = 0;

  PipelineId id() const { return base().id(); }
  const char* name() const { return base().name(); }

  /// Guarded prover. Defaults to the base encoder; §1.5 overrides it to
  /// append the integrity guard bits its decoder verifies.
  virtual PipelineAdvice encode(const Graph& g, const PipelineConfig& cfg) const {
    return base().encode(g, cfg);
  }

  /// Proof-guarded decode with local repair (never throws on corrupted
  /// advice; failures are repaired or flagged in the report). Non-virtual
  /// wrapper (NVI): the single telemetry point for all six guarded
  /// decoders — span + detection/repair counters live in
  /// guarded_pipeline.cpp, subclasses override do_decode_guarded().
  GuardedOutcome decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const;

  /// Ground-truth verdict: did an invalid output slip through with zero
  /// detection? This is the invariant fault campaigns assert stays false.
  virtual bool silent_corruption(const Graph& g, const GuardedOutcome& out,
                                 const PipelineConfig& cfg) const {
    (void)g;
    (void)cfg;
    return !out.report.output_valid && !out.report.degraded();
  }

 protected:
  virtual GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                           const PipelineConfig& cfg,
                                           const robust::RepairPolicy& policy) const = 0;
};

/// Routes the injector's advice attack through the carrier-appropriate
/// channel (bit flips for uniform bits, schema-entry attacks for VarAdvice,
/// label attacks for per-node bit-strings).
void corrupt_pipeline_advice(FaultInjector& inj, const Graph& g, PipelineAdvice& adv);

/// The guarded registry, in PipelineId order (static singletons).
const std::vector<const GuardedPipeline*>& guarded_pipelines();
const GuardedPipeline& guarded_pipeline(PipelineId id);

}  // namespace lad::faults
