// Deterministic, seed-driven fault injection (the adversary of the
// robustness story).
//
// The paper's §1.2 corollary turns any advice schema into a locally
// checkable one: corrupted advice is rejected by some node inspecting only
// a constant-radius ball. This header supplies the *faults* side of that
// contract — a FaultPlan describes an adversary at three layers:
//
//   * advice faults  — per-node bit flips, erasure to the empty string,
//     byzantine rewrites, variable-length truncation (Definition 2 schemas
//     and VarAdvice schema entries alike);
//   * graph faults   — edge deletions between encode and decode (scattered
//     or burst/regional), i.e. the advice is *stale* for the graph being
//     decoded;
//   * engine faults  — per-(round, directed edge) message drop, payload
//     corruption, duplication and bounded delay, plus node crash-stop or
//     crash-recovery, applied inside Engine::run behind the
//     EngineFaultModel hook.
//
// Every decision is a pure function of (seed, site): two runs with the same
// FaultPlan inject byte-identical faults regardless of iteration order, so
// fault campaigns are exactly reproducible. All randomness is derived from
// per-layer sub-seeds (splitmix64) — layers cannot perturb each other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advice/advice.hpp"
#include "advice/schema.hpp"
#include "graph/graph.hpp"
#include "local/engine.hpp"
#include "util/hashing.hpp"

namespace lad::faults {

// The splitmix64 finalizer family all fault decisions are keyed on now
// lives in util/hashing.hpp (the pipeline registry hashes instances with
// the same primitives); re-exported here for the existing faults:: users.
using ::lad::hash2;
using ::lad::hash3;
using ::lad::hash4;
using ::lad::splitmix64;
using ::lad::unit_from_hash;

enum class AdviceFaultKind {
  kBitFlip,    // flip a few bits of the label in place
  kErasure,    // replace the label with the empty string
  kByzantine,  // replace the label with adversarial garbage
  kTruncate,   // keep only a strict prefix of the label
};

const char* to_string(AdviceFaultKind kind);

/// How the adversary picks its advice victims. All modes are deterministic
/// pure functions of (sub-seed, graph): kUniform hashes each node ID
/// independently (the oblivious adversary); the other two target the nodes
/// a worst-case adversary would — high-degree hubs, or nodes on the
/// boundary between ruling-set regions, where a corrupted label poisons
/// the most downstream decisions.
enum class AdviceTargeting {
  kUniform,         // independent per-node hash < fraction
  kHighDegree,      // the ceil(fraction*n) nodes of highest degree
  kRegionBoundary,  // nodes with a neighbor in a different ruling-set region
};

const char* to_string(AdviceTargeting targeting);

struct AdviceFaultSpec {
  /// Fraction of nodes whose advice is attacked (selected by hash).
  double node_fraction = 0.0;
  /// Kinds mixed into the attack; a target node's kind is chosen by hash.
  /// Empty means the advice layer is fault-free.
  std::vector<AdviceFaultKind> kinds;
  /// Upper bound on flipped bits per label for kBitFlip.
  int max_flips_per_label = 3;
  /// Victim selection; non-uniform modes attack exactly
  /// round(fraction * n) nodes, worst ones first.
  AdviceTargeting targeting = AdviceTargeting::kUniform;
};

struct EngineFaultSpec {
  /// Per-(round, directed edge) probability a sent message is dropped.
  double message_drop_prob = 0.0;
  /// Per delivered message probability the payload is corrupted in place.
  double message_corrupt_prob = 0.0;
  /// Fraction of nodes that crash during the run.
  double crash_fraction = 0.0;
  /// Crash rounds are drawn from [1, crash_round_window].
  int crash_round_window = 4;
  /// 0 = crash-stop (a crashed node stays down forever). k > 0 =
  /// crash-recovery: the node is down for exactly k rounds, then rejoins
  /// with blank state (Engine discards its pending messages and calls
  /// SyncAlgorithm::on_recover) and must re-converge.
  int crash_recovery_rounds = 0;
  /// Per delivered message probability a stale duplicate arrives again one
  /// round later (discarded if a fresh message occupies the port).
  double message_duplicate_prob = 0.0;
  /// Per message probability delivery is delayed by 1..max_delay_rounds
  /// extra rounds instead of arriving next round.
  double message_delay_prob = 0.0;
  int max_delay_rounds = 2;
};

struct GraphFaultSpec {
  /// Fraction of edges deleted between encode and decode (stale advice).
  double edge_delete_fraction = 0.0;
  /// Burst (regional) faults: every edge inside the radius-`burst_radius`
  /// ball around each of `burst_count` hash-chosen epicenter nodes is
  /// deleted — a localized outage instead of scattered deletions.
  int burst_count = 0;
  int burst_radius = 1;
};

/// A complete, self-describing adversary. Same plan => same faults.
struct FaultPlan {
  /// Base seed every layer sub-seed derives from. NOTE: fault *campaigns*
  /// (faults/campaign.hpp) ignore this field — each trial overwrites it
  /// with a seed derived from (CampaignConfig::seed, trial index). It is
  /// honored only when a FaultInjector is constructed directly.
  std::uint64_t seed = 0;
  AdviceFaultSpec advice;
  EngineFaultSpec engine;
  GraphFaultSpec graph;

  bool any_advice_faults() const {
    return advice.node_fraction > 0.0 && !advice.kinds.empty();
  }
  bool any_engine_faults() const {
    return engine.message_drop_prob > 0.0 || engine.message_corrupt_prob > 0.0 ||
           engine.crash_fraction > 0.0 || engine.message_duplicate_prob > 0.0 ||
           engine.message_delay_prob > 0.0;
  }
  bool any_graph_faults() const {
    return graph.edge_delete_fraction > 0.0 || graph.burst_count > 0;
  }
};

enum class FaultLayer { kAdvice, kGraph, kEngine };

const char* to_string(FaultLayer layer);

/// One injected fault, for the report and for blast-radius accounting.
struct FaultEvent {
  FaultLayer layer = FaultLayer::kAdvice;
  AdviceFaultKind advice_kind = AdviceFaultKind::kBitFlip;  // kAdvice only
  int node = -1;   // primary site (node index); edge_u for graph faults
  int other = -1;  // secondary site (edge_v for graph faults)
  std::string detail;
};

/// Stateless EngineFaultModel driven by an EngineFaultSpec and a sub-seed.
/// With crash_recovery_rounds == 0 crash decisions are monotone in the
/// round (crash-stop); with k > 0 each victim is down for exactly the
/// interval [crash_round, crash_round + k) and then rejoins (crash-
/// recovery). Either way every answer is a pure function of (seed, site).
class HashedEngineFaults final : public EngineFaultModel {
 public:
  HashedEngineFaults() = default;
  HashedEngineFaults(std::uint64_t seed, EngineFaultSpec spec) : seed_(seed), spec_(spec) {}

  bool crashed(int round, int v) const override;
  bool drop_message(int round, int from, int to) const override;
  bool corrupt_message(int round, int from, int to, std::string& payload) const override;
  bool duplicate_message(int round, int from, int to) const override;
  int delay_rounds(int round, int from, int to) const override;

  /// True if node v is a crash victim (it will crash at some round >= 1).
  bool crash_selected(int v) const;

 private:
  std::uint64_t seed_ = 0;
  EngineFaultSpec spec_;
};

/// Applies a FaultPlan. Each layer draws from its own derived sub-seed, so
/// e.g. enabling engine faults never changes which advice bits get flipped.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Attacks per-node labels in place (Definition 2 advice).
  void corrupt_advice(const Graph& g, Advice& advice);

  /// Attacks uniform 1-bit advice given as a raw bit vector: targeted nodes
  /// get their bit flipped (the only meaningful attack on one bit).
  void corrupt_bits(const Graph& g, std::vector<char>& bits);

  /// Attacks a variable-length schema: erases, rewrites, or truncates the
  /// schema entries stored at targeted storage nodes.
  void corrupt_var_advice(const Graph& g, VarAdvice& advice);

  /// Deletes a hashed subset of edges; node set and dense-index order are
  /// preserved so that per-node advice still lines up by index.
  Graph apply_graph_faults(const Graph& g);

  /// The engine-layer adversary for Engine::set_fault_model.
  const HashedEngineFaults& engine_faults() const { return engine_model_; }

  /// Everything injected so far through this injector.
  const std::vector<FaultEvent>& events() const { return events_; }

  /// The advice-layer victim set on g, one flag per node index, as selected
  /// by the plan's AdviceTargeting mode. A pure function of (sub-seed,
  /// graph); kUniform reproduces the legacy independent per-node hash
  /// bit-for-bit. Exposed for tests and reports.
  std::vector<char> advice_target_mask(const Graph& g) const;

  /// Distinct node indices touched by injected faults, plus the crash
  /// victims the engine model would select on g — the sources for
  /// blast-radius BFS. Sorted ascending.
  std::vector<int> fault_site_nodes(const Graph& g) const;

 private:
  std::uint64_t advice_seed() const { return hash2(plan_.seed, 0xADu); }
  std::uint64_t graph_seed() const { return hash2(plan_.seed, 0x6EAFu); }
  std::uint64_t engine_seed() const { return hash2(plan_.seed, 0xE6u); }

  bool node_targeted(std::uint64_t layer_seed, NodeId id, double fraction) const;
  AdviceFaultKind kind_for(NodeId id) const;

  FaultPlan plan_;
  HashedEngineFaults engine_model_;
  std::vector<FaultEvent> events_;
};

}  // namespace lad::faults
