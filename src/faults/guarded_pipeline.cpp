#include "faults/guarded_pipeline.hpp"

#include <string>
#include <utility>

#include "lcl/problems.hpp"
#include "obs/telemetry.hpp"
#include "util/contracts.hpp"

namespace lad::faults {
namespace {

class GuardedOrientationPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kOrientation); }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    auto res = robust::guarded_decode_orientation(g, adv.bits, cfg.orientation, policy);
    GuardedOutcome out;
    out.output.orientation = std::move(res.orientation);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }
};

class GuardedSplittingPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kSplitting); }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    auto res = robust::guarded_decode_splitting(g, adv.bits, cfg.splitting, policy);
    GuardedOutcome out;
    out.output.edge_color = std::move(res.edge_color);
    out.output.node_color = std::move(res.node_color);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }
};

class GuardedThreeColoringPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kThreeColoring); }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    auto res = robust::guarded_decode_three_coloring(g, adv.bits, cfg.three_coloring, policy);
    GuardedOutcome out;
    out.output.node_color = std::move(res.coloring);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }
};

class GuardedDeltaColoringPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kDeltaColoring); }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    auto res = robust::guarded_decode_delta_coloring(g, adv.var, cfg.delta_coloring, policy);
    GuardedOutcome out;
    out.output.node_color = std::move(res.coloring);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }
};

class GuardedSubexpLclPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kSubexpLcl); }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    auto res = robust::guarded_decode_subexp_lcl(g, problem_, adv.bits, cfg.subexp, policy);
    GuardedOutcome out;
    out.output.labeling = std::move(res.labeling);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }

 private:
  // Must match the base pipeline's demonstration LCL so advice and decoder
  // agree on the problem.
  VertexColoringLcl problem_{3};
};

class GuardedDecompressPipeline final : public GuardedPipeline {
 public:
  const Pipeline& base() const override { return pipeline(PipelineId::kDecompress); }

  PipelineAdvice encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = AdviceCarrier::kNodeLabels;
    adv.labels = robust::guarded_compress_edge_set(
                     g, hashed_edge_membership(g, cfg.seed, cfg.decompress_density),
                     cfg.orientation)
                     .labels;
    return adv;
  }

  GuardedOutcome do_decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg,
                                const robust::RepairPolicy& policy) const override {
    CompressedEdgeSet c;
    c.labels = adv.labels;
    c.orientation_params = cfg.orientation;
    auto res = robust::guarded_decompress_edge_set(g, c, policy);
    GuardedOutcome out;
    out.output.edge_in_x = std::move(res.in_x);
    out.output.edge_known = std::move(res.edge_known);
    out.output.rounds = res.report.rounds;
    out.report = std::move(res.report);
    return out;
  }

  bool silent_corruption(const Graph& g, const GuardedOutcome& out,
                         const PipelineConfig& cfg) const override {
    // Ground truth is regenerable on any ID-preserving (sub)graph: every
    // guard-verified edge must carry the original membership bit. A
    // mismatch means the guard passed on a wrong label — silent corruption
    // by definition, whatever the report says.
    const auto truth = hashed_edge_membership(g, cfg.seed, cfg.decompress_density);
    for (int e = 0; e < g.m(); ++e) {
      if (out.output.edge_known[static_cast<std::size_t>(e)] == 0) continue;
      if (out.output.edge_in_x[static_cast<std::size_t>(e)] !=
          truth[static_cast<std::size_t>(e)]) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

// NVI wrapper — the one telemetry point for all six guarded decoders. The
// detection/repair counters are folded from the finished report, so the
// accounting can never influence the decode it describes.
GuardedOutcome GuardedPipeline::decode_guarded(const Graph& g, const PipelineAdvice& adv,
                                               const PipelineConfig& cfg,
                                               const robust::RepairPolicy& policy) const {
  LAD_TM_SPAN(span, std::string("guarded.decode/") + name(), "guarded");
  // The advice-free rung only exists for kRecompute pipelines: orientation
  // already owns a built-in canonical fallback, and decompressed membership
  // bits are information-theoretically unrecoverable (kFlagOnly).
  robust::RepairPolicy eff = policy;
  if (base().fallback_kind() != FallbackKind::kRecompute) eff.advice_free_fallback = false;
  GuardedOutcome out = do_decode_guarded(g, adv, cfg, eff);
  LAD_TM({
    auto& m = obs::core();
    const auto& r = out.report;
    m.guard_detections.add(r.detected_violations);
    m.repaired_nodes.add(static_cast<long long>(r.repaired_nodes.size()));
    m.degraded_nodes.add(static_cast<long long>(r.degraded_nodes.size()));
    m.flagged_nodes.add(static_cast<long long>(r.flagged_nodes.size()));
    m.repair_regions.add(static_cast<long long>(r.regions.size()));
    m.repair_retries.add(r.degradation.retries);
    m.repair_budget_exhausted.add(r.degradation.budget_exhausted);
    m.repair_deadline_exhausted.add(r.degradation.deadline_exhausted);
    for (const auto& region : r.regions) {
      m.repair_region_radius.observe(region.radius);
      if (region.radius > 1) m.repair_escalations.add(1);
    }
  });
  return out;
}

void corrupt_pipeline_advice(FaultInjector& inj, const Graph& g, PipelineAdvice& adv) {
  switch (adv.carrier) {
    case AdviceCarrier::kUniformBits:
      inj.corrupt_bits(g, adv.bits);
      return;
    case AdviceCarrier::kVarSchema:
      inj.corrupt_var_advice(g, adv.var);
      return;
    case AdviceCarrier::kNodeLabels:
      inj.corrupt_advice(g, adv.labels);
      return;
  }
  LAD_UNREACHABLE("unknown AdviceCarrier");
}

const std::vector<const GuardedPipeline*>& guarded_pipelines() {
  static const GuardedOrientationPipeline orientation;
  static const GuardedSplittingPipeline splitting;
  static const GuardedThreeColoringPipeline three_coloring;
  static const GuardedDeltaColoringPipeline delta_coloring;
  static const GuardedSubexpLclPipeline subexp_lcl;
  static const GuardedDecompressPipeline decompress;
  static const std::vector<const GuardedPipeline*> all = {
      &orientation, &splitting, &three_coloring, &delta_coloring, &subexp_lcl, &decompress};
  return all;
}

const GuardedPipeline& guarded_pipeline(PipelineId id) {
  for (const GuardedPipeline* p : guarded_pipelines()) {
    if (p->id() == id) return *p;
  }
  LAD_UNREACHABLE("PipelineId not in guarded registry");
}

}  // namespace lad::faults
