// Seeded fault campaigns: the experiment harness of the robustness layer.
//
// A campaign fixes a decoder, a graph family, and a FaultPlan template, and
// runs `trials` independent decodes, each under a per-trial derived fault
// seed mixing all three fault layers:
//
//   encode on the pristine graph
//     -> graph faults   (edge deletions: the advice is now stale)
//     -> advice faults  (bit flips / erasure / byzantine / truncation)
//     -> guarded decode + local repair   (src/faults/robust.hpp)
//     -> engine faults  (a distributed verification echo runs under the
//        HashedEngineFaults model; nodes that crash or miss messages
//        cannot certify and are counted as rejecting)
//     -> central ground-truth check (silent-corruption verdict)
//
// Everything is a pure function of (config, trial index): re-running a
// campaign reproduces every report byte-for-byte, which the determinism
// regression test and the CLI golden test rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/subexp_lcl.hpp"
#include "faults/fault_plan.hpp"
#include "faults/robust.hpp"
#include "graph/graph.hpp"

namespace lad {
class EngineFaultModel;  // local/engine.hpp
class ThreadPool;        // util/thread_pool.hpp
}

namespace lad::faults {

/// The campaign's decoder selector IS the pipeline registry id now — the
/// per-decoder encode/decode/digest switches this file used to carry all
/// live behind core/pipeline.hpp + faults/guarded_pipeline.hpp. The alias
/// (same enumerator names) keeps every existing DecoderKind user compiling.
using DecoderKind = ::lad::PipelineId;

const char* to_string(DecoderKind kind);
std::optional<DecoderKind> parse_decoder(std::string_view name);
std::vector<DecoderKind> all_decoders();

enum class GraphFamily { kCycle, kGrid, kTorus };

const char* to_string(GraphFamily family);
std::optional<GraphFamily> parse_family(std::string_view name);

/// The standard mixed adversary: a little of every fault layer. The plan's
/// seed field is ignored by campaigns (each trial derives its own).
FaultPlan default_mixed_plan();

struct CampaignConfig {
  DecoderKind decoder = DecoderKind::kOrientation;
  GraphFamily family = GraphFamily::kCycle;
  int n = 400;       // target node count (rounded to the family's grid)
  int trials = 100;
  std::uint64_t seed = 1;
  FaultPlan plan = default_mixed_plan();
  robust::RepairPolicy policy;
  /// §4 scale knob (kSubexpLcl only); campaigns keep x modest.
  SubexpLclParams subexp;
  /// Rounds of the engine-layer verification echo (>= 2 so that a single
  /// corrupted copy is caught by cross-round comparison).
  int echo_rounds = 3;
  /// Trials run on a ThreadPool of this many workers (1 = serial). Every
  /// trial is a pure function of (config, trial index) and reports are
  /// folded in trial order, so the summary is byte-identical at any count.
  int threads = 1;
};

struct CampaignSummary {
  DecoderKind decoder = DecoderKind::kOrientation;
  /// Family actually used (splitting substitutes torus for grid: it needs
  /// even degrees).
  GraphFamily family = GraphFamily::kCycle;
  int n = 0;
  int m = 0;
  int trials = 0;

  long long faults_injected = 0;
  int trials_degraded = 0;     // at least one detection / repair / flag
  int trials_output_valid = 0; // final output passed the independent check
  int trials_flagged = 0;      // at least one node flagged unservable
  int trials_residual = 0;     // violations outside the flagged scope
  int silent_corruptions = 0;  // MUST stay 0: the guarantee of the layer
  int max_blast_radius = 0;
  long long total_detected = 0;
  long long total_repaired_nodes = 0;
  long long total_flagged_nodes = 0;

  // Degradation aggregates (DESIGN.md §11), folded from the per-trial
  // DegradationSummary. Not part of to_string() — the chaos layer renders
  // them; the legacy aggregate rendering (and its goldens) is unchanged.
  long long total_degraded_nodes = 0;
  long long total_repair_retries = 0;
  long long total_budget_exhausted = 0;
  long long total_deadline_exhausted = 0;
  /// True iff every trial's DegradeStatus buckets sum to n — the
  /// "every non-verified node is accounted for" acceptance criterion.
  bool all_nodes_accounted = true;

  /// Per-trial reports, in trial order (trial i used fault seed
  /// hash2(config.seed, i)).
  std::vector<robust::RobustnessReport> reports;

  /// Deterministic aggregate rendering (reports excluded).
  std::string to_string() const;
};

/// Runs the campaign described by `config`. Deterministic.
CampaignSummary run_fault_campaign(const CampaignConfig& config);

/// The family instance a campaign uses for (decoder, family, n) — exposed
/// so `lad trace` exercises the exact graphs the campaigns exercise.
/// `family` is passed by reference because splitting substitutes torus for
/// grid (it needs even degrees).
Graph build_campaign_graph(DecoderKind decoder, GraphFamily& family, int n);

/// Outcome of a distributed verification echo (digest broadcast +
/// cross-round comparison; see campaign.cpp's EchoVerify).
struct EchoResult {
  /// Nodes that could not certify their neighbors' digests, ascending.
  std::vector<int> unverified_nodes;
  long long messages = 0;
  long long bytes = 0;
  int rounds = 0;
  long long dropped = 0;
  long long corrupted = 0;
  long long duplicated = 0;
  long long delayed = 0;
  int crashed = 0;
  int recovered = 0;
};

/// Runs the verification echo on g: every node broadcasts its digest for
/// `echo_rounds` rounds and certifies only if every neighbor copy arrived
/// intact. `faults` optionally subjects the echo to an engine fault model.
/// This is the campaign's engine-fault stage and `lad trace`'s source of
/// genuine message/bit traffic for the decode-side metrics. `pool`
/// optionally fans the echo's compute phase over a thread pool (byte-
/// identical results per the §8 contract; `lad profile` uses this to
/// exercise real multi-threaded engine traffic).
EchoResult run_verification_echo(const Graph& g, const std::vector<std::string>& digests,
                                 int echo_rounds, const EngineFaultModel* faults = nullptr,
                                 ThreadPool* pool = nullptr);

}  // namespace lad::faults
