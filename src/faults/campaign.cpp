#include "faults/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>

#include "faults/guarded_pipeline.hpp"
#include "graph/generators.hpp"
#include "local/engine.hpp"
#include "obs/telemetry.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace lad::faults {
namespace {

constexpr std::uint64_t kTagTrial = 0x7a1;
constexpr std::uint64_t kGraphShapeSeed = 7;

void merge_sorted_unique(std::vector<int>& into, const std::vector<int>& add) {
  into.insert(into.end(), add.begin(), add.end());
  std::sort(into.begin(), into.end());
  into.erase(std::unique(into.begin(), into.end()), into.end());
}

struct GridDims {
  int w = 0;
  int h = 0;
};

// Even dimensions >= 4 (keeps grid/torus bipartite, torus 4-regular).
GridDims grid_dims(int n) {
  GridDims d;
  d.w = static_cast<int>(std::sqrt(static_cast<double>(std::max(16, n))));
  if (d.w % 2 != 0) --d.w;
  d.w = std::max(d.w, 4);
  d.h = (std::max(16, n) + d.w - 1) / d.w;
  if (d.h % 2 != 0) ++d.h;
  d.h = std::max(d.h, 4);
  return d;
}

}  // namespace

Graph build_campaign_graph(DecoderKind decoder, GraphFamily& family, int n) {
  if (decoder == DecoderKind::kSplitting && family == GraphFamily::kGrid) {
    family = GraphFamily::kTorus;  // splitting needs even degrees
  }
  switch (family) {
    case GraphFamily::kCycle: {
      int len = std::max(8, n);
      if (len % 2 != 0) ++len;  // even: bipartite, feasible for splitting
      return make_cycle(len, IdMode::kRandomDense, kGraphShapeSeed);
    }
    case GraphFamily::kGrid: {
      const auto d = grid_dims(n);
      return make_grid(d.w, d.h, IdMode::kRandomDense, kGraphShapeSeed);
    }
    case GraphFamily::kTorus: {
      const auto d = grid_dims(n);
      return make_torus(d.w, d.h, IdMode::kRandomDense, kGraphShapeSeed);
    }
  }
  LAD_UNREACHABLE("unknown GraphFamily");
}

namespace {

// Distributed verification echo: every node broadcasts its output digest
// for `rounds` rounds; a receiver that misses a copy (drop / crashed
// neighbor) or sees differing copies (corruption) cannot certify and
// outputs "unverified". Crashed nodes never halt at all.
class EchoVerify final : public SyncAlgorithm {
 public:
  EchoVerify(std::vector<std::string> digests, int rounds)
      : digests_(std::move(digests)), rounds_(rounds) {}

  void init(const Graph& g) override {
    first_.assign(static_cast<std::size_t>(g.n()), {});
    copies_.assign(static_cast<std::size_t>(g.n()), {});
    ok_.assign(static_cast<std::size_t>(g.n()), 1);
    for (int v = 0; v < g.n(); ++v) {
      first_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), "");
      copies_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), 0);
    }
  }

  void round(NodeCtx& ctx) override {
    const int v = ctx.node();
    const int r = ctx.round_number();
    if (r <= rounds_) ctx.broadcast(digests_[static_cast<std::size_t>(v)]);
    if (r >= 2) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (!ctx.has_message(p)) continue;
        const std::string& m = ctx.received(p);
        auto& cnt = copies_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        auto& ref = first_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        if (cnt == 0) {
          ref = m;
        } else if (m != ref) {
          ok_[static_cast<std::size_t>(v)] = 0;  // corrupted copy
        }
        ++cnt;
      }
    }
    if (r == rounds_ + 1) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (copies_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] != rounds_) {
          ok_[static_cast<std::size_t>(v)] = 0;  // missing copy
        }
      }
      ctx.halt(ok_[static_cast<std::size_t>(v)] != 0 ? "ok" : "unverified");
    }
  }

  void on_recover(const Graph& g, int v) override {
    // Blank state for a crash-recovery rejoin: the node restarts the echo
    // protocol. The copies it missed while down keep it from certifying
    // (counted as a detection), exactly like a crash-stop victim.
    first_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), "");
    copies_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), 0);
    ok_[static_cast<std::size_t>(v)] = 1;
  }

 private:
  std::vector<std::string> digests_;
  int rounds_;
  std::vector<std::vector<std::string>> first_;
  std::vector<std::vector<int>> copies_;
  std::vector<char> ok_;
};

}  // namespace

EchoResult run_verification_echo(const Graph& g, const std::vector<std::string>& digests,
                                 int echo_rounds, const EngineFaultModel* faults,
                                 ThreadPool* pool) {
  LAD_CHECK(static_cast<int>(digests.size()) == g.n());
  Engine eng(g);
  if (faults != nullptr) eng.set_fault_model(faults);
  if (pool != nullptr) eng.set_thread_pool(pool);
  EchoVerify echo(digests, echo_rounds);
  const auto run = eng.run(echo, echo_rounds + 2);
  EchoResult res;
  for (int v = 0; v < g.n(); ++v) {
    if (run.outputs[static_cast<std::size_t>(v)] != "ok") res.unverified_nodes.push_back(v);
  }
  res.messages = run.messages;
  res.bytes = run.bytes;
  res.rounds = run.rounds;
  res.dropped = eng.fault_stats().dropped;
  res.corrupted = eng.fault_stats().corrupted;
  res.duplicated = eng.fault_stats().duplicated;
  res.delayed = eng.fault_stats().delayed;
  res.crashed = eng.fault_stats().crashed_nodes;
  res.recovered = eng.fault_stats().recovered_nodes;
  return res;
}

const char* to_string(DecoderKind kind) { return pipeline(kind).name(); }

std::optional<DecoderKind> parse_decoder(std::string_view name) {
  if (const Pipeline* p = find_pipeline(name)) return p->id();
  return std::nullopt;
}

std::vector<DecoderKind> all_decoders() {
  std::vector<DecoderKind> kinds;
  kinds.reserve(pipelines().size());
  for (const Pipeline* p : pipelines()) kinds.push_back(p->id());
  return kinds;
}

const char* to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kCycle:
      return "cycle";
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kTorus:
      return "torus";
  }
  LAD_UNREACHABLE("unknown GraphFamily");
}

std::optional<GraphFamily> parse_family(std::string_view name) {
  for (const GraphFamily f : {GraphFamily::kCycle, GraphFamily::kGrid, GraphFamily::kTorus}) {
    if (name == to_string(f)) return f;
  }
  return std::nullopt;
}

FaultPlan default_mixed_plan() {
  FaultPlan plan;
  plan.advice.node_fraction = 0.02;
  plan.advice.kinds = {AdviceFaultKind::kBitFlip, AdviceFaultKind::kErasure,
                       AdviceFaultKind::kByzantine, AdviceFaultKind::kTruncate};
  plan.engine.message_drop_prob = 0.01;
  plan.engine.message_corrupt_prob = 0.01;
  plan.engine.crash_fraction = 0.005;
  plan.graph.edge_delete_fraction = 0.004;
  return plan;
}

std::string CampaignSummary::to_string() const {
  std::ostringstream os;
  os << "CampaignSummary{decoder=" << lad::faults::to_string(decoder)
     << " family=" << lad::faults::to_string(family) << " n=" << n << " m=" << m
     << " trials=" << trials << "\n"
     << "  faults_injected=" << faults_injected << " degraded=" << trials_degraded
     << " output_valid=" << trials_output_valid << " flagged=" << trials_flagged
     << " residual=" << trials_residual << "\n"
     << "  silent_corruptions=" << silent_corruptions << " max_blast_radius=" << max_blast_radius
     << " detected=" << total_detected << " repaired_nodes=" << total_repaired_nodes
     << " flagged_nodes=" << total_flagged_nodes << "}";
  return os.str();
}

CampaignSummary run_fault_campaign(const CampaignConfig& config) {
  CampaignSummary sum;
  GraphFamily family = config.family;
  const Graph g0 = build_campaign_graph(config.decoder, family, config.n);
  sum.decoder = config.decoder;
  sum.family = family;
  sum.n = g0.n();
  sum.m = g0.m();
  sum.trials = config.trials;

  const GuardedPipeline& gp = guarded_pipeline(config.decoder);
  PipelineConfig pcfg;
  pcfg.seed = config.seed;
  pcfg.subexp = config.subexp;
  // Δ = 2 instances are cramped: recoloring a parity defect on a cycle can
  // legitimately need a long repair reach, so give the §6 machinery room.
  pcfg.delta_coloring.max_repair_radius = 20;

  // One-time encode on the pristine graph (the prover is centralized and
  // fault-free; the adversary acts between encode and decode).
  const PipelineAdvice base_adv = gp.encode(g0, pcfg);

  // One full trial: a pure function of (config, t) over shared-const state,
  // which is what makes the parallel path below byte-equivalent to serial.
  const auto run_trial = [&](int t) -> robust::RobustnessReport {
    LAD_TM_SPAN(trial_span, "campaign.trial", "campaign");
    FaultPlan plan = config.plan;
    plan.seed = hash3(config.seed, kTagTrial, static_cast<std::uint64_t>(t));
    FaultInjector inj(plan);

    std::optional<Graph> faulted;
    if (plan.any_graph_faults()) faulted = inj.apply_graph_faults(g0);
    const Graph& g = faulted.has_value() ? *faulted : g0;

    PipelineAdvice adv = base_adv;
    if (plan.any_advice_faults()) corrupt_pipeline_advice(inj, g, adv);
    GuardedOutcome res = gp.decode_guarded(g, adv, pcfg, config.policy);
    const bool silent = gp.silent_corruption(g, res, pcfg);
    const auto digests = gp.base().node_digests(g, res.output);
    robust::RobustnessReport rep = std::move(res.report);

    // Fault accounting from the injector.
    for (const auto& ev : inj.events()) {
      if (ev.layer == FaultLayer::kAdvice) ++rep.advice_faults;
      if (ev.layer == FaultLayer::kGraph) ++rep.graph_faults;
    }
    rep.silent_corruption = silent;

    // Engine layer: distributed verification echo under the fault model.
    // Nodes that crash or cannot certify their digest are detections (the
    // output itself is unchanged, so no corruption can enter here).
    if (plan.any_engine_faults()) {
      const EchoResult echo =
          run_verification_echo(g, digests, config.echo_rounds, &inj.engine_faults());
      rep.engine_dropped = echo.dropped;
      rep.engine_corrupted = echo.corrupted;
      rep.engine_duplicated = echo.duplicated;
      rep.engine_delayed = echo.delayed;
      rep.engine_crashed = echo.crashed;
      rep.engine_recovered = echo.recovered;
      rep.detected_violations += static_cast<long long>(echo.unverified_nodes.size());
      merge_sorted_unique(rep.rejecting_nodes, echo.unverified_nodes);
      rep.rounds += echo.rounds;
    }

    // Blast radius: how far from a fault site did repair / flagging reach.
    std::vector<int> touched = rep.repaired_nodes;
    merge_sorted_unique(touched, rep.degraded_nodes);
    merge_sorted_unique(touched, rep.flagged_nodes);
    rep.blast_radius = robust::blast_radius(g, inj.fault_site_nodes(g), touched);

    // Every node lands in exactly one DegradeStatus bucket (§11); the echo
    // rejections above are already merged, so this is the final word.
    rep.finalize_degradation(g.n());
    return rep;
  };

  // Trials land in per-index slots and are folded in trial order, so the
  // aggregates (and reports) are byte-identical at any thread count.
  std::vector<robust::RobustnessReport> reports(static_cast<std::size_t>(config.trials));
  if (config.threads > 1 && config.trials > 1) {
    ThreadPool pool(config.threads);
    pool.for_each(config.trials,
                  [&](int t) { reports[static_cast<std::size_t>(t)] = run_trial(t); });
  } else {
    for (int t = 0; t < config.trials; ++t) {
      reports[static_cast<std::size_t>(t)] = run_trial(t);
    }
  }

  for (auto& rep : reports) {
    sum.faults_injected += rep.faults_injected();
    if (rep.degraded()) ++sum.trials_degraded;
    if (rep.output_valid) ++sum.trials_output_valid;
    if (!rep.flagged_nodes.empty()) ++sum.trials_flagged;
    if (rep.residual_violations > 0) ++sum.trials_residual;
    if (rep.silent_corruption) ++sum.silent_corruptions;
    sum.max_blast_radius = std::max(sum.max_blast_radius, rep.blast_radius);
    sum.total_detected += rep.detected_violations;
    sum.total_repaired_nodes += static_cast<long long>(rep.repaired_nodes.size());
    sum.total_flagged_nodes += static_cast<long long>(rep.flagged_nodes.size());
    sum.total_degraded_nodes += static_cast<long long>(rep.degraded_nodes.size());
    sum.total_repair_retries += rep.degradation.retries;
    sum.total_budget_exhausted += rep.degradation.budget_exhausted;
    sum.total_deadline_exhausted += rep.degradation.deadline_exhausted;
    if (!rep.degradation.accounted(sum.n)) sum.all_nodes_accounted = false;
    sum.reports.push_back(std::move(rep));
  }
  // Campaign totals, folded once from the trial-order aggregate — identical
  // at any thread count.
  LAD_TM({
    auto& m = obs::core();
    m.campaign_trials.add(sum.trials);
    m.campaign_faults_injected.add(sum.faults_injected);
  });
  return sum;
}

}  // namespace lad::faults
