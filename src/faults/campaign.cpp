#include "faults/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "core/decompress.hpp"
#include "core/delta_coloring.hpp"
#include "core/orientation.hpp"
#include "core/splitting.hpp"
#include "core/three_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "lcl/problems.hpp"
#include "local/engine.hpp"
#include "util/contracts.hpp"

namespace lad::faults {
namespace {

constexpr std::uint64_t kTagTrial = 0x7a1;
constexpr std::uint64_t kTagMembership = 0xed6e;
constexpr std::uint64_t kGraphShapeSeed = 7;

void merge_sorted_unique(std::vector<int>& into, const std::vector<int>& add) {
  into.insert(into.end(), add.begin(), add.end());
  std::sort(into.begin(), into.end());
  into.erase(std::unique(into.begin(), into.end()), into.end());
}

struct GridDims {
  int w = 0;
  int h = 0;
};

// Even dimensions >= 4 (keeps grid/torus bipartite, torus 4-regular).
GridDims grid_dims(int n) {
  GridDims d;
  d.w = static_cast<int>(std::sqrt(static_cast<double>(std::max(16, n))));
  if (d.w % 2 != 0) --d.w;
  d.w = std::max(d.w, 4);
  d.h = (std::max(16, n) + d.w - 1) / d.w;
  if (d.h % 2 != 0) ++d.h;
  d.h = std::max(d.h, 4);
  return d;
}

Graph build_graph(DecoderKind decoder, GraphFamily& family, int n) {
  if (decoder == DecoderKind::kSplitting && family == GraphFamily::kGrid) {
    family = GraphFamily::kTorus;  // splitting needs even degrees
  }
  switch (family) {
    case GraphFamily::kCycle: {
      int len = std::max(8, n);
      if (len % 2 != 0) ++len;  // even: bipartite, feasible for splitting
      return make_cycle(len, IdMode::kRandomDense, kGraphShapeSeed);
    }
    case GraphFamily::kGrid: {
      const auto d = grid_dims(n);
      return make_grid(d.w, d.h, IdMode::kRandomDense, kGraphShapeSeed);
    }
    case GraphFamily::kTorus: {
      const auto d = grid_dims(n);
      return make_torus(d.w, d.h, IdMode::kRandomDense, kGraphShapeSeed);
    }
  }
  LAD_UNREACHABLE("unknown GraphFamily");
}

// Proper 2-coloring by BFS parity; all campaign families are bipartite.
std::vector<int> parity_witness(const Graph& g) {
  std::vector<int> col(static_cast<std::size_t>(g.n()), 0);
  for (const auto& members : connected_components(g).members) {
    const int root = *std::min_element(members.begin(), members.end());
    const auto dist = bfs_distances(g, root);
    for (const int v : members) {
      col[static_cast<std::size_t>(v)] = 1 + dist[static_cast<std::size_t>(v)] % 2;
    }
  }
  LAD_CHECK_MSG(is_proper_coloring(g, col, 2), "campaign family is not bipartite");
  return col;
}

// Distributed verification echo: every node broadcasts its output digest
// for `rounds` rounds; a receiver that misses a copy (drop / crashed
// neighbor) or sees differing copies (corruption) cannot certify and
// outputs "unverified". Crashed nodes never halt at all.
class EchoVerify final : public SyncAlgorithm {
 public:
  EchoVerify(std::vector<std::string> digests, int rounds)
      : digests_(std::move(digests)), rounds_(rounds) {}

  void init(const Graph& g) override {
    first_.assign(static_cast<std::size_t>(g.n()), {});
    copies_.assign(static_cast<std::size_t>(g.n()), {});
    ok_.assign(static_cast<std::size_t>(g.n()), 1);
    for (int v = 0; v < g.n(); ++v) {
      first_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), "");
      copies_[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(g.degree(v)), 0);
    }
  }

  void round(NodeCtx& ctx) override {
    const int v = ctx.node();
    const int r = ctx.round_number();
    if (r <= rounds_) ctx.broadcast(digests_[static_cast<std::size_t>(v)]);
    if (r >= 2) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (!ctx.has_message(p)) continue;
        const std::string& m = ctx.received(p);
        auto& cnt = copies_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        auto& ref = first_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        if (cnt == 0) {
          ref = m;
        } else if (m != ref) {
          ok_[static_cast<std::size_t>(v)] = 0;  // corrupted copy
        }
        ++cnt;
      }
    }
    if (r == rounds_ + 1) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (copies_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] != rounds_) {
          ok_[static_cast<std::size_t>(v)] = 0;  // missing copy
        }
      }
      ctx.halt(ok_[static_cast<std::size_t>(v)] != 0 ? "ok" : "unverified");
    }
  }

 private:
  std::vector<std::string> digests_;
  int rounds_;
  std::vector<std::vector<std::string>> first_;
  std::vector<std::vector<int>> copies_;
  std::vector<char> ok_;
};

std::string edge_digest(const Graph& g, int v, const std::vector<int>& edge_labels) {
  std::string s;
  for (const int e : g.incident_edges(v)) {
    s += std::to_string(edge_labels[static_cast<std::size_t>(e)]);
    s += ',';
  }
  return s;
}

}  // namespace

const char* to_string(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::kOrientation:
      return "orientation";
    case DecoderKind::kSplitting:
      return "splitting";
    case DecoderKind::kThreeColoring:
      return "three_coloring";
    case DecoderKind::kDeltaColoring:
      return "delta_coloring";
    case DecoderKind::kSubexpLcl:
      return "subexp_lcl";
    case DecoderKind::kDecompress:
      return "decompress";
  }
  LAD_UNREACHABLE("unknown DecoderKind");
}

std::optional<DecoderKind> parse_decoder(std::string_view name) {
  for (const DecoderKind kind : all_decoders()) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<DecoderKind> all_decoders() {
  return {DecoderKind::kOrientation,   DecoderKind::kSplitting,
          DecoderKind::kThreeColoring, DecoderKind::kDeltaColoring,
          DecoderKind::kSubexpLcl,     DecoderKind::kDecompress};
}

const char* to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kCycle:
      return "cycle";
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kTorus:
      return "torus";
  }
  LAD_UNREACHABLE("unknown GraphFamily");
}

std::optional<GraphFamily> parse_family(std::string_view name) {
  for (const GraphFamily f : {GraphFamily::kCycle, GraphFamily::kGrid, GraphFamily::kTorus}) {
    if (name == to_string(f)) return f;
  }
  return std::nullopt;
}

FaultPlan default_mixed_plan() {
  FaultPlan plan;
  plan.advice.node_fraction = 0.02;
  plan.advice.kinds = {AdviceFaultKind::kBitFlip, AdviceFaultKind::kErasure,
                       AdviceFaultKind::kByzantine, AdviceFaultKind::kTruncate};
  plan.engine.message_drop_prob = 0.01;
  plan.engine.message_corrupt_prob = 0.01;
  plan.engine.crash_fraction = 0.005;
  plan.graph.edge_delete_fraction = 0.004;
  return plan;
}

std::string CampaignSummary::to_string() const {
  std::ostringstream os;
  os << "CampaignSummary{decoder=" << lad::faults::to_string(decoder)
     << " family=" << lad::faults::to_string(family) << " n=" << n << " m=" << m
     << " trials=" << trials << "\n"
     << "  faults_injected=" << faults_injected << " degraded=" << trials_degraded
     << " output_valid=" << trials_output_valid << " flagged=" << trials_flagged
     << " residual=" << trials_residual << "\n"
     << "  silent_corruptions=" << silent_corruptions << " max_blast_radius=" << max_blast_radius
     << " detected=" << total_detected << " repaired_nodes=" << total_repaired_nodes
     << " flagged_nodes=" << total_flagged_nodes << "}";
  return os.str();
}

CampaignSummary run_fault_campaign(const CampaignConfig& config) {
  CampaignSummary sum;
  GraphFamily family = config.family;
  const Graph g0 = build_graph(config.decoder, family, config.n);
  sum.decoder = config.decoder;
  sum.family = family;
  sum.n = g0.n();
  sum.m = g0.m();
  sum.trials = config.trials;

  // One-time encode on the pristine graph (the prover is centralized and
  // fault-free; the adversary acts between encode and decode).
  const OrientationParams oparams;
  const SplittingParams sparams;
  const ThreeColoringParams tparams;
  DeltaColoringParams dparams;
  // Δ = 2 instances are cramped: recoloring a parity defect on a cycle can
  // legitimately need a long repair reach, so give the §6 machinery room.
  dparams.max_repair_radius = 20;
  const VertexColoringLcl three(3);
  std::vector<char> base_bits;
  VarAdvice base_var;
  CompressedEdgeSet base_c;
  std::vector<char> truth_in_x;
  switch (config.decoder) {
    case DecoderKind::kOrientation:
      base_bits = encode_orientation_advice(g0, oparams).bits;
      break;
    case DecoderKind::kSplitting:
      base_bits = encode_splitting_advice(g0, sparams).bits;
      break;
    case DecoderKind::kThreeColoring:
      base_bits = encode_three_coloring_advice(g0, parity_witness(g0), tparams).bits;
      break;
    case DecoderKind::kDeltaColoring:
      base_var = encode_delta_coloring_advice(g0, parity_witness(g0), dparams).advice;
      break;
    case DecoderKind::kSubexpLcl:
      base_bits = encode_subexp_lcl_advice(g0, three, config.subexp).bits;
      break;
    case DecoderKind::kDecompress: {
      truth_in_x.assign(static_cast<std::size_t>(g0.m()), 0);
      for (int e = 0; e < g0.m(); ++e) {
        const auto a = static_cast<std::uint64_t>(g0.id(g0.edge_u(e)));
        const auto b = static_cast<std::uint64_t>(g0.id(g0.edge_v(e)));
        truth_in_x[static_cast<std::size_t>(e)] =
            static_cast<char>(hash4(config.seed, kTagMembership, std::min(a, b),
                                    std::max(a, b)) &
                              1u);
      }
      base_c = robust::guarded_compress_edge_set(g0, truth_in_x, oparams);
      break;
    }
  }

  for (int t = 0; t < config.trials; ++t) {
    FaultPlan plan = config.plan;
    plan.seed = hash3(config.seed, kTagTrial, static_cast<std::uint64_t>(t));
    FaultInjector inj(plan);

    std::optional<Graph> faulted;
    if (plan.any_graph_faults()) faulted = inj.apply_graph_faults(g0);
    const Graph& g = faulted.has_value() ? *faulted : g0;

    robust::RobustnessReport rep;
    std::vector<std::string> digests(static_cast<std::size_t>(g.n()));
    bool silent = false;

    switch (config.decoder) {
      case DecoderKind::kOrientation: {
        auto bits = base_bits;
        if (plan.any_advice_faults()) inj.corrupt_bits(g, bits);
        auto res = robust::guarded_decode_orientation(g, bits, oparams, config.policy);
        rep = std::move(res.report);
        for (int v = 0; v < g.n(); ++v) {
          std::string s;
          for (const int e : g.incident_edges(v)) {
            s += res.orientation[static_cast<std::size_t>(e)] == EdgeDir::kForward ? 'f' : 'b';
          }
          digests[static_cast<std::size_t>(v)] = std::move(s);
        }
        silent = !rep.output_valid && !rep.degraded();
        break;
      }
      case DecoderKind::kSplitting: {
        auto bits = base_bits;
        if (plan.any_advice_faults()) inj.corrupt_bits(g, bits);
        auto res = robust::guarded_decode_splitting(g, bits, sparams, config.policy);
        rep = std::move(res.report);
        for (int v = 0; v < g.n(); ++v) {
          digests[static_cast<std::size_t>(v)] = edge_digest(g, v, res.edge_color);
        }
        silent = !rep.output_valid && !rep.degraded();
        break;
      }
      case DecoderKind::kThreeColoring: {
        auto bits = base_bits;
        if (plan.any_advice_faults()) inj.corrupt_bits(g, bits);
        auto res = robust::guarded_decode_three_coloring(g, bits, tparams, config.policy);
        rep = std::move(res.report);
        for (int v = 0; v < g.n(); ++v) {
          digests[static_cast<std::size_t>(v)] =
              std::to_string(res.coloring[static_cast<std::size_t>(v)]);
        }
        silent = !rep.output_valid && !rep.degraded();
        break;
      }
      case DecoderKind::kDeltaColoring: {
        auto advice = base_var;
        if (plan.any_advice_faults()) inj.corrupt_var_advice(g, advice);
        auto res = robust::guarded_decode_delta_coloring(g, advice, dparams, config.policy);
        rep = std::move(res.report);
        for (int v = 0; v < g.n(); ++v) {
          digests[static_cast<std::size_t>(v)] =
              std::to_string(res.coloring[static_cast<std::size_t>(v)]);
        }
        silent = !rep.output_valid && !rep.degraded();
        break;
      }
      case DecoderKind::kSubexpLcl: {
        auto bits = base_bits;
        if (plan.any_advice_faults()) inj.corrupt_bits(g, bits);
        auto res = robust::guarded_decode_subexp_lcl(g, three, bits, config.subexp,
                                                     config.policy);
        rep = std::move(res.report);
        for (int v = 0; v < g.n(); ++v) {
          digests[static_cast<std::size_t>(v)] =
              std::to_string(res.labeling.node_labels[static_cast<std::size_t>(v)]);
        }
        silent = !rep.output_valid && !rep.degraded();
        break;
      }
      case DecoderKind::kDecompress: {
        auto c = base_c;
        if (plan.any_advice_faults()) inj.corrupt_advice(g, c.labels);
        auto res = robust::guarded_decompress_edge_set(g, c, config.policy);
        rep = std::move(res.report);
        // Ground truth: every guard-verified edge must carry the original
        // membership bit. A mismatch means the guard passed on a wrong
        // label — silent corruption by definition, detected or not.
        for (int e = 0; e < g.m(); ++e) {
          if (res.edge_known[static_cast<std::size_t>(e)] == 0) continue;
          const int e0 = g0.edge_between(g.edge_u(e), g.edge_v(e));
          LAD_CHECK(e0 >= 0);
          if (res.in_x[static_cast<std::size_t>(e)] != truth_in_x[static_cast<std::size_t>(e0)]) {
            silent = true;
          }
        }
        for (int v = 0; v < g.n(); ++v) {
          std::string s;
          for (const int e : g.incident_edges(v)) {
            s += res.edge_known[static_cast<std::size_t>(e)] != 0
                     ? (res.in_x[static_cast<std::size_t>(e)] != 0 ? '1' : '0')
                     : '?';
          }
          digests[static_cast<std::size_t>(v)] = std::move(s);
        }
        break;
      }
    }

    // Fault accounting from the injector.
    for (const auto& ev : inj.events()) {
      if (ev.layer == FaultLayer::kAdvice) ++rep.advice_faults;
      if (ev.layer == FaultLayer::kGraph) ++rep.graph_faults;
    }
    rep.silent_corruption = silent;

    // Engine layer: distributed verification echo under the fault model.
    // Nodes that crash or cannot certify their digest are detections (the
    // output itself is unchanged, so no corruption can enter here).
    if (plan.any_engine_faults()) {
      Engine eng(g);
      eng.set_fault_model(&inj.engine_faults());
      EchoVerify echo(digests, config.echo_rounds);
      const auto run = eng.run(echo, config.echo_rounds + 2);
      rep.engine_dropped = eng.fault_stats().dropped;
      rep.engine_corrupted = eng.fault_stats().corrupted;
      rep.engine_crashed = eng.fault_stats().crashed_nodes;
      std::vector<int> unverified;
      for (int v = 0; v < g.n(); ++v) {
        if (run.outputs[static_cast<std::size_t>(v)] != "ok") unverified.push_back(v);
      }
      rep.detected_violations += static_cast<long long>(unverified.size());
      merge_sorted_unique(rep.rejecting_nodes, unverified);
      rep.rounds += run.rounds;
    }

    // Blast radius: how far from a fault site did repair / flagging reach.
    std::vector<int> touched = rep.repaired_nodes;
    merge_sorted_unique(touched, rep.flagged_nodes);
    rep.blast_radius = robust::blast_radius(g, inj.fault_site_nodes(g), touched);

    sum.faults_injected += rep.faults_injected();
    if (rep.degraded()) ++sum.trials_degraded;
    if (rep.output_valid) ++sum.trials_output_valid;
    if (!rep.flagged_nodes.empty()) ++sum.trials_flagged;
    if (rep.residual_violations > 0) ++sum.trials_residual;
    if (rep.silent_corruption) ++sum.silent_corruptions;
    sum.max_blast_radius = std::max(sum.max_blast_radius, rep.blast_radius);
    sum.total_detected += rep.detected_violations;
    sum.total_repaired_nodes += static_cast<long long>(rep.repaired_nodes.size());
    sum.total_flagged_nodes += static_cast<long long>(rep.flagged_nodes.size());
    sum.reports.push_back(std::move(rep));
  }
  return sum;
}

}  // namespace lad::faults
