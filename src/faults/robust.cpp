#include "faults/robust.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <sstream>

#include "advice/trailcode.hpp"
#include "faults/fault_plan.hpp"
#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/euler.hpp"
#include "lcl/problems.hpp"
#include "lcl/solver.hpp"
#include "util/contracts.hpp"

namespace lad::robust {
namespace {

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// --- trail helpers (mirroring the §5 decoders) -----------------------------

int num_trail_positions(const Trail& t) { return static_cast<int>(t.nodes.size()); }

int node_on_trail(const Trail& t, int pos) {
  const int sz = static_cast<int>(t.nodes.size());
  return t.nodes[static_cast<std::size_t>(t.closed ? ((pos % sz) + sz) % sz : pos)];
}

void orient_trail(const Graph& g, const Trail& t, int direction, Orientation& o) {
  for (int i = 0; i < t.length(); ++i) {
    const int a = node_on_trail(t, i);
    const int b = node_on_trail(t, i + 1);
    const int e = t.edges[static_cast<std::size_t>(i)];
    const int from = direction > 0 ? a : b;
    o[static_cast<std::size_t>(e)] =
        g.edge_u(e) == from ? EdgeDir::kForward : EdgeDir::kBackward;
  }
}

// Consensus decode of one long trail: markers are sampled along the trail
// and vote on the direction (and on the base-color payload bit when
// present). Positions whose own nearest marker is missing or out-voted are
// the *repaired* positions — in the LOCAL model these are exactly the nodes
// whose ball was hit, so their count bounds the blast radius.
struct TrailRecovery {
  int direction = 0;       // resolved direction (+1 / -1)
  int base_bit = -1;       // majority payload bit; -1 when no payload seen
  int anchor_start = -1;   // marker_start of a consensus marker (parity anchor)
  bool fallback = false;   // no marker decoded anywhere -> canonical direction
  bool disagreement = false;
  std::vector<int> bad_positions;
};

TrailRecovery recover_trail(const Graph& g, const Trail& t, const std::vector<char>& bits,
                            int walk_limit, int samples) {
  TrailRecovery rec;
  const int positions = num_trail_positions(t);
  const int step = std::max(1, positions / std::max(1, samples));

  int votes_fwd = 0;
  int votes_bwd = 0;
  int payload_one = 0;
  int payload_zero = 0;
  for (int pos = 0; pos < positions; pos += step) {
    const auto d = decode_trail_mark(g, t, pos, bits, walk_limit);
    if (!d.has_value()) continue;
    (d->direction > 0 ? votes_fwd : votes_bwd) += 1;
    if (!d->payload.empty()) (d->payload.bit(0) ? payload_one : payload_zero) += 1;
  }

  if (votes_fwd == 0 && votes_bwd == 0) {
    rec.fallback = true;
    rec.direction = canonical_trail_direction(g, t) ? +1 : -1;
    for (int pos = 0; pos < positions; ++pos) rec.bad_positions.push_back(pos);
    return rec;
  }
  rec.disagreement = votes_fwd > 0 && votes_bwd > 0;
  if (votes_fwd == votes_bwd) {
    rec.direction = canonical_trail_direction(g, t) ? +1 : -1;  // deterministic tie-break
  } else {
    rec.direction = votes_fwd > votes_bwd ? +1 : -1;
  }
  if (payload_one + payload_zero > 0) rec.base_bit = payload_one > payload_zero ? 1 : 0;

  // Per-position audit against the consensus.
  for (int pos = 0; pos < positions; ++pos) {
    const auto d = decode_trail_mark(g, t, pos, bits, walk_limit);
    const bool agrees = d.has_value() && d->direction == rec.direction &&
                        (rec.base_bit < 0 || d->payload.empty() ||
                         (d->payload.bit(0) ? 1 : 0) == rec.base_bit);
    if (!agrees) {
      rec.bad_positions.push_back(pos);
      continue;
    }
    if (rec.anchor_start < 0) rec.anchor_start = d->marker_start;
  }
  return rec;
}

// Normalizes an advice bit vector to length n, counting a wrong size as one
// detected violation (there is no per-node containment for it).
std::vector<char> normalize_bits(const Graph& g, const std::vector<char>& bits,
                                 RobustnessReport& report) {
  if (static_cast<int>(bits.size()) == g.n()) return bits;
  ++report.detected_violations;
  std::vector<char> b = bits;
  b.resize(static_cast<std::size_t>(g.n()), 0);
  return b;
}

// --- generic local verification --------------------------------------------

// Nodes whose radius-r constraint region is fully labeled but invalid, or
// touches an unassigned/out-of-range label (conservative: such nodes cannot
// certify their constraint, so they reject).
std::vector<int> lcl_rejecting_nodes(const Graph& g, const LclProblem& p, const Labeling& lab) {
  std::vector<int> rejecting;
  for (int v = 0; v < g.n(); ++v) {
    bool complete = true;
    for (const int u : ball_nodes(g, v, p.radius())) {
      if (p.num_node_labels() > 0) {
        const int l = lab.node_labels[static_cast<std::size_t>(u)];
        if (l < 1 || l > p.num_node_labels()) complete = false;
      }
      if (p.num_edge_labels() > 0) {
        for (const int e : g.incident_edges(u)) {
          const int l = lab.edge_labels[static_cast<std::size_t>(e)];
          if (l < 1 || l > p.num_edge_labels()) complete = false;
        }
      }
      if (!complete) break;
    }
    if (!complete || !p.valid_at(g, lab, v)) rejecting.push_back(v);
  }
  return rejecting;
}

// Scope covered by a flagged node: lcl_rejecting_nodes treats an edge as
// part of v's region when either endpoint is within p.radius() of v, so a
// cleared edge reaches one hop beyond the node-ball radius.
int flag_scope_radius(const LclProblem& p) {
  return p.radius() + (p.num_edge_labels() > 0 ? 1 : 0);
}

// Groups seed nodes whose pairwise distance is <= join into repair clusters.
std::vector<std::vector<int>> group_by_distance(const Graph& g, std::vector<int> seeds,
                                                int join) {
  sort_unique(seeds);
  const int k = static_cast<int>(seeds.size());
  std::vector<int> seed_ix(static_cast<std::size_t>(g.n()), -1);
  for (int i = 0; i < k; ++i) seed_ix[static_cast<std::size_t>(seeds[i])] = i;
  std::vector<int> parent(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] = parent[static_cast<std::size_t>(parent[a])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  };
  for (int i = 0; i < k; ++i) {
    for (const int u : ball_nodes(g, seeds[static_cast<std::size_t>(i)], join)) {
      const int j = seed_ix[static_cast<std::size_t>(u)];
      if (j >= 0 && find(i) != find(j)) parent[static_cast<std::size_t>(find(i))] = find(j);
    }
  }
  std::map<int, std::vector<int>> grouped;
  for (int i = 0; i < k; ++i) grouped[find(i)].push_back(seeds[static_cast<std::size_t>(i)]);
  std::vector<std::vector<int>> out;
  out.reserve(grouped.size());
  for (auto& [root, members] : grouped) {
    (void)root;
    out.push_back(std::move(members));
  }
  return out;
}

}  // namespace

int blast_radius(const Graph& g, const std::vector<int>& sites,
                 const std::vector<int>& touched) {
  if (sites.empty() || touched.empty()) return 0;
  const auto dist = bfs_distances_multi(g, sites);
  int radius = 0;
  for (const int v : touched) {
    const int d = dist[static_cast<std::size_t>(v)];
    if (d != kUnreachable) radius = std::max(radius, d);
  }
  return radius;
}

const char* to_string(DegradeStatus status) {
  switch (status) {
    case DegradeStatus::kVerified:
      return "verified";
    case DegradeStatus::kRepaired:
      return "repaired";
    case DegradeStatus::kDegraded:
      return "degraded";
    case DegradeStatus::kFlagged:
      return "flagged";
  }
  LAD_UNREACHABLE("bad DegradeStatus");
}

void RobustnessReport::finalize_degradation(int n) {
  node_status.assign(static_cast<std::size_t>(n), DegradeStatus::kVerified);
  const auto mark = [&](const std::vector<int>& nodes, DegradeStatus s) {
    for (const int v : nodes) {
      if (v >= 0 && v < n) node_status[static_cast<std::size_t>(v)] = s;
    }
  };
  // Later marks win: a rejection resolved by repair is repaired; an explicit
  // ladder downgrade or a flag overrides everything before it.
  mark(rejecting_nodes, DegradeStatus::kDegraded);
  mark(repaired_nodes, DegradeStatus::kRepaired);
  mark(degraded_nodes, DegradeStatus::kDegraded);
  mark(flagged_nodes, DegradeStatus::kFlagged);
  degradation.verified = 0;
  degradation.repaired = 0;
  degradation.degraded = 0;
  degradation.flagged = 0;
  for (const DegradeStatus s : node_status) {
    switch (s) {
      case DegradeStatus::kVerified:
        ++degradation.verified;
        break;
      case DegradeStatus::kRepaired:
        ++degradation.repaired;
        break;
      case DegradeStatus::kDegraded:
        ++degradation.degraded;
        break;
      case DegradeStatus::kFlagged:
        ++degradation.flagged;
        break;
    }
  }
}

namespace {

// Attempt radii for one region under `policy`: legacy linear escalation
// (max_retries == 0), or exponential backoff capped at max_repair_radius
// with at most max_retries attempts beyond the first.
std::vector<int> repair_radius_schedule(const RepairPolicy& policy) {
  std::vector<int> rads;
  if (policy.max_retries <= 0) {
    for (int r = policy.repair_radius; r <= policy.max_repair_radius; ++r) rads.push_back(r);
    return rads;
  }
  long long r = std::max(1, policy.repair_radius);
  const long long backoff = std::max(2, policy.retry_backoff);
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    const int capped = static_cast<int>(std::min<long long>(r, policy.max_repair_radius));
    rads.push_back(capped);
    if (capped >= policy.max_repair_radius) break;
    r *= backoff;
  }
  return rads;
}

}  // namespace

void repair_labeling_locally(const Graph& g, const LclProblem& p, Labeling& lab,
                             const std::vector<int>& bad_nodes, const RepairPolicy& policy,
                             RobustnessReport& report) {
  if (bad_nodes.empty()) return;
  std::vector<int> bad = bad_nodes;
  sort_unique(bad);

  // Untrusted labels are cleared up front: repair must re-derive them.
  for (const int v : bad) {
    if (p.num_node_labels() > 0) lab.node_labels[static_cast<std::size_t>(v)] = -1;
    if (p.num_edge_labels() > 0) {
      for (const int e : g.incident_edges(v)) {
        lab.edge_labels[static_cast<std::size_t>(e)] = -1;
      }
    }
  }

  const int rbar = p.radius();
  const std::vector<int> schedule = repair_radius_schedule(policy);
  long long nodes_spent = 0;   // against repair_node_budget
  long long radius_spent = 0;  // against repair_round_deadline

  // Lazy component decomposition for the advice-free fallback rung.
  Components comps;
  bool comps_built = false;
  std::vector<char> comp_resolved;

  for (const auto& group : group_by_distance(g, bad, 2 * policy.repair_radius + 1)) {
    bool repaired = false;
    bool budget_hit = false;
    bool deadline_hit = false;
    bool first_attempt = true;
    RepairRegion region_out;
    for (const int rad : schedule) {
      if (policy.repair_round_deadline > 0 &&
          radius_spent + rad > policy.repair_round_deadline) {
        deadline_hit = true;
        break;
      }
      std::vector<int> region;
      {
        const auto dist = bfs_distances_multi(g, group, {}, rad);
        for (int v = 0; v < g.n(); ++v) {
          if (dist[static_cast<std::size_t>(v)] != kUnreachable) region.push_back(v);
        }
      }
      if (policy.repair_node_budget > 0 &&
          nodes_spent + static_cast<long long>(region.size()) > policy.repair_node_budget) {
        budget_hit = true;
        break;
      }
      if (!first_attempt) ++report.degradation.retries;
      first_attempt = false;
      nodes_spent += static_cast<long long>(region.size());
      radius_spent += rad;
      std::vector<char> in_region(static_cast<std::size_t>(g.n()), 0);
      for (const int v : region) in_region[static_cast<std::size_t>(v)] = 1;

      std::vector<int> free_nodes;
      std::vector<int> free_edges;
      if (p.num_node_labels() > 0) free_nodes = region;
      if (p.num_edge_labels() > 0) {
        for (const int v : region) {
          for (const int e : g.incident_edges(v)) {
            if (in_region[static_cast<std::size_t>(g.edge_u(e))] &&
                in_region[static_cast<std::size_t>(g.edge_v(e))]) {
              free_edges.push_back(e);
            }
          }
        }
        sort_unique(free_edges);
      }

      // The solve works on a copy where the free labels are cleared; only a
      // successful completion is adopted.
      Labeling pinned = lab;
      for (const int v : free_nodes) pinned.node_labels[static_cast<std::size_t>(v)] = -1;
      for (const int e : free_edges) pinned.edge_labels[static_cast<std::size_t>(e)] = -1;

      // Check nodes: every node whose constraint region meets the free set
      // AND will be fully labeled once the free set is assigned (regions
      // touching other unassigned labels cannot be certified here; the
      // caller's post-repair verification picks them up).
      std::vector<int> check_nodes;
      {
        std::vector<int> touched = free_nodes;
        for (const int e : free_edges) {
          touched.push_back(g.edge_u(e));
          touched.push_back(g.edge_v(e));
        }
        sort_unique(touched);
        const auto dist = bfs_distances_multi(g, touched, {}, rbar);
        for (int v = 0; v < g.n(); ++v) {
          if (dist[static_cast<std::size_t>(v)] == kUnreachable) continue;
          bool certifiable = true;
          for (const int u : ball_nodes(g, v, rbar)) {
            if (p.num_node_labels() > 0 &&
                pinned.node_labels[static_cast<std::size_t>(u)] == -1 &&
                std::find(free_nodes.begin(), free_nodes.end(), u) == free_nodes.end()) {
              certifiable = false;
            }
            if (certifiable && p.num_edge_labels() > 0) {
              for (const int e : g.incident_edges(u)) {
                if (pinned.edge_labels[static_cast<std::size_t>(e)] == -1 &&
                    std::find(free_edges.begin(), free_edges.end(), e) == free_edges.end()) {
                  certifiable = false;
                  break;
                }
              }
            }
            if (!certifiable) break;
          }
          if (certifiable) check_nodes.push_back(v);
        }
      }

      std::optional<Labeling> solved;
      try {
        solved = solve_lcl(g, p, pinned, free_nodes, free_edges, check_nodes,
                           policy.solver_budget);
      } catch (const ContractViolation&) {
        solved = std::nullopt;  // budget exhausted: treat like infeasible, escalate
      }
      region_out.nodes = region;
      region_out.radius = rad;
      if (solved.has_value()) {
        lab = std::move(*solved);
        repaired = true;
        break;
      }
    }
    if (deadline_hit) ++report.degradation.deadline_exhausted;
    if (budget_hit) ++report.degradation.budget_exhausted;

    // Fallback-ladder rung below local repair: re-solve the whole connected
    // component(s) containing the group advice-free. Correctness is kept,
    // locality is not — the touched component members are *degraded*.
    if (!repaired && policy.advice_free_fallback) {
      if (!comps_built) {
        comps = connected_components(g);
        comps_built = true;
        comp_resolved.assign(comps.members.size(), 0);
      }
      std::vector<int> comp_ids;
      for (const int v : group) {
        comp_ids.push_back(comps.comp_of[static_cast<std::size_t>(v)]);
      }
      sort_unique(comp_ids);
      bool all_solved = true;
      std::vector<int> members_all;
      for (const int c : comp_ids) {
        const auto& members = comps.members[static_cast<std::size_t>(c)];
        members_all.insert(members_all.end(), members.begin(), members.end());
        if (comp_resolved[static_cast<std::size_t>(c)]) continue;
        std::vector<int> free_nodes;
        std::vector<int> free_edges;
        if (p.num_node_labels() > 0) free_nodes = members;
        if (p.num_edge_labels() > 0) {
          for (const int v : members) {
            for (const int e : g.incident_edges(v)) free_edges.push_back(e);
          }
          sort_unique(free_edges);
        }
        Labeling pinned = lab;
        for (const int v : free_nodes) pinned.node_labels[static_cast<std::size_t>(v)] = -1;
        for (const int e : free_edges) pinned.edge_labels[static_cast<std::size_t>(e)] = -1;
        std::optional<Labeling> solved;
        try {
          // Every member's radius-rbar ball stays inside its component and
          // is fully labeled after the assignment, so all members are
          // checkable here.
          solved = solve_lcl(g, p, pinned, free_nodes, free_edges, members,
                             policy.solver_budget);
        } catch (const ContractViolation&) {
          solved = std::nullopt;
        }
        if (solved.has_value()) {
          lab = std::move(*solved);
          comp_resolved[static_cast<std::size_t>(c)] = 1;
        } else {
          all_solved = false;
          break;
        }
      }
      if (all_solved) {
        sort_unique(members_all);
        region_out.degraded = true;
        region_out.nodes = members_all;
        for (const int v : members_all) report.degraded_nodes.push_back(v);
      }
    }

    region_out.repaired = repaired;
    if (repaired) {
      for (const int v : region_out.nodes) report.repaired_nodes.push_back(v);
    } else if (!region_out.degraded) {
      for (const int v : group) report.flagged_nodes.push_back(v);
    }
    report.regions.push_back(std::move(region_out));
  }
  sort_unique(report.repaired_nodes);
  sort_unique(report.degraded_nodes);
  sort_unique(report.flagged_nodes);
}

std::string RobustnessReport::to_string() const {
  std::ostringstream os;
  os << "RobustnessReport{decoder=" << decoder << "\n"
     << "  faults: advice=" << advice_faults << " graph=" << graph_faults
     << " engine{dropped=" << engine_dropped << " corrupted=" << engine_corrupted
     << " duplicated=" << engine_duplicated << " delayed=" << engine_delayed
     << " crashed=" << engine_crashed << " recovered=" << engine_recovered
     << "} total=" << faults_injected() << "\n"
     << "  detection: violations=" << detected_violations
     << " rejecting=" << rejecting_nodes.size() << "\n"
     << "  repair: repaired=" << repaired_nodes.size() << " degraded=" << degraded_nodes.size()
     << " flagged=" << flagged_nodes.size() << " regions=" << regions.size()
     << " retries=" << degradation.retries
     << " budget_exhausted=" << degradation.budget_exhausted
     << " deadline_exhausted=" << degradation.deadline_exhausted << "\n"
     << "  outcome: valid=" << (output_valid ? 1 : 0)
     << " residual=" << residual_violations << " blast=" << blast_radius
     << " silent=" << (silent_corruption ? 1 : 0) << " rounds=" << rounds << "}";
  return os.str();
}

// --- orientation ------------------------------------------------------------

GuardedOrientation guarded_decode_orientation(const Graph& g, const std::vector<char>& bits,
                                              const OrientationParams& params,
                                              const RepairPolicy& policy) {
  GuardedOrientation out;
  out.report.decoder = "orientation";
  const auto b = normalize_bits(g, bits, out.report);

  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.marker_spacing, g.max_degree());
  tp.jitter = params.marker_jitter;
  const int walk_limit = trail_walk_limit(tp, trail_marker_length(BitString{}));

  out.orientation.assign(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);
  int rounds = 0;
  for (const auto& t : euler_partition(g)) {
    if (t.length() <= params.short_trail_threshold) {
      orient_trail(g, t, canonical_trail_direction(g, t) ? +1 : -1, out.orientation);
      rounds = std::max(rounds, t.length());
      continue;
    }
    const auto rec = recover_trail(g, t, b, walk_limit, policy.trail_samples);
    if (rec.fallback || rec.disagreement) ++out.report.detected_violations;
    orient_trail(g, t, rec.direction, out.orientation);
    for (const int pos : rec.bad_positions) {
      out.report.repaired_nodes.push_back(node_on_trail(t, pos));
    }
    rounds = std::max(rounds, rec.fallback ? num_trail_positions(t) : walk_limit);
  }
  sort_unique(out.report.repaired_nodes);

  for (int v = 0; v < g.n(); ++v) {
    if (std::abs(out_degree(g, out.orientation, v) - in_degree(g, out.orientation, v)) > 1) {
      out.report.rejecting_nodes.push_back(v);
    }
  }
  out.report.residual_violations = static_cast<int>(out.report.rejecting_nodes.size());
  out.report.output_valid = is_balanced_orientation(g, out.orientation, 1);
  out.report.rounds = rounds;
  return out;
}

// --- splitting --------------------------------------------------------------

namespace {

/// Degree splitting as an LCL for local repair: incident red/blue edge
/// counts equal at every node (degrees must be even for feasibility).
class SplittingLcl final : public LclProblem {
 public:
  std::string name() const override { return "splitting"; }
  int radius() const override { return 1; }
  int num_node_labels() const override { return 0; }
  int num_edge_labels() const override { return 2; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override {
    int red = 0;
    int blue = 0;
    for (const int e : g.incident_edges(v)) {
      (lab.edge_labels[static_cast<std::size_t>(e)] == 1 ? red : blue) += 1;
    }
    return red == blue;
  }
};

}  // namespace

GuardedSplitting guarded_decode_splitting(const Graph& g, const std::vector<char>& bits,
                                          const SplittingParams& params,
                                          const RepairPolicy& policy) {
  GuardedSplitting out;
  out.report.decoder = "splitting";
  const auto b = normalize_bits(g, bits, out.report);

  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.orientation.marker_spacing, g.max_degree());
  tp.jitter = params.orientation.marker_jitter;
  BitString one_bit;
  one_bit.append(true);
  const int walk_limit = trail_walk_limit(tp, trail_marker_length(one_bit));

  const auto trails = euler_partition(g);
  out.edge_color.assign(static_cast<std::size_t>(g.m()), 0);
  out.node_color.assign(static_cast<std::size_t>(g.n()), 0);
  Orientation orient(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);

  int rounds = 0;
  for (const auto& t : trails) {
    const int L = t.length();
    if (L <= params.orientation.short_trail_threshold) {
      orient_trail(g, t, canonical_trail_direction(g, t) ? +1 : -1, orient);
      rounds = std::max(rounds, L);
      continue;
    }
    const auto rec = recover_trail(g, t, b, walk_limit, policy.trail_samples);
    if (rec.fallback || rec.disagreement) ++out.report.detected_violations;
    orient_trail(g, t, rec.direction, orient);
    for (const int pos : rec.bad_positions) {
      out.report.repaired_nodes.push_back(node_on_trail(t, pos));
    }
    if (!rec.fallback && rec.base_bit >= 0 && rec.anchor_start >= 0) {
      const int base = rec.base_bit != 0 ? 2 : 1;
      for (int pos = 0; pos < L; ++pos) {
        const int parity = ((pos - rec.anchor_start) % 2 + 2) % 2;
        out.node_color[static_cast<std::size_t>(node_on_trail(t, pos))] =
            parity == 0 ? base : 3 - base;
      }
    } else if (!rec.fallback) {
      // Direction recovered but no trustworthy base color: the trail's
      // nodes take colors from the propagation phase below.
      ++out.report.detected_violations;
    }
    rounds = std::max(rounds, walk_limit);
  }

  // Parity propagation from informed nodes (mirrors decode_splitting, with
  // the gather-bound failure downgraded to a detected + repaired event).
  const auto comps = connected_components(g);
  for (const auto& members : comps.members) {
    std::vector<int> sources;
    for (const int v : members) {
      if (out.node_color[static_cast<std::size_t>(v)] != 0) sources.push_back(v);
    }
    if (sources.empty()) {
      const int root = *std::min_element(members.begin(), members.end(), [&](int a, int b) {
        return g.id(a) < g.id(b);
      });
      const auto dist = bfs_distances(g, root);
      int diam_bound = 0;
      for (const int v : members) {
        out.node_color[static_cast<std::size_t>(v)] = 1 + (dist[static_cast<std::size_t>(v)] % 2);
        diam_bound = std::max(diam_bound, dist[static_cast<std::size_t>(v)]);
      }
      if (diam_bound > params.gather_bound) {
        ++out.report.detected_violations;
        for (const int v : members) out.report.repaired_nodes.push_back(v);
      }
      rounds = std::max(rounds, 2 * diam_bound);
      continue;
    }
    const auto dist = bfs_distances_multi(g, sources);
    for (const int v : members) {
      if (out.node_color[static_cast<std::size_t>(v)] != 0) continue;
      int cur = v;
      int steps = 0;
      while (out.node_color[static_cast<std::size_t>(cur)] == 0) {
        for (const int u : g.neighbors(cur)) {
          if (dist[static_cast<std::size_t>(u)] == dist[static_cast<std::size_t>(cur)] - 1) {
            cur = u;
            break;
          }
        }
        ++steps;
      }
      const int base = out.node_color[static_cast<std::size_t>(cur)];
      out.node_color[static_cast<std::size_t>(v)] = (steps % 2 == 0) ? base : 3 - base;
      rounds = std::max(rounds, walk_limit + dist[static_cast<std::size_t>(v)]);
    }
  }

  for (int e = 0; e < g.m(); ++e) {
    const int tail =
        orient[static_cast<std::size_t>(e)] == EdgeDir::kForward ? g.edge_u(e) : g.edge_v(e);
    out.edge_color[static_cast<std::size_t>(e)] = out.node_color[static_cast<std::size_t>(tail)];
  }

  // Independent per-node balance verification + local edge-color repair.
  const SplittingLcl problem;
  Labeling lab = Labeling::empty(g);
  lab.edge_labels = out.edge_color;
  auto bad = lcl_rejecting_nodes(g, problem, lab);
  out.report.rejecting_nodes = bad;
  if (!bad.empty()) {
    repair_labeling_locally(g, problem, lab, bad, policy, out.report);
    out.edge_color = lab.edge_labels;
    for (int e = 0; e < g.m(); ++e) {
      if (out.edge_color[static_cast<std::size_t>(e)] == -1) {
        out.edge_color[static_cast<std::size_t>(e)] = 0;  // flagged scope: explicit
      }
    }
  }

  // Residuals: rejecting nodes outside the flagged scope.
  lab.edge_labels = out.edge_color;
  const auto after = lcl_rejecting_nodes(g, problem, lab);
  std::vector<char> in_flag_scope(static_cast<std::size_t>(g.n()), 0);
  if (!out.report.flagged_nodes.empty()) {
    const auto dist = bfs_distances_multi(g, out.report.flagged_nodes, {}, flag_scope_radius(problem));
    for (int v = 0; v < g.n(); ++v) {
      if (dist[static_cast<std::size_t>(v)] != kUnreachable) {
        in_flag_scope[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  for (const int v : after) {
    if (!in_flag_scope[static_cast<std::size_t>(v)]) ++out.report.residual_violations;
  }
  out.report.output_valid = out.report.residual_violations == 0 &&
                            out.report.flagged_nodes.empty() && is_splitting(g, out.edge_color);
  out.report.rounds = rounds;
  return out;
}

// --- coloring (shared tail for §6 / §7) -------------------------------------

namespace {

// Verification + local recoloring repair + residual accounting shared by
// the two coloring decoders. `coloring` uses 0 for unassigned.
void finish_guarded_coloring(const Graph& g, int num_colors, const std::vector<int>& failed,
                             const RepairPolicy& policy, GuardedColoring& out) {
  const VertexColoringLcl problem(num_colors);
  Labeling lab = Labeling::empty(g);
  for (int v = 0; v < g.n(); ++v) {
    const int c = out.coloring[static_cast<std::size_t>(v)];
    lab.node_labels[static_cast<std::size_t>(v)] = (c >= 1 && c <= num_colors) ? c : -1;
  }
  auto bad = lcl_rejecting_nodes(g, problem, lab);
  out.report.rejecting_nodes = bad;
  for (const int v : failed) bad.push_back(v);
  sort_unique(bad);
  if (!bad.empty()) repair_labeling_locally(g, problem, lab, bad, policy, out.report);

  for (int v = 0; v < g.n(); ++v) {
    const int l = lab.node_labels[static_cast<std::size_t>(v)];
    out.coloring[static_cast<std::size_t>(v)] = l == -1 ? 0 : l;
  }

  const auto after = lcl_rejecting_nodes(g, problem, lab);
  std::vector<char> in_flag_scope(static_cast<std::size_t>(g.n()), 0);
  if (!out.report.flagged_nodes.empty()) {
    const auto dist = bfs_distances_multi(g, out.report.flagged_nodes, {}, flag_scope_radius(problem));
    for (int v = 0; v < g.n(); ++v) {
      if (dist[static_cast<std::size_t>(v)] != kUnreachable) {
        in_flag_scope[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  for (const int v : after) {
    if (!in_flag_scope[static_cast<std::size_t>(v)]) ++out.report.residual_violations;
  }
  out.report.output_valid = out.report.residual_violations == 0 &&
                            out.report.flagged_nodes.empty() &&
                            is_proper_coloring(g, out.coloring, num_colors);
}

}  // namespace

GuardedColoring guarded_decode_three_coloring(const Graph& g, const std::vector<char>& bits,
                                              const ThreeColoringParams& params,
                                              const RepairPolicy& policy) {
  GuardedColoring out;
  out.report.decoder = "three_coloring";
  const auto b = normalize_bits(g, bits, out.report);

  std::vector<char> failed_mask;
  std::vector<int> failed;
  try {
    auto res = decode_three_coloring_tolerant(g, b, failed_mask, params);
    out.coloring = std::move(res.coloring);
    out.report.rounds = res.rounds;
  } catch (const ContractViolation&) {
    // No per-node containment possible: advice-free from here.
    ++out.report.detected_violations;
    out.coloring.assign(static_cast<std::size_t>(g.n()), 0);
    failed_mask.assign(static_cast<std::size_t>(g.n()), 1);
  }
  for (int v = 0; v < g.n(); ++v) {
    if (failed_mask[static_cast<std::size_t>(v)] != 0) failed.push_back(v);
  }
  out.report.detected_violations += static_cast<long long>(failed.size());

  finish_guarded_coloring(g, 3, failed, policy, out);
  return out;
}

GuardedColoring guarded_decode_delta_coloring(const Graph& g, const VarAdvice& advice,
                                              const DeltaColoringParams& params,
                                              const RepairPolicy& policy) {
  GuardedColoring out;
  out.report.decoder = "delta_coloring";
  const int delta = std::max(1, g.max_degree());

  // Staged degradation: full advice, then entry-sanitized advice, then
  // cluster entries only, then no advice at all. Every demotion is a
  // detected violation; the §6 decoder's own repair machinery handles the
  // uncolored nodes each stage leaves behind.
  const auto sanitize = [&](bool keep_repair_entries, bool count_drops) {
    VarAdvice clean;
    for (const auto& [node, entries] : advice) {
      if (node < 0 || node >= g.n()) {
        if (count_drops) ++out.report.detected_violations;
        continue;
      }
      std::vector<SchemaEntry> kept;
      for (const auto& entry : entries) {
        bool ok = g.find_index(entry.anchor_id).has_value();
        if (ok && entry.schema_id == 0) {
          try {
            int pos = 0;
            const std::uint64_t color = entry.payload.read_gamma(pos);
            ok = color >= 1 && color <= static_cast<std::uint64_t>(g.n()) + 1;
          } catch (const ContractViolation&) {
            ok = false;
          }
        }
        if (ok && entry.schema_id == 1 && !keep_repair_entries) ok = false;
        if (ok && entry.schema_id == 1 && entry.payload.empty()) ok = false;
        if (ok) {
          kept.push_back(entry);
        } else if (count_drops) {
          ++out.report.detected_violations;
        }
      }
      if (!kept.empty()) clean[node] = std::move(kept);
    }
    return clean;
  };

  std::vector<int> failed;
  bool decoded = false;
  for (int stage = 0; stage < 3 && !decoded; ++stage) {
    VarAdvice staged;
    const VarAdvice* input = &advice;
    if (stage == 1) {
      staged = sanitize(true, true);  // drops counted once, at first demotion
      input = &staged;
    } else if (stage == 2) {
      staged = sanitize(false, false);
      input = &staged;
    }
    try {
      auto res = decode_delta_coloring(g, *input, params);
      out.coloring = std::move(res.coloring);
      out.report.rounds = res.rounds;
      decoded = true;
    } catch (const ContractViolation&) {
      ++out.report.detected_violations;
    }
  }
  if (!decoded) {
    // Advice-free: everything is a repair region.
    out.coloring.assign(static_cast<std::size_t>(g.n()), 0);
    for (int v = 0; v < g.n(); ++v) failed.push_back(v);
  }

  finish_guarded_coloring(g, delta, failed, policy, out);
  return out;
}

// --- subexponential-growth LCL ---------------------------------------------

GuardedLcl guarded_decode_subexp_lcl(const Graph& g, const LclProblem& p,
                                     const std::vector<char>& bits,
                                     const SubexpLclParams& params,
                                     const RepairPolicy& policy) {
  GuardedLcl out;
  out.report.decoder = "subexp_lcl";
  const auto b = normalize_bits(g, bits, out.report);

  std::vector<char> failed_mask;
  try {
    auto res = decode_subexp_lcl_tolerant(g, p, b, failed_mask, params);
    out.labeling = std::move(res.labeling);
    out.report.rounds = res.rounds;
  } catch (const ContractViolation&) {
    ++out.report.detected_violations;
    out.labeling = Labeling::empty(g);
    failed_mask.assign(static_cast<std::size_t>(g.n()), 1);
  }
  std::vector<int> failed;
  for (int v = 0; v < g.n(); ++v) {
    if (failed_mask[static_cast<std::size_t>(v)] != 0) failed.push_back(v);
  }
  out.report.detected_violations += static_cast<long long>(failed.size());

  auto bad = lcl_rejecting_nodes(g, p, out.labeling);
  out.report.rejecting_nodes = bad;
  for (const int v : failed) bad.push_back(v);
  sort_unique(bad);
  if (!bad.empty()) repair_labeling_locally(g, p, out.labeling, bad, policy, out.report);

  const auto after = lcl_rejecting_nodes(g, p, out.labeling);
  std::vector<char> in_flag_scope(static_cast<std::size_t>(g.n()), 0);
  if (!out.report.flagged_nodes.empty()) {
    const auto dist = bfs_distances_multi(g, out.report.flagged_nodes, {}, flag_scope_radius(p));
    for (int v = 0; v < g.n(); ++v) {
      if (dist[static_cast<std::size_t>(v)] != kUnreachable) {
        in_flag_scope[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  for (const int v : after) {
    if (!in_flag_scope[static_cast<std::size_t>(v)]) ++out.report.residual_violations;
  }
  out.report.output_valid = out.report.residual_violations == 0 &&
                            out.report.flagged_nodes.empty() &&
                            is_valid_labeling(g, p, out.labeling);
  return out;
}

// --- edge-set decompression -------------------------------------------------

namespace {

// 16-bit integrity guard over (node ID, orientation bit, out-neighbor IDs,
// membership bits). Covering the out-neighbor IDs ties the label to the
// orientation it was encoded under: a trail whose recovered direction
// differs from encode time changes every affected node's out-set and is
// caught here instead of silently re-targeting memberships.
std::uint16_t label_guard(const Graph& g, int v, bool orientation_bit,
                          const std::vector<int>& out_edges, const BitString& memberships) {
  std::uint64_t h = faults::hash3(0x9uLL + 0xDECuLL, static_cast<std::uint64_t>(g.id(v)),
                                  orientation_bit ? 1 : 0);
  for (const int e : out_edges) {
    h = faults::hash2(h, static_cast<std::uint64_t>(g.id(g.other_endpoint(e, v))));
  }
  for (int i = 0; i < memberships.size(); ++i) {
    h = faults::hash2(h, memberships.bit(i) ? 2 : 1);
  }
  return static_cast<std::uint16_t>(h & 0xffffu);
}

std::vector<int> outgoing_edges_sorted(const Graph& g, const Orientation& o, int v) {
  std::vector<int> out;
  for (const int e : g.incident_edges(v)) {
    const bool outgoing =
        (o[static_cast<std::size_t>(e)] == EdgeDir::kForward && g.edge_u(e) == v) ||
        (o[static_cast<std::size_t>(e)] == EdgeDir::kBackward && g.edge_v(e) == v);
    if (outgoing) out.push_back(e);
  }
  return out;
}

}  // namespace

CompressedEdgeSet guarded_compress_edge_set(const Graph& g, const std::vector<char>& in_x,
                                            const OrientationParams& params) {
  CompressedEdgeSet c = compress_edge_set(g, in_x, params);
  const auto dec = decode_orientation(
      g, [&] {
        std::vector<char> bits(static_cast<std::size_t>(g.n()), 0);
        for (int v = 0; v < g.n(); ++v) {
          bits[static_cast<std::size_t>(v)] = c.labels[static_cast<std::size_t>(v)].bit(0);
        }
        return bits;
      }(),
      params);
  for (int v = 0; v < g.n(); ++v) {
    BitString& label = c.labels[static_cast<std::size_t>(v)];
    const auto out = outgoing_edges_sorted(g, dec.orientation, v);
    BitString memberships;
    for (int i = 0; i < static_cast<int>(out.size()); ++i) memberships.append(label.bit(1 + i));
    const std::uint16_t guard = label_guard(g, v, label.bit(0), out, memberships);
    label.append(BitString::fixed_width(guard, kDecompressGuardBits));
  }
  return c;
}

GuardedDecompress guarded_decompress_edge_set(const Graph& g, const CompressedEdgeSet& c,
                                              const RepairPolicy& policy) {
  GuardedDecompress out;
  out.report.decoder = "decompress";
  out.in_x.assign(static_cast<std::size_t>(g.m()), 0);
  out.edge_known.assign(static_cast<std::size_t>(g.m()), 0);

  if (static_cast<int>(c.labels.size()) != g.n()) {
    // Labels cannot be aligned to nodes at all: everything is flagged.
    ++out.report.detected_violations;
    for (int v = 0; v < g.n(); ++v) out.report.flagged_nodes.push_back(v);
    out.report.output_valid = false;
    out.report.residual_violations = g.n();
    return out;
  }

  std::vector<char> advice_bits(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    const BitString& label = c.labels[static_cast<std::size_t>(v)];
    if (label.empty()) {
      ++out.report.detected_violations;
      out.report.rejecting_nodes.push_back(v);
      continue;
    }
    advice_bits[static_cast<std::size_t>(v)] = label.bit(0) ? 1 : 0;
  }

  auto oriented = guarded_decode_orientation(g, advice_bits, c.orientation_params, policy);
  out.report.detected_violations += oriented.report.detected_violations;
  for (const int v : oriented.report.repaired_nodes) out.report.repaired_nodes.push_back(v);

  for (int v = 0; v < g.n(); ++v) {
    const BitString& label = c.labels[static_cast<std::size_t>(v)];
    const auto outgoing = outgoing_edges_sorted(g, oriented.orientation, v);
    const int expected = 1 + static_cast<int>(outgoing.size()) + kDecompressGuardBits;
    bool ok = label.size() == expected;
    BitString memberships;
    if (ok) {
      for (int i = 0; i < static_cast<int>(outgoing.size()); ++i) {
        memberships.append(label.bit(1 + i));
      }
      int pos = 1 + static_cast<int>(outgoing.size());
      const std::uint64_t stored = label.read_fixed(pos, kDecompressGuardBits);
      ok = stored == label_guard(g, v, label.bit(0), outgoing, memberships);
    }
    if (!ok) {
      // Membership bits carry no redundancy: an unverifiable label cannot
      // be repaired, only flagged — guessing would be silent corruption.
      ++out.report.detected_violations;
      out.report.rejecting_nodes.push_back(v);
      out.report.flagged_nodes.push_back(v);
      continue;
    }
    for (int i = 0; i < static_cast<int>(outgoing.size()); ++i) {
      out.in_x[static_cast<std::size_t>(outgoing[i])] = memberships.bit(i) ? 1 : 0;
      out.edge_known[static_cast<std::size_t>(outgoing[i])] = 1;
    }
  }
  sort_unique(out.report.rejecting_nodes);
  sort_unique(out.report.repaired_nodes);
  sort_unique(out.report.flagged_nodes);

  int unknown = 0;
  for (int e = 0; e < g.m(); ++e) {
    if (!out.edge_known[static_cast<std::size_t>(e)]) ++unknown;
  }
  out.report.residual_violations = 0;  // unknown edges are flagged, not residual
  out.report.output_valid = unknown == 0 && out.report.flagged_nodes.empty();
  out.report.rounds = oriented.report.rounds + 1;
  return out;
}

}  // namespace lad::robust
