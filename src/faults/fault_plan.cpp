#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/ruling_set.hpp"
#include "util/contracts.hpp"

namespace lad::faults {
namespace {

// Hash-domain tags: every decision family draws from a disjoint stream.
constexpr std::uint64_t kTagTarget = 0x01;
constexpr std::uint64_t kTagKind = 0x02;
constexpr std::uint64_t kTagFlipCount = 0x03;
constexpr std::uint64_t kTagFlipPos = 0x04;
constexpr std::uint64_t kTagByzLen = 0x05;
constexpr std::uint64_t kTagByzBit = 0x06;
constexpr std::uint64_t kTagTruncLen = 0x07;
constexpr std::uint64_t kTagEntryPick = 0x08;
constexpr std::uint64_t kTagAnchor = 0x09;
constexpr std::uint64_t kTagCrashSel = 0x0a;
constexpr std::uint64_t kTagCrashRound = 0x0b;
constexpr std::uint64_t kTagDrop = 0x0c;
constexpr std::uint64_t kTagCorruptSel = 0x0d;
constexpr std::uint64_t kTagCorruptPos = 0x0e;
constexpr std::uint64_t kTagEdgeDel = 0x0f;
constexpr std::uint64_t kTagDup = 0x10;
constexpr std::uint64_t kTagDelaySel = 0x11;
constexpr std::uint64_t kTagDelayLen = 0x12;
constexpr std::uint64_t kTagBurstPick = 0x13;
constexpr std::uint64_t kTagTargetRank = 0x14;

std::uint64_t pack_pair(int a, int b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

BitString garbage_bits(std::uint64_t h, int len) {
  BitString out;
  for (int i = 0; i < len; ++i) {
    out.append((hash2(h, static_cast<std::uint64_t>(i)) & 1) != 0);
  }
  return out;
}

}  // namespace

const char* to_string(AdviceFaultKind kind) {
  switch (kind) {
    case AdviceFaultKind::kBitFlip:
      return "bitflip";
    case AdviceFaultKind::kErasure:
      return "erasure";
    case AdviceFaultKind::kByzantine:
      return "byzantine";
    case AdviceFaultKind::kTruncate:
      return "truncate";
  }
  LAD_UNREACHABLE("bad AdviceFaultKind");
}

const char* to_string(AdviceTargeting targeting) {
  switch (targeting) {
    case AdviceTargeting::kUniform:
      return "uniform";
    case AdviceTargeting::kHighDegree:
      return "high_degree";
    case AdviceTargeting::kRegionBoundary:
      return "region_boundary";
  }
  LAD_UNREACHABLE("bad AdviceTargeting");
}

const char* to_string(FaultLayer layer) {
  switch (layer) {
    case FaultLayer::kAdvice:
      return "advice";
    case FaultLayer::kGraph:
      return "graph";
    case FaultLayer::kEngine:
      return "engine";
  }
  LAD_UNREACHABLE("bad FaultLayer");
}

bool HashedEngineFaults::crash_selected(int v) const {
  if (spec_.crash_fraction <= 0.0) return false;
  return unit_from_hash(hash3(seed_, kTagCrashSel, static_cast<std::uint64_t>(v))) <
         spec_.crash_fraction;
}

bool HashedEngineFaults::crashed(int round, int v) const {
  if (!crash_selected(v)) return false;
  const int window = std::max(1, spec_.crash_round_window);
  const int crash_round =
      1 + static_cast<int>(hash3(seed_, kTagCrashRound, static_cast<std::uint64_t>(v)) %
                           static_cast<std::uint64_t>(window));
  if (round < crash_round) return false;
  // crash_recovery_rounds == 0: crash-stop, down forever. k > 0: down for
  // exactly [crash_round, crash_round + k), then rejoined for good.
  if (spec_.crash_recovery_rounds <= 0) return true;
  return round < crash_round + spec_.crash_recovery_rounds;
}

bool HashedEngineFaults::drop_message(int round, int from, int to) const {
  if (spec_.message_drop_prob <= 0.0) return false;
  const std::uint64_t h =
      hash4(seed_, kTagDrop, static_cast<std::uint64_t>(round), pack_pair(from, to));
  return unit_from_hash(h) < spec_.message_drop_prob;
}

bool HashedEngineFaults::corrupt_message(int round, int from, int to,
                                         std::string& payload) const {
  if (spec_.message_corrupt_prob <= 0.0) return false;
  const std::uint64_t h =
      hash4(seed_, kTagCorruptSel, static_cast<std::uint64_t>(round), pack_pair(from, to));
  if (unit_from_hash(h) >= spec_.message_corrupt_prob) return false;
  const std::uint64_t p =
      hash4(seed_, kTagCorruptPos, static_cast<std::uint64_t>(round), pack_pair(from, to));
  if (payload.empty()) {
    payload.push_back(static_cast<char>(p & 0xff));
  } else {
    // XOR with a non-zero mask always changes the byte.
    const std::size_t pos = static_cast<std::size_t>(p % payload.size());
    payload[pos] = static_cast<char>(payload[pos] ^ static_cast<char>(1 + (p >> 8) % 255));
  }
  return true;
}

bool HashedEngineFaults::duplicate_message(int round, int from, int to) const {
  if (spec_.message_duplicate_prob <= 0.0) return false;
  const std::uint64_t h =
      hash4(seed_, kTagDup, static_cast<std::uint64_t>(round), pack_pair(from, to));
  return unit_from_hash(h) < spec_.message_duplicate_prob;
}

int HashedEngineFaults::delay_rounds(int round, int from, int to) const {
  if (spec_.message_delay_prob <= 0.0 || spec_.max_delay_rounds <= 0) return 0;
  const std::uint64_t h =
      hash4(seed_, kTagDelaySel, static_cast<std::uint64_t>(round), pack_pair(from, to));
  if (unit_from_hash(h) >= spec_.message_delay_prob) return 0;
  const std::uint64_t len =
      hash4(seed_, kTagDelayLen, static_cast<std::uint64_t>(round), pack_pair(from, to));
  return 1 + static_cast<int>(len % static_cast<std::uint64_t>(spec_.max_delay_rounds));
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), engine_model_(hash2(plan.seed, 0xE6u), plan.engine) {}

bool FaultInjector::node_targeted(std::uint64_t layer_seed, NodeId id, double fraction) const {
  if (fraction <= 0.0) return false;
  return unit_from_hash(hash3(layer_seed, kTagTarget, static_cast<std::uint64_t>(id))) <
         fraction;
}

std::vector<char> FaultInjector::advice_target_mask(const Graph& g) const {
  std::vector<char> mask(static_cast<std::size_t>(g.n()), 0);
  const double fraction = plan_.advice.node_fraction;
  if (fraction <= 0.0 || g.n() == 0) return mask;

  if (plan_.advice.targeting == AdviceTargeting::kUniform) {
    // The legacy oblivious adversary: independent per-node hash.
    for (int v = 0; v < g.n(); ++v) {
      if (node_targeted(advice_seed(), g.id(v), fraction)) {
        mask[static_cast<std::size_t>(v)] = 1;
      }
    }
    return mask;
  }

  // Targeted modes attack exactly round(fraction * n) victims, worst first.
  const int budget = std::clamp(
      static_cast<int>(std::llround(fraction * g.n())), 0, g.n());
  if (budget == 0) return mask;
  const auto rank = [&](int v) {
    return hash3(advice_seed(), kTagTargetRank, static_cast<std::uint64_t>(g.id(v)));
  };
  std::vector<int> order(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) order[static_cast<std::size_t>(v)] = v;

  if (plan_.advice.targeting == AdviceTargeting::kHighDegree) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
  } else {
    // kRegionBoundary: carve the graph into ruling-set regions (nearest
    // ruling node, BFS tie-break by queue order — deterministic) and put
    // region-boundary nodes first.
    std::vector<int> candidates(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) candidates[static_cast<std::size_t>(v)] = v;
    const std::vector<int> rulers = ruling_set(g, /*alpha=*/3, candidates);
    std::vector<int> region(static_cast<std::size_t>(g.n()), -1);
    std::vector<int> queue;
    queue.reserve(static_cast<std::size_t>(g.n()));
    for (std::size_t i = 0; i < rulers.size(); ++i) {
      region[static_cast<std::size_t>(rulers[i])] = static_cast<int>(i);
      queue.push_back(rulers[i]);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int v = queue[head];
      for (const int w : g.neighbors(v)) {
        if (region[static_cast<std::size_t>(w)] != -1) continue;
        region[static_cast<std::size_t>(w)] = region[static_cast<std::size_t>(v)];
        queue.push_back(w);
      }
    }
    std::vector<char> is_boundary(static_cast<std::size_t>(g.n()), 0);
    for (int v = 0; v < g.n(); ++v) {
      for (const int w : g.neighbors(v)) {
        if (region[static_cast<std::size_t>(w)] != region[static_cast<std::size_t>(v)]) {
          is_boundary[static_cast<std::size_t>(v)] = 1;
          break;
        }
      }
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const char ba = is_boundary[static_cast<std::size_t>(a)];
      const char bb = is_boundary[static_cast<std::size_t>(b)];
      if (ba != bb) return ba > bb;  // boundary nodes first
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
  }
  for (int i = 0; i < budget; ++i) {
    mask[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
  }
  return mask;
}

AdviceFaultKind FaultInjector::kind_for(NodeId id) const {
  const auto& kinds = plan_.advice.kinds;
  LAD_ASSERT(!kinds.empty());
  const std::uint64_t h = hash3(advice_seed(), kTagKind, static_cast<std::uint64_t>(id));
  return kinds[static_cast<std::size_t>(h % kinds.size())];
}

void FaultInjector::corrupt_advice(const Graph& g, Advice& advice) {
  LAD_CHECK_MSG(static_cast<int>(advice.size()) == g.n(),
                "corrupt_advice: advice size " << advice.size() << " != n " << g.n());
  if (!plan_.any_advice_faults()) return;
  const std::vector<char> targeted = advice_target_mask(g);
  for (int v = 0; v < g.n(); ++v) {
    const NodeId id = g.id(v);
    if (!targeted[static_cast<std::size_t>(v)]) continue;
    BitString& label = advice[static_cast<std::size_t>(v)];
    const AdviceFaultKind kind = kind_for(id);
    FaultEvent ev;
    ev.layer = FaultLayer::kAdvice;
    ev.advice_kind = kind;
    ev.node = v;
    std::ostringstream detail;
    switch (kind) {
      case AdviceFaultKind::kBitFlip: {
        if (label.empty()) continue;  // nothing to flip
        const int flips =
            1 + static_cast<int>(
                    hash3(advice_seed(), kTagFlipCount, static_cast<std::uint64_t>(id)) %
                    static_cast<std::uint64_t>(std::max(1, plan_.advice.max_flips_per_label)));
        for (int i = 0; i < flips; ++i) {
          const int pos = static_cast<int>(
              hash4(advice_seed(), kTagFlipPos, static_cast<std::uint64_t>(id),
                    static_cast<std::uint64_t>(i)) %
              static_cast<std::uint64_t>(label.size()));
          label.set_bit(pos, !label.bit(pos));
        }
        detail << "flipped " << flips << " bit(s)";
        break;
      }
      case AdviceFaultKind::kErasure: {
        if (label.empty()) continue;  // already empty
        detail << "erased " << label.size() << " bit(s)";
        label = BitString{};
        break;
      }
      case AdviceFaultKind::kByzantine: {
        const std::uint64_t h =
            hash3(advice_seed(), kTagByzLen, static_cast<std::uint64_t>(id));
        const int len =
            1 + static_cast<int>(h % static_cast<std::uint64_t>(2 * std::max(label.size(), 1) + 4));
        label = garbage_bits(hash3(advice_seed(), kTagByzBit, static_cast<std::uint64_t>(id)),
                             len);
        detail << "rewrote label to " << len << " adversarial bit(s)";
        break;
      }
      case AdviceFaultKind::kTruncate: {
        if (label.empty()) continue;
        const int keep = static_cast<int>(
            hash3(advice_seed(), kTagTruncLen, static_cast<std::uint64_t>(id)) %
            static_cast<std::uint64_t>(label.size()));
        detail << "truncated " << label.size() << " -> " << keep << " bit(s)";
        label.truncate(keep);
        break;
      }
    }
    ev.detail = detail.str();
    events_.push_back(std::move(ev));
  }
}

void FaultInjector::corrupt_bits(const Graph& g, std::vector<char>& bits) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "corrupt_bits: bit vector size " << bits.size() << " != n " << g.n());
  if (!plan_.any_advice_faults()) return;
  const std::vector<char> targeted = advice_target_mask(g);
  for (int v = 0; v < g.n(); ++v) {
    if (!targeted[static_cast<std::size_t>(v)]) continue;
    // A single bit admits only one attack; every kind degenerates to a flip.
    bits[static_cast<std::size_t>(v)] = bits[static_cast<std::size_t>(v)] ? 0 : 1;
    FaultEvent ev;
    ev.layer = FaultLayer::kAdvice;
    ev.advice_kind = AdviceFaultKind::kBitFlip;
    ev.node = v;
    ev.detail = "flipped the 1-bit advice";
    events_.push_back(std::move(ev));
  }
}

void FaultInjector::corrupt_var_advice(const Graph& g, VarAdvice& advice) {
  if (!plan_.any_advice_faults()) return;
  std::vector<int> storage_nodes;
  storage_nodes.reserve(advice.size());
  for (const auto& [node, entries] : advice) {
    (void)entries;
    storage_nodes.push_back(node);
  }
  const std::vector<char> targeted = advice_target_mask(g);
  for (const int s : storage_nodes) {
    LAD_CHECK_MSG(s >= 0 && s < g.n(), "corrupt_var_advice: storage node out of range");
    const NodeId id = g.id(s);
    if (!targeted[static_cast<std::size_t>(s)]) continue;
    auto& entries = advice[s];
    const AdviceFaultKind kind = kind_for(id);
    FaultEvent ev;
    ev.layer = FaultLayer::kAdvice;
    ev.advice_kind = kind;
    ev.node = s;
    std::ostringstream detail;
    switch (kind) {
      case AdviceFaultKind::kErasure: {
        detail << "erased " << entries.size() << " schema entries";
        advice.erase(s);
        break;
      }
      case AdviceFaultKind::kBitFlip: {
        if (entries.empty()) continue;
        auto& entry = entries[static_cast<std::size_t>(
            hash3(advice_seed(), kTagEntryPick, static_cast<std::uint64_t>(id)) %
            entries.size())];
        if (entry.payload.empty()) continue;
        const int pos = static_cast<int>(
            hash3(advice_seed(), kTagFlipPos, static_cast<std::uint64_t>(id)) %
            static_cast<std::uint64_t>(entry.payload.size()));
        entry.payload.set_bit(pos, !entry.payload.bit(pos));
        detail << "flipped payload bit " << pos << " of one entry";
        break;
      }
      case AdviceFaultKind::kByzantine: {
        if (entries.empty()) continue;
        auto& entry = entries[static_cast<std::size_t>(
            hash3(advice_seed(), kTagEntryPick, static_cast<std::uint64_t>(id)) %
            entries.size())];
        const std::uint64_t h =
            hash3(advice_seed(), kTagAnchor, static_cast<std::uint64_t>(id));
        if ((h & 1) != 0) {
          // Re-anchor to a valid-but-wrong node: the nastiest rewrite,
          // because every field still parses.
          entry.anchor_id = g.id(static_cast<int>((h >> 1) % static_cast<std::uint64_t>(g.n())));
          detail << "re-anchored one entry to node id " << entry.anchor_id;
        } else {
          const int len = 1 + static_cast<int>((h >> 1) % 9);
          entry.payload =
              garbage_bits(hash3(advice_seed(), kTagByzBit, static_cast<std::uint64_t>(id)), len);
          detail << "rewrote one payload to " << len << " adversarial bit(s)";
        }
        break;
      }
      case AdviceFaultKind::kTruncate: {
        if (entries.empty()) continue;
        const std::uint64_t h =
            hash3(advice_seed(), kTagTruncLen, static_cast<std::uint64_t>(id));
        if (entries.size() > 1) {
          const std::size_t keep = static_cast<std::size_t>(h % entries.size());
          detail << "dropped " << (entries.size() - keep) << " of " << entries.size()
                 << " entries";
          entries.resize(keep);
          if (entries.empty()) advice.erase(s);
        } else {
          auto& payload = entries.front().payload;
          if (payload.empty()) continue;
          const int keep = static_cast<int>(h % static_cast<std::uint64_t>(payload.size()));
          detail << "truncated payload " << payload.size() << " -> " << keep << " bit(s)";
          payload.truncate(keep);
        }
        break;
      }
    }
    ev.detail = detail.str();
    events_.push_back(std::move(ev));
  }
}

Graph FaultInjector::apply_graph_faults(const Graph& g) {
  if (!plan_.any_graph_faults()) return g;

  // Burst (regional) faults: hash-rank every node, take the burst_count
  // best-ranked as epicenters, and mark every node within burst_radius hops
  // of an epicenter. Edges with both endpoints marked are deleted.
  std::vector<char> in_burst;
  if (plan_.graph.burst_count > 0 && g.n() > 0) {
    std::vector<int> order(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) order[static_cast<std::size_t>(v)] = v;
    const auto rank = [&](int v) {
      return hash3(graph_seed(), kTagBurstPick, static_cast<std::uint64_t>(g.id(v)));
    };
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
    const int epicenters = std::min(plan_.graph.burst_count, g.n());
    in_burst.assign(static_cast<std::size_t>(g.n()), 0);
    std::vector<int> dist(static_cast<std::size_t>(g.n()), -1);
    std::vector<int> queue;
    for (int i = 0; i < epicenters; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      dist[static_cast<std::size_t>(v)] = 0;
      in_burst[static_cast<std::size_t>(v)] = 1;
      queue.push_back(v);
    }
    const int radius = std::max(0, plan_.graph.burst_radius);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int v = queue[head];
      if (dist[static_cast<std::size_t>(v)] >= radius) continue;
      for (const int w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] != -1) continue;
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        in_burst[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }

  Graph::Builder builder;
  for (int v = 0; v < g.n(); ++v) builder.add_node(g.id(v));
  for (int e = 0; e < g.m(); ++e) {
    const int u = g.edge_u(e);
    const int v = g.edge_v(e);
    // Keyed on the unordered ID pair, not the edge index, so the decision
    // is stable under any edge renumbering.
    const NodeId a = std::min(g.id(u), g.id(v));
    const NodeId b = std::max(g.id(u), g.id(v));
    const bool burst_hit = !in_burst.empty() && in_burst[static_cast<std::size_t>(u)] &&
                           in_burst[static_cast<std::size_t>(v)];
    const std::uint64_t h = hash4(graph_seed(), kTagEdgeDel, static_cast<std::uint64_t>(a),
                                  static_cast<std::uint64_t>(b));
    if (burst_hit || unit_from_hash(h) < plan_.graph.edge_delete_fraction) {
      FaultEvent ev;
      ev.layer = FaultLayer::kGraph;
      ev.node = u;
      ev.other = v;
      std::ostringstream detail;
      detail << (burst_hit ? "burst-deleted" : "deleted") << " edge {" << a << ", " << b
             << "} after encoding";
      ev.detail = detail.str();
      events_.push_back(std::move(ev));
      continue;
    }
    builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

std::vector<int> FaultInjector::fault_site_nodes(const Graph& g) const {
  std::vector<int> sites;
  for (const FaultEvent& ev : events_) {
    if (ev.node >= 0 && ev.node < g.n()) sites.push_back(ev.node);
    if (ev.other >= 0 && ev.other < g.n()) sites.push_back(ev.other);
  }
  if (plan_.engine.crash_fraction > 0.0) {
    for (int v = 0; v < g.n(); ++v) {
      if (engine_model_.crash_selected(v)) sites.push_back(v);
    }
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

}  // namespace lad::faults
