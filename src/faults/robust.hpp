// Proof-guarded decoders with local repair.
//
// The §1.2 corollary makes every advice schema locally checkable: corrupted
// advice is rejected by some node inspecting a constant-radius ball. This
// layer turns local *checkability* into local *repair*. Each guarded
// decoder:
//
//   1. runs the underlying paper decoder in a containment mode (the
//      tolerant decode variants, or per-trail marker consensus) so that a
//      locally-detected inconsistency poisons only its natural scope — a
//      trail segment, a cluster, a G_{2,3} component — never the run;
//   2. re-verifies the output with an independent radius-r local checker
//      and collects the rejecting nodes;
//   3. repairs every rejecting region *locally*: the region is re-solved
//      advice-free with the exact LCL solver under a pinned boundary, at
//      escalating radius, exactly like the §6 repair machinery; regions
//      that stay infeasible at the maximum radius are *flagged*, never
//      silently guessed.
//
// The resulting guarantee, stated per decoder in the RobustnessReport:
// every run ends in a checker-valid output, or every unservable node is
// explicitly listed as flagged — detected failure or valid output, never
// silent corruption. Faults of constant radius cause repairs of constant
// radius (the blast-radius measurements of bench_r1_faults), which is the
// self-stabilization story proof-labeling-style schemes enable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advice/schema.hpp"
#include "core/decompress.hpp"
#include "core/delta_coloring.hpp"
#include "core/orientation.hpp"
#include "core/splitting.hpp"
#include "core/subexp_lcl.hpp"
#include "core/three_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/graph.hpp"
#include "lcl/lcl.hpp"

namespace lad::robust {

/// Repair policy framework (DESIGN.md §11). The first four fields are the
/// original knobs; the rest bound the work repair may do and select the
/// fallback-ladder rung taken when those bounds are hit. Every default
/// reproduces the legacy behavior exactly (unbounded linear escalation,
/// no budgets, flag on failure), so existing goldens are unaffected.
struct RepairPolicy {
  /// Initial ball radius around a rejecting region.
  int repair_radius = 2;
  /// Escalation bound; a region still infeasible here is flagged.
  int max_repair_radius = 8;
  /// Backtracking budget per region re-solve.
  std::int64_t solver_budget = 2'000'000;
  /// Marker votes sampled per long trail for the consensus direction.
  int trail_samples = 16;

  /// Retry cap per region beyond the first attempt. 0 = legacy linear
  /// escalation (radius + 1 per attempt, unlimited attempts up to
  /// max_repair_radius). k > 0 = at most k retries with exponential radius
  /// backoff: repair_radius, *retry_backoff, ... capped at
  /// max_repair_radius.
  int max_retries = 0;
  /// Radius multiplier between attempts when max_retries > 0.
  int retry_backoff = 2;
  /// Global repair budget: total region nodes one run may re-solve across
  /// all attempts (0 = unlimited). Exhausted regions skip local repair and
  /// fall down the ladder.
  long long repair_node_budget = 0;
  /// Per-run repair deadline in radius units: the attempted region radii
  /// summed over the run may not exceed this (0 = unlimited). The radius of
  /// a local re-solve is its round cost in the LOCAL model, so this is a
  /// round budget for the repair phase.
  long long repair_round_deadline = 0;
  /// Fallback-ladder rung below local repair: re-solve the whole connected
  /// component advice-free (correct output, locality lost — the component's
  /// nodes are *degraded*, not repaired) instead of flagging outright.
  bool advice_free_fallback = false;
};

/// One locally re-solved (or flagged) region.
struct RepairRegion {
  std::vector<int> nodes;  // sorted node indices
  int radius = 0;          // ball radius that succeeded (or was given up at)
  bool repaired = false;   // false = degraded or flagged
  bool degraded = false;   // advice-free fallback rung succeeded (non-local)
};

/// Per-node service level after a guarded decode, ordered worst-first:
/// flagged > degraded > repaired > verified. A node's final status is the
/// worst that applies (the status lattice of DESIGN.md §11).
enum class DegradeStatus {
  kVerified,  // untouched by faults, passed the independent check
  kRepaired,  // output re-derived locally; full guarantee restored
  kDegraded,  // served by a ladder rung below local repair (correct but
              // non-local, or rejected-yet-unrepaired output)
  kFlagged,   // unservable; surfaced, never guessed
};

const char* to_string(DegradeStatus status);

/// Bucket counts plus the policy-exhaustion events that caused them.
/// total() == n iff every node is accounted for — the acceptance criterion
/// the chaos campaign checks.
struct DegradationSummary {
  int verified = 0;
  int repaired = 0;
  int degraded = 0;
  int flagged = 0;
  long long retries = 0;       // repair attempts beyond the first, summed
  int budget_exhausted = 0;    // regions abandoned to repair_node_budget
  int deadline_exhausted = 0;  // regions abandoned to repair_round_deadline
  int total() const { return verified + repaired + degraded + flagged; }
  bool accounted(int n) const { return total() == n; }
};

/// Per-run accounting of one guarded decode. The decoder-facing fields are
/// filled by the guarded decoders; the campaign layer adds the fault
/// bookkeeping (injected counts, blast radius, silent-corruption verdict)
/// before rendering. to_string() is byte-deterministic for a fixed input —
/// no pointers, timings, or float formatting — which is what the
/// determinism regression test and the CLI golden test pin down.
struct RobustnessReport {
  std::string decoder;

  // Faults (campaign layer).
  long long advice_faults = 0;
  long long graph_faults = 0;
  long long engine_dropped = 0;
  long long engine_corrupted = 0;
  long long engine_duplicated = 0;
  long long engine_delayed = 0;
  int engine_crashed = 0;
  int engine_recovered = 0;
  long long faults_injected() const {
    return advice_faults + graph_faults + engine_dropped + engine_corrupted +
           engine_duplicated + engine_delayed + static_cast<long long>(engine_crashed);
  }

  // Detection (guarded decoder).
  long long detected_violations = 0;  // contract violations caught / contained
  std::vector<int> rejecting_nodes;   // nodes failing the independent local check

  // Repair (guarded decoder).
  std::vector<int> repaired_nodes;  // output re-derived locally, now valid
  std::vector<int> degraded_nodes;  // served by a sub-repair ladder rung
  std::vector<int> flagged_nodes;   // repair impossible; surfaced, not guessed
  std::vector<RepairRegion> regions;

  // Degradation accounting (DESIGN.md §11). node_status and the summary's
  // bucket counts are filled by finalize_degradation; the summary's
  // exhaustion counters accumulate during repair.
  std::vector<DegradeStatus> node_status;
  DegradationSummary degradation;

  /// Assigns every node its final DegradeStatus (worst applicable wins:
  /// flagged > degraded > repaired > verified; a rejecting node that was
  /// never repaired or flagged counts as degraded) and fills the summary's
  /// bucket counts. Call once the rejecting/repaired/degraded/flagged sets
  /// are final; idempotent.
  void finalize_degradation(int n);

  // Outcome.
  bool output_valid = false;  // final independent check (flagged scope excluded)
  int residual_violations = 0;  // rejecting nodes that remain outside flagged scope
  int blast_radius = 0;  // max dist(fault site -> repaired/flagged node); campaign layer
  bool silent_corruption = false;  // invalid output with zero detection — must never happen
  int rounds = 0;

  bool degraded() const {
    return detected_violations > 0 || !rejecting_nodes.empty() || !repaired_nodes.empty() ||
           !degraded_nodes.empty() || !flagged_nodes.empty();
  }

  std::string to_string() const;
};

/// Max distance from any node of `touched` to the nearest node of `sites`
/// (multi-source BFS from the fault sites). 0 when either set is empty;
/// unreachable pairs (fault in another component) are skipped.
int blast_radius(const Graph& g, const std::vector<int>& sites,
                 const std::vector<int>& touched);

/// Local repair: clusters `bad_nodes`, re-solves the ball around each
/// cluster with `p` under a pinned boundary at escalating radius, and
/// applies successful completions to `lab`. Nodes of regions that stay
/// infeasible at policy.max_repair_radius keep their labels cleared and are
/// flagged. Appends to report.regions / repaired_nodes / flagged_nodes.
void repair_labeling_locally(const Graph& g, const LclProblem& p, Labeling& lab,
                             const std::vector<int>& bad_nodes, const RepairPolicy& policy,
                             RobustnessReport& report);

// ---------------------------------------------------------------------------
// Guarded decoders, one per paper decoder.

struct GuardedOrientation {
  Orientation orientation;
  RobustnessReport report;
};

/// §5 orientation decoder hardened by marker consensus: every long trail is
/// decoded at sampled positions, the majority direction wins, and positions
/// whose nearest marker is missing or disagrees are repaired from the
/// consensus; a trail with no decodable marker at all falls back to the
/// advice-free canonical direction (still a valid orientation).
GuardedOrientation guarded_decode_orientation(const Graph& g, const std::vector<char>& bits,
                                              const OrientationParams& params = {},
                                              const RepairPolicy& policy = {});

struct GuardedSplitting {
  std::vector<int> edge_color;  // 1 = red, 2 = blue
  std::vector<int> node_color;
  RobustnessReport report;
};

/// §5-ext splitting decoder hardened by marker consensus (direction and
/// base-color payload both voted), then per-node balance verification and
/// local edge-color repair with the exact solver.
GuardedSplitting guarded_decode_splitting(const Graph& g, const std::vector<char>& bits,
                                          const SplittingParams& params = {},
                                          const RepairPolicy& policy = {});

struct GuardedColoring {
  std::vector<int> coloring;
  RobustnessReport report;
};

/// §7 three-coloring decoder via the tolerant decode, proper-coloring
/// verification, and local recoloring repair.
GuardedColoring guarded_decode_three_coloring(const Graph& g, const std::vector<char>& bits,
                                              const ThreeColoringParams& params = {},
                                              const RepairPolicy& policy = {});

/// §6 Δ-coloring decoder: the VarAdvice is sanitized entry-by-entry (every
/// malformed schema entry is dropped and counted as a detection) before the
/// decoder — whose own repair machinery handles the resulting uncolored
/// nodes — runs; a final proper-coloring verification and local recoloring
/// pass covers whatever remains.
GuardedColoring guarded_decode_delta_coloring(const Graph& g, const VarAdvice& advice,
                                              const DeltaColoringParams& params = {},
                                              const RepairPolicy& policy = {});

struct GuardedLcl {
  Labeling labeling;
  RobustnessReport report;
};

/// §4 subexponential-growth LCL decoder via the tolerant decode, per-node
/// valid_at verification, and local region repair.
GuardedLcl guarded_decode_subexp_lcl(const Graph& g, const LclProblem& p,
                                     const std::vector<char>& bits,
                                     const SubexpLclParams& params = {},
                                     const RepairPolicy& policy = {});

// ---------------------------------------------------------------------------
// §1.5 edge-set compression. Membership bits carry zero redundancy, so a
// byzantine rewrite is information-theoretically undetectable from the base
// format; the guarded compressor therefore appends a 16-bit integrity guard
// (hash of node ID, orientation bit, and membership bits) per label. The
// guarded decompressor verifies it and *flags* edges whose label failed —
// membership cannot be repaired, only surfaced; guessing would be silent
// corruption.

/// Bits appended to every label by the guarded compressor.
inline constexpr int kDecompressGuardBits = 16;

CompressedEdgeSet guarded_compress_edge_set(const Graph& g, const std::vector<char>& in_x,
                                            const OrientationParams& params = {});

struct GuardedDecompress {
  std::vector<char> in_x;        // membership; meaningful where edge_known
  std::vector<char> edge_known;  // per edge: recovered and guard-verified
  RobustnessReport report;
};

GuardedDecompress guarded_decompress_edge_set(const Graph& g, const CompressedEdgeSet& c,
                                              const RepairPolicy& policy = {});

}  // namespace lad::robust
