#include "faults/chaos.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "util/contracts.hpp"

namespace lad::faults {
namespace {

// Cell seeds derive from (config seed, cell index) in their own hash domain
// so the matrix cannot collide with the per-trial stream (kTagTrial).
constexpr std::uint64_t kTagChaosCell = 0xC405;

double scaled(double p, int rate_percent) {
  const double s = p * static_cast<double>(rate_percent) / 100.0;
  return std::clamp(s, 0.0, 0.9);
}

}  // namespace

std::vector<std::string> chaos_model_names() { return {"mixed", "adversarial", "churn"}; }

bool chaos_fault_model(const std::string& name, FaultPlan& out) {
  if (name == "mixed") {
    out = default_mixed_plan();
    return true;
  }
  if (name == "adversarial") {
    // The worst-case-flavored adversary: advice corruption concentrated on
    // high-degree victims with byzantine-heavy kinds, plus a regional
    // (burst) outage instead of scattered edge deletions.
    FaultPlan plan;
    plan.advice.node_fraction = 0.03;
    plan.advice.kinds = {AdviceFaultKind::kByzantine, AdviceFaultKind::kTruncate,
                         AdviceFaultKind::kBitFlip};
    plan.advice.targeting = AdviceTargeting::kHighDegree;
    plan.graph.burst_count = 2;
    plan.graph.burst_radius = 1;
    plan.engine.message_drop_prob = 0.005;
    out = plan;
    return true;
  }
  if (name == "churn") {
    // Crash-recovery churn: nodes go down and rejoin with blank state while
    // the network duplicates and delays messages.
    FaultPlan plan;
    plan.advice.node_fraction = 0.01;
    plan.advice.kinds = {AdviceFaultKind::kBitFlip};
    plan.engine.crash_fraction = 0.05;
    plan.engine.crash_round_window = 3;
    plan.engine.crash_recovery_rounds = 2;
    plan.engine.message_duplicate_prob = 0.02;
    plan.engine.message_delay_prob = 0.02;
    plan.engine.max_delay_rounds = 2;
    plan.engine.message_drop_prob = 0.005;
    out = plan;
    return true;
  }
  return false;
}

std::vector<std::string> chaos_policy_names() { return {"strict", "backoff", "budgeted"}; }

bool chaos_repair_policy(const std::string& name, robust::RepairPolicy& out) {
  if (name == "strict") {
    out = robust::RepairPolicy{};  // legacy: unbounded escalation, then flag
    return true;
  }
  if (name == "backoff") {
    robust::RepairPolicy p;
    p.max_retries = 3;
    p.retry_backoff = 2;
    p.advice_free_fallback = true;
    out = p;
    return true;
  }
  if (name == "budgeted") {
    robust::RepairPolicy p;
    p.max_retries = 2;
    p.retry_backoff = 2;
    p.repair_node_budget = 64;
    p.repair_round_deadline = 24;
    p.advice_free_fallback = true;
    out = p;
    return true;
  }
  return false;
}

FaultPlan scale_plan(FaultPlan plan, int rate_percent) {
  if (rate_percent == 100) return plan;
  plan.advice.node_fraction = scaled(plan.advice.node_fraction, rate_percent);
  plan.engine.message_drop_prob = scaled(plan.engine.message_drop_prob, rate_percent);
  plan.engine.message_corrupt_prob = scaled(plan.engine.message_corrupt_prob, rate_percent);
  plan.engine.crash_fraction = scaled(plan.engine.crash_fraction, rate_percent);
  plan.engine.message_duplicate_prob =
      scaled(plan.engine.message_duplicate_prob, rate_percent);
  plan.engine.message_delay_prob = scaled(plan.engine.message_delay_prob, rate_percent);
  plan.graph.edge_delete_fraction = scaled(plan.graph.edge_delete_fraction, rate_percent);
  return plan;
}

bool ChaosReport::pass() const {
  for (const ChaosCell& c : cells) {
    if (!c.ok()) return false;
  }
  return true;
}

ChaosReport run_chaos_campaign(const ChaosConfig& config) {
  ChaosConfig cfg = config;
  if (cfg.pipelines.empty()) {
    cfg.pipelines = {DecoderKind::kOrientation, DecoderKind::kThreeColoring,
                     DecoderKind::kSubexpLcl};
  }
  if (cfg.families.empty()) {
    cfg.families = {GraphFamily::kCycle, GraphFamily::kGrid, GraphFamily::kTorus};
  }
  if (cfg.models.empty()) cfg.models = chaos_model_names();
  if (cfg.rate_percents.empty()) cfg.rate_percents = {100};
  if (cfg.policies.empty()) cfg.policies = chaos_policy_names();

  ChaosReport report;
  report.n = cfg.n;
  report.trials = cfg.trials;
  report.seed = cfg.seed;

  int cell_index = 0;
  for (const DecoderKind decoder : cfg.pipelines) {
    for (const GraphFamily family : cfg.families) {
      for (const std::string& model : cfg.models) {
        for (const int rate : cfg.rate_percents) {
          for (const std::string& policy_name : cfg.policies) {
            LAD_TM_SPAN(span, "chaos.cell", "chaos");
            FaultPlan plan;
            LAD_CHECK_MSG(chaos_fault_model(model, plan),
                          "chaos: unknown fault model '" << model << "'");
            robust::RepairPolicy policy;
            LAD_CHECK_MSG(chaos_repair_policy(policy_name, policy),
                          "chaos: unknown repair policy '" << policy_name << "'");

            CampaignConfig cc;
            cc.decoder = decoder;
            cc.family = family;
            cc.n = cfg.n;
            cc.trials = cfg.trials;
            cc.seed = hash3(cfg.seed, kTagChaosCell, static_cast<std::uint64_t>(cell_index));
            cc.plan = scale_plan(plan, rate);
            cc.policy = policy;
            cc.threads = cfg.threads;
            if (decoder == DecoderKind::kSubexpLcl) cc.subexp.x = 60;

            ChaosCell cell;
            cell.decoder = decoder;
            cell.model = model;
            cell.rate_percent = rate;
            cell.policy = policy_name;
            cell.summary = run_fault_campaign(cc);
            cell.family = cell.summary.family;  // splitting may substitute
            for (const auto& rep : cell.summary.reports) {
              cell.verified += rep.degradation.verified;
              cell.repaired += rep.degradation.repaired;
              cell.degraded += rep.degradation.degraded;
              cell.flagged += rep.degradation.flagged;
            }
            // Post-mortem (DESIGN.md §14): a failed cell dumps the flight
            // recorder's recent round samples to stderr before the bulky
            // per-trial reports are dropped, so the round-by-round lead-up
            // (message volumes, fault/repair bursts) survives the failure.
            if (!cell.ok()) {
              std::ostringstream why;
              why << "chaos cell failed: " << lad::faults::to_string(cell.decoder) << "/"
                  << lad::faults::to_string(cell.family) << "/" << cell.model << "/rate="
                  << cell.rate_percent << "/" << cell.policy;
              LAD_TM(obs::FlightRecorder::instance().dump(std::cerr, why.str()));
            }
            // The per-trial reports are bulky and already folded into the
            // cell row; drop them so big matrices stay small in memory.
            cell.summary.reports.clear();
            report.cells.push_back(std::move(cell));
            LAD_TM(obs::core().chaos_cells.add(1));
            ++cell_index;
          }
        }
      }
    }
  }
  return report;
}

std::string ChaosReport::to_markdown() const {
  std::ostringstream os;
  os << "# Robustness chaos matrix\n\n"
     << "Generated by `lad chaos` — " << cells.size() << " cells, n=" << n
     << ", trials=" << trials << " per cell, seed=" << seed << ".\n\n"
     << "Layer guarantee per cell: **silent=0** (detected failure or valid\n"
        "output, never a silently wrong answer) and **accounted=yes** (every\n"
        "node lands in exactly one DegradeStatus bucket: verified / repaired\n"
        "/ degraded / flagged). Δ-coloring campaigns raise the repair-radius\n"
        "cap to 20: recoloring a parity defect on a cycle is a *global*\n"
        "constraint, the documented exception to constant-radius repair\n"
        "(DESIGN.md §11).\n\n"
     << "Overall: " << (pass() ? "**PASS**" : "**FAIL**") << "\n\n"
     << "| pipeline | family | model | rate% | policy | faults | valid | silent "
        "| accounted | verified | repaired | degraded | flagged | retries "
        "| budget_x | deadline_x | blast |\n"
     << "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const ChaosCell& c : cells) {
    os << "| " << lad::faults::to_string(c.decoder) << " | "
       << lad::faults::to_string(c.family) << " | " << c.model << " | " << c.rate_percent
       << " | " << c.policy << " | " << c.summary.faults_injected << " | "
       << c.summary.trials_output_valid << "/" << c.summary.trials << " | "
       << c.summary.silent_corruptions << " | "
       << (c.summary.all_nodes_accounted ? "yes" : "NO") << " | " << c.verified << " | "
       << c.repaired << " | " << c.degraded << " | " << c.flagged << " | "
       << c.summary.total_repair_retries << " | " << c.summary.total_budget_exhausted
       << " | " << c.summary.total_deadline_exhausted << " | "
       << c.summary.max_blast_radius << " |\n";
  }
  return os.str();
}

std::string ChaosReport::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"n\": " << n << ",\n"
     << "  \"trials\": " << trials << ",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"pass\": " << (pass() ? "true" : "false") << ",\n"
     << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& c = cells[i];
    os << "    {\n"
       << "      \"pipeline\": \"" << lad::faults::to_string(c.decoder) << "\",\n"
       << "      \"family\": \"" << lad::faults::to_string(c.family) << "\",\n"
       << "      \"model\": \"" << c.model << "\",\n"
       << "      \"rate_percent\": " << c.rate_percent << ",\n"
       << "      \"policy\": \"" << c.policy << "\",\n"
       << "      \"faults_injected\": " << c.summary.faults_injected << ",\n"
       << "      \"trials_output_valid\": " << c.summary.trials_output_valid << ",\n"
       << "      \"silent_corruptions\": " << c.summary.silent_corruptions << ",\n"
       << "      \"all_nodes_accounted\": "
       << (c.summary.all_nodes_accounted ? "true" : "false") << ",\n"
       << "      \"verified\": " << c.verified << ",\n"
       << "      \"repaired\": " << c.repaired << ",\n"
       << "      \"degraded\": " << c.degraded << ",\n"
       << "      \"flagged\": " << c.flagged << ",\n"
       << "      \"repair_retries\": " << c.summary.total_repair_retries << ",\n"
       << "      \"budget_exhausted\": " << c.summary.total_budget_exhausted << ",\n"
       << "      \"deadline_exhausted\": " << c.summary.total_deadline_exhausted << ",\n"
       << "      \"max_blast_radius\": " << c.summary.max_blast_radius << "\n"
       << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace lad::faults
