// The chaos matrix: pipelines × families × fault-models × rates × policies
// run as one campaign cross-product (ROADMAP item 5; the fault-tolerance /
// self-stabilization story of Rozhoň's "Invitation to Local Algorithms").
//
// Every cell runs a full fault campaign (faults/campaign.hpp) under a named
// adversary scaled by a rate, decoded under a named repair policy, and is
// judged on the layer's two hard guarantees:
//
//   * silent_corruptions == 0 — detected failure or valid output, never a
//     silently wrong answer;
//   * every node is accounted for in a DegradeStatus bucket — overload
//     produces explicit partial service (verified / repaired / degraded /
//     flagged), never an unbounded escalation loop.
//
// The report is byte-deterministic: cell seeds derive from (seed, cell
// index), all numbers are integers (rates are percents), and the thread
// count never appears — two runs of the same matrix, at any thread counts,
// render byte-identical markdown and JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/campaign.hpp"

namespace lad::faults {

/// Named adversaries of the chaos matrix. Each is a FaultPlan template
/// (seed ignored; campaigns derive per-trial seeds):
///   * "mixed"       — the default_mixed_plan oblivious adversary;
///   * "adversarial" — targeted advice corruption (high-degree victims,
///     byzantine-heavy kinds) plus burst graph faults;
///   * "churn"       — crash-recovery churn with message duplication and
///     bounded delay.
std::vector<std::string> chaos_model_names();
/// The plan for a named model; returns false for an unknown name.
bool chaos_fault_model(const std::string& name, FaultPlan& out);

/// Named repair policies of the chaos matrix:
///   * "strict"   — legacy unbounded linear escalation, flag on failure;
///   * "backoff"  — 3 retries with exponential radius backoff, advice-free
///     component fallback below local repair;
///   * "budgeted" — backoff plus a global repair node budget and a per-run
///     round deadline, so overload degrades instead of escalating.
std::vector<std::string> chaos_policy_names();
/// The policy for a named entry; returns false for an unknown name.
bool chaos_repair_policy(const std::string& name, robust::RepairPolicy& out);

/// Scales every probability/fraction of the plan by rate_percent/100
/// (clamped to [0, 0.9]); structural knobs (burst counts, windows, recovery
/// rounds) are left alone. 100 returns the plan unchanged.
FaultPlan scale_plan(FaultPlan plan, int rate_percent);

struct ChaosConfig {
  std::vector<DecoderKind> pipelines;   // default: orientation,
                                        // three_coloring, subexp_lcl
  std::vector<GraphFamily> families;    // default: cycle, grid, torus
  std::vector<std::string> models;      // default: all named models
  std::vector<int> rate_percents;       // default: {100}
  std::vector<std::string> policies;    // default: all named policies
  int n = 120;
  int trials = 5;
  std::uint64_t seed = 1;
  /// Per-cell campaign thread count. Influences wall time only — the
  /// report is byte-identical at any value and never mentions it.
  int threads = 1;
};

/// One matrix cell: its coordinates plus the campaign outcome and the
/// DegradeStatus buckets summed over the cell's trials.
struct ChaosCell {
  DecoderKind decoder = DecoderKind::kOrientation;
  GraphFamily family = GraphFamily::kCycle;  // family actually used
  std::string model;
  int rate_percent = 100;
  std::string policy;
  CampaignSummary summary;
  long long verified = 0;
  long long repaired = 0;
  long long degraded = 0;
  long long flagged = 0;

  bool ok() const {
    return summary.silent_corruptions == 0 && summary.all_nodes_accounted;
  }
};

struct ChaosReport {
  int n = 0;
  int trials = 0;
  std::uint64_t seed = 0;
  std::vector<ChaosCell> cells;

  /// The layer guarantee over the whole matrix: zero silent corruptions and
  /// complete DegradeStatus accounting in every cell.
  bool pass() const;

  /// ROBUSTNESS-generated.md — byte-deterministic markdown (integers only).
  std::string to_markdown() const;
  /// Machine-readable twin of the markdown report.
  std::string to_json() const;
};

/// Runs the full cross-product. Cells run in declaration order (pipelines
/// outermost, policies innermost); each cell's campaign seed derives from
/// (config.seed, cell index), so inserting a cell re-seeds only the cells
/// after it.
ChaosReport run_chaos_campaign(const ChaosConfig& config);

}  // namespace lad::faults
