// §7 — 3-coloring 3-colorable graphs with 1 bit of advice per node.
//
// Encoding (Theorem 7.1): fix a *greedy* 3-coloring φ (every node of color
// c has neighbors of all colors < c). Then:
//   * every color-1 node gets bit 1 ("type-1 bits");
//   * in every large component C of G_{2,3} (the graph induced by colors 2
//     and 3), sparse *groups* of additional 1-bits ("type-23 bits") pin down
//     which of the two 2-colorings of C the schema chose.
//
// The two bit kinds are distinguished exactly as in the paper: a 1-bit at v
// is of type 1 iff v has at most one neighbor carrying a 1-bit. Greedy-ness
// guarantees every group member sees >= 2 one-bit neighbors (its partner
// and/or its color-1 neighbors), while a constructive selection (the
// paper's LLL step) keeps every color-1 node at <= 1 group neighbor.
//
// A group is S_v ∪ S'_v where each half is either a single node w with two
// color-1 neighbors or an adjacent pair {x, y} with no common color-1
// neighbor (Lemma 7.2). Let s be the smallest-ID node of the union: if
// φ(s) = 2 only s's half is written (the group decodes as ONE connected
// component), if φ(s) = 3 both halves are written (TWO components). A
// decoder counts components, learns φ(s), and 2-colors its component of
// G_{2,3} by parity from s. Small components carry no advice and are
// 2-colored canonically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

struct ThreeColoringParams {
  /// Components of G_{2,3} with diameter above this are "large" and receive
  /// parity groups (paper: 4000Δ^9; any value >= ruling_alpha works for the
  /// construction, with correctness checked by the encoder).
  int large_component_diameter = 0;  // 0 = derive from the other parameters
  /// Radius around a ruling-set node within which candidate group halves
  /// are searched (paper's Lemma 7.2 radius is Δ).
  int candidate_radius = 0;  // 0 = Δ + 2
  /// Candidate anchors tried per ruling node before giving up.
  int max_candidate_tries = 64;
  std::uint64_t seed = 777;
};

struct ThreeColoringDerived {
  int candidate_radius = 0;
  int group_radius = 0;    // group members lie within this C-distance of r
  int ruling_alpha = 0;    // pairwise group separation
  int reach = 0;           // every large-component node finds a group within this
  int large_component_diameter = 0;
};

/// Resolves the derived radii for a given graph (shared by encoder/decoder).
ThreeColoringDerived derive_three_coloring_radii(const Graph& g, const ThreeColoringParams& p);

struct ThreeColoringEncoding {
  std::vector<char> bits;        // uniform 1-bit advice
  std::vector<int> greedy_phi;   // the greedy witness coloring (diagnostics)
  int num_groups = 0;
  ThreeColoringParams params;
};

/// Centralized prover. `witness` must be a proper 3-coloring of g (the
/// encoder normalizes it to a greedy one); pass the planted coloring from
/// the generator, or any coloring found offline — 3-coloring is NP-hard, and
/// Definition 2 places no bound on the prover.
ThreeColoringEncoding encode_three_coloring_advice(const Graph& g,
                                                   const std::vector<int>& witness,
                                                   const ThreeColoringParams& params = {});

struct ThreeColoringDecodeResult {
  std::vector<int> coloring;  // proper 3-coloring, values 1..3
  int rounds = 0;
};

/// LOCAL decoder (poly(Δ) rounds). Throws ContractViolation on advice that
/// is locally detectably inconsistent.
ThreeColoringDecodeResult decode_three_coloring(const Graph& g, const std::vector<char>& bits,
                                                const ThreeColoringParams& params = {});

/// Fault-tolerant decoder: inconsistencies are contained to their natural
/// scope (the component for canonical 2-coloring, the node for parity
/// lookup) instead of aborting the run. Affected nodes stay uncolored (0)
/// and are marked in `failed` (resized to n) for a later repair pass; a
/// wrong-sized bit vector still throws, as no per-node containment exists.
ThreeColoringDecodeResult decode_three_coloring_tolerant(
    const Graph& g, const std::vector<char>& bits, std::vector<char>& failed,
    const ThreeColoringParams& params = {});

/// Rewrites a proper coloring into a greedy one (colors only decrease).
std::vector<int> normalize_to_greedy(const Graph& g, std::vector<int> coloring);

}  // namespace lad
