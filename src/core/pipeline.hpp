// The Pipeline registry — one uniform interface over the six paper
// pipelines (§5 orientation, §5-ext splitting, §7 three-coloring, §6
// Δ-coloring, §4 subexponential-growth LCL, §1.5 edge-set decompression).
//
// Before this layer existed, every consumer that wanted "all decoders" —
// the fault campaigns, the faultsim/audit CLI, the bench harness — carried
// its own six-way switch over hand-rolled encode/decode/verify calls. The
// Pipeline interface factors that out:
//
//   * encode(g, cfg)        — the centralized prover (Definition 2's f);
//                             witness/instance generation is internal and
//                             seeded from cfg, so callers need no
//                             per-pipeline knowledge;
//   * decode(g, adv, cfg)   — the strict LOCAL decoder (throws
//                             ContractViolation on detectably bad advice);
//   * decode_tolerant(...)  — the containment decoder where one exists
//                             (failures land in output.failed instead of
//                             throwing);
//   * verify(g, out, cfg)   — the independent centralized checker;
//   * node_digests(g, out)  — per-node output digests (what a node would
//                             publish to a distributed verification echo);
//   * advice-schema metadata (carrier, Definition 2 type, paper section).
//
// The registry is the supported extension point: implement Pipeline for a
// new decoder, add it to pipelines(), and the audit CLI, the campaign
// harness, and `lad bench` pick it up without further dispatch code. The
// original free functions (encode_orientation_advice, decode_splitting,
// ...) remain the implementation and the stable fine-grained API; the
// Pipeline classes are thin adapters over them.
//
// Guarded (fault-tolerant) decoding composes on top in
// faults/guarded_pipeline.hpp — it lives in the faults layer because repair
// needs the robustness machinery, which depends on this one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "advice/advice.hpp"
#include "advice/schema.hpp"
#include "core/decompress.hpp"
#include "core/delta_coloring.hpp"
#include "core/orientation.hpp"
#include "core/splitting.hpp"
#include "core/subexp_lcl.hpp"
#include "core/three_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/graph.hpp"
#include "lcl/lcl.hpp"
#include "obs/fit.hpp"

namespace lad {

enum class PipelineId {
  kOrientation,    // §5 almost-balanced orientation
  kSplitting,      // §5-ext degree splitting
  kThreeColoring,  // §7 3-coloring
  kDeltaColoring,  // §6 Δ-coloring
  kSubexpLcl,      // §4 generic LCL under subexponential growth
  kDecompress,     // §1.5 edge-set decompression
};

/// How a pipeline's advice is physically carried (the three concrete
/// representations behind Definition 2's schema types).
enum class AdviceCarrier {
  kUniformBits,  // one bit per node (std::vector<char>)
  kVarSchema,    // variable-length tagged entries (VarAdvice)
  kNodeLabels,   // per-node bit-strings (Advice)
};

/// Knobs for every pipeline, bundled so registry consumers can thread one
/// object through encode/decode/verify. Defaults reproduce the paper
/// defaults of each pipeline.
struct PipelineConfig {
  /// Seeds internal witness/instance generation (decompress membership).
  std::uint64_t seed = 1;
  OrientationParams orientation;
  SplittingParams splitting;
  ThreeColoringParams three_coloring;
  DeltaColoringParams delta_coloring;
  SubexpLclParams subexp;
  /// §1.5: density of the hashed membership set X that encode() compresses.
  double decompress_density = 0.5;
};

/// Uniform advice carrier. Exactly one representation is populated,
/// according to Pipeline::carrier().
struct PipelineAdvice {
  AdviceCarrier carrier = AdviceCarrier::kUniformBits;
  std::vector<char> bits;  // kUniformBits
  VarAdvice var;           // kVarSchema
  Advice labels;           // kNodeLabels (§1.5 compressed edge set)

  /// Definition 2/3 accounting of whichever carrier is populated.
  AdviceStats stats(int n) const;
  /// Per-node printable advice strings (locality-audit instances).
  std::vector<std::string> node_strings(int n) const;
};

/// Uniform decode result. Pipelines populate the fields that apply; the
/// rest stay empty.
struct PipelineOutput {
  Orientation orientation;      // kOrientation
  std::vector<int> edge_color;  // kSplitting: 1 = red, 2 = blue
  std::vector<int> node_color;  // kSplitting (1/2), kThreeColoring, kDeltaColoring
  Labeling labeling;            // kSubexpLcl
  std::vector<char> edge_in_x;  // kDecompress: membership per edge
  std::vector<char> edge_known; // kDecompress: recovered (guard-verified) edges
  /// Tolerant decodes: per-node failure flags (empty = no containment ran).
  std::vector<char> failed;
  int rounds = 0;
};

/// The machine-checkable form of a pipeline's paper theorem: expected
/// growth classes versus n for the three measured series, optional absolute
/// bounds, and the statement being claimed. obs/claims.hpp assembles the
/// claim registry from these hooks, so registering a pipeline registers its
/// claims — the two registries cannot drift apart.
struct PipelineClaims {
  obs::GrowthClass rounds_growth = obs::GrowthClass::kConstant;
  obs::GrowthClass bits_growth = obs::GrowthClass::kConstant;
  /// Only meaningful for AdviceCarrier::kUniformBits pipelines.
  obs::GrowthClass ones_growth = obs::GrowthClass::kConstant;
  /// Absolute ceilings checked pointwise at every sweep n; <= 0 = no bound.
  double max_bits_per_node = 0;
  double max_ones_ratio = 0;
  /// The theorem, quoted (the source of truth is arXiv:2405.04519).
  const char* statement = "";
};

/// The fallback-ladder rung a pipeline offers below local repair when
/// repair budgets are exhausted (DESIGN.md §11): tolerant decode -> local
/// repair -> this rung -> flag.
enum class FallbackKind {
  kRecompute,  // advice-free baseline recompute of the failed scope
  kCanonical,  // a canonical advice-free answer always exists (orientation
               // falls back to canonical trail directions)
  kFlagOnly,   // information-theoretically unrecoverable: membership bits
               // carry no redundancy (decompress), so flagging is the floor
};

const char* to_string(FallbackKind kind);

class Pipeline {
 public:
  virtual ~Pipeline() = default;

  virtual PipelineId id() const = 0;
  /// Stable registry name (also the CLI spelling), e.g. "three_coloring".
  virtual const char* name() const = 0;
  virtual const char* paper_section() const = 0;
  virtual AdviceCarrier carrier() const = 0;
  /// Definition 2 schema type of the advice this pipeline emits.
  virtual SchemaType schema_type() const = 0;
  /// Human-readable instance preconditions ("bipartite, even degrees", ...).
  virtual const char* graph_requirements() const = 0;
  /// True if decode_tolerant provides real containment (not strict decode).
  virtual bool supports_tolerant() const { return false; }

  /// The pipeline's variant of the §11 fallback ladder's last pre-flag rung
  /// (what a guarded decode does when local repair is exhausted).
  virtual FallbackKind fallback_kind() const { return FallbackKind::kRecompute; }

  /// A graph family instance (seeded IDs) satisfying graph_requirements(),
  /// with roughly `n` nodes — the uniform way for benches, smoke tests, and
  /// audits to get a valid instance per pipeline.
  virtual Graph make_instance(int n, std::uint64_t seed) const = 0;

  /// Claim hooks (the claims observatory, DESIGN.md §9.6): the growth
  /// classes and bounds this pipeline's theorem promises on make_instance
  /// sweeps, and the config an n-point of such a sweep should run with
  /// (subexp scales x to the family; everything else uses defaults).
  virtual PipelineClaims claims() const = 0;
  virtual PipelineConfig sweep_config(int /*n*/) const { return {}; }

  /// Sweep sizes for the claims observatory, given the caller's base sweep:
  /// a pipeline whose stack stays affordable at large n extends the base so
  /// the scaling-law fits span >= 3 decades (the default base covers ~1.5).
  /// Only applied when the caller did not pin sizes (`lad verify-claims`
  /// without --ns); must return at least 3 sizes if it changes the base.
  virtual std::vector<int> sweep_ns(const std::vector<int>& base) const { return base; }

  // The four stage entry points are non-virtual wrappers (NVI): every
  // consumer of any of the six pipelines funnels through pipeline.cpp's
  // four wrapper bodies, which is where the telemetry spans and the
  // encode/decode/verify counters live — one instrumentation point instead
  // of six copies per stage. Subclasses override the do_* hooks below.

  /// Centralized prover. Generates any witness it needs internally (parity
  /// witness on bipartite instances, exact solver otherwise), seeded by cfg.
  PipelineAdvice encode(const Graph& g, const PipelineConfig& cfg) const;

  /// Strict LOCAL decoder; throws ContractViolation on advice that is
  /// locally detectably inconsistent.
  PipelineOutput decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const;

  /// Containment decoder: failures marked in output.failed, never thrown.
  /// Default = strict decode (see supports_tolerant()).
  PipelineOutput decode_tolerant(const Graph& g, const PipelineAdvice& adv,
                                 const PipelineConfig& cfg) const;

  /// Independent centralized validity check of a decode against the
  /// instance that encode(cfg) describes on g.
  bool verify(const Graph& g, const PipelineOutput& out, const PipelineConfig& cfg) const;

  /// Per-node output digest: the string a node publishes to a distributed
  /// verification echo. Byte-stable (campaign golden outputs pin it).
  virtual std::vector<std::string> node_digests(const Graph& g,
                                                const PipelineOutput& out) const = 0;

 protected:
  virtual PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const = 0;
  virtual PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                                   const PipelineConfig& cfg) const = 0;
  virtual PipelineOutput do_decode_tolerant(const Graph& g, const PipelineAdvice& adv,
                                            const PipelineConfig& cfg) const {
    return do_decode(g, adv, cfg);
  }
  virtual bool do_verify(const Graph& g, const PipelineOutput& out,
                         const PipelineConfig& cfg) const = 0;
};

/// The six paper pipelines, in PipelineId order. Entries are static
/// singletons — pointers stay valid for the program lifetime.
const std::vector<const Pipeline*>& pipelines();

/// Registry lookup by id (total) / by name (nullptr if unknown).
const Pipeline& pipeline(PipelineId id);
const Pipeline* find_pipeline(std::string_view name);

/// Proper 2-coloring by BFS parity, the standard witness on the bipartite
/// instance families (colors 1/2; requires bipartiteness, checked).
std::vector<int> parity_witness(const Graph& g);

/// §1.5 hashed membership instance: in_x[e] is a pure function of
/// (seed, edge endpoint IDs, density), so it can be regenerated for
/// verification on any subgraph that preserves node IDs.
std::vector<char> hashed_edge_membership(const Graph& g, std::uint64_t seed, double density);

}  // namespace lad
