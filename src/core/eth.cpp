#include "core/eth.hpp"

#include <algorithm>

#include "graph/canonical.hpp"
#include "graph/distance.hpp"
#include "graph/rng.hpp"
#include "util/contracts.hpp"

namespace lad {

int OrderInvariantDecoder::decode(const Graph& g, int v, const std::vector<int>& advice) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  LAD_CHECK_MSG(static_cast<int>(advice.size()) == g.n(),
                "order-invariant decoder needs one advice label per node");
  ++lookups_;
  const auto nodes = ball_nodes(g, v, radius_);
  const auto key = canonical_view(g, nodes, v, advice);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  ++misses_;
  const Ball ball = extract_ball(g, v, radius_);
  std::vector<int> advice_in_ball(static_cast<std::size_t>(ball.graph.n()));
  for (int i = 0; i < ball.graph.n(); ++i) {
    advice_in_ball[static_cast<std::size_t>(i)] = advice[ball.to_parent[static_cast<std::size_t>(i)]];
  }
  const int out = rule_(ball, advice_in_ball);
  table_.emplace(key, out);
  return out;
}

AdviceSearchResult enumerate_advice(const Graph& g, const LclProblem& p, int beta,
                                    const OrderInvariantDecoder& dec,
                                    long long max_assignments) {
  LAD_CHECK(p.num_node_labels() > 0 && p.num_edge_labels() == 0);
  LAD_CHECK(beta >= 1 && beta <= 8);
  const int n = g.n();
  const long long values = 1LL << beta;
  dec.reset_counters();

  AdviceSearchResult res;
  std::vector<int> advice(static_cast<std::size_t>(n), 0);
  Labeling lab = Labeling::empty(g);

  while (true) {
    if (max_assignments >= 0 && res.assignments_tried >= max_assignments) break;
    ++res.assignments_tried;

    for (int v = 0; v < n; ++v) lab.node_labels[v] = dec.decode(g, v, advice);
    bool valid = true;
    for (int v = 0; v < n && valid; ++v) valid = p.valid_at(g, lab, v);
    if (valid) {
      res.found = true;
      res.advice = advice;
      res.labels = lab.node_labels;
      break;
    }

    // Next assignment (base-2^beta counter).
    int i = 0;
    while (i < n) {
      if (++advice[static_cast<std::size_t>(i)] < values) break;
      advice[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;  // wrapped around: exhausted
  }

  res.table_size = dec.table_size();
  res.lookups = dec.lookups();
  res.misses = dec.misses();
  return res;
}

bool check_order_invariance(const OrderInvariantDecoder& dec, const Graph& g,
                            const std::vector<int>& advice, int trials, std::uint64_t seed) {
  std::vector<int> base(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) base[v] = dec.decode(g, v, advice);

  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    // Order-preserving reassignment: sorted IDs get strictly increasing
    // random replacements.
    const std::span<const int> by_id = g.nodes_by_id();
    std::vector<NodeId> fresh(static_cast<std::size_t>(g.n()));
    NodeId cur = 0;
    for (std::size_t i = 0; i < by_id.size(); ++i) {
      cur += rng.uniform(1, 1000);
      fresh[static_cast<std::size_t>(by_id[i])] = cur;
    }
    Graph::Builder b;
    for (int v = 0; v < g.n(); ++v) b.add_node(fresh[static_cast<std::size_t>(v)]);
    for (int e = 0; e < g.m(); ++e) b.add_edge(g.edge_u(e), g.edge_v(e));
    const Graph h = std::move(b).build();
    for (int v = 0; v < g.n(); ++v) {
      if (dec.decode(h, v, advice) != base[static_cast<std::size_t>(v)]) return false;
    }
  }
  return true;
}

OrderInvariantDecoder make_verbatim_decoder() {
  return OrderInvariantDecoder(0, [](const Ball& ball, const std::vector<int>& advice) {
    return advice[static_cast<std::size_t>(ball.center)] + 1;
  });
}

OrderInvariantDecoder make_parity_cycle_decoder() {
  return OrderInvariantDecoder(1, [](const Ball& ball, const std::vector<int>& advice) {
    const int c = ball.center;
    const auto nb = ball.graph.neighbors(c);
    int small = c;
    NodeId best = -1;
    for (const int u : nb) {
      if (best == -1 || ball.graph.id(u) < best) {
        best = ball.graph.id(u);
        small = u;
      }
    }
    const int own = advice[static_cast<std::size_t>(c)] & 1;
    const int other = advice[static_cast<std::size_t>(small)] & 1;
    return 1 + ((own * 2 + other) % 3);
  });
}

}  // namespace lad
