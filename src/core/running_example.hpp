// §3.5's running example, end to end — the composability framework on the
// smallest natural problem.
//
//   Π:  given a bipartite graph with all degrees even, 2-color the edges
//       red/blue so every node has equally many red and blue edges.
//
// The paper decomposes Π into
//   Π_v — 2-coloring the nodes            (advice needed: global problem),
//   Π_o — balanced orientation            (advice needed: global problem),
//   Π_e — red := out-edges of white nodes (trivial given Π_v and Π_o).
//
// This module wires the two sub-schemas through the generic composition
// (advice/schema.hpp + advice/uniform.hpp): each sub-schema contributes
// variable-length entries under its own schema id; compose_schemas merges
// the storage nodes; the Lemma 2 conversion turns the result into one bit
// per node. The faster production path for the same problem is
// core/splitting.hpp (which fuses the two sub-schemas into the trail
// markers); this module exists to demonstrate the modular route of §3.5 on
// roomy graphs.
#pragma once

#include <vector>

#include "advice/schema.hpp"
#include "graph/graph.hpp"

namespace lad {

struct RunningExampleParams {
  /// Sub-schema Π_v: one color hint every `color_anchor_spacing` nodes.
  int color_anchor_spacing = 64;
  /// Sub-schema Π_o: one direction hint per orientation segment.
  int orientation_anchor_spacing = 64;
  /// Also produce the uniform 1-bit form (requires a roomy graph).
  bool uniform_one_bit = false;
};

struct RunningExampleEncoding {
  VarAdvice advice;               // composed Π_v (id 0) + Π_o (id 1) entries
  std::vector<char> uniform_bits;  // set when uniform_one_bit
  int uniform_max_payload_bits = 0;
  RunningExampleParams params;
};

/// Prover for Π. Requires: bipartite, all degrees even, connected enough
/// that every node reaches an anchor (checked).
RunningExampleEncoding encode_running_example(const Graph& g,
                                              const RunningExampleParams& params = {});

struct RunningExampleDecodeResult {
  std::vector<int> edge_color;  // 1 = red, 2 = blue (a valid splitting)
  std::vector<int> node_color;  // decoded Π_v
  int rounds = 0;
};

RunningExampleDecodeResult decode_running_example(const Graph& g, const VarAdvice& advice,
                                                  const RunningExampleParams& params = {});

RunningExampleDecodeResult decode_running_example_one_bit(const Graph& g,
                                                          const std::vector<char>& bits,
                                                          int max_payload_bits,
                                                          const RunningExampleParams& params = {});

}  // namespace lad
