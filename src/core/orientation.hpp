// §5 — Almost-balanced orientations with 1 bit of advice per node.
//
// Construction (faithful to the paper, with the LLL existence argument
// replaced by constructive re-sampling — see DESIGN.md §2):
//
//   1. Each node locally pairs its incident edges (ID-sorted ports, pairs
//      (0,1), (2,3), ...), decomposing E(G) into the trails of the virtual
//      graph G' (cycles, plus paths when odd degrees exist). Orienting each
//      trail consistently yields |indeg - outdeg| <= 1 at every node, = 0 at
//      even-degree nodes — the paper's almost-balanced orientation.
//   2. Trails of length <= short_trail_threshold need no advice: a trail
//      node walks the whole trail and applies a canonical ID rule (the
//      paper's "largest ID on the cycle" rule).
//   3. On longer trails the schema plants directional markers roughly every
//      `spacing` trail steps (advice/trailcode.hpp); the unique direction in
//      which a marker parses *is* the trail's orientation. Marker positions
//      are re-sampled along their trails until no stray bit pollutes any
//      marked trail — the constructive counterpart of the paper's
//      Lovász-Local-Lemma shifting.
//
// Decoding is a T(Δ)-round LOCAL algorithm (independent of n): walk your own
// trails up to max(threshold, walk_limit) steps and orient.
#pragma once

#include <cstdint>
#include <vector>

#include "advice/trailcode.hpp"
#include "graph/checkers.hpp"
#include "graph/euler.hpp"
#include "graph/graph.hpp"

namespace lad {

struct OrientationParams {
  /// Trails up to this length are oriented by the canonical ID rule.
  int short_trail_threshold = 40;
  /// Target spacing between markers along long trails (sparsity knob:
  /// larger spacing = sparser 1s = more decoding rounds).
  int marker_spacing = 40;
  int marker_jitter = 10;
  int max_resample_rounds = 50000;
  std::uint64_t seed = 12345;
};

struct OrientationEncoding {
  std::vector<char> bits;   // uniform 1-bit advice, one bit per node
  int walk_limit = 0;       // decoder trail-walk radius for marked trails
  int num_marked_trails = 0;
  int resample_rounds = 0;  // constructive-LLL cost paid by the encoder
  OrientationParams params;
};

/// Centralized prover (Definition 2's function f): computes the
/// 1-bit-per-node advice of the almost-balanced-orientation schema.
OrientationEncoding encode_orientation_advice(const Graph& g,
                                              const OrientationParams& params = {});

struct OrientationDecodeResult {
  Orientation orientation;
  /// LOCAL rounds consumed: the larger of the short-trail walk and the
  /// marker walk radius actually needed.
  int rounds = 0;
};

/// The T(Δ)-round LOCAL decoder. Every node uses only `bits` and its local
/// trail neighborhood; the simulation orients whole trails at once, which is
/// node-wise equivalent.
OrientationDecodeResult decode_orientation(const Graph& g, const std::vector<char>& bits,
                                           const OrientationParams& params = {});

}  // namespace lad
