#include "core/running_example.hpp"

#include <algorithm>
#include <map>

#include "advice/uniform.hpp"
#include "graph/checkers.hpp"
#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/euler.hpp"
#include "graph/ruling_set.hpp"
#include "util/contracts.hpp"

namespace lad {
namespace {

constexpr int kSchemaNodeColor = 0;   // Π_v entries
constexpr int kSchemaOrientation = 1;  // Π_o entries

// Canonical bipartition: per component, the side of the smallest ID is 1.
std::vector<int> canonical_two_coloring(const Graph& g) {
  LAD_CHECK_MSG(is_bipartite(g), "running example requires a bipartite graph");
  const auto comps = connected_components(g);
  std::vector<int> color(static_cast<std::size_t>(g.n()), 0);
  for (const auto& members : comps.members) {
    const int root = *std::min_element(members.begin(), members.end(),
                                       [&](int a, int b) { return g.id(a) < g.id(b); });
    const auto dist = bfs_distances(g, root);
    for (const int v : members) color[static_cast<std::size_t>(v)] = 1 + (dist[v] % 2);
  }
  return color;
}

int node_on_trail(const Trail& t, int pos) {
  const int L = t.length();
  return t.nodes[static_cast<std::size_t>(((pos % L) + L) % L)];
}

}  // namespace

RunningExampleEncoding encode_running_example(const Graph& g,
                                              const RunningExampleParams& params) {
  for (int v = 0; v < g.n(); ++v) {
    LAD_CHECK_MSG(g.degree(v) % 2 == 0, "running example requires even degrees");
  }
  const auto col = canonical_two_coloring(g);

  RunningExampleEncoding enc;
  enc.params = params;

  // Π_v: one 1-bit color hint on a ruling set.
  for (const int a : ruling_set(g, params.color_anchor_spacing, g.nodes_by_id())) {
    SchemaEntry e;
    e.schema_id = kSchemaNodeColor;
    e.anchor_id = g.id(a);
    e.payload.append(col[static_cast<std::size_t>(a)] == 2);
    enc.advice[a].push_back(std::move(e));
  }

  // Π_o: per trail, a direction hint every `spacing` positions. The payload
  // is the anchor's port of the trail edge *leaving* it in the trail's
  // as-given direction; the edge identifies both the trail and the
  // direction unambiguously (each edge lies on exactly one trail).
  const auto trails = euler_partition(g);
  for (const auto& t : trails) {
    LAD_CHECK(t.closed);  // even degrees: cycles only
    const int L = t.length();
    const int k = std::max(1, L / params.orientation_anchor_spacing);
    for (int i = 0; i < k; ++i) {
      const int pos = static_cast<int>(static_cast<long long>(i) * L / k);
      const int a = node_on_trail(t, pos);
      const int e_out = t.edges[static_cast<std::size_t>(pos)];  // pos -> pos+1
      const int other = g.other_endpoint(e_out, a);
      const int port = g.port_of(a, other);
      LAD_CHECK(port >= 0);
      SchemaEntry e;
      e.schema_id = kSchemaOrientation;
      e.anchor_id = g.id(a);
      e.payload.append_gamma(static_cast<std::uint64_t>(port) + 1);
      enc.advice[a].push_back(std::move(e));
    }
  }

  if (params.uniform_one_bit) {
    auto uni = encode_var_advice_one_bit(g, enc.advice);
    enc.uniform_bits = std::move(uni.bits);
    enc.uniform_max_payload_bits = uni.max_payload_bits;
  }
  return enc;
}

RunningExampleDecodeResult decode_running_example(const Graph& g, const VarAdvice& advice,
                                                  const RunningExampleParams& params) {
  // Collect sub-schema entries.
  std::vector<int> color_anchor_nodes;
  std::map<int, int> color_of_anchor;                // node -> 1/2
  std::map<int, std::vector<int>> out_ports;         // node -> hinted ports
  for (const auto& [node, entries] : advice) {
    (void)node;
    for (const auto& e : entries) {
      const auto anchor = g.find_index(e.anchor_id);
      LAD_CHECK_MSG(anchor.has_value(), "advice anchors unknown node ID " << e.anchor_id);
      const int a = *anchor;
      if (e.schema_id == kSchemaNodeColor) {
        color_anchor_nodes.push_back(a);
        color_of_anchor[a] = e.payload.bit(0) ? 2 : 1;
      } else {
        LAD_CHECK(e.schema_id == kSchemaOrientation);
        int pos = 0;
        out_ports[a].push_back(static_cast<int>(e.payload.read_gamma(pos) - 1));
      }
    }
  }

  RunningExampleDecodeResult res;
  res.node_color.assign(static_cast<std::size_t>(g.n()), 0);
  res.edge_color.assign(static_cast<std::size_t>(g.m()), 0);

  // Π_v: parity propagation from the color anchors.
  LAD_CHECK_MSG(!color_anchor_nodes.empty() || g.n() == 0, "no color anchors decoded");
  const auto dist = bfs_distances_multi(g, color_anchor_nodes);
  int prop_rounds = 0;
  for (int v = 0; v < g.n(); ++v) {
    LAD_CHECK_MSG(dist[v] != kUnreachable, "node out of reach of every color anchor");
    // Walk one BFS path back to the anchor; parity flips per step.
    int cur = v;
    int steps = 0;
    while (dist[cur] != 0) {
      for (const int u : g.neighbors(cur)) {
        if (dist[u] == dist[cur] - 1) {
          cur = u;
          break;
        }
      }
      ++steps;
    }
    const int base = color_of_anchor.at(cur);
    res.node_color[static_cast<std::size_t>(v)] = steps % 2 == 0 ? base : 3 - base;
    prop_rounds = std::max(prop_rounds, steps);
  }

  // Π_o: orient every trail from any hinted edge on it.
  Orientation orient(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);
  const auto trails = euler_partition(g);
  for (const auto& t : trails) {
    const int L = t.length();
    int dir = 0;
    int at = -1;
    for (int pos = 0; pos < L && dir == 0; ++pos) {
      const int a = node_on_trail(t, pos);
      const auto it = out_ports.find(a);
      if (it == out_ports.end()) continue;
      for (const int port : it->second) {
        const int e = g.incident_edges(a)[static_cast<std::size_t>(port)];
        if (e == t.edges[static_cast<std::size_t>(pos)]) {
          dir = +1;  // hinted edge leaves `a` toward pos+1
          at = pos;
        } else if (e == t.edges[static_cast<std::size_t>(((pos - 1) % L + L) % L)]) {
          dir = -1;  // hinted edge leaves `a` toward pos-1
          at = pos;
        }
        if (dir != 0) break;
      }
    }
    LAD_CHECK_MSG(dir != 0, "no orientation hint found on a trail");
    (void)at;
    for (int i = 0; i < L; ++i) {
      const int a = node_on_trail(t, i);
      const int b = node_on_trail(t, i + 1);
      const int e = t.edges[static_cast<std::size_t>(i)];
      const int from = dir > 0 ? a : b;
      orient[static_cast<std::size_t>(e)] =
          g.edge_u(e) == from ? EdgeDir::kForward : EdgeDir::kBackward;
    }
  }

  // Π_e: red = edges leaving white (color-1) nodes.
  for (int e = 0; e < g.m(); ++e) {
    const int tail = orient[static_cast<std::size_t>(e)] == EdgeDir::kForward ? g.edge_u(e)
                                                                              : g.edge_v(e);
    res.edge_color[static_cast<std::size_t>(e)] = res.node_color[static_cast<std::size_t>(tail)];
  }
  res.rounds = prop_rounds + params.orientation_anchor_spacing + 2;
  return res;
}

RunningExampleDecodeResult decode_running_example_one_bit(const Graph& g,
                                                          const std::vector<char>& bits,
                                                          int max_payload_bits,
                                                          const RunningExampleParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "one-bit advice must carry exactly one bit per node");
  LAD_CHECK(max_payload_bits >= 0);
  const auto advice = decode_var_advice_one_bit(g, bits, max_payload_bits);
  return decode_running_example(g, advice, params);
}

}  // namespace lad
