#include "core/splitting.hpp"

#include <algorithm>
#include <deque>

#include "graph/components.hpp"
#include "graph/distance.hpp"

namespace lad {
namespace {

// Canonical bipartition 2-coloring: in each component, the side containing
// the smallest-ID node gets color 1. Both prover and (for gathered small
// components) decoder use this rule.
std::vector<int> canonical_two_coloring(const Graph& g) {
  LAD_CHECK_MSG(is_bipartite(g), "splitting requires a bipartite graph");
  const auto comps = connected_components(g);
  std::vector<int> color(static_cast<std::size_t>(g.n()), 0);
  for (const auto& members : comps.members) {
    const int root = *std::min_element(members.begin(), members.end(), [&](int a, int b) {
      return g.id(a) < g.id(b);
    });
    const auto dist = bfs_distances(g, root);
    for (const int v : members) color[static_cast<std::size_t>(v)] = 1 + (dist[v] % 2);
  }
  return color;
}

int node_on_trail(const Trail& t, int pos) {
  const int L = t.length();
  if (t.closed) return t.nodes[static_cast<std::size_t>(((pos % L) + L) % L)];
  return t.nodes[static_cast<std::size_t>(pos)];
}

}  // namespace

SplittingEncoding encode_splitting_advice(const Graph& g, const SplittingParams& params) {
  for (int v = 0; v < g.n(); ++v) {
    LAD_CHECK_MSG(g.degree(v) % 2 == 0, "splitting requires even degrees, node " << g.id(v));
  }
  const auto col = canonical_two_coloring(g);

  const auto trails = euler_partition(g);
  std::vector<char> needs(trails.size(), 0);
  int marked = 0;
  for (std::size_t t = 0; t < trails.size(); ++t) {
    LAD_CHECK(trails[t].closed);
    if (trails[t].length() > params.orientation.short_trail_threshold) {
      needs[t] = 1;
      ++marked;
    }
  }

  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.orientation.marker_spacing, g.max_degree());
  tp.jitter = params.orientation.marker_jitter;
  tp.max_resample_rounds = params.orientation.max_resample_rounds;
  tp.seed = params.orientation.seed;

  // Payload: the 2-color of the marker's start node (bit 1 <=> color 2).
  auto payload_fn = [&](int t, int start) {
    BitString b;
    b.append(col[static_cast<std::size_t>(node_on_trail(trails[static_cast<std::size_t>(t)],
                                                        start))] == 2);
    return b;
  };
  auto code = encode_trail_marks(g, trails, needs, payload_fn, 1, tp);

  SplittingEncoding enc;
  enc.bits = std::move(code.bits);
  enc.num_marked_trails = marked;
  enc.params = params;
  return enc;
}

SplittingDecodeResult decode_splitting(const Graph& g, const std::vector<char>& bits,
                                       const SplittingParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "splitting advice has " << bits.size() << " bits for n = " << g.n());
  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.orientation.marker_spacing, g.max_degree());
  tp.jitter = params.orientation.marker_jitter;
  BitString one_bit;
  one_bit.append(true);
  const int walk_limit = trail_walk_limit(tp, trail_marker_length(one_bit));

  const auto trails = euler_partition(g);
  SplittingDecodeResult res;
  res.edge_color.assign(static_cast<std::size_t>(g.m()), 0);
  res.node_color.assign(static_cast<std::size_t>(g.n()), 0);
  Orientation orient(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);

  int rounds = 0;
  for (const auto& t : trails) {
    const int L = t.length();
    int dir;
    if (L <= params.orientation.short_trail_threshold) {
      dir = canonical_trail_direction(g, t) ? +1 : -1;
      rounds = std::max(rounds, L);
    } else {
      const auto d = decode_trail_mark(g, t, 0, bits, walk_limit);
      LAD_CHECK_MSG(d.has_value(), "no marker decodable on a long trail");
      dir = d->direction;
      rounds = std::max(rounds, walk_limit);
      // Color every node of the trail by parity from the marker start.
      LAD_CHECK_MSG(!d->payload.empty(), "splitting marker carries no base-color payload");
      const int base = d->payload.bit(0) ? 2 : 1;
      for (int pos = 0; pos < L; ++pos) {
        const int parity = ((pos - d->marker_start) % 2 + 2) % 2;
        res.node_color[static_cast<std::size_t>(node_on_trail(t, pos))] =
            parity == 0 ? base : 3 - base;
      }
    }
    for (int i = 0; i < L; ++i) {
      const int a = node_on_trail(t, i);
      const int b = node_on_trail(t, i + 1);
      const int e = t.edges[static_cast<std::size_t>(i)];
      const int from = dir > 0 ? a : b;
      orient[static_cast<std::size_t>(e)] =
          g.edge_u(e) == from ? EdgeDir::kForward : EdgeDir::kBackward;
    }
  }

  // Color propagation from informed nodes; components with no informed node
  // are gathered whole and colored canonically.
  const auto comps = connected_components(g);
  for (const auto& members : comps.members) {
    std::vector<int> sources;
    for (const int v : members) {
      if (res.node_color[static_cast<std::size_t>(v)] != 0) sources.push_back(v);
    }
    if (sources.empty()) {
      const int root = *std::min_element(members.begin(), members.end(), [&](int a, int b) {
        return g.id(a) < g.id(b);
      });
      const auto dist = bfs_distances(g, root);
      int diam_bound = 0;
      for (const int v : members) {
        res.node_color[static_cast<std::size_t>(v)] = 1 + (dist[v] % 2);
        diam_bound = std::max(diam_bound, dist[v]);
      }
      LAD_CHECK_MSG(diam_bound <= params.gather_bound,
                    "component without markers exceeds gather bound");
      rounds = std::max(rounds, 2 * diam_bound);
      continue;
    }
    const auto dist = bfs_distances_multi(g, sources);
    for (const int v : members) {
      if (res.node_color[static_cast<std::size_t>(v)] != 0) continue;
      // Walk to the nearest informed node; parity of the distance flips the
      // color (bipartite).
      const int d = dist[v];
      // Find the informed neighbor chain: colors alternate along BFS layers.
      // Equivalent: color = informed color flipped d times. We recover the
      // informed color by walking back one BFS tree path.
      int cur = v;
      int steps = 0;
      while (res.node_color[static_cast<std::size_t>(cur)] == 0) {
        for (const int u : g.neighbors(cur)) {
          if (dist[u] == dist[cur] - 1) {
            cur = u;
            break;
          }
        }
        ++steps;
      }
      const int base = res.node_color[static_cast<std::size_t>(cur)];
      res.node_color[static_cast<std::size_t>(v)] = (steps % 2 == 0) ? base : 3 - base;
      rounds = std::max(rounds, walk_limit + d);
    }
  }

  // Edge colors: an edge takes its tail's node color.
  for (int e = 0; e < g.m(); ++e) {
    const int tail = orient[static_cast<std::size_t>(e)] == EdgeDir::kForward ? g.edge_u(e)
                                                                              : g.edge_v(e);
    res.edge_color[static_cast<std::size_t>(e)] = res.node_color[static_cast<std::size_t>(tail)];
  }
  res.rounds = rounds;
  return res;
}

EdgeColoringResult edge_color_bipartite_regular(const Graph& g, const SplittingParams& params) {
  const int delta = g.max_degree();
  LAD_CHECK_MSG(delta >= 1 && (delta & (delta - 1)) == 0, "Δ must be a power of two");
  for (int v = 0; v < g.n(); ++v) {
    LAD_CHECK_MSG(g.degree(v) == delta, "graph must be Δ-regular");
  }
  LAD_CHECK_MSG(is_bipartite(g), "graph must be bipartite");

  EdgeColoringResult res;
  res.edge_color.assign(static_cast<std::size_t>(g.m()), 1);
  res.bits_per_node.assign(static_cast<std::size_t>(g.n()), 0);

  // Work list: subgraphs (edge subsets of g) still of degree > 1, with the
  // color-prefix accumulated so far. Edge colors are the binary strings of
  // red/blue decisions plus one.
  struct Piece {
    std::vector<int> edges;  // parent edge ids
  };
  std::vector<Piece> pieces = {{[&] {
    std::vector<int> all(static_cast<std::size_t>(g.m()));
    for (int e = 0; e < g.m(); ++e) all[static_cast<std::size_t>(e)] = e;
    return all;
  }()}};

  int level_degree = delta;
  while (level_degree > 1) {
    std::vector<Piece> next;
    int level_rounds = 0;
    for (const auto& piece : pieces) {
      // Build the subgraph on the full node set with this edge subset.
      Graph::Builder b;
      for (int v = 0; v < g.n(); ++v) b.add_node(g.id(v));
      for (const int e : piece.edges) b.add_edge(g.edge_u(e), g.edge_v(e));
      Graph sub = std::move(b).build();
      // Map subgraph edges back to parent edge ids.
      std::vector<int> to_parent(static_cast<std::size_t>(sub.m()));
      for (const int e : piece.edges) {
        const int se = sub.edge_between(g.edge_u(e), g.edge_v(e));
        LAD_CHECK(se >= 0);
        to_parent[static_cast<std::size_t>(se)] = e;
      }

      const auto enc = encode_splitting_advice(sub, params);
      const auto dec = decode_splitting(sub, enc.bits, params);
      LAD_CHECK(is_splitting(sub, dec.edge_color));
      level_rounds = std::max(level_rounds, dec.rounds);
      for (int v = 0; v < g.n(); ++v) {
        res.bits_per_node[static_cast<std::size_t>(v)] += 1;
      }

      Piece red, blue;
      for (int se = 0; se < sub.m(); ++se) {
        const int pe = to_parent[static_cast<std::size_t>(se)];
        if (dec.edge_color[static_cast<std::size_t>(se)] == 1) {
          red.edges.push_back(pe);
        } else {
          blue.edges.push_back(pe);
          // Blue branch: set the current binary digit of the color.
          res.edge_color[static_cast<std::size_t>(pe)] += level_degree / 2;
        }
      }
      next.push_back(std::move(red));
      next.push_back(std::move(blue));
    }
    pieces = std::move(next);
    level_degree /= 2;
    res.rounds += level_rounds;
    ++res.levels;
  }
  return res;
}

}  // namespace lad
