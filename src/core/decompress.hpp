// §1.5 / Contribution 4 — distributed decompression of an arbitrary edge set.
//
// Trivially, recovering an arbitrary X ⊆ E needs |E| bits in total, i.e. at
// least d/2 bits per node in d-regular graphs. The schema here matches that
// within +1: store one bit of orientation advice plus an outdegree-length
// membership vector at every node. Since the almost-balanced orientation
// gives outdegree <= ceil(d/2), a degree-d node stores at most
// ceil(d/2) + 1 bits, and X is decompressed locally in T(Δ) rounds
// (orientation decoding + one round to inform edge heads).
#pragma once

#include <vector>

#include "advice/advice.hpp"
#include "core/orientation.hpp"
#include "graph/graph.hpp"

namespace lad {

struct CompressedEdgeSet {
  /// Per-node label: [orientation advice bit] ++ [membership bit of each
  /// outgoing edge, heads ordered by ID]. Length = 1 + outdeg(v).
  Advice labels;
  OrientationParams orientation_params;
};

/// Centralized compressor for an arbitrary X ⊆ E (in_x indexed by edge).
CompressedEdgeSet compress_edge_set(const Graph& g, const std::vector<char>& in_x,
                                    const OrientationParams& params = {});

struct DecompressResult {
  std::vector<char> in_x;  // recovered membership, indexed by edge
  int rounds = 0;
};

/// LOCAL decompressor: decodes the orientation from the first label bits,
/// then every node reads off its outgoing-edge memberships and informs the
/// heads in one extra round.
DecompressResult decompress_edge_set(const Graph& g, const CompressedEdgeSet& c);

/// Bits the trivial encoding (one bit per incident edge) stores at v.
int trivial_bits_at(const Graph& g, int v);

}  // namespace lad
