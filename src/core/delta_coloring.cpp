#include "core/delta_coloring.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "advice/uniform.hpp"
#include "baselines/linial.hpp"
#include "core/cluster_coloring.hpp"
#include "graph/checkers.hpp"
#include "graph/distance.hpp"
#include "lcl/problems.hpp"
#include "lcl/solver.hpp"
#include "util/contracts.hpp"

namespace lad {
namespace {

constexpr int kSchemaCluster = 0;

ClusterColoringParams stage1_params(const DeltaColoringParams& params) {
  ClusterColoringParams cc;
  cc.cluster_spacing = params.cluster_spacing;
  cc.schema_id = kSchemaCluster;
  return cc;
}

// Stages 1-2, shared verbatim by encoder and decoder: advice -> O(Δ^2)
// coloring (Lemma 6.3 module) -> Δ+1 colors by class iteration.
std::pair<std::vector<int>, int> delta_plus_one_stage(const Graph& g, const VarAdvice& advice,
                                                      const DeltaColoringParams& params) {
  const int delta = std::max(1, g.max_degree());
  auto stage1 = decode_cluster_coloring(g, advice, stage1_params(params));
  auto fin = reduce_to_k_by_classes(g, std::move(stage1.coloring), stage1.num_colors, delta + 1);
  return {std::move(fin.colors), stage1.rounds + fin.rounds};
}

// Stage 2.5 (advice-free): shrink the uncolored class Δ+1 by local fixes.
// Per pass, every uncolored node with no smaller-ID uncolored node within
// distance 6 (fix regions have influence radius <= 3, so they stay
// disjoint and each pass is one parallel LOCAL round bundle) takes a free
// color directly, recolors one neighbor, or recolors a neighbor's neighbor
// first (depth 2). Deterministic, shared by encoder and decoder.
int local_fix_uncolored(const Graph& g, int delta, std::vector<int>& psi, int passes) {
  int rounds = 0;
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<int> uncolored;
    for (int v = 0; v < g.n(); ++v) {
      if (psi[v] == delta + 1) uncolored.push_back(v);
    }
    if (uncolored.empty()) break;
    rounds += 7;
    std::vector<char> is_unc(static_cast<std::size_t>(g.n()), 0);
    for (const int u : uncolored) is_unc[u] = 1;
    for (const int u : uncolored) {
      bool eligible = true;
      for (const int w : ball_nodes(g, u, 6)) {
        if (w != u && is_unc[w] && g.id(w) < g.id(u)) eligible = false;
      }
      if (!eligible) continue;
      auto used_by_neighbors = [&](int v) {
        std::vector<char> used(static_cast<std::size_t>(delta) + 2, 0);
        for (const int w : g.neighbors(v)) {
          if (psi[w] <= delta) used[psi[w]] = 1;
        }
        return used;
      };
      const auto used = used_by_neighbors(u);
      int free_color = 0;
      for (int c = 1; c <= delta && !free_color; ++c) {
        if (!used[c]) free_color = c;
      }
      if (free_color) {
        psi[u] = free_color;
        continue;
      }
      // All Δ colors blocked: move aside a neighbor whose color appears
      // exactly once around u (so the move really frees it).
      std::vector<int> count(static_cast<std::size_t>(delta) + 2, 0);
      for (const int w : g.neighbors(u)) {
        if (psi[w] <= delta) ++count[psi[w]];
      }
      bool fixed = false;
      for (const int w : g.neighbors(u)) {
        if (psi[w] > delta || count[psi[w]] != 1) continue;
        const auto wused = used_by_neighbors(w);
        int alt = 0;
        for (int c = 1; c <= delta && !alt; ++c) {
          if (c != psi[w] && !wused[c]) alt = c;
        }
        if (alt) {
          const int freed = psi[w];
          psi[w] = alt;
          psi[u] = freed;
          fixed = true;
          break;
        }
      }
      if (fixed) continue;
      // Depth 2: free a neighbor w by first moving one of w's neighbors z
      // (z's color unique around w, z itself has an alternative).
      for (const int w : g.neighbors(u)) {
        if (fixed) break;
        if (psi[w] > delta || count[psi[w]] != 1) continue;
        std::vector<int> wcount(static_cast<std::size_t>(delta) + 2, 0);
        for (const int z : g.neighbors(w)) {
          if (psi[z] <= delta) ++wcount[psi[z]];
        }
        for (const int z : g.neighbors(w)) {
          if (z == u || psi[z] > delta || wcount[psi[z]] != 1) continue;
          const auto zused = used_by_neighbors(z);
          int zalt = 0;
          for (int c = 1; c <= delta && !zalt; ++c) {
            if (c != psi[z] && c != psi[w] && !zused[c]) zalt = c;
          }
          if (!zalt) continue;
          const int z_old = psi[z];
          psi[z] = zalt;
          const auto wused2 = used_by_neighbors(w);
          int walt = 0;
          for (int c = 1; c <= delta && !walt; ++c) {
            if (c != psi[w] && !wused2[c]) walt = c;
          }
          if (walt) {
            const int freed = psi[w];
            psi[w] = walt;
            psi[u] = freed;
            fixed = true;
            break;
          }
          psi[z] = z_old;  // roll back
        }
      }
    }
  }
  return rounds;
}

// Stage 3 (shared): repair the Δ+1 class in pairwise-separated regions by
// deterministic ball solves. Both encoder and decoder run this identically,
// so for locally repairable instances the repair carries *zero* advice
// bits; the paper's relay-path advice is only needed for instances whose
// repairs cannot be completed in any f(Δ) radius (see DESIGN.md §2).
// Returns the rounds charged; throws if the radius budget is exhausted.
int repair_uncolored(const Graph& g, int delta, std::vector<int>& psi,
                     const DeltaColoringParams& params, int* num_repairs) {
  std::vector<int> uncolored;
  for (int v = 0; v < g.n(); ++v) {
    if (psi[v] == delta + 1) uncolored.push_back(v);
  }
  if (num_repairs != nullptr) *num_repairs = 0;
  if (uncolored.empty()) return 0;

  for (int radius = params.repair_radius; radius <= params.max_repair_radius + 1; ++radius) {
    LAD_CHECK_MSG(radius <= params.max_repair_radius,
                  "Δ-coloring repair failed up to max_repair_radius; "
                  "increase the budget or use a roomier instance");
    // Group uncolored nodes whose radius-R regions could interact; each
    // group is repaired as one region.
    const int join = 2 * radius + 3;
    std::vector<int> group_of(static_cast<std::size_t>(g.n()), -1);
    std::vector<std::vector<int>> groups;
    for (const int u : uncolored) {
      if (group_of[u] != -1) continue;
      const int gi = static_cast<int>(groups.size());
      groups.emplace_back();
      std::vector<int> stack = {u};
      group_of[u] = gi;
      while (!stack.empty()) {
        const int x = stack.back();
        stack.pop_back();
        groups[static_cast<std::size_t>(gi)].push_back(x);
        const auto dist = bfs_distances(g, x, {}, join);
        for (const int y : uncolored) {
          if (group_of[y] == -1 && dist[y] != kUnreachable) {
            group_of[y] = gi;
            stack.push_back(y);
          }
        }
      }
    }

    VertexColoringLcl lcl(delta);
    bool all_ok = true;
    std::vector<int> patched = psi;
    for (std::size_t gi = 0; gi < groups.size() && all_ok; ++gi) {
      std::set<int> region_set;
      for (const int u : groups[gi]) {
        for (const int w : ball_nodes(g, u, radius)) region_set.insert(w);
      }
      std::vector<int> region(region_set.begin(), region_set.end());
      std::set<int> check_set = region_set;
      for (const int w : region) {
        for (const int x : g.neighbors(w)) check_set.insert(x);
      }
      Labeling pinned = Labeling::empty(g);
      for (int v = 0; v < g.n(); ++v) {
        if (!region_set.count(v)) pinned.node_labels[v] = psi[v];
      }
      auto solved = solve_lcl(g, lcl, pinned, region, {},
                              std::vector<int>(check_set.begin(), check_set.end()), 2'000'000);
      if (!solved) {
        all_ok = false;
        break;
      }
      for (const int w : region) patched[w] = solved->node_labels[w];
    }
    if (!all_ok) continue;
    psi = std::move(patched);
    if (num_repairs != nullptr) *num_repairs = static_cast<int>(groups.size());
    return 2 * radius + 3;
  }
  throw ContractViolation("unreachable");
}

}  // namespace

DeltaColoringEncoding encode_delta_coloring_advice(const Graph& g,
                                                   const std::vector<int>& witness,
                                                   const DeltaColoringParams& params) {
  const int delta = std::max(1, g.max_degree());
  LAD_CHECK_MSG(is_proper_coloring(g, witness, delta), "witness is not a proper Δ-coloring");

  DeltaColoringEncoding enc;
  enc.params = params;

  // Stage 1 (Lemma 6.3 schema): cluster colors at cluster centers.
  const auto cc = encode_cluster_coloring_advice(g, stage1_params(params));
  enc.advice = cc.advice;
  enc.num_clusters = cc.num_clusters;

  // Stages 2-3 are deterministic given the advice; the encoder simulates
  // them to confirm feasibility and count repairs.
  auto [psi, stage_rounds] = delta_plus_one_stage(g, enc.advice, params);
  (void)stage_rounds;
  local_fix_uncolored(g, delta, psi, params.local_fix_passes);
  repair_uncolored(g, delta, psi, params, &enc.num_repairs);
  LAD_CHECK(is_proper_coloring(g, psi, delta));

  if (params.uniform_one_bit) {
    auto uni = encode_var_advice_one_bit(g, enc.advice);
    enc.uniform_bits = std::move(uni.bits);
    enc.uniform_max_payload_bits = uni.max_payload_bits;
  }
  return enc;
}

DeltaColoringDecodeResult decode_delta_coloring(const Graph& g, const VarAdvice& advice,
                                                const DeltaColoringParams& params) {
  LAD_CHECK_MSG(advice.empty() ||
                    (advice.begin()->first >= 0 && advice.rbegin()->first < g.n()),
                "delta-coloring advice keyed by a node outside [0, n)");
  const int delta = std::max(1, g.max_degree());
  auto [psi, rounds] = delta_plus_one_stage(g, advice, params);
  rounds += local_fix_uncolored(g, delta, psi, params.local_fix_passes);
  rounds += repair_uncolored(g, delta, psi, params, nullptr);
  DeltaColoringDecodeResult res;
  res.coloring = std::move(psi);
  res.rounds = rounds;
  return res;
}

DeltaColoringDecodeResult decode_delta_coloring_one_bit(const Graph& g,
                                                        const std::vector<char>& bits,
                                                        int max_payload_bits,
                                                        const DeltaColoringParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "one-bit advice must carry exactly one bit per node");
  LAD_CHECK(max_payload_bits >= 0);
  const auto advice = decode_var_advice_one_bit(g, bits, max_payload_bits);
  auto res = decode_delta_coloring(g, advice, params);
  res.rounds += max_encoded_path_length(max_payload_bits) + 2;
  return res;
}

}  // namespace lad
