// §1.2 corollary — locally checkable proofs with 1 bit per node.
//
// For any LCL Π on a subexponential-growth family, the §4 advice *is* a
// locally checkable proof that a solution exists: the verifier decodes the
// advice with the §4 algorithm and then checks Π's constraint in every
// radius-r ball. Completeness: the honest advice decodes to a valid
// solution, all nodes accept. Soundness: if the run fails anywhere — the
// decoding breaks down locally or some constraint is violated — at least
// one node rejects; in particular on instances with no solution every
// advice assignment is rejected. (Note: this is not a 1-round proof
// labeling scheme; the verifier inspects a constant-radius ball, exactly as
// the paper points out.)
#pragma once

#include <vector>

#include "core/subexp_lcl.hpp"
#include "graph/graph.hpp"
#include "lcl/checker.hpp"
#include "lcl/lcl.hpp"

namespace lad {

struct ProofVerificationResult {
  bool accepted = false;
  int rejecting_nodes = 0;  // lower bound: decode failures count as >= 1
  int rounds = 0;
  bool decode_failed = false;
};

/// Honest prover: the §4 encoder.
std::vector<char> make_lcl_proof(const Graph& g, const LclProblem& p,
                                 const SubexpLclParams& params = {},
                                 const Labeling* witness = nullptr);

/// The verifier: decode, then locally check. Never throws — malformed
/// proofs are rejections, not errors.
ProofVerificationResult verify_lcl_proof(const Graph& g, const LclProblem& p,
                                         const std::vector<char>& proof,
                                         const SubexpLclParams& params = {});

}  // namespace lad
