#include "core/three_coloring.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "graph/checkers.hpp"
#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/ruling_set.hpp"
#include "util/contracts.hpp"

namespace lad {
namespace {

// One half of a group: {w} or an adjacent pair {x, y}.
using Half = std::vector<int>;

int color1_neighbor_count(const Graph& g, const std::vector<int>& phi, int v) {
  int c = 0;
  for (const int u : g.neighbors(v)) {
    if (phi[u] == 1) c += 1;
  }
  return c;
}

bool share_color1_neighbor(const Graph& g, const std::vector<int>& phi, int a, int b) {
  for (const int u : g.neighbors(a)) {
    if (phi[u] == 1 && g.adjacent(u, b)) return true;
  }
  return false;
}

// Lemma 7.2 selection: within C-distance `radius` of `from`, find either a
// node w with >= 2 color-1 neighbors, or an adjacent (in C) pair {x, y}
// with no common color-1 neighbor. `eligible` filters candidates.
std::optional<Half> select_half(const Graph& g, const std::vector<int>& phi,
                                const NodeMask& comp_mask, int from, int radius,
                                const std::function<bool(const Half&)>& eligible) {
  const auto near = ball_nodes(g, from, radius, comp_mask);
  for (const int w : near) {
    if (color1_neighbor_count(g, phi, w) >= 2) {
      Half h = {w};
      if (eligible(h)) return h;
    }
  }
  for (const int x : near) {
    for (const int y : g.neighbors(x)) {
      if (!comp_mask[y]) continue;
      if (share_color1_neighbor(g, phi, x, y)) continue;
      Half h = {x, y};
      if (eligible(h)) return h;
    }
  }
  return std::nullopt;
}

struct Group {
  Half s, s_prime;
  std::vector<int> all() const {
    std::vector<int> v = s;
    v.insert(v.end(), s_prime.begin(), s_prime.end());
    return v;
  }
};

// Decoder-side node typing: type-1 bits sit on nodes with <= 1 one-bit
// neighbor. Returns per-node: 0 = no bit, 1 = type-1 (color 1), 2 = type-23.
std::vector<int> classify_bits(const Graph& g, const std::vector<char>& bits) {
  std::vector<int> type(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    if (!bits[v]) continue;
    int one_neighbors = 0;
    for (const int u : g.neighbors(v)) one_neighbors += bits[u] ? 1 : 0;
    type[v] = one_neighbors <= 1 ? 1 : 2;
  }
  return type;
}

}  // namespace

std::vector<int> normalize_to_greedy(const Graph& g, std::vector<int> coloring) {
  LAD_CHECK_MSG(is_proper_coloring(g, coloring, 0), "witness is not a proper coloring");
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < g.n(); ++v) {
      std::vector<char> used(static_cast<std::size_t>(coloring[v]) + 1, 0);
      for (const int u : g.neighbors(v)) {
        if (coloring[u] <= coloring[v]) used[coloring[u]] = 1;
      }
      int c = 1;
      while (used[c]) ++c;
      if (c < coloring[v]) {
        coloring[v] = c;
        changed = true;
      }
    }
  }
  LAD_CHECK(is_greedy_coloring(g, coloring));
  return coloring;
}

ThreeColoringDerived derive_three_coloring_radii(const Graph& g, const ThreeColoringParams& p) {
  ThreeColoringDerived d;
  const int delta = std::max(1, g.max_degree());
  d.candidate_radius = p.candidate_radius > 0 ? p.candidate_radius : delta + 2;
  // Anchors are tried within candidate_radius of r, halves within another
  // candidate_radius, plus 1 for pair partners.
  d.group_radius = 2 * d.candidate_radius + 1;
  d.ruling_alpha = 4 * d.group_radius + 4;
  d.reach = d.ruling_alpha + d.group_radius;  // domination + group offset
  d.large_component_diameter = p.large_component_diameter > 0 ? p.large_component_diameter
                                                              : 2 * d.ruling_alpha;
  return d;
}

ThreeColoringEncoding encode_three_coloring_advice(const Graph& g,
                                                   const std::vector<int>& witness,
                                                   const ThreeColoringParams& params) {
  const auto d = derive_three_coloring_radii(g, params);
  const auto phi = normalize_to_greedy(g, witness);
  LAD_CHECK(is_proper_coloring(g, phi, 3));

  ThreeColoringEncoding enc;
  enc.params = params;
  enc.greedy_phi = phi;
  enc.bits.assign(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    if (phi[v] == 1) enc.bits[v] = 1;
  }

  // Components of G_{2,3}.
  NodeMask mask23(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) mask23[v] = phi[v] >= 2 ? 1 : 0;
  const auto comps = connected_components(g, mask23);

  // Budget: how many group neighbors each color-1 node already has.
  std::vector<int> c1_load(static_cast<std::size_t>(g.n()), 0);
  std::vector<char> in_group(static_cast<std::size_t>(g.n()), 0);

  for (int c = 0; c < comps.count(); ++c) {
    const auto& members = comps.members[c];
    const auto cmask = component_mask(g, comps, c);
    const int diam = component_diameter(g, members.front(), cmask);
    if (diam <= d.large_component_diameter) continue;  // small: no advice

    const auto rc = ruling_set(g, d.ruling_alpha, members, cmask);
    for (const int r : rc) {
      // Eligibility: members must be fresh, keep every adjacent color-1
      // node's load at <= 1, and stay inside the group radius of r.
      const auto rdist = bfs_distances(g, r, cmask, d.group_radius);
      auto fresh = [&](const Half& h, const std::vector<int>& forbidden) {
        for (const int v : h) {
          if (in_group[v] || rdist[v] == kUnreachable) return false;
          for (const int f : forbidden) {
            // Keep halves at G-distance >= 3: no adjacency, no common
            // neighbor of any color.
            if (v == f || g.adjacent(v, f)) return false;
            for (const int u : g.neighbors(v)) {
              if (g.adjacent(u, f)) return false;
            }
          }
          for (const int u : g.neighbors(v)) {
            if (phi[u] == 1 && c1_load[u] >= 1) return false;
          }
        }
        // Within a pair {x, y}: a shared color-1 neighbor is already
        // excluded by the Lemma 7.2 condition.
        return true;
      };

      std::optional<Group> group;
      const auto anchors = ball_nodes(g, r, d.candidate_radius, cmask);
      int tries = 0;
      for (const int v : anchors) {
        if (++tries > params.max_candidate_tries) break;
        auto s = select_half(g, phi, cmask, v, d.candidate_radius,
                             [&](const Half& h) { return fresh(h, {}); });
        if (!s) continue;
        auto s2 = select_half(g, phi, cmask, v, d.candidate_radius,
                              [&](const Half& h) { return fresh(h, *s); });
        if (!s2) continue;
        group = Group{*s, *s2};
        break;
      }
      LAD_CHECK_MSG(group.has_value(),
                    "no parity group found near ruling node " << g.id(r));

      // Write bits per the parity rule.
      const auto all = group->all();
      const int s_min = *std::min_element(all.begin(), all.end(), [&](int a, int b) {
        return g.id(a) < g.id(b);
      });
      const bool s_in_first =
          std::find(group->s.begin(), group->s.end(), s_min) != group->s.end();
      std::vector<int> written;
      if (phi[s_min] == 2) {
        written = s_in_first ? group->s : group->s_prime;
      } else {
        LAD_CHECK(phi[s_min] == 3);
        written = all;
      }
      for (const int v : written) {
        enc.bits[v] = 1;
        in_group[v] = 1;
        for (const int u : g.neighbors(v)) {
          if (phi[u] == 1) ++c1_load[u];
        }
      }
      ++enc.num_groups;
    }
  }

  // Invariant checks the decoder relies on.
  const auto type = classify_bits(g, enc.bits);
  for (int v = 0; v < g.n(); ++v) {
    if (phi[v] == 1) {
      LAD_CHECK_MSG(type[v] == 1, "color-1 node " << g.id(v) << " lost its type-1 bit");
    } else if (in_group[v]) {
      LAD_CHECK_MSG(type[v] == 2, "group member " << g.id(v) << " not typed 23");
    } else {
      LAD_CHECK_MSG(type[v] == 0, "stray bit at " << g.id(v));
    }
  }
  return enc;
}

namespace {

// Shared decode body. With `failed == nullptr` any locally-detected
// inconsistency throws (strict mode). With a non-null `failed`, the failure
// is contained to its natural scope — the component for the canonical
// branch, the single node for the group-parity branch — which stays
// uncolored (0) and is marked in `failed` for the caller's repair pass.
ThreeColoringDecodeResult decode_three_coloring_impl(const Graph& g,
                                                     const std::vector<char>& bits,
                                                     const ThreeColoringParams& params,
                                                     std::vector<char>* failed) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "three-coloring advice has " << bits.size() << " bits for n = " << g.n());
  const auto d = derive_three_coloring_radii(g, params);
  const auto type = classify_bits(g, bits);

  ThreeColoringDecodeResult res;
  res.coloring.assign(static_cast<std::size_t>(g.n()), 0);
  int rounds = 1;  // classifying bits costs one round

  // The G_{2,3} mask is locally computable: everyone knows every node's type.
  NodeMask mask23(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    if (type[v] == 1) {
      res.coloring[v] = 1;
    } else {
      mask23[v] = 1;
    }
  }

  // Runs `body`; in tolerant mode a ContractViolation is contained to
  // `scope`, which is left uncolored and marked failed.
  const auto contain = [&](const std::vector<int>& scope, auto&& body) {
    if (failed == nullptr) {
      body();
      return;
    }
    try {
      body();
    } catch (const ContractViolation&) {
      for (const int v : scope) {
        res.coloring[v] = 0;
        (*failed)[static_cast<std::size_t>(v)] = 1;
      }
    }
  };

  const auto comps = connected_components(g, mask23);
  const int collect_radius = 2 * d.group_radius;
  for (int c = 0; c < comps.count(); ++c) {
    const auto& members = comps.members[c];
    const auto cmask = component_mask(g, comps, c);

    // Does this component contain any type-23 bit?
    std::vector<int> group_nodes;
    for (const int v : members) {
      if (type[v] == 2) group_nodes.push_back(v);
    }

    if (group_nodes.empty()) {
      // Small component: canonical 2-coloring, side of the smallest ID gets
      // color 2. Each node gathers the whole component.
      contain(members, [&] {
        const int root = *std::min_element(members.begin(), members.end(), [&](int a, int b) {
          return g.id(a) < g.id(b);
        });
        const auto dist = bfs_distances(g, root, cmask);
        int ecc = 0;
        for (const int v : members) {
          LAD_CHECK_MSG(dist[v] != kUnreachable, "component disconnected under mask");
          res.coloring[v] = dist[v] % 2 == 0 ? 2 : 3;
          ecc = std::max(ecc, dist[v]);
        }
        LAD_CHECK_MSG(is_bipartite(g, cmask), "advice inconsistent: G_{2,3} not bipartite");
        rounds = std::max(rounds, 2 * ecc + 1);
      });
      continue;
    }

    // Large component: every node finds the nearest group, counts its
    // connected components, and 2-colors by parity from the group's
    // smallest-ID visible node s.
    const auto gdist = bfs_distances_multi(g, group_nodes, cmask);
    for (const int v : members) {
      contain({v}, [&] {
      LAD_CHECK_MSG(gdist[v] != kUnreachable && gdist[v] <= d.reach + collect_radius,
                    "node " << g.id(v) << " cannot reach a parity group");
      // Nearest group node t0.
      int t0 = -1;
      {
        int cur = v;
        while (type[cur] != 2) {
          for (const int u : g.neighbors(cur)) {
            if (cmask[u] && gdist[u] == gdist[cur] - 1) {
              cur = u;
              break;
            }
          }
        }
        t0 = cur;
      }
      // Collect the group around t0 and count its components.
      const auto near = ball_nodes(g, t0, collect_radius, cmask);
      std::vector<int> grp;
      for (const int u : near) {
        if (type[u] == 2) grp.push_back(u);
      }
      // Component count within grp (groups have halves of size 1 or 2).
      std::vector<char> in_grp(static_cast<std::size_t>(g.n()), 0);
      for (const int u : grp) in_grp[u] = 1;
      int comps_in_group = 0;
      std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
      for (const int u : grp) {
        if (seen[u]) continue;
        ++comps_in_group;
        std::vector<int> stack = {u};
        seen[u] = 1;
        while (!stack.empty()) {
          const int x = stack.back();
          stack.pop_back();
          for (const int y : g.neighbors(x)) {
            if (in_grp[y] && !seen[y]) {
              seen[y] = 1;
              stack.push_back(y);
            }
          }
        }
      }
      LAD_CHECK_MSG(comps_in_group == 1 || comps_in_group == 2,
                    "malformed parity group near " << g.id(t0));
      const int s = *std::min_element(grp.begin(), grp.end(), [&](int a, int b) {
        return g.id(a) < g.id(b);
      });
      const int phi_s = comps_in_group == 1 ? 2 : 3;
      const int dvs = distance(g, v, s, cmask);
      LAD_CHECK(dvs != kUnreachable);
      res.coloring[v] = dvs % 2 == 0 ? phi_s : 5 - phi_s;
      rounds = std::max(rounds, gdist[v] + 2 * collect_radius + 1);
      });
    }
  }
  res.rounds = rounds;
  return res;
}

}  // namespace

ThreeColoringDecodeResult decode_three_coloring(const Graph& g, const std::vector<char>& bits,
                                                const ThreeColoringParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "3-coloring schema is one bit per node");
  return decode_three_coloring_impl(g, bits, params, nullptr);
}

ThreeColoringDecodeResult decode_three_coloring_tolerant(const Graph& g,
                                                         const std::vector<char>& bits,
                                                         std::vector<char>& failed,
                                                         const ThreeColoringParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "3-coloring schema is one bit per node");
  failed.assign(static_cast<std::size_t>(g.n()), 0);
  return decode_three_coloring_impl(g, bits, params, &failed);
}

}  // namespace lad
