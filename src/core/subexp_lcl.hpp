// §4 — Any LCL on graphs of subexponential growth is solvable with 1 bit of
// advice per node in O(1) rounds (Theorem 4.1).
//
// Construction (the paper's, with tunable constants):
//   * distance-(sep_mult·x) coloring of the nodes; colors are processed in
//     ascending phases;
//   * in phase i every still-unassigned node v of color i with
//     |N_=2x(v)| > 0 in the residual graph G_i becomes a cluster center;
//     the Lemma 4.3 radius α_v ∈ [x, 2x] bounds the border against the
//     interior, and the cluster is N_<=α_v+r(v) in G_i;
//   * the center's phase color i is written in 1-bits along a BFS path of
//     length y = x/2 inside the cluster, as
//       B'' = 11110110 · map(0 -> 110, 1 -> 1110 over bits(i)) · 0;
//   * a fixed global solution ℓ of the LCL is pinned on the ring
//     S_v = { u in cluster : dist_G(u, outside) <= r̄ } (r̄ = checkability
//     radius), encoded on an independent set of interior zero-nodes (these
//     1-bits are isolated, the path 1-bits never are — that is how the
//     decoder tells them apart, exactly as in the paper);
//   * nodes never assigned to a cluster see their whole residual component
//     within 2x and complete by brute force; cluster interiors complete by
//     brute force respecting the pinned rings.
//
// The advice can be made arbitrarily sparse by growing x (E8 measures the
// ones-ratio as a function of x).
//
// The constants are the knob the theory hides in "large enough r": on
// linear-growth families (paths, cycles) x ≈ 60-120 suffices; on
// quadratic-growth families (grids) the same construction needs x in the
// hundreds and million-node instances — see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lcl/lcl.hpp"

namespace lad {

struct SubexpLclParams {
  int x = 100;         // base scale (paper's x)
  int growth_r = 2;    // paper's r (cluster margin)
  int sep_mult = 5;    // distance coloring uses distance sep_mult * x
  int max_colors = 0;  // decoder phase bound; 0 = 4 * sep_mult * x + 4
  std::int64_t solver_budget = 50'000'000;
};

struct SubexpLclEncoding {
  std::vector<char> bits;  // uniform 1-bit advice
  int num_clusters = 0;
  int num_phase_colors = 0;  // colors actually used by the distance coloring
  SubexpLclParams params;
};

/// Centralized prover: solves the LCL globally (or uses `witness` if given)
/// and produces the 1-bit-per-node advice.
SubexpLclEncoding encode_subexp_lcl_advice(const Graph& g, const LclProblem& p,
                                           const SubexpLclParams& params = {},
                                           const Labeling* witness = nullptr);

struct SubexpLclDecodeResult {
  Labeling labeling;
  int rounds = 0;  // O(1): a function of the parameters and Δ only
};

/// LOCAL decoder: recovers clustering and pinned rings from the bits, then
/// completes each cluster / residual component by brute force. Throws
/// ContractViolation on advice that is locally detectably inconsistent.
SubexpLclDecodeResult decode_subexp_lcl(const Graph& g, const LclProblem& p,
                                        const std::vector<char>& bits,
                                        const SubexpLclParams& params = {});

/// Fault-tolerant decoder: a cluster whose ring pin or interior completion
/// fails — or an infeasible residual region — is contained instead of
/// aborting the run. Affected nodes stay unlabeled (-1) and are marked in
/// `failed` (resized to n) for a later repair pass; a wrong-sized bit
/// vector still throws, as no per-node containment exists.
SubexpLclDecodeResult decode_subexp_lcl_tolerant(const Graph& g, const LclProblem& p,
                                                 const std::vector<char>& bits,
                                                 std::vector<char>& failed,
                                                 const SubexpLclParams& params = {});

}  // namespace lad
