#include "core/subexp_lcl.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/distance_coloring.hpp"
#include "lcl/solver.hpp"
#include "util/contracts.hpp"

namespace lad {
namespace {

constexpr int kPreamble[8] = {1, 1, 1, 1, 0, 1, 1, 0};

int label_width(int k) {
  if (k <= 1) return 0;
  int w = 0;
  int v = 1;
  while (v < k) {
    v *= 2;
    ++w;
  }
  return w;
}

// Binary code of a phase color (MSB first, no leading zeros).
std::vector<int> phase_code_bits(int color) {
  std::vector<int> bits;
  for (int c = color; c > 0; c >>= 1) bits.push_back(c & 1);
  std::reverse(bits.begin(), bits.end());
  return bits;
}

// B'' = preamble · map(0 -> 110, 1 -> 1110) · 0.
std::vector<int> expand_phase_code(int color) {
  std::vector<int> out(std::begin(kPreamble), std::end(kPreamble));
  for (const int b : phase_code_bits(color)) {
    if (b) {
      out.insert(out.end(), {1, 1, 1, 0});
    } else {
      out.insert(out.end(), {1, 1, 0});
    }
  }
  out.push_back(0);
  return out;
}

struct Cluster {
  int center = 0;
  int color = 0;
  int alpha = 0;
  std::vector<int> members;  // N_<=alpha+r in G_i, sorted by index
  std::vector<int> n_alpha;  // N_<=alpha in G_i, sorted by index

  bool operator==(const Cluster& o) const {
    return center == o.center && color == o.color && alpha == o.alpha && members == o.members &&
           n_alpha == o.n_alpha;
  }
};

// Lemma 4.3: pick α in [x, 2x] with the best interior-to-border ratio.
int lemma3_alpha(const Graph& g, const NodeMask& mask, int v, int x, int r) {
  const auto dist = bfs_distances(g, v, mask, 2 * x + r);
  std::vector<int> layer(static_cast<std::size_t>(2 * x + r) + 1, 0);
  for (int u = 0; u < g.n(); ++u) {
    if (dist[u] != kUnreachable) ++layer[static_cast<std::size_t>(dist[u])];
  }
  std::vector<long long> cum(layer.size());
  long long acc = 0;
  for (std::size_t j = 0; j < layer.size(); ++j) {
    acc += layer[j];
    cum[j] = acc;
  }
  int best_alpha = x;
  double best_ratio = -1.0;
  for (int a = x; a <= 2 * x; ++a) {
    const double border = std::max(1, layer[static_cast<std::size_t>(a + r)]);
    const double ratio = static_cast<double>(cum[static_cast<std::size_t>(a)]) / border;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_alpha = a;
    }
  }
  return best_alpha;
}

// A BFS path (p_0, ..., p_{y-1}) inside the mask with dist(v, p_j) = j.
std::vector<int> path_of_length(const Graph& g, const NodeMask& mask, int v, int y) {
  const auto dist = bfs_distances(g, v, mask, y - 1);
  int target = -1;
  for (int u = 0; u < g.n() && target < 0; ++u) {
    if (dist[u] == y - 1) target = u;
  }
  LAD_CHECK_MSG(target >= 0, "no node at distance " << y - 1 << " from a cluster center");
  auto path = shortest_path(g, v, target, mask);
  LAD_CHECK(static_cast<int>(path.size()) == y);
  return path;
}

// Decoder-side candidate test: does v look like a center of phase color c
// in the residual graph `mask`? Returns the parsed color.
std::optional<int> parse_center(const Graph& g, const NodeMask& mask,
                                const std::vector<char>& bitp, int v,
                                const SubexpLclParams& p) {
  if (!bitp[v]) return std::nullopt;
  const int x = p.x;
  const int y = x / 2;
  const auto dist = bfs_distances(g, v, mask, 2 * x);

  bool has_far = false;
  for (int u = 0; u < g.n(); ++u) has_far = has_far || dist[u] == 2 * x;
  if (!has_far) return std::nullopt;

  // layer_node[j]: unique marked node at distance j (-1 none, -2 several).
  std::vector<int> layer_node(static_cast<std::size_t>(x) + 1, -1);
  for (int u = 0; u < g.n(); ++u) {
    if (dist[u] == kUnreachable || dist[u] > x || !bitp[u]) continue;
    auto& slot = layer_node[static_cast<std::size_t>(dist[u])];
    slot = slot == -1 ? u : -2;
  }
  auto bit_at = [&](int j) -> int {
    if (j > x) return 0;
    if (layer_node[static_cast<std::size_t>(j)] == -2) return -1;
    return layer_node[static_cast<std::size_t>(j)] >= 0 ? 1 : 0;
  };
  // No marked nodes beyond the path zone.
  for (int j = y + 1; j <= x; ++j) {
    if (bit_at(j) != 0) return std::nullopt;
  }
  for (int j = 0; j < 8; ++j) {
    if (bit_at(j) != kPreamble[j]) return std::nullopt;
  }
  // Adjacency chain where consecutive layers are both marked.
  auto chained = [&](int j) {
    const int a = layer_node[static_cast<std::size_t>(j)];
    const int b = layer_node[static_cast<std::size_t>(j + 1)];
    return a >= 0 && b >= 0 && g.adjacent(a, b);
  };
  if (!(chained(0) && chained(1) && chained(2) && chained(5))) return std::nullopt;

  // Parse (110 | 1110)* 0.
  std::vector<int> code;
  int j = 8;
  while (true) {
    if (j > y) return std::nullopt;
    const int b0 = bit_at(j);
    if (b0 == -1) return std::nullopt;
    if (b0 == 0) break;
    if (bit_at(j + 1) != 1 || !chained(j)) return std::nullopt;
    if (bit_at(j + 2) == 0) {
      code.push_back(0);
      j += 3;
    } else if (bit_at(j + 2) == 1 && bit_at(j + 3) == 0 && chained(j + 1)) {
      code.push_back(1);
      j += 4;
    } else {
      return std::nullopt;
    }
  }
  // Everything after the terminator inside the path zone must be clear.
  for (int k = j; k <= y; ++k) {
    if (bit_at(k) != 0) return std::nullopt;
  }
  if (code.empty()) return std::nullopt;
  int color = 0;
  for (const int b : code) color = 2 * color + b;
  return color >= 1 ? std::optional<int>(color) : std::nullopt;
}

// The phase loop shared by the decoder and the encoder's verification pass:
// recover all clusters from the non-isolated bits.
std::vector<Cluster> recover_clusters(const Graph& g, const std::vector<char>& bitp,
                                      const SubexpLclParams& p, int max_colors) {
  std::vector<Cluster> clusters;
  NodeMask unassigned(static_cast<std::size_t>(g.n()), 1);
  // parse_center depends only on the radius-2x residual ball of v, so its
  // result is memoized and recomputed only when a nearby cluster was carved
  // out of the residual graph.
  std::vector<char> dirty(static_cast<std::size_t>(g.n()), 1);
  std::vector<int> memo(static_cast<std::size_t>(g.n()), -1);
  for (int color = 1; color <= max_colors; ++color) {
    std::vector<Cluster> found;
    for (int v = 0; v < g.n(); ++v) {
      if (!unassigned[v] || !bitp[v]) continue;
      if (dirty[v]) {
        const auto parsed = parse_center(g, unassigned, bitp, v, p);
        memo[v] = parsed ? *parsed : 0;
        dirty[v] = 0;
      }
      if (memo[v] != color) continue;
      Cluster c;
      c.center = v;
      c.color = color;
      c.alpha = lemma3_alpha(g, unassigned, v, p.x, p.growth_r);
      c.n_alpha = ball_nodes(g, v, c.alpha, unassigned);
      c.members = ball_nodes(g, v, c.alpha + p.growth_r, unassigned);
      std::sort(c.n_alpha.begin(), c.n_alpha.end());
      std::sort(c.members.begin(), c.members.end());
      found.push_back(std::move(c));
    }
    for (const auto& c : found) {
      for (const int u : c.members) unassigned[u] = 0;
      // Residual balls of nodes within 2x of the carved cluster changed.
      for (const int u : ball_nodes(g, c.center, 4 * p.x + p.growth_r + 1)) dirty[u] = 1;
    }
    for (auto& c : found) clusters.push_back(std::move(c));
  }
  return clusters;
}

// Ring S_v: cluster members within G-distance `margin` of any non-member.
// The margin is 2*r̄ (a strengthening of the paper's r̄ that makes all
// region completions strictly independent: no radius-r̄ ball can touch two
// different free regions — see the header notes).
std::vector<int> ring_of(const Graph& g, const std::vector<int>& members, int rbar) {
  std::vector<char> in(static_cast<std::size_t>(g.n()), 0);
  for (const int v : members) in[v] = 1;
  std::vector<int> sources;
  for (const int v : members) {
    for (const int u : g.neighbors(v)) {
      if (!in[u]) sources.push_back(u);
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  std::vector<int> ring;
  if (sources.empty()) return ring;
  // Sources are outside nodes at distance 0, so dist[u] below is exactly
  // dist_G(u, outside) for members u.
  const auto dist = bfs_distances_multi(g, sources, {}, rbar);
  for (const int v : members) {
    if (dist[v] != kUnreachable && dist[v] <= rbar) ring.push_back(v);
  }
  return ring;
}

// The interior slots available for the solution encoding: nodes of
// N_<=alpha that neither carry a clustering bit nor neighbor one, greedily
// thinned to an independent set (ID order).
std::vector<int> solution_slots(const Graph& g, const Cluster& c, const std::vector<char>& bitp) {
  std::vector<int> z;
  for (const int u : c.n_alpha) {
    if (bitp[u]) continue;
    bool near_marked = false;
    for (const int w : g.neighbors(u)) near_marked = near_marked || bitp[w];
    if (!near_marked) z.push_back(u);
  }
  std::sort(z.begin(), z.end(), [&](int a, int b) { return g.id(a) < g.id(b); });
  std::vector<int> slots;
  std::vector<char> blocked(static_cast<std::size_t>(g.n()), 0);
  for (const int u : z) {
    if (blocked[u]) continue;
    slots.push_back(u);
    for (const int w : g.neighbors(u)) blocked[w] = 1;
  }
  return slots;
}

// Bits needed to pin ℓ on the ring: per ring node (ID order), its node
// label then its incident edge labels in port order.
int ring_code_length(const Graph& g, const LclProblem& p, const std::vector<int>& ring) {
  const int wn = label_width(p.num_node_labels());
  const int we = label_width(p.num_edge_labels());
  int len = 0;
  for (const int v : ring) {
    if (p.num_node_labels() > 0) len += std::max(1, wn);
    if (p.num_edge_labels() > 0) len += std::max(1, we) * g.degree(v);
  }
  return len;
}

std::vector<char> ring_code_build(const Graph& g, const LclProblem& p,
                                  const std::vector<int>& ring, const Labeling& ell) {
  const int wn = std::max(1, label_width(p.num_node_labels()));
  const int we = std::max(1, label_width(p.num_edge_labels()));
  std::vector<char> out;
  auto push = [&](int value, int width) {
    for (int i = width - 1; i >= 0; --i) out.push_back((value >> i) & 1);
  };
  std::vector<int> sorted = ring;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) { return g.id(a) < g.id(b); });
  for (const int v : sorted) {
    if (p.num_node_labels() > 0) push(ell.node_labels[v] - 1, wn);
    if (p.num_edge_labels() > 0) {
      for (const int e : g.incident_edges(v)) push(ell.edge_labels[e] - 1, we);
    }
  }
  return out;
}

void ring_code_apply(const Graph& g, const LclProblem& p, const std::vector<int>& ring,
                     const std::vector<char>& code, Labeling& into) {
  const int wn = std::max(1, label_width(p.num_node_labels()));
  const int we = std::max(1, label_width(p.num_edge_labels()));
  std::size_t pos = 0;
  auto pull = [&](int width) {
    int v = 0;
    for (int i = 0; i < width; ++i) v = 2 * v + code[pos++];
    return v;
  };
  std::vector<int> sorted = ring;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) { return g.id(a) < g.id(b); });
  for (const int v : sorted) {
    if (p.num_node_labels() > 0) into.node_labels[v] = 1 + pull(wn);
    if (p.num_edge_labels() > 0) {
      for (const int e : g.incident_edges(v)) into.edge_labels[e] = 1 + pull(we);
    }
  }
  LAD_CHECK(pos == code.size());
}

std::vector<char> nonisolated_ones(const Graph& g, const std::vector<char>& bits) {
  std::vector<char> bitp(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    if (!bits[v]) continue;
    for (const int u : g.neighbors(v)) {
      if (bits[u]) {
        bitp[v] = 1;
        break;
      }
    }
  }
  return bitp;
}

int resolve_max_colors(const SubexpLclParams& p) {
  return p.max_colors > 0 ? p.max_colors : 4 * p.sep_mult * p.x + 4;
}

}  // namespace

SubexpLclEncoding encode_subexp_lcl_advice(const Graph& g, const LclProblem& p,
                                           const SubexpLclParams& params,
                                           const Labeling* witness) {
  const int x = params.x;
  const int y = x / 2;
  const int r = params.growth_r;
  LAD_CHECK(x >= 16 && r >= 1);
  const int max_colors = resolve_max_colors(params);

  SubexpLclEncoding enc;
  enc.params = params;
  enc.bits.assign(static_cast<std::size_t>(g.n()), 0);

  // Phase colors: a distance-(sep_mult*x) coloring.
  const auto colors = distance_coloring(g, params.sep_mult * x);
  enc.num_phase_colors = num_colors(colors);
  LAD_CHECK_MSG(enc.num_phase_colors <= max_colors,
                "distance coloring used " << enc.num_phase_colors << " > max_colors "
                                          << max_colors);

  // Cluster formation + path encoding, phase by phase.
  std::vector<Cluster> clusters;
  NodeMask unassigned(static_cast<std::size_t>(g.n()), 1);
  for (int color = 1; color <= enc.num_phase_colors; ++color) {
    std::vector<Cluster> found;
    for (int v = 0; v < g.n(); ++v) {
      if (!unassigned[v] || colors[v] != color) continue;
      const auto dist = bfs_distances(g, v, unassigned, 2 * x);
      bool has_far = false;
      for (int u = 0; u < g.n(); ++u) has_far = has_far || dist[u] == 2 * x;
      if (!has_far) continue;
      Cluster c;
      c.center = v;
      c.color = color;
      c.alpha = lemma3_alpha(g, unassigned, v, x, r);
      c.n_alpha = ball_nodes(g, v, c.alpha, unassigned);
      c.members = ball_nodes(g, v, c.alpha + r, unassigned);
      std::sort(c.n_alpha.begin(), c.n_alpha.end());
      std::sort(c.members.begin(), c.members.end());

      const auto code = expand_phase_code(color);
      LAD_CHECK_MSG(static_cast<int>(code.size()) <= y,
                    "phase code of color " << color << " needs " << code.size()
                                           << " nodes but the path budget is y = " << y
                                           << "; increase x");
      const auto path = path_of_length(g, unassigned, v, y);
      for (std::size_t j = 0; j < code.size(); ++j) {
        if (code[j]) enc.bits[path[j]] = 1;
      }
      found.push_back(std::move(c));
    }
    for (const auto& c : found) {
      for (const int u : c.members) unassigned[u] = 0;
    }
    for (auto& c : found) clusters.push_back(std::move(c));
  }
  enc.num_clusters = static_cast<int>(clusters.size());

  // Unassigned nodes must see their whole residual component within 2x.
  {
    const auto comps = connected_components(g, unassigned);
    for (const auto& members : comps.members) {
      const int diam = component_diameter(g, members.front(), unassigned);
      LAD_CHECK_MSG(diam <= 2 * x, "residual component of diameter " << diam << " > 2x");
    }
  }

  // The decoder must recover exactly this clustering from the bits.
  {
    const auto recovered = recover_clusters(g, enc.bits, params, max_colors);
    LAD_CHECK_MSG(recovered.size() == clusters.size(),
                  "decoder recovers " << recovered.size() << " clusters, expected "
                                      << clusters.size());
    auto key = [](const Cluster& c) { return c.center; };
    auto sorted_a = clusters;
    auto sorted_b = recovered;
    std::sort(sorted_a.begin(), sorted_a.end(),
              [&](const Cluster& a, const Cluster& b) { return key(a) < key(b); });
    std::sort(sorted_b.begin(), sorted_b.end(),
              [&](const Cluster& a, const Cluster& b) { return key(a) < key(b); });
    for (std::size_t i = 0; i < sorted_a.size(); ++i) {
      LAD_CHECK_MSG(sorted_a[i] == sorted_b[i], "cluster recovery mismatch at center "
                                                    << g.id(sorted_a[i].center));
    }
  }

  // A global solution ℓ to pin on the rings.
  Labeling ell;
  if (witness != nullptr) {
    ell = *witness;
  } else {
    auto solved = solve_lcl(g, p, params.solver_budget);
    LAD_CHECK_MSG(solved.has_value(), "LCL " << p.name() << " unsolvable on this graph");
    ell = std::move(*solved);
  }
  LAD_CHECK(is_valid_labeling(g, p, ell));

  // Ring encodings on interior independent sets. The clustering bits are
  // exactly the non-isolated ones at this point.
  const auto bitp = enc.bits;
  for (const auto& c : clusters) {
    const auto ring = ring_of(g, c.members, 2 * p.radius());
    const auto code = ring_code_build(g, p, ring, ell);
    const auto slots = solution_slots(g, c, bitp);
    LAD_CHECK_MSG(code.size() <= slots.size(),
                  "cluster at " << g.id(c.center) << " has " << slots.size()
                                << " slots for a " << code.size()
                                << "-bit ring code; increase x");
    for (std::size_t j = 0; j < code.size(); ++j) {
      if (code[j]) enc.bits[slots[j]] = 1;
    }
  }

  // Final sanity: the non-isolated 1s are exactly the clustering bits.
  LAD_CHECK_MSG(nonisolated_ones(g, enc.bits) == bitp,
                "solution bits merged with clustering bits");
  return enc;
}

namespace {

// Shared decode body. With `failed == nullptr` any locally-detected
// inconsistency throws (strict mode). With a non-null `failed`, failures
// are contained to their natural scope — the cluster whose ring pin or
// interior completion went wrong, or the residual region — whose nodes
// stay unlabeled (-1) and are marked for the caller's repair pass.
SubexpLclDecodeResult decode_subexp_lcl_impl(const Graph& g, const LclProblem& p,
                                             const std::vector<char>& bits,
                                             const SubexpLclParams& params,
                                             std::vector<char>* failed) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "subexp advice has " << bits.size() << " bits for n = " << g.n());
  const int x = params.x;
  const int r = params.growth_r;
  const int rbar = p.radius();
  const int max_colors = resolve_max_colors(params);

  const auto bitp = nonisolated_ones(g, bits);
  const auto clusters = recover_clusters(g, bitp, params, max_colors);

  const auto contain = [&](const std::vector<int>& scope, auto&& body) -> bool {
    if (failed == nullptr) {
      body();
      return true;
    }
    try {
      body();
      return true;
    } catch (const ContractViolation&) {
      for (const int v : scope) (*failed)[static_cast<std::size_t>(v)] = 1;
      return false;
    }
  };

  // Pin ℓ on all rings. A cluster whose pin fails is poisoned: without its
  // ring there is no safe boundary to complete against, so its interior is
  // skipped as well.
  Labeling lab = Labeling::empty(g);
  std::vector<char> cluster_poisoned(clusters.size(), 0);
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const auto& c = clusters[ci];
    const bool ok = contain(c.members, [&] {
      const auto ring = ring_of(g, c.members, 2 * rbar);
      const int len = ring_code_length(g, p, ring);
      const auto slots = solution_slots(g, c, bitp);
      LAD_CHECK_MSG(len <= static_cast<int>(slots.size()), "not enough slots while decoding");
      std::vector<char> code(static_cast<std::size_t>(len));
      for (int j = 0; j < len; ++j) code[static_cast<std::size_t>(j)] = bits[slots[j]];
      ring_code_apply(g, p, ring, code, lab);
    });
    if (!ok) cluster_poisoned[ci] = 1;
  }

  // Complete each cluster interior.
  std::vector<char> in_cluster(static_cast<std::size_t>(g.n()), 0);
  for (const auto& c : clusters) {
    for (const int u : c.members) in_cluster[u] = 1;
  }
  auto complete_region = [&](const std::vector<int>& region) {
    std::vector<int> free_nodes, free_edges;
    for (const int v : region) {
      if (p.num_node_labels() > 0 && lab.node_labels[v] == -1) free_nodes.push_back(v);
      if (p.num_edge_labels() > 0) {
        for (const int e : g.incident_edges(v)) {
          if (lab.edge_labels[e] == -1) free_edges.push_back(e);
        }
      }
    }
    std::sort(free_edges.begin(), free_edges.end());
    free_edges.erase(std::unique(free_edges.begin(), free_edges.end()), free_edges.end());
    if (free_nodes.empty() && free_edges.empty()) return;
    // Constraints to enforce: every node whose radius-r̄ ball touches the
    // free region. Thanks to the 2*r̄ ring margin, those balls lie entirely
    // inside region ∪ pinned labels.
    std::vector<int> touched = free_nodes;
    for (const int e : free_edges) {
      touched.push_back(g.edge_u(e));
      touched.push_back(g.edge_v(e));
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    std::vector<int> check_nodes;
    if (!touched.empty()) {
      const auto dist = bfs_distances_multi(g, touched, {}, rbar);
      for (int v = 0; v < g.n(); ++v) {
        if (dist[v] != kUnreachable) check_nodes.push_back(v);
      }
    }
    auto solved = solve_lcl(g, p, lab, free_nodes, free_edges, check_nodes,
                            params.solver_budget);
    LAD_CHECK_MSG(solved.has_value(), "cluster/residual completion infeasible");
    lab = std::move(*solved);
  };

  int max_cluster_diam = 0;
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const auto& c = clusters[ci];
    if (!cluster_poisoned[ci]) {
      contain(c.members, [&] { complete_region(c.members); });
    }
    max_cluster_diam = std::max(max_cluster_diam, 2 * (c.alpha + r));
  }

  // Residual nodes, completed as one region (two residual components can
  // share a ring neighbor, whose constraint needs both solved).
  std::vector<int> residual_nodes;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_cluster[v]) residual_nodes.push_back(v);
  }
  contain(residual_nodes, [&] { complete_region(residual_nodes); });

  SubexpLclDecodeResult res;
  res.labeling = std::move(lab);
  res.rounds = max_colors * (2 * x + 2) + max_cluster_diam + 2 * x + rbar + 2;
  return res;
}

}  // namespace

SubexpLclDecodeResult decode_subexp_lcl(const Graph& g, const LclProblem& p,
                                        const std::vector<char>& bits,
                                        const SubexpLclParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "subexp-LCL advice must carry exactly one bit per node");
  return decode_subexp_lcl_impl(g, p, bits, params, nullptr);
}

SubexpLclDecodeResult decode_subexp_lcl_tolerant(const Graph& g, const LclProblem& p,
                                                 const std::vector<char>& bits,
                                                 std::vector<char>& failed,
                                                 const SubexpLclParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "subexp-LCL advice must carry exactly one bit per node");
  failed.assign(static_cast<std::size_t>(g.n()), 0);
  return decode_subexp_lcl_impl(g, p, bits, params, &failed);
}

}  // namespace lad
