// §5 extensions — degree splitting on bipartite even-degree graphs, and
// Δ-edge-coloring of bipartite Δ-regular graphs (Δ a power of two) by
// recursive splitting.
//
// Splitting = red/blue edge coloring with equal counts at every node. Given
// an almost-balanced orientation and the bipartition 2-coloring, color every
// edge by its tail's color: outgoing edges of v all get v's color (d/2 of
// them), incoming edges all get the neighbors' (opposite) color — a perfect
// split. The advice is the orientation trail-marking of §5 where each
// marker's payload additionally carries the 2-color of the marker's start
// node (still one bit per node in total); nodes recover their own color by
// walking to a marker and counting parity.
#pragma once

#include <vector>

#include "core/orientation.hpp"
#include "graph/graph.hpp"

namespace lad {

struct SplittingParams {
  OrientationParams orientation;
  /// Components without any marked trail are gathered whole and 2-colored
  /// canonically; their diameter is charged as rounds.
  int gather_bound = 1000;
};

struct SplittingEncoding {
  std::vector<char> bits;  // uniform 1-bit advice
  int num_marked_trails = 0;
  SplittingParams params;
};

/// Centralized prover. Requires: every degree even, graph bipartite.
SplittingEncoding encode_splitting_advice(const Graph& g, const SplittingParams& params = {});

struct SplittingDecodeResult {
  std::vector<int> edge_color;  // 1 = red, 2 = blue
  std::vector<int> node_color;  // recovered 2-coloring, values 1/2
  int rounds = 0;
};

/// LOCAL decoder: orientation + marker color payloads + parity propagation.
SplittingDecodeResult decode_splitting(const Graph& g, const std::vector<char>& bits,
                                       const SplittingParams& params = {});

/// Δ-edge-coloring of a bipartite Δ-regular graph, Δ = 2^k, by recursive
/// splitting (each color class of Π_i is split again, log Δ levels). This is
/// the *composable* schema of the paper's corollary: advice is a stack of
/// log Δ splitting levels, so a node holds one bit per subgraph it appears
/// in (≤ Δ-1 bits in total; see DESIGN.md on why we report this
/// variable-length form).
struct EdgeColoringResult {
  std::vector<int> edge_color;      // proper Δ-edge-coloring, colors 1..Δ
  std::vector<int> bits_per_node;   // total advice bits per node, all levels
  int levels = 0;
  int rounds = 0;  // sum of per-level decode rounds
};

EdgeColoringResult edge_color_bipartite_regular(const Graph& g,
                                                const SplittingParams& params = {});

}  // namespace lad
