// §6 — Δ-coloring Δ-colorable graphs with advice, in T(Δ) rounds.
//
// Three-stage pipeline, mirroring the paper:
//   1. O(Δ^2)-coloring with advice (Lemma 6.3): an (r, r)-ruling-set
//      clustering; the advice gives every cluster center the color of its
//      cluster in a proper coloring of the cluster graph. Combined with a
//      canonical intra-cluster (Δ+1)-coloring this yields a proper coloring
//      with (Δ+1)·K colors, then Linial's reduction brings it to O(Δ^2).
//   2. Reduction to Δ+1 colors by iterating over color classes (the
//      O(√(Δ log Δ))-round list-coloring black box of Theorem 6.8 is
//      substituted by the classical O(Δ^2)-round class iteration; both are
//      functions of Δ only — see DESIGN.md §2).
//   3. Δ+1 -> Δ (Lemma 6.6): uncolor the class Δ+1 and repair each
//      uncolored region with advice that pins the final colors of the
//      recolored nodes (the paper's relay vertices likewise "encode the
//      color in the resulting coloring"). Repair regions are pairwise
//      separated so all repairs apply concurrently in O(R) rounds.
//
// The advice is a variable-length schema (Definition 2, type 3): cluster
// centers hold their cluster color, repair anchors hold the recoloring
// patch. With params.uniform_one_bit the schema is additionally converted
// to a uniform 1-bit-per-node assignment via the path encoding of
// advice/sparsify.hpp (requires enough room: anchor separation and
// eccentricity, both checked — see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "advice/schema.hpp"
#include "advice/sparsify.hpp"
#include "graph/graph.hpp"

namespace lad {

struct DeltaColoringParams {
  /// Ruling-set distance of the stage-1 clustering.
  int cluster_spacing = 12;
  /// Initial and maximal radius of stage-3 repair regions.
  int repair_radius = 2;
  int max_repair_radius = 6;
  /// Advice-free local-fix passes (stage 2.5) before stage-3 repairs.
  int local_fix_passes = 6;
  /// Also produce a uniform 1-bit encoding of the composed schema.
  bool uniform_one_bit = false;
  std::uint64_t seed = 4242;
};

struct DeltaColoringEncoding {
  /// Variable-length schema: storage node -> tagged payload entries.
  /// Schema id 0 = cluster color (anchor = center), 1 = repair patch.
  VarAdvice advice;
  /// Uniform 1-bit form (only when params.uniform_one_bit).
  std::vector<char> uniform_bits;
  int uniform_max_payload_bits = 0;
  int num_clusters = 0;
  int num_repairs = 0;
  DeltaColoringParams params;
};

/// Centralized prover. `witness` must be a proper Δ-coloring of g (e.g. the
/// planted one; finding it is NP-hard and Definition 2 allows an unbounded
/// prover).
DeltaColoringEncoding encode_delta_coloring_advice(const Graph& g,
                                                   const std::vector<int>& witness,
                                                   const DeltaColoringParams& params = {});

struct DeltaColoringDecodeResult {
  std::vector<int> coloring;  // proper Δ-coloring, values 1..Δ
  int rounds = 0;
};

/// LOCAL decoder from the variable-length schema.
DeltaColoringDecodeResult decode_delta_coloring(const Graph& g, const VarAdvice& advice,
                                                const DeltaColoringParams& params = {});

/// LOCAL decoder from the uniform 1-bit form.
DeltaColoringDecodeResult decode_delta_coloring_one_bit(const Graph& g,
                                                        const std::vector<char>& bits,
                                                        int max_payload_bits,
                                                        const DeltaColoringParams& params = {});

}  // namespace lad
