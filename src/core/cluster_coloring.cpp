#include "core/cluster_coloring.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "baselines/linial.hpp"
#include "graph/checkers.hpp"
#include "graph/distance.hpp"
#include "graph/ruling_set.hpp"

namespace lad {
namespace {

// Deterministic cluster assignment around the given centers: every node
// joins the center minimizing (distance, center ID). Locally computable
// once a node knows the centers within its domination radius.
struct Clustering {
  std::vector<int> cluster_of;  // node -> index into centers
  std::vector<int> centers;     // sorted by ID
  int max_radius = 0;
};

Clustering assign_clusters(const Graph& g, std::vector<int> centers) {
  std::sort(centers.begin(), centers.end(), [&](int a, int b) { return g.id(a) < g.id(b); });
  Clustering c;
  c.centers = centers;
  c.cluster_of.assign(static_cast<std::size_t>(g.n()), -1);

  // One multi-source BFS, then a layer-order DP: a node's min-ID nearest
  // center is the minimum of its BFS parents' choices.
  const auto dist = bfs_distances_multi(g, centers);
  std::map<NodeId, int> center_index;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    center_index[g.id(centers[i])] = static_cast<int>(i);
  }

  std::vector<int> order(g.nodes().begin(), g.nodes().end());
  std::sort(order.begin(), order.end(), [&](int a, int b) { return dist[a] < dist[b]; });
  std::vector<NodeId> choice(static_cast<std::size_t>(g.n()), -1);
  for (const int v : order) {
    LAD_CHECK_MSG(dist[v] != kUnreachable, "node not covered by any cluster center");
    if (dist[v] == 0) {
      choice[v] = g.id(v);
    } else {
      for (const int u : g.neighbors(v)) {
        if (dist[u] == dist[v] - 1 && (choice[v] == -1 || choice[u] < choice[v])) {
          choice[v] = choice[u];
        }
      }
    }
    c.cluster_of[v] = center_index.at(choice[v]);
    c.max_radius = std::max(c.max_radius, dist[v]);
  }
  return c;
}

// Canonical intra-cluster (Δ+1)-coloring: greedy by ID over each cluster's
// induced subgraph (a cluster center performs this after gathering its
// cluster).
std::vector<int> intra_cluster_coloring(const Graph& g, const Clustering& c) {
  std::vector<int> intra(static_cast<std::size_t>(g.n()), 0);
  for (const int v : g.nodes_by_id()) {
    std::set<int> used;
    for (const int u : g.neighbors(v)) {
      if (c.cluster_of[u] == c.cluster_of[v] && intra[u] > 0) used.insert(intra[u]);
    }
    int col = 1;
    while (used.count(col)) ++col;
    intra[v] = col;
  }
  return intra;
}

// Proper coloring of the cluster graph, greedy by center ID.
std::vector<int> color_cluster_graph(const Graph& g, const Clustering& c) {
  const int k = static_cast<int>(c.centers.size());
  std::vector<std::set<int>> adj(static_cast<std::size_t>(k));
  for (int e = 0; e < g.m(); ++e) {
    const int a = c.cluster_of[g.edge_u(e)];
    const int b = c.cluster_of[g.edge_v(e)];
    if (a != b) {
      adj[static_cast<std::size_t>(a)].insert(b);
      adj[static_cast<std::size_t>(b)].insert(a);
    }
  }
  std::vector<int> colors(static_cast<std::size_t>(k), 0);
  for (int i = 0; i < k; ++i) {
    std::set<int> used;
    for (const int j : adj[static_cast<std::size_t>(i)]) {
      if (colors[static_cast<std::size_t>(j)] > 0) {
        used.insert(colors[static_cast<std::size_t>(j)]);
      }
    }
    int col = 1;
    while (used.count(col)) ++col;
    colors[static_cast<std::size_t>(i)] = col;
  }
  return colors;
}

// Shared by encoder simulation and decoder: clustering + cluster colors ->
// proper O(Δ^2) coloring.
ClusterColoringDecodeResult finish(const Graph& g, const Clustering& clustering,
                                   const std::vector<int>& cluster_colors) {
  const int delta = std::max(1, g.max_degree());
  const auto intra = intra_cluster_coloring(g, clustering);
  int num_cluster_colors = 1;
  for (const int col : cluster_colors) num_cluster_colors = std::max(num_cluster_colors, col);

  std::vector<int> base(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    base[v] = intra[v] + (delta + 1) * (cluster_colors[clustering.cluster_of[v]] - 1);
  }
  const int c0 = (delta + 1) * num_cluster_colors;
  LAD_CHECK(is_proper_coloring(g, base, c0));

  auto lin = linial_reduce(g, std::move(base), c0);
  ClusterColoringDecodeResult res;
  res.coloring = std::move(lin.colors);
  res.num_colors = lin.num_colors;
  res.rounds = 2 * clustering.max_radius + lin.rounds;
  return res;
}

}  // namespace

ClusterColoringEncoding encode_cluster_coloring_advice(const Graph& g,
                                                       const ClusterColoringParams& params) {
  const auto centers = ruling_set(g, params.cluster_spacing, g.nodes_by_id());
  const auto clustering = assign_clusters(g, centers);
  const auto cluster_colors = color_cluster_graph(g, clustering);

  ClusterColoringEncoding enc;
  enc.params = params;
  enc.num_clusters = static_cast<int>(clustering.centers.size());
  for (const int col : cluster_colors) {
    enc.num_cluster_colors = std::max(enc.num_cluster_colors, col);
  }
  for (std::size_t i = 0; i < clustering.centers.size(); ++i) {
    SchemaEntry e;
    e.schema_id = params.schema_id;
    e.anchor_id = g.id(clustering.centers[i]);
    e.payload.append_gamma(static_cast<std::uint64_t>(cluster_colors[i]));
    enc.advice[clustering.centers[i]].push_back(std::move(e));
  }
  return enc;
}

ClusterColoringDecodeResult decode_cluster_coloring(const Graph& g, const VarAdvice& advice,
                                                    const ClusterColoringParams& params) {
  std::vector<int> centers;
  std::map<NodeId, int> color_of;
  for (const auto& [node, entries] : advice) {
    (void)node;
    for (const auto& e : entries) {
      if (e.schema_id != params.schema_id) continue;
      const auto anchor = g.find_index(e.anchor_id);
      LAD_CHECK_MSG(anchor.has_value(), "advice anchors unknown node ID " << e.anchor_id);
      centers.push_back(*anchor);
      int pos = 0;
      const std::uint64_t color = e.payload.read_gamma(pos);
      LAD_CHECK_MSG(color <= static_cast<std::uint64_t>(g.n()) + 1,
                    "cluster color " << color << " out of range at anchor " << e.anchor_id);
      color_of[e.anchor_id] = static_cast<int>(color);
    }
  }
  const auto clustering = assign_clusters(g, centers);
  std::vector<int> cluster_colors(clustering.centers.size());
  for (std::size_t i = 0; i < clustering.centers.size(); ++i) {
    cluster_colors[i] = color_of.at(g.id(clustering.centers[i]));
  }
  return finish(g, clustering, cluster_colors);
}

}  // namespace lad
