#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "graph/components.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "lcl/problems.hpp"
#include "lcl/solver.hpp"
#include "obs/telemetry.hpp"
#include "util/contracts.hpp"
#include "util/hashing.hpp"

namespace lad {
namespace {

// Instance-generation constants shared with the campaign layer: the
// membership tag keeps §1.5 instances a pure function of (seed, edge IDs).
constexpr std::uint64_t kTagMembership = 0xed6e;
constexpr std::uint64_t kWitnessSolverBudget = 50'000'000;

// Even dimensions >= 4 (keeps grid/torus bipartite, torus 4-regular).
struct GridDims {
  int w = 0;
  int h = 0;
};

GridDims grid_dims(int n) {
  GridDims d;
  d.w = static_cast<int>(std::sqrt(static_cast<double>(std::max(16, n))));
  if (d.w % 2 != 0) --d.w;
  d.w = std::max(d.w, 4);
  d.h = (std::max(16, n) + d.w - 1) / d.w;
  if (d.h % 2 != 0) ++d.h;
  d.h = std::max(d.h, 4);
  return d;
}

int even_cycle_len(int n) {
  int len = std::max(8, n);
  if (len % 2 != 0) ++len;
  return len;
}

// Witness for the coloring pipelines: BFS parity where the instance is
// bipartite (the standard campaign families), the exact solver otherwise.
std::vector<int> coloring_witness(const Graph& g, int colors) {
  if (is_bipartite(g)) return parity_witness(g);
  const VertexColoringLcl p(colors);
  const auto solved = solve_lcl(g, p, kWitnessSolverBudget);
  LAD_CHECK_MSG(solved.has_value(), "no proper " << colors << "-coloring witness exists");
  return solved->node_labels;
}

std::vector<std::string> label_digests(const std::vector<int>& labels) {
  std::vector<std::string> digests;
  digests.reserve(labels.size());
  for (const int l : labels) digests.push_back(std::to_string(l));
  return digests;
}

// ---------------------------------------------------------------------------

class OrientationPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kOrientation; }
  const char* name() const override { return "orientation"; }
  const char* paper_section() const override { return "§5"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kUniformBits; }
  SchemaType schema_type() const override { return SchemaType::kUniformFixedLength; }
  const char* graph_requirements() const override { return "any graph"; }
  FallbackKind fallback_kind() const override { return FallbackKind::kCanonical; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    return make_cycle(even_cycle_len(n), IdMode::kRandomDense, seed);
  }

  std::vector<int> sweep_ns(const std::vector<int>& base) const override {
    // Every stage is O(m) with m = n on the cycle instances, so the sweep
    // stays affordable far past the default ceiling; extend it so the
    // scaling fits span three decades of n (256 -> 262144).
    std::vector<int> ns = base;
    for (const int extra : {65536, 262144}) {
      if (ns.empty() || ns.back() < extra) ns.push_back(extra);
    }
    return ns;
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    c.max_bits_per_node = 1.0;
    c.max_ones_ratio = 0.20;
    c.statement =
        "§5: 1 bit of advice per node yields an almost-balanced orientation in "
        "T(Δ) rounds independent of n; advice-free costs Ω(n) on a cycle";
    return c;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.bits = encode_orientation_advice(g, cfg.orientation).bits;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    const auto res = decode_orientation(g, adv.bits, cfg.orientation);
    PipelineOutput out;
    out.orientation = res.orientation;
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& /*cfg*/) const override {
    return is_balanced_orientation(g, out.orientation, 1);
  }

  std::vector<std::string> node_digests(const Graph& g, const PipelineOutput& out) const override {
    std::vector<std::string> digests(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) {
      std::string s;
      for (const int e : g.incident_edges(v)) {
        s += out.orientation[static_cast<std::size_t>(e)] == EdgeDir::kForward ? 'f' : 'b';
      }
      digests[static_cast<std::size_t>(v)] = std::move(s);
    }
    return digests;
  }
};

class SplittingPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kSplitting; }
  const char* name() const override { return "splitting"; }
  const char* paper_section() const override { return "§5-ext"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kUniformBits; }
  SchemaType schema_type() const override { return SchemaType::kUniformFixedLength; }
  const char* graph_requirements() const override { return "bipartite, all degrees even"; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    const auto d = grid_dims(n);
    return make_torus(d.w, d.h, IdMode::kRandomDense, seed);
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    c.max_bits_per_node = 1.0;
    c.max_ones_ratio = 0.30;
    c.statement =
        "§5-ext: red/blue degree splitting on bipartite even-degree graphs with "
        "1 bit of advice per node in rounds depending on Δ only";
    return c;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.bits = encode_splitting_advice(g, cfg.splitting).bits;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    const auto res = decode_splitting(g, adv.bits, cfg.splitting);
    PipelineOutput out;
    out.edge_color = res.edge_color;
    out.node_color = res.node_color;
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& /*cfg*/) const override {
    return is_splitting(g, out.edge_color);
  }

  std::vector<std::string> node_digests(const Graph& g, const PipelineOutput& out) const override {
    std::vector<std::string> digests(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) {
      std::string s;
      for (const int e : g.incident_edges(v)) {
        s += std::to_string(out.edge_color[static_cast<std::size_t>(e)]);
        s += ',';
      }
      digests[static_cast<std::size_t>(v)] = std::move(s);
    }
    return digests;
  }
};

class ThreeColoringPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kThreeColoring; }
  const char* name() const override { return "three_coloring"; }
  const char* paper_section() const override { return "§7"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kUniformBits; }
  SchemaType schema_type() const override { return SchemaType::kUniformFixedLength; }
  const char* graph_requirements() const override { return "3-colorable"; }
  bool supports_tolerant() const override { return true; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    const auto d = grid_dims(n);
    return make_grid(d.w, d.h, IdMode::kRandomDense, seed);
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    c.max_bits_per_node = 1.0;
    // The paper remarks this advice "just barely suffices": the ones ratio
    // stays ≈ the density of color class 1 and is conjectured not
    // sparsifiable — so the bound is a loose ¾, not an ε.
    c.max_ones_ratio = 0.75;
    c.statement =
        "Thm 7.1: 3-colorable graphs are 3-colored with exactly 1 bit per node "
        "(trivial schema: 2 bits) in poly(Δ) rounds";
    return c;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.bits = encode_three_coloring_advice(g, coloring_witness(g, 3), cfg.three_coloring).bits;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    const auto res = decode_three_coloring(g, adv.bits, cfg.three_coloring);
    PipelineOutput out;
    out.node_color = res.coloring;
    out.rounds = res.rounds;
    return out;
  }

  PipelineOutput do_decode_tolerant(const Graph& g, const PipelineAdvice& adv,
                                 const PipelineConfig& cfg) const override {
    PipelineOutput out;
    const auto res = decode_three_coloring_tolerant(g, adv.bits, out.failed, cfg.three_coloring);
    out.node_color = res.coloring;
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& /*cfg*/) const override {
    return is_proper_coloring(g, out.node_color, 3);
  }

  std::vector<std::string> node_digests(const Graph& /*g*/,
                                        const PipelineOutput& out) const override {
    return label_digests(out.node_color);
  }
};

class DeltaColoringPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kDeltaColoring; }
  const char* name() const override { return "delta_coloring"; }
  const char* paper_section() const override { return "§6"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kVarSchema; }
  SchemaType schema_type() const override { return SchemaType::kVariableLength; }
  const char* graph_requirements() const override { return "Δ-colorable (Brooks)"; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    const auto d = grid_dims(n);
    return make_grid(d.w, d.h, IdMode::kRandomDense, seed);
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    // Decode rounds are bounded by the config constants (stage-1 clustering
    // + local_fix_passes * 7 + repair escalation), but the pass count only
    // saturates well past bench-scale n: over a feasible sweep the
    // observable signature is a slowly filling curve the fitter reads as
    // log. O(log n) is the honest declarable ceiling at this scale;
    // constant would need sweeps far beyond the saturation point.
    c.rounds_growth = obs::GrowthClass::kLog;
    // Cor 6.2 converts the composable variable-length schema to <= 1
    // uniform bit per node; the var-schema form measured here stores less.
    c.max_bits_per_node = 1.0;
    c.statement =
        "Thm 6.1 / Cor 6.2: Δ-colorable graphs are Δ-colored with advice in "
        "T(Δ) rounds; the composable schema converts to 1 bit per node";
    return c;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.var = encode_delta_coloring_advice(g, coloring_witness(g, std::max(2, g.max_degree())),
                                           cfg.delta_coloring)
                  .advice;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    const auto res = decode_delta_coloring(g, adv.var, cfg.delta_coloring);
    PipelineOutput out;
    out.node_color = res.coloring;
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& /*cfg*/) const override {
    return is_proper_coloring(g, out.node_color, std::max(2, g.max_degree()));
  }

  std::vector<std::string> node_digests(const Graph& /*g*/,
                                        const PipelineOutput& out) const override {
    return label_digests(out.node_color);
  }
};

class SubexpLclPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kSubexpLcl; }
  const char* name() const override { return "subexp_lcl"; }
  const char* paper_section() const override { return "§4"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kUniformBits; }
  SchemaType schema_type() const override { return SchemaType::kUniformFixedLength; }
  const char* graph_requirements() const override {
    return "subexponential growth (x scaled to n)";
  }
  bool supports_tolerant() const override { return true; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    return make_cycle(even_cycle_len(n), IdMode::kRandomDense, seed);
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    c.max_bits_per_node = 1.0;
    c.max_ones_ratio = 0.25;  // at the bench-scale x = 60; shrinks with x (E8)
    c.statement =
        "Thm 4.1: any LCL on a bounded-degree family of subexponential growth is "
        "solvable with 1 bit of advice per node in O(1) rounds, with arbitrarily "
        "sparse advice";
    return c;
  }

  PipelineConfig sweep_config(int /*n*/) const override {
    PipelineConfig cfg;
    // One x must serve the whole sweep (per-n x would make rounds track x,
    // not n). The binding constraint is the phase-code path budget
    // y = x/2 >= ~4*log2(colors), where the greedy distance-(5x) coloring
    // uses up to ~10x colors as n grows; x = 150 leaves comfortable slack
    // (x = 60 overflows the budget once n reaches bench-sweep sizes).
    cfg.subexp.x = 150;
    return cfg;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.bits = encode_subexp_lcl_advice(g, problem_, cfg.subexp).bits;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    const auto res = decode_subexp_lcl(g, problem_, adv.bits, cfg.subexp);
    PipelineOutput out;
    out.labeling = res.labeling;
    out.rounds = res.rounds;
    return out;
  }

  PipelineOutput do_decode_tolerant(const Graph& g, const PipelineAdvice& adv,
                                 const PipelineConfig& cfg) const override {
    PipelineOutput out;
    const auto res = decode_subexp_lcl_tolerant(g, problem_, adv.bits, out.failed, cfg.subexp);
    out.labeling = res.labeling;
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& /*cfg*/) const override {
    return is_valid_labeling(g, problem_, out.labeling);
  }

  std::vector<std::string> node_digests(const Graph& /*g*/,
                                        const PipelineOutput& out) const override {
    return label_digests(out.labeling.node_labels);
  }

  /// The demonstration LCL of the registry entry (the §4 construction is
  /// generic in the problem; campaigns and benches exercise 3-coloring).
  const LclProblem& problem() const { return problem_; }

 private:
  VertexColoringLcl problem_{3};
};

class DecompressPipeline final : public Pipeline {
 public:
  PipelineId id() const override { return PipelineId::kDecompress; }
  const char* name() const override { return "decompress"; }
  const char* paper_section() const override { return "§1.5"; }
  AdviceCarrier carrier() const override { return AdviceCarrier::kNodeLabels; }
  SchemaType schema_type() const override { return SchemaType::kVariableLength; }
  const char* graph_requirements() const override { return "any graph"; }
  FallbackKind fallback_kind() const override { return FallbackKind::kFlagOnly; }

  Graph make_instance(int n, std::uint64_t seed) const override {
    return make_cycle(even_cycle_len(n), IdMode::kRandomDense, seed);
  }

  PipelineClaims claims() const override {
    PipelineClaims c;
    // ⌈d/2⌉+1 bits at a degree-d node; the sweep family is a cycle (d = 2),
    // so the per-node ceiling is 2 — strictly below the trivial d bits for
    // d >= 4 and one above the d/2 information-theoretic floor.
    c.max_bits_per_node = 2.0;
    c.statement =
        "§1.5: any X ⊆ E can be stored with ⌈d/2⌉+1 bits at a degree-d node "
        "(lower bound d/2, trivial d) and decompressed in T(Δ) rounds";
    return c;
  }

  PipelineAdvice do_encode(const Graph& g, const PipelineConfig& cfg) const override {
    PipelineAdvice adv;
    adv.carrier = carrier();
    adv.labels =
        compress_edge_set(g, hashed_edge_membership(g, cfg.seed, cfg.decompress_density),
                          cfg.orientation)
            .labels;
    return adv;
  }

  PipelineOutput do_decode(const Graph& g, const PipelineAdvice& adv,
                        const PipelineConfig& cfg) const override {
    CompressedEdgeSet c;
    c.labels = adv.labels;
    c.orientation_params = cfg.orientation;
    const auto res = decompress_edge_set(g, c);
    PipelineOutput out;
    out.edge_in_x = res.in_x;
    out.edge_known.assign(static_cast<std::size_t>(g.m()), 1);
    out.rounds = res.rounds;
    return out;
  }

  bool do_verify(const Graph& g, const PipelineOutput& out,
              const PipelineConfig& cfg) const override {
    // The instance is a pure function of (seed, edge IDs), so ground truth
    // is regenerable on any ID-preserving (sub)graph. Unknown edges are
    // excluded: they are the guarded decoder's explicitly flagged scope.
    const auto truth = hashed_edge_membership(g, cfg.seed, cfg.decompress_density);
    for (int e = 0; e < g.m(); ++e) {
      if (!out.edge_known.empty() && out.edge_known[static_cast<std::size_t>(e)] == 0) continue;
      if (out.edge_in_x[static_cast<std::size_t>(e)] != truth[static_cast<std::size_t>(e)]) {
        return false;
      }
    }
    return true;
  }

  std::vector<std::string> node_digests(const Graph& g, const PipelineOutput& out) const override {
    std::vector<std::string> digests(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) {
      std::string s;
      for (const int e : g.incident_edges(v)) {
        const bool known =
            out.edge_known.empty() || out.edge_known[static_cast<std::size_t>(e)] != 0;
        s += known ? (out.edge_in_x[static_cast<std::size_t>(e)] != 0 ? '1' : '0') : '?';
      }
      digests[static_cast<std::size_t>(v)] = std::move(s);
    }
    return digests;
  }
};

}  // namespace

// NVI wrappers — the single instrumentation point for all six pipelines.
// Each wrapper opens a span named "pipeline.<stage>/<registry name>" and
// folds the stage counters once per call, after the do_* hook returns, so
// the accounting is a pure function of the call and can never perturb it.

PipelineAdvice Pipeline::encode(const Graph& g, const PipelineConfig& cfg) const {
  LAD_TM_SPAN(span, std::string("pipeline.encode/") + name(), "pipeline");
  PipelineAdvice adv = do_encode(g, cfg);
  LAD_TM({
    auto& m = obs::core();
    m.pipeline_encodes.add(1);
    m.advice_bits_written.add(adv.stats(g.n()).total_bits);
  });
  return adv;
}

PipelineOutput Pipeline::decode(const Graph& g, const PipelineAdvice& adv,
                                const PipelineConfig& cfg) const {
  LAD_CHECK_MSG(adv.carrier != AdviceCarrier::kUniformBits || adv.bits.empty() ||
                    static_cast<int>(adv.bits.size()) == g.n(),
                "uniform advice must carry exactly one bit per node");
  LAD_TM_SPAN(span, std::string("pipeline.decode/") + name(), "pipeline");
  PipelineOutput out = do_decode(g, adv, cfg);
  LAD_TM({
    auto& m = obs::core();
    m.pipeline_decodes.add(1);
    m.advice_bits_read.add(adv.stats(g.n()).total_bits);
    m.pipeline_decode_rounds.add(out.rounds);
    m.decode_rounds.observe(out.rounds);
  });
  return out;
}

PipelineOutput Pipeline::decode_tolerant(const Graph& g, const PipelineAdvice& adv,
                                         const PipelineConfig& cfg) const {
  LAD_CHECK_MSG(adv.carrier != AdviceCarrier::kUniformBits || adv.bits.empty() ||
                    static_cast<int>(adv.bits.size()) == g.n(),
                "uniform advice must carry exactly one bit per node");
  LAD_TM_SPAN(span, std::string("pipeline.decode_tolerant/") + name(), "pipeline");
  PipelineOutput out = do_decode_tolerant(g, adv, cfg);
  LAD_TM({
    auto& m = obs::core();
    m.pipeline_decodes.add(1);
    m.advice_bits_read.add(adv.stats(g.n()).total_bits);
    m.pipeline_decode_rounds.add(out.rounds);
    m.decode_rounds.observe(out.rounds);
  });
  return out;
}

bool Pipeline::verify(const Graph& g, const PipelineOutput& out,
                      const PipelineConfig& cfg) const {
  LAD_TM_SPAN(span, std::string("pipeline.verify/") + name(), "pipeline");
  const bool ok = do_verify(g, out, cfg);
  LAD_TM(obs::core().pipeline_verifies.add(1));
  return ok;
}

AdviceStats PipelineAdvice::stats(int n) const {
  switch (carrier) {
    case AdviceCarrier::kUniformBits:
      return advice_stats(advice_from_bits(bits));
    case AdviceCarrier::kNodeLabels:
      return advice_stats(labels);
    case AdviceCarrier::kVarSchema: {
      Advice a(static_cast<std::size_t>(n));
      for (const auto& [node, packed] : pack_var_advice(var)) {
        a[static_cast<std::size_t>(node)] = packed;
      }
      return advice_stats(a);
    }
  }
  LAD_UNREACHABLE("unknown AdviceCarrier");
}

std::vector<std::string> PipelineAdvice::node_strings(int n) const {
  std::vector<std::string> out(static_cast<std::size_t>(n));
  switch (carrier) {
    case AdviceCarrier::kUniformBits:
      for (int v = 0; v < n && v < static_cast<int>(bits.size()); ++v) {
        out[static_cast<std::size_t>(v)].assign(1, bits[static_cast<std::size_t>(v)] != 0 ? '1' : '0');
      }
      return out;
    case AdviceCarrier::kNodeLabels:
      for (int v = 0; v < n && v < static_cast<int>(labels.size()); ++v) {
        out[static_cast<std::size_t>(v)] = labels[static_cast<std::size_t>(v)].to_string();
      }
      return out;
    case AdviceCarrier::kVarSchema:
      for (const auto& [node, packed] : pack_var_advice(var)) {
        if (node >= 0 && node < n) out[static_cast<std::size_t>(node)] = packed.to_string();
      }
      return out;
  }
  LAD_UNREACHABLE("unknown AdviceCarrier");
}

const char* to_string(FallbackKind kind) {
  switch (kind) {
    case FallbackKind::kRecompute:
      return "recompute";
    case FallbackKind::kCanonical:
      return "canonical";
    case FallbackKind::kFlagOnly:
      return "flag_only";
  }
  LAD_UNREACHABLE("unknown FallbackKind");
}

const std::vector<const Pipeline*>& pipelines() {
  static const OrientationPipeline orientation;
  static const SplittingPipeline splitting;
  static const ThreeColoringPipeline three_coloring;
  static const DeltaColoringPipeline delta_coloring;
  static const SubexpLclPipeline subexp_lcl;
  static const DecompressPipeline decompress;
  static const std::vector<const Pipeline*> all = {
      &orientation, &splitting, &three_coloring, &delta_coloring, &subexp_lcl, &decompress};
  return all;
}

const Pipeline& pipeline(PipelineId id) {
  for (const Pipeline* p : pipelines()) {
    if (p->id() == id) return *p;
  }
  LAD_UNREACHABLE("PipelineId not in registry");
}

const Pipeline* find_pipeline(std::string_view name) {
  for (const Pipeline* p : pipelines()) {
    if (name == p->name()) return p;
  }
  return nullptr;
}

std::vector<int> parity_witness(const Graph& g) {
  std::vector<int> col(static_cast<std::size_t>(g.n()), 0);
  for (const auto& members : connected_components(g).members) {
    const int root = *std::min_element(members.begin(), members.end());
    const auto dist = bfs_distances(g, root);
    for (const int v : members) {
      col[static_cast<std::size_t>(v)] = 1 + dist[static_cast<std::size_t>(v)] % 2;
    }
  }
  LAD_CHECK_MSG(is_proper_coloring(g, col, 2), "parity witness requires a bipartite graph");
  return col;
}

std::vector<char> hashed_edge_membership(const Graph& g, std::uint64_t seed, double density) {
  std::vector<char> in_x(static_cast<std::size_t>(g.m()), 0);
  for (int e = 0; e < g.m(); ++e) {
    const auto a = static_cast<std::uint64_t>(g.id(g.edge_u(e)));
    const auto b = static_cast<std::uint64_t>(g.id(g.edge_v(e)));
    const auto h = hash4(seed, kTagMembership, std::min(a, b), std::max(a, b));
    in_x[static_cast<std::size_t>(e)] = unit_from_hash(h) < density ? 1 : 0;
  }
  return in_x;
}

}  // namespace lad
