#include "core/proofs.hpp"

namespace lad {

std::vector<char> make_lcl_proof(const Graph& g, const LclProblem& p,
                                 const SubexpLclParams& params, const Labeling* witness) {
  return encode_subexp_lcl_advice(g, p, params, witness).bits;
}

ProofVerificationResult verify_lcl_proof(const Graph& g, const LclProblem& p,
                                         const std::vector<char>& proof,
                                         const SubexpLclParams& params) {
  ProofVerificationResult res;
  SubexpLclDecodeResult decoded;
  try {
    decoded = decode_subexp_lcl(g, p, proof, params);
  } catch (const ContractViolation&) {
    // A node noticed locally that the proof is malformed.
    res.accepted = false;
    res.decode_failed = true;
    res.rejecting_nodes = 1;
    res.rounds = 0;
    return res;
  }
  const auto check = check_distributed(g, p, decoded.labeling);
  res.accepted = check.accepted;
  res.rounds = decoded.rounds + check.rounds;
  for (const char r : check.rejecting) res.rejecting_nodes += r ? 1 : 0;
  return res;
}

}  // namespace lad
