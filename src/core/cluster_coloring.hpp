// Lemma 6.3 as a standalone schema — O(Δ^2)-coloring with advice.
//
// Stage 1 of the §6 pipeline, exposed on its own because the paper states
// it as a separate composable schema: an (r, r)-ruling-set clustering whose
// centers learn the color of their cluster in a proper coloring of the
// cluster graph; combining (intra-cluster color, cluster color) and running
// Linial's reduction yields a proper O(Δ^2)-coloring in rounds that depend
// only on Δ and the spacing parameter.
#pragma once

#include <cstdint>
#include <vector>

#include "advice/schema.hpp"
#include "graph/graph.hpp"

namespace lad {

struct ClusterColoringParams {
  int cluster_spacing = 12;  // (r, r)-ruling-set distance
  /// Schema id used when composing with other schemas.
  int schema_id = 0;
};

struct ClusterColoringEncoding {
  VarAdvice advice;  // one entry per cluster center (its cluster color)
  int num_clusters = 0;
  int num_cluster_colors = 0;
  ClusterColoringParams params;
};

/// Centralized prover.
ClusterColoringEncoding encode_cluster_coloring_advice(const Graph& g,
                                                       const ClusterColoringParams& params = {});

struct ClusterColoringDecodeResult {
  std::vector<int> coloring;  // proper, O(Δ^2) colors
  int num_colors = 0;
  int rounds = 0;
};

/// LOCAL decoder: recover clustering from the advice anchors, broadcast
/// cluster colors, flatten, reduce with Linial.
ClusterColoringDecodeResult decode_cluster_coloring(const Graph& g, const VarAdvice& advice,
                                                    const ClusterColoringParams& params = {});

}  // namespace lad
