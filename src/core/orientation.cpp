#include "core/orientation.hpp"

#include <algorithm>

namespace lad {
namespace {

// Orients every edge of trail t along the +1 (as-given) or -1 direction.
void orient_trail(const Graph& g, const Trail& t, int direction, Orientation& o) {
  const int L = t.length();
  for (int i = 0; i < L; ++i) {
    const int a = t.nodes[static_cast<std::size_t>(i)];
    const int b = t.closed ? t.nodes[static_cast<std::size_t>((i + 1) % L)]
                           : t.nodes[static_cast<std::size_t>(i + 1)];
    const int e = t.edges[static_cast<std::size_t>(i)];
    const int from = direction > 0 ? a : b;
    o[static_cast<std::size_t>(e)] = g.edge_u(e) == from ? EdgeDir::kForward : EdgeDir::kBackward;
  }
}

}  // namespace

OrientationEncoding encode_orientation_advice(const Graph& g, const OrientationParams& params) {
  const auto trails = euler_partition(g);
  std::vector<char> needs(trails.size(), 0);
  std::vector<BitString> payloads(trails.size());  // empty payloads
  int marked = 0;
  for (std::size_t t = 0; t < trails.size(); ++t) {
    if (trails[t].length() > params.short_trail_threshold) {
      needs[t] = 1;
      ++marked;
    }
  }
  const int marker_len = trail_marker_length(BitString{});
  LAD_CHECK_MSG(params.short_trail_threshold >= marker_len + 4 + params.marker_jitter,
                "short_trail_threshold too small for the marker code");

  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.marker_spacing, g.max_degree());
  tp.jitter = params.marker_jitter;
  tp.max_resample_rounds = params.max_resample_rounds;
  tp.seed = params.seed;
  auto code = encode_trail_marks(g, trails, needs, payloads, tp);

  OrientationEncoding enc;
  enc.resample_rounds = code.resample_rounds;
  enc.bits = std::move(code.bits);
  enc.walk_limit = trail_walk_limit(tp, marker_len);
  enc.num_marked_trails = marked;
  enc.params = params;
  return enc;
}

OrientationDecodeResult decode_orientation(const Graph& g, const std::vector<char>& bits,
                                           const OrientationParams& params) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "orientation advice has " << bits.size() << " bits for n = " << g.n());
  TrailCodeParams tp;
  tp.spacing = degree_scaled_spacing(params.marker_spacing, g.max_degree());
  tp.jitter = params.marker_jitter;
  const int walk_limit = trail_walk_limit(tp, trail_marker_length(BitString{}));

  const auto trails = euler_partition(g);
  OrientationDecodeResult res;
  res.orientation.assign(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);
  int rounds = 0;
  for (const auto& t : trails) {
    if (t.length() <= params.short_trail_threshold) {
      const int dir = canonical_trail_direction(g, t) ? +1 : -1;
      orient_trail(g, t, dir, res.orientation);
      rounds = std::max(rounds, t.length());
    } else {
      // Every node on the trail decodes the nearest marker; all agree. The
      // simulation decodes once per trail and charges the walk radius.
      const auto d = decode_trail_mark(g, t, 0, bits, walk_limit);
      LAD_CHECK_MSG(d.has_value(), "no marker decodable on a long trail");
      orient_trail(g, t, d->direction, res.orientation);
      rounds = std::max(rounds, walk_limit);
    }
  }
  res.rounds = rounds;
  return res;
}

}  // namespace lad
