// §8 — advice lower bounds via the Exponential-Time Hypothesis.
//
// The paper's argument: if every LCL were solvable with β bits of advice,
// a centralized solver could try all 2^{βn} advice assignments, run the
// decoder, and check validity — in time 2^{βn}·n·s(n). The catch is s(n),
// the cost of simulating one node; the Ramsey-type Lemma shows the decoder
// can be made *order-invariant*, i.e. a finite lookup table over canonical
// (topology, ID-order, advice) views, making s(n) = O(1).
//
// We implement the two objects the argument manufactures:
//   * OrderInvariantDecoder — a radius-t local rule memoized by the
//     canonical view key (graph/canonical.hpp), so repeated simulation is a
//     table lookup; the table is finite for bounded-degree graphs;
//   * enumerate_advice — the 2^{βn}·n·s(n) centralized solver, with
//     counters that let the benchmark exhibit the exponential scaling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "lcl/lcl.hpp"
#include "local/ball.hpp"

namespace lad {

/// A T-round order-invariant LOCAL algorithm with advice: output at v is a
/// function of the canonical radius-t view (topology + relative ID order +
/// advice bits). The rule is evaluated once per distinct view and memoized.
class OrderInvariantDecoder {
 public:
  using Rule = std::function<int(const Ball&, const std::vector<int>& advice_in_ball)>;

  OrderInvariantDecoder(int radius, Rule rule) : radius_(radius), rule_(std::move(rule)) {}

  /// Output label of v under the given advice assignment (advice indexed by
  /// parent-graph node).
  int decode(const Graph& g, int v, const std::vector<int>& advice) const;

  int radius() const { return radius_; }
  long long table_size() const { return static_cast<long long>(table_.size()); }
  long long lookups() const { return lookups_; }
  long long misses() const { return misses_; }
  void reset_counters() const { lookups_ = misses_ = 0; }

 private:
  int radius_;
  Rule rule_;
  mutable std::map<std::string, int> table_;
  mutable long long lookups_ = 0;
  mutable long long misses_ = 0;
};

struct AdviceSearchResult {
  bool found = false;
  std::vector<int> advice;       // the successful assignment (if found)
  std::vector<int> labels;       // the decoded solution (if found)
  long long assignments_tried = 0;
  long long table_size = 0;      // distinct canonical views seen
  long long lookups = 0;
  long long misses = 0;
};

/// The §8 centralized solver: enumerate all (2^beta)^n advice assignments,
/// decode every node with the order-invariant decoder, and test validity of
/// the resulting node labeling against the LCL. Applies only to node-labeled
/// LCLs.
AdviceSearchResult enumerate_advice(const Graph& g, const LclProblem& p, int beta,
                                    const OrderInvariantDecoder& dec,
                                    long long max_assignments = -1);

/// A β-bit decoder that simply outputs its own advice value plus one — the
/// trivial schema under which every k-colorable graph is solvable with
/// ceil(log2 k) bits (used to exhibit the early-exit branch).
OrderInvariantDecoder make_verbatim_decoder();

/// Sampling check of the §8 order-invariance property: rebuilds g with
/// random order-preserving ID reassignments and verifies the decoder's
/// output at every node is unchanged. Returns false on the first witness
/// of order-dependence.
bool check_order_invariance(const OrderInvariantDecoder& dec, const Graph& g,
                            const std::vector<int>& advice, int trials, std::uint64_t seed);

/// A radius-1 rule for 3-coloring with 1 bit of advice on cycles: the
/// center outputs 1 + ((own bit)*2 + (smaller-ID neighbor's bit)) mod 3.
/// Some cycles admit advice under this rule and some do not; either way the
/// enumeration exhibits the 2^n scaling.
OrderInvariantDecoder make_parity_cycle_decoder();

}  // namespace lad
