#include "core/decompress.hpp"

#include <algorithm>

namespace lad {
namespace {

// Outgoing edges of v under orientation o, heads ordered by ID — the shared
// edge order both compressor and decompressor use.
std::vector<int> outgoing_edges_sorted(const Graph& g, const Orientation& o, int v) {
  std::vector<int> out;
  // incident_edges is already aligned with ID-sorted neighbors.
  const auto inc = g.incident_edges(v);
  for (const int e : inc) {
    const bool outgoing = (o[static_cast<std::size_t>(e)] == EdgeDir::kForward && g.edge_u(e) == v) ||
                          (o[static_cast<std::size_t>(e)] == EdgeDir::kBackward && g.edge_v(e) == v);
    if (outgoing) out.push_back(e);
  }
  return out;
}

}  // namespace

CompressedEdgeSet compress_edge_set(const Graph& g, const std::vector<char>& in_x,
                                    const OrientationParams& params) {
  LAD_CHECK(static_cast<int>(in_x.size()) == g.m());
  const auto enc = encode_orientation_advice(g, params);
  const auto dec = decode_orientation(g, enc.bits, params);
  LAD_CHECK(is_balanced_orientation(g, dec.orientation, 1));

  CompressedEdgeSet c;
  c.orientation_params = params;
  c.labels.resize(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    BitString& label = c.labels[static_cast<std::size_t>(v)];
    label.append(enc.bits[static_cast<std::size_t>(v)] != 0);
    for (const int e : outgoing_edges_sorted(g, dec.orientation, v)) {
      label.append(in_x[static_cast<std::size_t>(e)] != 0);
    }
    const int budget = (g.degree(v) + 1) / 2 + 1;  // ceil(d/2) + 1
    LAD_CHECK_MSG(label.size() <= budget, "compressed label exceeds ceil(d/2)+1 bits");
  }
  return c;
}

DecompressResult decompress_edge_set(const Graph& g, const CompressedEdgeSet& c) {
  LAD_CHECK(static_cast<int>(c.labels.size()) == g.n());
  std::vector<char> advice_bits(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    const BitString& label = c.labels[static_cast<std::size_t>(v)];
    LAD_CHECK_MSG(!label.empty(), "empty compressed label at node " << g.id(v));
    advice_bits[static_cast<std::size_t>(v)] = label.bit(0);
  }
  const auto dec = decode_orientation(g, advice_bits, c.orientation_params);

  DecompressResult res;
  res.in_x.assign(static_cast<std::size_t>(g.m()), 0);
  for (int v = 0; v < g.n(); ++v) {
    const auto out = outgoing_edges_sorted(g, dec.orientation, v);
    const BitString& label = c.labels[static_cast<std::size_t>(v)];
    LAD_CHECK_MSG(label.size() == 1 + static_cast<int>(out.size()),
                  "label length mismatch at node " << g.id(v));
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (label.bit(1 + static_cast<int>(i))) res.in_x[static_cast<std::size_t>(out[i])] = 1;
    }
  }
  res.rounds = dec.rounds + 1;  // +1: tails inform heads of membership
  return res;
}

int trivial_bits_at(const Graph& g, int v) { return g.degree(v); }

}  // namespace lad
