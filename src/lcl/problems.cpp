#include "lcl/problems.hpp"

#include <sstream>

namespace lad {

std::string VertexColoringLcl::name() const {
  std::ostringstream os;
  os << "vertex-" << k_ << "-coloring";
  return os.str();
}

bool VertexColoringLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  const int c = lab.node_labels[v];
  if (c < 1 || c > k_) return false;
  for (const int u : g.neighbors(v)) {
    if (lab.node_labels[u] == c) return false;
  }
  return true;
}

bool MisLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  const int c = lab.node_labels[v];
  if (c != 1 && c != 2) return false;
  bool has_in_neighbor = false;
  for (const int u : g.neighbors(v)) {
    if (lab.node_labels[u] == 2) has_in_neighbor = true;
  }
  if (c == 2) return !has_in_neighbor;
  return has_in_neighbor;  // label 1 (out) must be dominated
}

bool MaximalMatchingLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  int incident_in = 0;
  for (const int e : g.incident_edges(v)) {
    const int c = lab.edge_labels[e];
    if (c != 1 && c != 2) return false;
    if (c == 2) ++incident_in;
  }
  if (incident_in > 1) return false;
  if (incident_in == 1) return true;
  // Unmatched node: every neighbor must be matched (else the shared edge
  // could be added).
  for (const int u : g.neighbors(v)) {
    bool u_matched = false;
    for (const int e : g.incident_edges(u)) {
      if (lab.edge_labels[e] == 2) u_matched = true;
    }
    if (!u_matched) return false;
  }
  return true;
}

std::string EdgeColoringLcl::name() const {
  std::ostringstream os;
  os << "edge-" << k_ << "-coloring";
  return os.str();
}

bool EdgeColoringLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  std::vector<char> seen(static_cast<std::size_t>(k_) + 1, 0);
  for (const int e : g.incident_edges(v)) {
    const int c = lab.edge_labels[e];
    if (c < 1 || c > k_) return false;
    if (seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

std::string WeakColoringLcl::name() const {
  std::ostringstream os;
  os << "weak-" << c_ << "-coloring";
  return os.str();
}

bool WeakColoringLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  LAD_ASSERT(v >= 0 && v < g.n());
  const int c = lab.node_labels[v];
  if (c < 1 || c > c_) return false;
  if (g.degree(v) == 0) return true;
  for (const int u : g.neighbors(v)) {
    if (lab.node_labels[u] != c) return true;
  }
  return false;
}

bool SinklessOrientationLcl::valid_at(const Graph& g, const Labeling& lab, int v) const {
  if (g.degree(v) < 3) return true;
  for (const int e : g.incident_edges(v)) {
    const int c = lab.edge_labels[e];
    if (c != 1 && c != 2) return false;
    const bool outgoing = (c == 1 && g.edge_u(e) == v) || (c == 2 && g.edge_v(e) == v);
    if (outgoing) return true;
  }
  return false;
}

}  // namespace lad
