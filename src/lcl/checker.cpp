#include "lcl/checker.hpp"

namespace lad {

DistributedCheckResult check_distributed(const Graph& g, const LclProblem& p,
                                         const Labeling& lab) {
  DistributedCheckResult res;
  res.rejecting.assign(static_cast<std::size_t>(g.n()), 0);
  res.rounds = p.radius();
  res.accepted = true;
  const bool sized = static_cast<int>(lab.node_labels.size()) == g.n() &&
                     static_cast<int>(lab.edge_labels.size()) == g.m();
  for (int v = 0; v < g.n(); ++v) {
    const bool ok = sized && p.valid_at(g, lab, v);
    if (!ok) {
      res.rejecting[v] = 1;
      res.accepted = false;
    }
  }
  return res;
}

}  // namespace lad
