// Concrete LCL problems used throughout the experiments (§1.2 lists these
// as the canonical examples: vertex coloring, edge coloring, MIS, maximal
// matching, sinkless orientation).
#pragma once

#include "lcl/lcl.hpp"

namespace lad {

/// Proper vertex k-coloring; node labels 1..k, radius 1.
class VertexColoringLcl : public LclProblem {
 public:
  explicit VertexColoringLcl(int k) : k_(k) { LAD_CHECK(k >= 1); }
  std::string name() const override;
  int radius() const override { return 1; }
  int num_node_labels() const override { return k_; }
  int num_edge_labels() const override { return 0; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;

 private:
  int k_;
};

/// Maximal independent set; node labels {1 = out, 2 = in}, radius 1.
class MisLcl : public LclProblem {
 public:
  std::string name() const override { return "mis"; }
  int radius() const override { return 1; }
  int num_node_labels() const override { return 2; }
  int num_edge_labels() const override { return 0; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;
};

/// Maximal matching; edge labels {1 = out, 2 = in}, radius 1.
class MaximalMatchingLcl : public LclProblem {
 public:
  std::string name() const override { return "maximal-matching"; }
  int radius() const override { return 1; }
  int num_node_labels() const override { return 0; }
  int num_edge_labels() const override { return 2; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;
};

/// Proper edge k-coloring; edge labels 1..k, radius 1.
class EdgeColoringLcl : public LclProblem {
 public:
  explicit EdgeColoringLcl(int k) : k_(k) { LAD_CHECK(k >= 1); }
  std::string name() const override;
  int radius() const override { return 1; }
  int num_node_labels() const override { return 0; }
  int num_edge_labels() const override { return k_; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;

 private:
  int k_;
};

/// Weak c-coloring: every non-isolated node has at least one neighbor with
/// a different label (Naor–Stockmeyer's classic example). Radius 1.
class WeakColoringLcl : public LclProblem {
 public:
  explicit WeakColoringLcl(int c) : c_(c) { LAD_CHECK(c >= 2); }
  std::string name() const override;
  int radius() const override { return 1; }
  int num_node_labels() const override { return c_; }
  int num_edge_labels() const override { return 0; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;

 private:
  int c_;
};

/// Sinkless orientation (every node of degree >= 3 has an outgoing edge);
/// edge label 1 means edge_u -> edge_v, 2 the reverse. Radius 1.
class SinklessOrientationLcl : public LclProblem {
 public:
  std::string name() const override { return "sinkless-orientation"; }
  int radius() const override { return 1; }
  int num_node_labels() const override { return 0; }
  int num_edge_labels() const override { return 2; }
  bool valid_at(const Graph& g, const Labeling& lab, int v) const override;
};

}  // namespace lad
