// Centralized exact LCL solver (backtracking with incremental local
// constraint checks).
//
// Used by (a) encoders, which per Definition 2 are centralized and may
// compute any witness, and (b) the §4 decoder, where each cluster completes
// the pinned border labeling by brute force inside its own ball.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lcl/lcl.hpp"

namespace lad {

/// Searches for labels of `free_nodes`/`free_edges` extending `pinned`
/// (entries -1 in pinned are unassigned) such that valid_at holds for every
/// node of `check_nodes` whose constraint region becomes fully labeled.
/// Every check node's region must be fully labeled once the search finishes.
/// Returns std::nullopt if no completion exists (or the step budget runs
/// out, which throws instead — a budget exhaustion is a usage error).
std::optional<Labeling> solve_lcl(const Graph& g, const LclProblem& p, const Labeling& pinned,
                                  const std::vector<int>& free_nodes,
                                  const std::vector<int>& free_edges,
                                  const std::vector<int>& check_nodes,
                                  std::int64_t max_steps = 50'000'000);

/// Whole-graph convenience: all labels free, all constraints checked.
std::optional<Labeling> solve_lcl(const Graph& g, const LclProblem& p,
                                  std::int64_t max_steps = 50'000'000);

}  // namespace lad
