#include "lcl/lcl.hpp"

namespace lad {

bool is_valid_labeling(const Graph& g, const LclProblem& p, const Labeling& lab,
                       const std::vector<char>& node_mask) {
  if (static_cast<int>(lab.node_labels.size()) != g.n()) return false;
  if (static_cast<int>(lab.edge_labels.size()) != g.m()) return false;
  for (int v = 0; v < g.n(); ++v) {
    if (!node_mask.empty() && !node_mask[v]) continue;
    if (!p.valid_at(g, lab, v)) return false;
  }
  return true;
}

}  // namespace lad
