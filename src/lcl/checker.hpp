// Distributed LCL checking: every node inspects its radius-r ball and
// accepts/rejects. This is the verifier half of locally checkable proofs.
#pragma once

#include <vector>

#include "lcl/lcl.hpp"

namespace lad {

struct DistributedCheckResult {
  bool accepted = false;             // all nodes accepted
  std::vector<char> rejecting;       // per-node reject flags
  int rounds = 0;                    // = checkability radius
};

/// Runs the radius-r local verifier at every node.
DistributedCheckResult check_distributed(const Graph& g, const LclProblem& p,
                                         const Labeling& lab);

}  // namespace lad
