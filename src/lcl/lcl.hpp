// Locally checkable labeling problems (§3.3).
//
// An LCL is specified by finite node/edge label alphabets, a checkability
// radius r, and a local constraint. We represent the constraint as a
// predicate `valid_at(g, labeling, v)` that may inspect only the radius-r
// ball of v; validity of a labeling is the conjunction over all nodes —
// exactly the paper's definition, with the constraint set C given
// intensionally rather than as an explicit list of labeled balls.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

/// A (possibly partial) labeling: -1 means unassigned; valid labels are
/// 1..num_node_labels / 1..num_edge_labels.
struct Labeling {
  std::vector<int> node_labels;
  std::vector<int> edge_labels;

  static Labeling empty(const Graph& g) {
    Labeling l;
    l.node_labels.assign(static_cast<std::size_t>(g.n()), -1);
    l.edge_labels.assign(static_cast<std::size_t>(g.m()), -1);
    return l;
  }
};

class LclProblem {
 public:
  virtual ~LclProblem() = default;

  virtual std::string name() const = 0;

  /// Checkability radius r.
  virtual int radius() const = 0;

  /// Sizes of the output alphabets; 0 means the problem does not label that
  /// kind of object (such labels stay -1).
  virtual int num_node_labels() const = 0;
  virtual int num_edge_labels() const = 0;

  /// Constraint at v. May assume every label within radius r of v is
  /// assigned; must inspect only that ball.
  virtual bool valid_at(const Graph& g, const Labeling& lab, int v) const = 0;
};

/// Global validity = local validity at every (masked) node.
bool is_valid_labeling(const Graph& g, const LclProblem& p, const Labeling& lab,
                       const std::vector<char>& node_mask = {});

}  // namespace lad
