#include "lcl/solver.hpp"

#include <algorithm>
#include <deque>

#include "graph/distance.hpp"

namespace lad {
namespace {

struct Var {
  bool is_node = true;
  int index = 0;  // node or edge index
};

class Search {
 public:
  Search(const Graph& g, const LclProblem& p, const Labeling& pinned,
         const std::vector<int>& free_nodes, const std::vector<int>& free_edges,
         const std::vector<int>& check_nodes, std::int64_t max_steps)
      : g_(g), p_(p), lab_(pinned), max_steps_(max_steps) {
    check_.assign(static_cast<std::size_t>(g.n()), 0);
    for (const int v : check_nodes) check_[v] = 1;
    build_order(free_nodes, free_edges);
  }

  std::optional<Labeling> run() {
    if (!search()) return std::nullopt;
    // Every check node must now have a fully labeled region.
    for (int v = 0; v < g_.n(); ++v) {
      if (check_[v]) {
        LAD_CHECK_MSG(region_fully_labeled(v), "check node " << g_.id(v)
                                                             << " region not fully labeled");
        LAD_CHECK(p_.valid_at(g_, lab_, v));
      }
    }
    return lab_;
  }

 private:
  // Orders variables by a BFS-like sweep so that constraints become fully
  // labeled (and thus prunable) as early as possible.
  void build_order(const std::vector<int>& free_nodes, const std::vector<int>& free_edges) {
    std::vector<Var> vars;
    if (p_.num_node_labels() > 0) {
      for (const int v : free_nodes) vars.push_back({true, v});
    }
    if (p_.num_edge_labels() > 0) {
      for (const int e : free_edges) vars.push_back({false, e});
    }
    // Anchor each variable at a node and sort by BFS order from the first
    // variable's anchor.
    if (vars.empty()) {
      order_ = {};
      return;
    }
    const int root = vars.front().is_node ? vars.front().index : g_.edge_u(vars.front().index);
    const auto dist = bfs_distances(g_, root);
    auto key = [&](const Var& v) {
      const int a = v.is_node ? v.index : std::min(g_.edge_u(v.index), g_.edge_v(v.index));
      const int d = dist[a] == kUnreachable ? g_.n() + 1 : dist[a];
      return std::make_tuple(d, v.is_node ? 0 : 1, v.index);
    };
    std::sort(vars.begin(), vars.end(), [&](const Var& a, const Var& b) { return key(a) < key(b); });
    order_ = std::move(vars);
  }

  bool region_fully_labeled(int v) {
    for (const int u : ball_nodes(g_, v, p_.radius())) {
      if (p_.num_node_labels() > 0 && lab_.node_labels[u] == -1) return false;
      if (p_.num_edge_labels() > 0) {
        for (const int e : g_.incident_edges(u)) {
          if (lab_.edge_labels[e] == -1) return false;
        }
      }
    }
    return true;
  }

  // Check nodes whose constraint region contains the just-assigned variable.
  std::vector<int> affected_checks(const Var& var) {
    std::vector<int> out;
    const int r = p_.radius();
    auto collect = [&](int from, int radius) {
      for (const int v : ball_nodes(g_, from, radius)) {
        if (check_[v]) out.push_back(v);
      }
    };
    if (var.is_node) {
      collect(var.index, r);
    } else {
      collect(g_.edge_u(var.index), r + 1);
      collect(g_.edge_v(var.index), r + 1);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  int& slot_of(const Var& var) {
    return var.is_node ? lab_.node_labels[var.index] : lab_.edge_labels[var.index];
  }

  // Backtracking over `order_` with an explicit stack (the search depth is
  // one level per free variable, far too deep for the call stack on large
  // instances). Each frame remembers the affected check nodes and the next
  // label to try; frames are dropped on backtrack and rebuilt on re-entry,
  // exactly like the activation records of the recursive formulation.
  struct Frame {
    std::vector<int> affected;
    int next_label = 1;
  };

  bool search() {
    std::vector<Frame> stack;
    std::size_t i = 0;
    while (i < order_.size()) {
      const Var& var = order_[i];
      if (stack.size() == i) {
        LAD_CHECK_MSG(++steps_ <= max_steps_, "solve_lcl: step budget exhausted");
        LAD_CHECK_MSG(slot_of(var) == -1, "free variable already pinned");
        stack.push_back({affected_checks(var), 1});
      }
      Frame& f = stack.back();
      const int num_labels = var.is_node ? p_.num_node_labels() : p_.num_edge_labels();
      int& slot = slot_of(var);
      bool advanced = false;
      while (f.next_label <= num_labels) {
        slot = f.next_label++;
        bool ok = true;
        for (const int v : f.affected) {
          if (region_fully_labeled(v) && !p_.valid_at(g_, lab_, v)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          advanced = true;
          break;
        }
      }
      if (advanced) {
        ++i;
        continue;
      }
      slot = -1;  // exhausted every label: backtrack
      stack.pop_back();
      if (i == 0) return false;
      --i;
    }
    LAD_CHECK_MSG(++steps_ <= max_steps_, "solve_lcl: step budget exhausted");
    return true;
  }

  const Graph& g_;
  const LclProblem& p_;
  Labeling lab_;
  std::vector<char> check_;
  std::vector<Var> order_;
  std::int64_t max_steps_;
  std::int64_t steps_ = 0;
};

}  // namespace

std::optional<Labeling> solve_lcl(const Graph& g, const LclProblem& p, const Labeling& pinned,
                                  const std::vector<int>& free_nodes,
                                  const std::vector<int>& free_edges,
                                  const std::vector<int>& check_nodes, std::int64_t max_steps) {
  Search s(g, p, pinned, free_nodes, free_edges, check_nodes, max_steps);
  return s.run();
}

std::optional<Labeling> solve_lcl(const Graph& g, const LclProblem& p, std::int64_t max_steps) {
  std::vector<int> nodes(g.nodes().begin(), g.nodes().end());
  std::vector<int> edges(static_cast<std::size_t>(g.m()));
  for (int e = 0; e < g.m(); ++e) edges[e] = e;
  return solve_lcl(g, p, Labeling::empty(g), nodes, edges, nodes, max_steps);
}

}  // namespace lad
