#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "util/contracts.hpp"

namespace lad {

int ThreadPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hc));
}

ThreadPool::ThreadPool(int threads) {
  threads_ = threads <= 0 ? default_threads() : threads;
  LAD_TM(obs::core().pool_threads.set(threads_));
  if (threads_ == 1) return;  // inline mode: no workers, no locking
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int worker_index) {
  // Label the worker's trace lane ("lad-pool-<i>") for Chrome/Perfetto
  // exports and the profiler's per-thread rows. The index feeds only this
  // label, which compiles out under LAD_TELEMETRY=OFF.
  (void)worker_index;
  LAD_TM_THREAD_NAME("lad-pool-" + std::to_string(worker_index));
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn();  // chunk runners catch their own exceptions
    {
      std::lock_guard<std::mutex> lk(mu_);
      --inflight_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks(const std::function<void(int)>& chunk_fn, int num_chunks) {
  if (num_chunks <= 0) return;
  // Every chunk records its own failure; the lowest-numbered one is
  // rethrown, matching what a serial left-to-right loop would surface.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_chunks));
  auto guarded = [&](int c) {
    // The span lands in the executing thread's trace buffer, so traces show
    // the actual chunk->thread schedule; the counter total stays a pure
    // function of (count, threads).
    LAD_TM_SPAN(chunk_span, "pool.chunk", "pool");
    LAD_TM_CHUNK_TIMER(chunk_timer);
    // Wait attribution (DESIGN.md §14): records [start, end] against the
    // open dispatch window; a no-op on the serial inline path below, so
    // threads=1 reports exactly zero dispatch/queue/barrier time.
    LAD_TM_WAIT_TIMER(wait_timer);
    LAD_TM(obs::core().pool_chunks.add(1));
    try {
      chunk_fn(c);
    } catch (...) {
      errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
  };

  if (workers_.empty()) {
    for (int c = 0; c < num_chunks; ++c) guarded(c);
  } else {
    // Open the wait-attribution window at the enqueue instant; workers
    // timestamp their chunks against it and end_dispatch() folds dispatch
    // latency / queueing delay / per-worker barrier wait after the barrier.
    LAD_TM(obs::WaitAccounting::instance().begin_dispatch());
    {
      std::lock_guard<std::mutex> lk(mu_);
      LAD_CHECK_MSG(inflight_ == 0, "ThreadPool::parallel_for is not reentrant");
      inflight_ = num_chunks;
      // Push in reverse so workers pop chunk 0 first (LIFO queue).
      for (int c = num_chunks - 1; c >= 0; --c) {
        queue_.push_back(Task{[guarded, c] { guarded(c); }});
      }
    }
    work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [this] { return inflight_ == 0; });
    }
    LAD_TM(obs::WaitAccounting::instance().end_dispatch());
  }

  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(int count, const std::function<void(int, int, int)>& body) {
  if (count <= 0) return;
  const int chunks = std::min(threads_, count);
  run_chunks(
      [&](int c) {
        const int begin = static_cast<int>(static_cast<long long>(count) * c / chunks);
        const int end = static_cast<int>(static_cast<long long>(count) * (c + 1) / chunks);
        body(begin, end, c);
      },
      chunks);
}

void ThreadPool::for_each(int count, const std::function<void(int)>& body) {
  parallel_for(count, [&body](int begin, int end, int /*chunk*/) {
    for (int i = begin; i < end; ++i) body(i);
  });
}

}  // namespace lad
