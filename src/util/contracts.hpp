// Contract macros used throughout the library.
//
// Three tiers, by cost and intent:
//
//   LAD_CHECK(expr) / LAD_CHECK_MSG(expr, msg)
//       Always on, in every build type. Used on cold paths — construction,
//       encoding, validation, I/O — and for every property the paper states
//       as a theorem (proper coloring, balanced orientation, ...). Throws
//       lad::ContractViolation so callers and tests can observe the failure.
//
//   LAD_ASSERT(expr) / LAD_ASSERT_MSG(expr, msg)
//       Hot-path invariants (per-message, per-port, per-bit). Compiled out
//       under NDEBUG unless LAD_FORCE_ASSERTS is defined; Debug and
//       sanitizer builds keep them. Same failure behavior as LAD_CHECK when
//       enabled.
//
//   LAD_UNREACHABLE(msg)
//       Marks control flow that must never execute. Throws when asserts are
//       enabled; tells the optimizer the path is dead otherwise.
// Check evaluations are counted into the telemetry registry
// (lad_contract_checks_total) when telemetry is compiled in and
// runtime-enabled — one relaxed atomic load on the hot path otherwise.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/telemetry.hpp"

namespace lad {

/// Thrown when a precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "LAD_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

[[noreturn]] inline void unreachable_reached(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << "LAD_UNREACHABLE reached at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace lad

#define LAD_CHECK(expr)                                                       \
  do {                                                                        \
    LAD_TM_COUNT_CONTRACT();                                                  \
    if (!(expr)) ::lad::detail::check_failed(#expr, __FILE__, __LINE__, "");  \
  } while (0)

#define LAD_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    LAD_TM_COUNT_CONTRACT();                                                \
    if (!(expr)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::lad::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());    \
    }                                                                       \
  } while (0)

#if !defined(NDEBUG) || defined(LAD_FORCE_ASSERTS)
#define LAD_ASSERTS_ENABLED 1
#else
#define LAD_ASSERTS_ENABLED 0
#endif

#if LAD_ASSERTS_ENABLED
#define LAD_ASSERT(expr) LAD_CHECK(expr)
#define LAD_ASSERT_MSG(expr, msg) LAD_CHECK_MSG(expr, msg)
#define LAD_UNREACHABLE(msg) ::lad::detail::unreachable_reached(__FILE__, __LINE__, msg)
#else
#define LAD_ASSERT(expr) \
  do {                   \
  } while (0)
#define LAD_ASSERT_MSG(expr, msg) \
  do {                            \
  } while (0)
#if defined(__GNUC__) || defined(__clang__)
#define LAD_UNREACHABLE(msg) __builtin_unreachable()
#else
#define LAD_UNREACHABLE(msg) ::lad::detail::unreachable_reached(__FILE__, __LINE__, msg)
#endif
#endif
