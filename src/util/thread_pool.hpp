// Fixed-size thread pool with deterministic static partitioning.
//
// The execution substrate of the parallel layer (DESIGN.md §8). Design
// constraints, in order:
//
//   1. *Determinism first.* parallel_for splits [0, count) into exactly
//      `threads()` contiguous chunks by the same arithmetic every run; there
//      is no work stealing and no dynamic scheduling, so which thread
//      computes which index is a pure function of (count, threads()). Any
//      caller that writes only to per-index slots therefore produces
//      byte-identical results at every thread count — the property the
//      ParallelEngine, the parallel ball gather, and the parallel fault
//      campaigns assert in tests/test_parallel_engine.cpp.
//   2. *Exceptions propagate deterministically.* If chunk bodies throw, the
//      exception of the lowest-numbered failing chunk is rethrown on the
//      caller's thread — the same exception a serial left-to-right loop
//      would have surfaced first (bodies are assumed not to mutate shared
//      state before throwing, which per-index writers satisfy trivially).
//   3. *threads() == 1 never spawns.* A pool of one runs everything inline
//      on the caller's thread, so "parallel code at 1 thread" is literally
//      the serial code — no scheduling noise in 1-thread baselines.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lad {

class ThreadPool {
 public:
  /// `threads` <= 0 means default_threads(). A pool of 1 spawns no workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static int default_threads();

  /// Runs `body(begin, end, chunk)` over a static partition of [0, count)
  /// into threads() contiguous chunks (chunk c = [c*count/T, (c+1)*count/T)).
  /// Blocks until every chunk finished; rethrows the exception of the
  /// lowest-numbered failing chunk.
  void parallel_for(int count, const std::function<void(int, int, int)>& body);

  /// Convenience wrapper: `body(i)` for every i in [0, count), partitioned
  /// as in parallel_for.
  void for_each(int count, const std::function<void(int)>& body);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop(int worker_index);
  void run_chunks(const std::function<void(int)>& chunk_fn, int num_chunks);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  int inflight_ = 0;
  bool stop_ = false;
};

}  // namespace lad
