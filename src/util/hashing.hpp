// Stateless splitmix64-based hashing, the determinism backbone.
//
// Every seeded decision in this codebase — fault injection sites, hashed
// membership sets, per-trial sub-seeds — is a pure function of
// (seed, site) through these finalizers. Statelessness is what makes the
// fault injector and the pipeline instance generators immune to
// iteration-order and thread-count effects. Originally private to
// src/faults/; promoted to util/ so the core pipeline registry can generate
// hashed instances without depending on the faults layer.
#pragma once

#include <cstdint>

namespace lad {

/// splitmix64 finalizer: the one-instruction-wide PRNG we key all seeded
/// decisions on.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash2(std::uint64_t a, std::uint64_t b) {
  return splitmix64(splitmix64(a) ^ (b + 0x9e3779b97f4a7c15ULL));
}

constexpr std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return hash2(hash2(a, b), c);
}

constexpr std::uint64_t hash4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d) {
  return hash2(hash3(a, b, c), d);
}

/// Uniform double in [0, 1) from a hash value.
constexpr double unit_from_hash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

}  // namespace lad
