// `lad lint` driver: source collection, pragma suppression, baseline diff,
// and report rendering (DESIGN.md §10).
//
// The flow mirrors the bench-regression sentinel (obs/benchdiff.hpp): a
// deterministic analysis produces a machine-readable document, a checked-in
// baseline grandfathers known findings, and the exit code is the contract
// CI gates on:
//
//   0 — no findings beyond the baseline
//   2 — usage error (unknown rule/flag, unreadable root or baseline)
//   3 — new findings (not covered by the baseline)
//   4 — parse failure (a source file the scanner cannot lex)
//
// Baseline matching is by (file, rule) multiset — line numbers drift with
// every edit, so a baseline entry forgives one finding of that rule in that
// file wherever it currently sits. Rebaselining mirrors DESIGN.md §9.7:
// rerun with --write-baseline, review the diff, commit.
#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace lad::lint {

/// One source file, by content — the unit tests feed snippets directly and
/// the CLI feeds files read from disk.
struct MemSource {
  std::string path;  // root-relative, '/'-separated
  std::string text;
};

struct LintReport {
  struct Item {
    Finding finding;
    bool grandfathered = false;  // covered by a baseline entry
  };

  int files_scanned = 0;
  int suppressed = 0;  // findings silenced by allow() pragmas
  std::vector<Item> items;

  int new_count() const;
  bool clean() const { return new_count() == 0; }

  std::string to_text() const;
  std::string to_json() const;
  /// Baseline document covering every current finding (for --write-baseline).
  std::string to_baseline_json() const;
};

/// Runs every enabled rule over `sources`. `baseline_json` is a baseline
/// document ("" = empty baseline). Throws LintParseError when a source
/// cannot be lexed and std::runtime_error when the baseline is malformed.
LintReport run_lint(const std::vector<MemSource>& sources, const RuleConfig& cfg,
                    const std::string& baseline_json = "");

/// Reads the repository's lintable sources under `root`: every .cpp/.hpp/.h
/// beneath root/src and root/tools, sorted by path. Throws
/// std::runtime_error when root/src does not exist or a file is unreadable.
std::vector<MemSource> collect_repo_sources(const std::string& root);

/// RuleConfig wired to the live obs catalogs: metric names from the
/// MetricsRegistry core catalog, span names from obs::span_name_catalog().
RuleConfig repo_rule_config();

}  // namespace lad::lint
