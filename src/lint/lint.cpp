#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/telemetry.hpp"

namespace lad::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Baseline document: the same hand-rolled JSON subset discipline as
// obs/benchdiff.cpp — we parse exactly what our own writer emits and reject
// everything else loudly.

struct BaselineEntry {
  std::string file;
  std::string rule;
};

class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : s_(text) {}

  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) ++i_;
  }
  bool eat(char c) {
    ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      out += s_[i_++];
    }
    expect('"');
    return out;
  }
  long long number() {
    ws();
    std::size_t end = i_;
    while (end < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
                               s_[end] == '-')) {
      ++end;
    }
    if (end == i_) fail("expected number");
    const long long v = std::stoll(s_.substr(i_, end - i_));
    i_ = end;
    return v;
  }
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("lint baseline: " + what + " at offset " + std::to_string(i_));
  }
  bool at_end() {
    ws();
    return i_ >= s_.size();
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> out;
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) return out;
  MiniJson j(text);
  j.expect('{');
  bool first = true;
  while (!j.eat('}')) {
    if (!first) j.expect(',');
    first = false;
    const std::string key = j.string();
    j.expect(':');
    if (key == "schema") {
      if (j.number() != 1) j.fail("unsupported schema");
    } else if (key == "findings") {
      j.expect('[');
      while (!j.eat(']')) {
        if (!out.empty()) j.expect(',');
        j.expect('{');
        BaselineEntry e;
        bool efirst = true;
        while (!j.eat('}')) {
          if (!efirst) j.expect(',');
          efirst = false;
          const std::string k = j.string();
          j.expect(':');
          if (k == "file") {
            e.file = j.string();
          } else if (k == "rule") {
            e.rule = j.string();
          } else if (k == "line") {
            j.number();  // informational; not part of the match key
          } else {
            j.fail("unknown finding key '" + k + "'");
          }
        }
        if (e.file.empty() || e.rule.empty()) j.fail("finding needs file and rule");
        out.push_back(e);
      }
    } else {
      j.fail("unknown key '" + key + "'");
    }
  }
  if (!j.at_end()) j.fail("trailing content");
  return out;
}

}  // namespace

int LintReport::new_count() const {
  return static_cast<int>(
      std::count_if(items.begin(), items.end(), [](const Item& i) { return !i.grandfathered; }));
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  for (const auto& it : items) {
    os << it.finding.file << ":" << it.finding.line << ": [" << it.finding.rule << "] "
       << it.finding.message << (it.grandfathered ? " (grandfathered)" : "") << "\n";
  }
  os << "lint: " << files_scanned << " file(s) scanned, " << items.size() << " finding(s) ("
     << new_count() << " new, " << items.size() - static_cast<std::size_t>(new_count())
     << " grandfathered, " << suppressed << " suppressed by pragma)\n";
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"files_scanned\": " << files_scanned
     << ",\n  \"new_findings\": " << new_count() << ",\n  \"suppressed\": " << suppressed
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& it = items[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(it.finding.file)
       << "\", \"line\": " << it.finding.line << ", \"rule\": \"" << it.finding.rule
       << "\", \"new\": " << (it.grandfathered ? "false" : "true") << ", \"message\": \""
       << json_escape(it.finding.message) << "\"}";
  }
  os << (items.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string LintReport::to_baseline_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < items.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(items[i].finding.file)
       << "\", \"rule\": \"" << items[i].finding.rule
       << "\", \"line\": " << items[i].finding.line << "}";
  }
  os << (items.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

LintReport run_lint(const std::vector<MemSource>& sources, const RuleConfig& cfg,
                    const std::string& baseline_json) {
  std::vector<ScannedFile> files;
  files.reserve(sources.size());
  for (const auto& s : sources) files.push_back(scan_source(s.path, s.text));
  std::sort(files.begin(), files.end(),
            [](const ScannedFile& a, const ScannedFile& b) { return a.path < b.path; });

  LintReport report;
  report.files_scanned = static_cast<int>(files.size());

  std::vector<Finding> findings;
  std::map<std::string, const ScannedFile*> by_path;
  for (const auto& f : files) {
    by_path.emplace(f.path, &f);
    auto per_file = run_file_rules(f, cfg);
    findings.insert(findings.end(), per_file.begin(), per_file.end());
  }
  auto layer = run_layer_rules(files, cfg);
  findings.insert(findings.end(), layer.begin(), layer.end());

  // Pragma suppression (`lint-pragma` findings are never suppressible —
  // they report broken pragmas themselves).
  std::vector<Finding> kept;
  for (auto& f : findings) {
    const ScannedFile* sf = by_path.at(f.file);
    const auto it = sf->allow.find(f.line);
    if (f.rule != "lint-pragma" && it != sf->allow.end() && it->second.count(f.rule) != 0) {
      ++report.suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });

  // Baseline: each (file, rule) entry forgives one finding of that rule in
  // that file, wherever its line drifted to.
  std::map<std::pair<std::string, std::string>, int> grandfathered;
  for (const auto& e : parse_baseline(baseline_json)) ++grandfathered[{e.file, e.rule}];
  for (auto& f : kept) {
    auto it = grandfathered.find({f.file, f.rule});
    const bool old = it != grandfathered.end() && it->second > 0;
    if (old) --it->second;
    report.items.push_back({std::move(f), old});
  }
  return report;
}

std::vector<MemSource> collect_repo_sources(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  if (!fs::is_directory(base / "src")) {
    throw std::runtime_error("lint root '" + root + "' has no src/ directory");
  }
  std::vector<MemSource> out;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = base / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in.good()) {
        throw std::runtime_error("cannot read " + entry.path().string());
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      out.push_back({fs::relative(entry.path(), base).generic_string(), ss.str()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MemSource& a, const MemSource& b) { return a.path < b.path; });
  return out;
}

RuleConfig repo_rule_config() {
  RuleConfig cfg;
  obs::core();  // materialize the catalog block
  cfg.metric_catalog = obs::MetricsRegistry::instance().names();
  cfg.span_catalog = obs::span_name_catalog();
  return cfg;
}

}  // namespace lad::lint
