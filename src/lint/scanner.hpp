// Token-level C++ source scanner for `lad lint` (DESIGN.md §10).
//
// The rule engine (lint/rules.hpp) must never fire on text inside comments
// or string/character literals — a README mention of rand() in a doc
// comment is not a determinism bug. This scanner produces a *blanked* copy
// of the source in which every comment and every literal body is replaced
// by spaces, byte positions preserved, so rules can match on `code` and
// still report line numbers and quote surrounding text from `raw`.
//
// It also extracts the two pieces of per-file structure the rules need:
//
//   * #include directives (project "..." and system <...>), for the
//     layering rule's include graph;
//   * `// lad-lint: allow(<rule>[,<rule>...]): <reason>` suppression
//     pragmas. A pragma applies to the line it sits on; a pragma alone on
//     its line also covers the next line. The reason is mandatory — a
//     pragma without one is itself reported (rule `lint-pragma`).
//
// This is deliberately not a parser: it understands exactly as much C++
// lexing as the rules need (escapes, raw strings, digraph-free code) and
// throws LintParseError on input it cannot lex (unterminated block
// comment / string / raw string), which `lad lint` maps to exit code 4.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace lad::lint {

/// Lexing failed; the message names file:line and what was unterminated.
class LintParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct IncludeDirective {
  int line = 0;        // 1-based
  std::string target;  // path between the quotes/brackets
  bool system = false; // <...> form
};

struct ScannedFile {
  std::string path;  // root-relative, '/'-separated (e.g. "src/graph/io.cpp")
  std::string raw;   // original bytes
  std::string code;  // same length as raw; comments + literal bodies blanked

  std::vector<IncludeDirective> includes;

  /// line -> rule names a pragma on (or just above) that line allows.
  std::map<int, std::set<std::string>> allow;

  /// Lines carrying a lad-lint pragma with a missing/empty reason.
  std::vector<int> pragmas_missing_reason;

  /// 1-based line number of a byte offset into raw/code.
  int line_of(std::size_t offset) const;

 private:
  friend ScannedFile scan_source(const std::string& path, const std::string& text);
  std::vector<std::size_t> line_starts_;
};

/// Lexes `text` into a ScannedFile. Throws LintParseError on input that
/// cannot be lexed (the caller maps this to exit code 4).
ScannedFile scan_source(const std::string& path, const std::string& text);

}  // namespace lad::lint
