#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <tuple>

namespace lad::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_space(const std::string& s, std::size_t i) {
  while (i < s.size() && is_space(s[i])) ++i;
  return i;
}

/// Calls fn(name, offset) for every identifier token in `code`.
template <typename Fn>
void for_each_identifier(const std::string& code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_ident_char(code[i]) && std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      std::size_t j = i + 1;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      fn(code.substr(i, j - i), i);
      i = j;
    } else {
      ++i;
    }
  }
}

/// Offset just past the bracket matching code[open] (one of ( [ { <), or
/// npos if unbalanced. For '<' the scan also bails on ';' — a lone
/// less-than in an expression never closes, and declarations don't span
/// statements.
std::size_t match_bracket(const std::string& code, std::size_t open) {
  const char o = code[open];
  const char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '>';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == o) {
      ++depth;
    } else if (code[i] == c) {
      if (--depth == 0) return i + 1;
    } else if (o == '<' && code[i] == ';') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// True for files under the byte-determinism contract (§8): the layers
/// whose outputs must reproduce bit-for-bit at any seed/thread count.
bool deterministic_layer(const std::string& path) {
  static const char* kLayers[] = {"src/graph/", "src/advice/", "src/lcl/",
                                  "src/local/", "src/core/",   "src/faults/"};
  return std::any_of(std::begin(kLayers), std::end(kLayers),
                     [&](const char* p) { return starts_with(path, p); });
}

void add(std::vector<Finding>& out, const ScannedFile& f, std::size_t offset,
         const std::string& rule, const std::string& message) {
  out.push_back({f.path, f.line_of(offset), rule, message});
}

// ---------------------------------------------------------------------------
// det-rng / det-wallclock / det-std-hash

void rule_det_tokens(const ScannedFile& f, std::vector<Finding>& out, const RuleConfig& cfg) {
  // graph/rng.* is the sanctioned seeded-RNG home: the mt19937_64 it wraps
  // is deterministic under a fixed seed and every caller goes through it.
  const bool rng_home = f.path == "src/graph/rng.hpp" || f.path == "src/graph/rng.cpp";

  static const std::set<std::string> kRng = {
      "rand",        "srand",        "rand_r",      "drand48",
      "random_device", "mt19937",    "mt19937_64",  "minstd_rand",
      "minstd_rand0",  "default_random_engine",     "knuth_b",
      "random_shuffle"};
  static const std::set<std::string> kClock = {
      "system_clock", "steady_clock", "high_resolution_clock", "localtime",
      "gmtime",       "strftime",     "timespec_get",          "gettimeofday",
      "clock_gettime"};
  // `time` / `clock` only as a direct call, and never as a member access —
  // `sw.time()` on some object is not the libc wall clock.
  static const std::set<std::string> kCallOnly = {"time", "clock"};

  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    const bool member = off >= 1 && (f.code[off - 1] == '.' ||
                                     (off >= 2 && f.code[off - 1] == '>' &&
                                      f.code[off - 2] == '-'));
    if (cfg.enabled("det-rng") && !rng_home && kRng.count(id) != 0 && !member) {
      add(out, f, off, "det-rng",
          "banned nondeterminism source '" + id +
              "' in a deterministic layer; draw through graph/rng.hpp on an "
              "isolated sub-seed (util/hashing.hpp splitmix) instead");
      return;
    }
    if (!cfg.enabled("det-wallclock")) return;
    const bool call_only_hit =
        kCallOnly.count(id) != 0 && !member &&
        (skip_space(f.code, off + id.size()) < f.code.size() &&
         f.code[skip_space(f.code, off + id.size())] == '(');
    if (kClock.count(id) != 0 || call_only_hit) {
      add(out, f, off, "det-wallclock",
          "wall-clock read '" + id +
              "' in a deterministic layer; timing belongs to the obs layer "
              "(obs/stopwatch.hpp), outputs must not depend on it");
    }
  });

  if (cfg.enabled("det-wallclock")) {
    for (const auto& inc : f.includes) {
      if (inc.system && (inc.target == "chrono" || inc.target == "ctime")) {
        out.push_back({f.path, inc.line, "det-wallclock",
                       "<" + inc.target +
                           "> included in a deterministic layer; the one "
                           "sanctioned clock is obs/stopwatch.hpp"});
      }
      if (cfg.enabled("det-rng") && inc.system && inc.target == "random" &&
          f.path != "src/graph/rng.hpp") {
        out.push_back({f.path, inc.line, "det-rng",
                       "<random> included in a deterministic layer; use the "
                       "seeded wrapper in graph/rng.hpp"});
      }
    }
  }

  if (cfg.enabled("det-std-hash")) {
    // Token sequence std :: hash — std::hash's value is unspecified across
    // implementations, so it must never touch an output-affecting path.
    std::size_t pos = 0;
    while ((pos = f.code.find("std", pos)) != std::string::npos) {
      const std::size_t tok = pos;
      pos += 3;
      if (tok > 0 && is_ident_char(f.code[tok - 1])) continue;
      std::size_t p = skip_space(f.code, tok + 3);
      if (p + 1 >= f.code.size() || f.code[p] != ':' || f.code[p + 1] != ':') continue;
      p = skip_space(f.code, p + 2);
      if (f.code.compare(p, 4, "hash") != 0) continue;
      if (p + 4 < f.code.size() && is_ident_char(f.code[p + 4])) continue;
      add(out, f, tok, "det-std-hash",
          "std::hash in a deterministic layer; its value is "
          "implementation-defined — hash with util/hashing.hpp splitmix");
    }
  }
}

// ---------------------------------------------------------------------------
// det-unordered-iter

void rule_unordered_iter(const ScannedFile& f, std::vector<Finding>& out) {
  // Pass 1: names declared with an unordered container type in this file
  // (declarations and data members; `using X = std::unordered_map<...>`
  // aliases are out of scope and documented as such in DESIGN.md §10).
  std::set<std::string> names;
  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    if (id != "unordered_map" && id != "unordered_set" && id != "unordered_multimap" &&
        id != "unordered_multiset") {
      return;
    }
    std::size_t p = skip_space(f.code, off + id.size());
    if (p >= f.code.size() || f.code[p] != '<') return;
    const std::size_t close = match_bracket(f.code, p);
    if (close == std::string::npos) return;
    p = skip_space(f.code, close);
    while (p < f.code.size() && (f.code[p] == '&' || f.code[p] == '*')) {
      p = skip_space(f.code, p + 1);
    }
    if (p >= f.code.size() || !is_ident_char(f.code[p])) return;
    std::size_t q = p;
    while (q < f.code.size() && is_ident_char(f.code[q])) ++q;
    names.insert(f.code.substr(p, q - p));
  });
  if (names.empty()) return;

  // Pass 2a: range-for over a collected name.
  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    if (id != "for") return;
    std::size_t p = skip_space(f.code, off + 3);
    if (p >= f.code.size() || f.code[p] != '(') return;
    const std::size_t close = match_bracket(f.code, p);
    if (close == std::string::npos) return;
    // Top-level ':' that is not '::' marks a range-for.
    int depth = 0;
    for (std::size_t i = p + 1; i + 1 < close; ++i) {
      const char c = f.code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 0 || c != ':') continue;
      if (f.code[i + 1] == ':' || f.code[i - 1] == ':') {
        ++i;
        continue;
      }
      std::size_t q = skip_space(f.code, i + 1);
      std::size_t r = q;
      while (r < f.code.size() && is_ident_char(f.code[r])) ++r;
      if (names.count(f.code.substr(q, r - q)) != 0) {
        add(out, f, off, "det-unordered-iter",
            "range-for over unordered container '" + f.code.substr(q, r - q) +
                "'; iteration order is implementation-defined — iterate a "
                "sorted key list or an index instead");
      }
      break;
    }
  });

  // Pass 2b: explicit iterator walks — name.begin()/cbegin()/rbegin()/....
  // Only the begin family: comparing a find() result against .end() is the
  // standard lookup idiom and never observes iteration order.
  static const std::set<std::string> kIterFns = {"begin", "cbegin", "rbegin", "crbegin"};
  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    if (names.count(id) == 0) return;
    std::size_t p = skip_space(f.code, off + id.size());
    if (p >= f.code.size() || f.code[p] != '.') return;
    p = skip_space(f.code, p + 1);
    std::size_t q = p;
    while (q < f.code.size() && is_ident_char(f.code[q])) ++q;
    if (kIterFns.count(f.code.substr(p, q - p)) != 0) {
      add(out, f, off, "det-unordered-iter",
          "iterator walk over unordered container '" + id +
              "'; iteration order is implementation-defined — iterate a "
              "sorted key list or an index instead");
    }
  });
}

// ---------------------------------------------------------------------------
// obs-metric-name / obs-span-name

std::string literal_at(const ScannedFile& f, std::size_t quote) {
  // `code` keeps the quotes and blanks the body; read the body from raw.
  const std::size_t close = f.code.find('"', quote + 1);
  if (close == std::string::npos) return {};
  return f.raw.substr(quote + 1, close - quote - 1);
}

void rule_metric_names(const ScannedFile& f, std::vector<Finding>& out,
                       const RuleConfig& cfg) {
  // obs/telemetry.cpp is the definition site of the catalog itself.
  if (f.path == "src/obs/telemetry.cpp") return;
  static const std::set<std::string> kRegFns = {"counter", "gauge", "histogram"};
  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    if (kRegFns.count(id) == 0) return;
    if (off == 0 || f.code[off - 1] != '.') return;  // registry method call
    std::size_t p = skip_space(f.code, off + id.size());
    if (p >= f.code.size() || f.code[p] != '(') return;
    p = skip_space(f.code, p + 1);
    if (p >= f.code.size() || f.code[p] != '"') return;
    const std::string name = literal_at(f, p);
    if (std::find(cfg.metric_catalog.begin(), cfg.metric_catalog.end(), name) !=
        cfg.metric_catalog.end()) {
      return;
    }
    add(out, f, off, "obs-metric-name",
        "metric '" + name +
            "' is not in the MetricsRegistry core catalog "
            "(obs/telemetry.cpp); register it there so exporters, the "
            "determinism test, and DESIGN.md §9 stay in sync");
  });
}

void rule_span_names(const ScannedFile& f, std::vector<Finding>& out, const RuleConfig& cfg) {
  if (f.path == "src/obs/telemetry.cpp") return;  // catalog definition site
  std::size_t pos = 0;
  while ((pos = f.code.find("LAD_TM_SPAN", pos)) != std::string::npos) {
    const std::size_t tok = pos;
    pos += 11;
    if (tok > 0 && is_ident_char(f.code[tok - 1])) continue;
    if (pos < f.code.size() && is_ident_char(f.code[pos])) continue;  // the #define itself
    const std::size_t open = skip_space(f.code, pos);
    if (open >= f.code.size() || f.code[open] != '(') continue;
    const std::size_t close = match_bracket(f.code, open);
    if (close == std::string::npos) continue;
    // First string literal inside the macro args is the span name (or its
    // composed prefix); a fully dynamic name has no literal and is skipped.
    const std::size_t quote = f.code.find('"', open);
    if (quote == std::string::npos || quote >= close) continue;
    const std::string name = literal_at(f, quote);
    if (std::find(cfg.span_catalog.begin(), cfg.span_catalog.end(), name) !=
        cfg.span_catalog.end()) {
      continue;
    }
    add(out, f, tok, "obs-span-name",
        "span name '" + name +
            "' is not in the span catalog (obs::span_name_catalog in "
            "obs/telemetry.cpp); composed names must use a cataloged "
            "prefix ending in '/'");
  }
}

// ---------------------------------------------------------------------------
// core-decoder-precondition

void rule_decoder_preconditions(const ScannedFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "src/core/")) return;
  for_each_identifier(f.code, [&](const std::string& id, std::size_t off) {
    const bool decoder_name = starts_with(id, "decode_") || id == "decode" ||
                              starts_with(id, "decompress");
    if (!decoder_name) return;
    std::size_t p = skip_space(f.code, off + id.size());
    if (p >= f.code.size() || f.code[p] != '(') return;
    const std::size_t args_end = match_bracket(f.code, p);
    if (args_end == std::string::npos) return;
    std::size_t q = skip_space(f.code, args_end);
    // `const`/`noexcept`/trailing specifiers before the body.
    while (q < f.code.size() && is_ident_char(f.code[q])) {
      std::size_t r = q;
      while (r < f.code.size() && is_ident_char(f.code[r])) ++r;
      q = skip_space(f.code, r);
    }
    if (q >= f.code.size() || f.code[q] != '{') return;  // declaration or call
    const std::size_t body_end = match_bracket(f.code, q);
    if (body_end == std::string::npos) return;
    const std::string body = f.code.substr(q, body_end - q);
    bool has_contract = false;
    for_each_identifier(body, [&](const std::string& b, std::size_t) {
      if (starts_with(b, "LAD_ASSERT") || starts_with(b, "LAD_CHECK")) has_contract = true;
    });
    if (!has_contract) {
      add(out, f, off, "core-decoder-precondition",
          "decoder entry point '" + id +
              "' has no LAD_ASSERT/LAD_CHECK precondition; decoders must "
              "validate the advice they are handed (shape, length) before "
              "reading it");
    }
  });
}

// ---------------------------------------------------------------------------
// Layering

struct LayerEntry {
  const char* prefix;
  int rank;
  const char* name;
};

// File-prefix table, most specific first. Ranks encode the DAG
// obs → util → graph → {advice,lcl} → local → baselines → core →
// {faults, obs/claims} → lint → bench/tools/tests/examples; an include may
// only point at an equal or lower rank.
const LayerEntry kLayers[] = {
    {"src/obs/claims.", 70, "claims"},  // registry-aware assembly above core
    {"src/obs/", 0, "obs"},
    {"src/util/", 10, "util"},
    {"src/graph/", 20, "graph"},
    {"src/advice/", 30, "advice"},
    {"src/lcl/", 30, "lcl"},
    {"src/local/", 40, "local"},
    {"src/baselines/", 50, "baselines"},
    {"src/core/", 60, "core"},
    {"src/faults/", 70, "faults"},
    {"src/lint/", 80, "lint"},
    {"bench/", 90, "bench"},
    {"tools/", 90, "tools"},
    {"examples/", 90, "examples"},
    {"tests/", 90, "tests"},
};

const LayerEntry* layer_of(const std::string& path) {
  for (const auto& e : kLayers) {
    if (starts_with(path, e.prefix)) return &e;
  }
  return nullptr;
}

}  // namespace

int layer_rank(const std::string& path) {
  const auto* e = layer_of(path);
  return e != nullptr ? e->rank : -1;
}

std::string layer_name(const std::string& path) {
  const auto* e = layer_of(path);
  return e != nullptr ? e->name : "";
}

std::vector<Finding> run_layer_rules(const std::vector<ScannedFile>& files,
                                     const RuleConfig& cfg) {
  std::vector<Finding> out;
  // Project includes are written src-root-relative ("graph/graph.hpp") or
  // repo-root-relative ("bench/bench_runner.hpp"); resolve against the
  // scanned set and ignore anything else (system headers, generated
  // obs/version.hpp).
  std::map<std::string, const ScannedFile*> by_path;
  for (const auto& f : files) by_path.emplace(f.path, &f);
  const auto resolve = [&](const std::string& target) -> const ScannedFile* {
    auto it = by_path.find("src/" + target);
    if (it != by_path.end()) return it->second;
    it = by_path.find(target);
    return it != by_path.end() ? it->second : nullptr;
  };

  if (cfg.enabled("layer-upward-include")) {
    for (const auto& f : files) {
      const auto* from = layer_of(f.path);
      if (from == nullptr) continue;
      for (const auto& inc : f.includes) {
        if (inc.system) continue;
        const ScannedFile* target = resolve(inc.target);
        if (target == nullptr) continue;
        const auto* to = layer_of(target->path);
        if (to == nullptr || to->rank <= from->rank) continue;
        out.push_back({f.path, inc.line, "layer-upward-include",
                       "layer '" + std::string(from->name) + "' includes '" + inc.target +
                           "' from higher layer '" + to->name +
                           "'; the architecture DAG (DESIGN.md §10) only "
                           "allows downward includes"});
      }
    }
  }

  if (cfg.enabled("layer-include-cycle")) {
    // Iterative DFS over the resolved include graph; each back edge is one
    // cycle finding, reported at the offending #include.
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    const std::function<void(const ScannedFile&)> dfs = [&](const ScannedFile& f) {
      color[f.path] = 1;
      stack.push_back(f.path);
      for (const auto& inc : f.includes) {
        if (inc.system) continue;
        const ScannedFile* target = resolve(inc.target);
        if (target == nullptr) continue;
        const int c = color[target->path];
        if (c == 0) {
          dfs(*target);
        } else if (c == 1) {
          std::string cycle;
          const auto at = std::find(stack.begin(), stack.end(), target->path);
          for (auto it = at; it != stack.end(); ++it) cycle += *it + " -> ";
          cycle += target->path;
          out.push_back({f.path, inc.line, "layer-include-cycle",
                         "include cycle: " + cycle});
        }
      }
      stack.pop_back();
      color[f.path] = 2;
    };
    for (const auto& f : files) {
      if (color[f.path] == 0) dfs(f);
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return out;
}

// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"det-rng", "ambient randomness (rand, std::random_device, raw std engines) in a "
                  "deterministic layer"},
      {"det-wallclock", "wall-clock reads (<chrono>/<ctime>, *_clock, time()) in a "
                        "deterministic layer"},
      {"det-unordered-iter", "iteration over std::unordered_map/unordered_set "
                             "(implementation-defined order)"},
      {"det-std-hash", "std::hash in a deterministic layer (not stable across platforms)"},
      {"layer-upward-include", "#include against the architecture DAG"},
      {"layer-include-cycle", "cyclic #include chain"},
      {"obs-metric-name", "metric registered outside the MetricsRegistry core catalog"},
      {"obs-span-name", "span name literal unknown to the obs span catalog"},
      {"core-decoder-precondition", "decoder entry point without a LAD_ASSERT/LAD_CHECK "
                                    "precondition"},
      {"lint-pragma", "lad-lint pragma with a missing rule list or reason"},
  };
  return kCatalog;
}

bool known_rule(const std::string& name) {
  const auto& cat = rule_catalog();
  return std::any_of(cat.begin(), cat.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

bool RuleConfig::enabled(const std::string& rule) const {
  return filter.empty() || std::find(filter.begin(), filter.end(), rule) != filter.end();
}

std::vector<Finding> run_file_rules(const ScannedFile& f, const RuleConfig& cfg) {
  std::vector<Finding> out;

  if (deterministic_layer(f.path)) {
    rule_det_tokens(f, out, cfg);
    if (cfg.enabled("det-unordered-iter")) rule_unordered_iter(f, out);
  }
  if (cfg.enabled("obs-metric-name")) rule_metric_names(f, out, cfg);
  if (cfg.enabled("obs-span-name")) rule_span_names(f, out, cfg);
  if (cfg.enabled("core-decoder-precondition")) rule_decoder_preconditions(f, out);
  if (cfg.enabled("lint-pragma")) {
    for (const int line : f.pragmas_missing_reason) {
      out.push_back({f.path, line, "lint-pragma",
                     "lad-lint pragma needs the form `lad-lint: "
                     "allow(<rule>): <reason>` with a non-empty reason"});
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace lad::lint
