// Rule engine for `lad lint` (DESIGN.md §10).
//
// Three rule families, each guarding an invariant the rest of the stack
// only checks dynamically:
//
//   determinism (det-*)   — the byte-determinism contract (§8). Applies to
//       the deterministic layers src/{graph,advice,lcl,local,core,faults}:
//       no ambient randomness (rand(), std::random_device, raw std engines
//       outside graph/rng.*), no wall-clock reads (obs/stopwatch.hpp is the
//       one sanctioned clock, in the obs layer), no iteration over
//       std::unordered_{map,set} (order is implementation-defined), no
//       std::hash (not stable across platforms; util/hashing.hpp splitmix
//       is).
//
//   layering (layer-*)    — the architecture DAG:
//       obs → util → graph → {advice, lcl} → local → baselines → core →
//       {faults, obs/claims} → lint → bench/tools/tests/examples.
//       An #include from a lower layer into a higher one, or any include
//       cycle, is a finding. obs/claims.* is the one file-level exception
//       in obs/: it assembles the claim registry over the core Pipeline
//       registry and therefore sits beside faults (src/CMakeLists.txt
//       splits it into lad_claims for the same reason).
//
//   hygiene (obs-*, core-*) — code↔catalog drift and contract presence:
//       metric names registered outside the catalog block and span name
//       literals unknown to the span catalog are findings, as are public
//       decoder entry points in core/ without a LAD_ASSERT/LAD_CHECK
//       precondition.
//
// Every finding names its rule, so `// lad-lint: allow(<rule>): <reason>`
// can suppress exactly that rule on that line (lint/scanner.hpp).
#pragma once

#include <string>
#include <vector>

#include "lint/scanner.hpp"

namespace lad::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Every rule `lad lint` knows, in documentation order.
const std::vector<RuleInfo>& rule_catalog();

/// True iff `name` is a known rule name.
bool known_rule(const std::string& name);

struct RuleConfig {
  /// Rules to run; empty = all.
  std::vector<std::string> filter;

  /// Metric names the MetricsRegistry catalog declares (lad_*_total, ...).
  std::vector<std::string> metric_catalog;

  /// Span names the obs span catalog declares; entries ending in '/' are
  /// prefixes for composed names like "pipeline.decode/" + name().
  std::vector<std::string> span_catalog;

  bool enabled(const std::string& rule) const;
};

/// Single-file rules: determinism + hygiene. Pragma suppression is NOT
/// applied here — the driver (lint/lint.hpp) owns it so suppressed counts
/// are reported uniformly.
std::vector<Finding> run_file_rules(const ScannedFile& f, const RuleConfig& cfg);

/// Whole-program rules over the include graph: upward includes + cycles.
/// `files` must be sorted by path for deterministic output.
std::vector<Finding> run_layer_rules(const std::vector<ScannedFile>& files,
                                     const RuleConfig& cfg);

/// Layer rank of a root-relative path (higher = closer to the program
/// edge), or -1 when the path is outside the layered tree. Exposed for the
/// layering tests and DESIGN.md's DAG table.
int layer_rank(const std::string& path);
std::string layer_name(const std::string& path);

}  // namespace lad::lint
