#include "lint/scanner.hpp"

#include <algorithm>
#include <cctype>

namespace lad::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

// Parses one comment's text for a `lad-lint: allow(r1,r2): reason` pragma.
// Returns true iff the pragma marker is present; fills `rules` and
// `has_reason` accordingly (empty rules = malformed allow clause).
bool parse_pragma(const std::string& comment, std::set<std::string>& rules, bool& has_reason) {
  const auto at = comment.find("lad-lint:");
  if (at == std::string::npos) return false;
  std::size_t p = at + std::string("lad-lint:").size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p])) != 0) ++p;
  const std::string kw = "allow(";
  if (comment.compare(p, kw.size(), kw) != 0) return true;  // marker without allow(...)
  p += kw.size();
  const auto close = comment.find(')', p);
  if (close == std::string::npos) return true;
  std::size_t tok = p;
  while (tok < close) {
    auto comma = comment.find(',', tok);
    if (comma == std::string::npos || comma > close) comma = close;
    const std::string r = trim(comment.substr(tok, comma - tok));
    if (!r.empty()) rules.insert(r);
    tok = comma + 1;
  }
  std::size_t after = close + 1;
  while (after < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[after])) != 0) {
    ++after;
  }
  has_reason = after < comment.size() && comment[after] == ':' &&
               !trim(comment.substr(after + 1)).empty();
  return true;
}

}  // namespace

int ScannedFile::line_of(std::size_t offset) const {
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<int>(it - line_starts_.begin());
}

ScannedFile scan_source(const std::string& path, const std::string& text) {
  ScannedFile f;
  f.path = path;
  f.raw = text;
  f.code = text;

  f.line_starts_.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') f.line_starts_.push_back(i + 1);
  }

  // One comment at a time: (start offset, text). Handled after the main
  // lexing loop so pragma attachment can look at the blanked line content.
  std::vector<std::pair<std::size_t, std::string>> comments;

  const auto blank = [&f](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to && i < f.code.size(); ++i) {
      if (f.code[i] != '\n') f.code[i] = ' ';
    }
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      comments.emplace_back(i, text.substr(i + 2, end - i - 2));
      blank(i, end);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) {
        throw LintParseError(path + ":" + std::to_string(f.line_of(i)) +
                             ": unterminated block comment");
      }
      comments.emplace_back(i, text.substr(i + 2, end - i - 2));
      blank(i, end + 2);
      i = end + 2;
      continue;
    }
    // Raw string literal: (u8|u|U|L)?R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !is_ident_char(text[i - 1]) || text[i - 1] == '8' || text[i - 1] == 'u' ||
         text[i - 1] == 'U' || text[i - 1] == 'L')) {
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string::npos) {
        throw LintParseError(path + ":" + std::to_string(f.line_of(i)) +
                             ": malformed raw string literal");
      }
      const std::string closer = ")" + text.substr(i + 2, open - i - 2) + "\"";
      const std::size_t end = text.find(closer, open + 1);
      if (end == std::string::npos) {
        throw LintParseError(path + ":" + std::to_string(f.line_of(i)) +
                             ": unterminated raw string literal");
      }
      blank(i + 2, end + closer.size());
      i = end + closer.size();
      continue;
    }
    // Ordinary string / char literal. A quote directly preceded by an
    // identifier char and not opening a literal (digit separators like
    // 10'000, or a ud-suffix boundary) is not a literal start; the digit
    // separator case matters in practice, so treat '…' after [0-9a-fA-F]
    // followed by an alnum as a separator and skip it.
    if (c == '"' || c == '\'') {
      if (c == '\'' && i > 0 && std::isxdigit(static_cast<unsigned char>(text[i - 1])) != 0 &&
          i + 1 < n && is_ident_char(text[i + 1])) {
        ++i;  // digit separator inside a numeric literal
        continue;
      }
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\') ++j;
        if (text[j] == '\n') break;  // unterminated on this line
        ++j;
      }
      if (j >= n || text[j] != c) {
        throw LintParseError(path + ":" + std::to_string(f.line_of(i)) +
                             ": unterminated " +
                             (c == '"' ? std::string("string") : std::string("character")) +
                             " literal");
      }
      blank(i + 1, j);  // keep the quotes, blank the body
      i = j + 1;
      continue;
    }
    ++i;
  }

  // Includes: the `#include` token survives blanking iff it is real code;
  // the target is read from `raw` because a quoted target's body was
  // blanked in `code`.
  for (std::size_t ln = 0; ln < f.line_starts_.size(); ++ln) {
    const std::size_t start = f.line_starts_[ln];
    std::size_t end = ln + 1 < f.line_starts_.size() ? f.line_starts_[ln + 1] : n;
    const std::string code_line = f.code.substr(start, end - start);
    std::size_t p = 0;
    while (p < code_line.size() && std::isspace(static_cast<unsigned char>(code_line[p])) != 0) {
      ++p;
    }
    if (p >= code_line.size() || code_line[p] != '#') continue;
    ++p;
    while (p < code_line.size() && std::isspace(static_cast<unsigned char>(code_line[p])) != 0) {
      ++p;
    }
    if (code_line.compare(p, 7, "include") != 0) continue;
    const std::string raw_line = f.raw.substr(start, end - start);
    const std::size_t q1 = raw_line.find_first_of("\"<", p + 7);
    if (q1 == std::string::npos) continue;
    const char closing = raw_line[q1] == '<' ? '>' : '"';
    const std::size_t q2 = raw_line.find(closing, q1 + 1);
    if (q2 == std::string::npos) continue;
    IncludeDirective inc;
    inc.line = static_cast<int>(ln + 1);
    inc.target = raw_line.substr(q1 + 1, q2 - q1 - 1);
    inc.system = raw_line[q1] == '<';
    f.includes.push_back(inc);
  }

  // Pragmas: attach to the comment's own line; if the line holds nothing
  // but the comment, also to the next line.
  for (const auto& [off, body] : comments) {
    std::set<std::string> rules;
    bool has_reason = false;
    if (!parse_pragma(body, rules, has_reason)) continue;
    const int line = f.line_of(off);
    if (rules.empty() || !has_reason) {
      f.pragmas_missing_reason.push_back(line);
      continue;
    }
    f.allow[line].insert(rules.begin(), rules.end());
    const std::size_t start = f.line_starts_[static_cast<std::size_t>(line - 1)];
    const std::string before = f.code.substr(start, off - start);
    const bool comment_only = std::all_of(before.begin(), before.end(), [](char ch) {
      return std::isspace(static_cast<unsigned char>(ch)) != 0;
    });
    if (comment_only) f.allow[line + 1].insert(rules.begin(), rules.end());
  }

  return f;
}

}  // namespace lad::lint
