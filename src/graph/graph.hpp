// Undirected simple graph with LOCAL-model identifiers.
//
// Nodes carry two names:
//   * a dense internal index in [0, n) used for storage, and
//   * a unique identifier (NodeId) from {1, ..., poly(n)} as in the LOCAL
//     model; algorithms and advice schemas are allowed to depend on IDs.
//
// Adjacency lists are sorted by neighbor *ID* (not index), which gives every
// node a deterministic, locally computable port order — the paper's
// "sorting the neighbors of v by their IDs".
//
// Scale contract (DESIGN.md §12): the graph is flat CSR over 32-bit node
// and edge indices — deliberately, for cache density at n = 10⁶–10⁷ — with
// LAD_CHECK overflow guards in Builder::build() where the 32-bit choice
// could silently truncate (2m must fit an int). The ID index is a sorted
// array (binary search), not a hash map: half the memory, deterministic
// iteration order for free (`nodes_by_id()`), and no per-node heap nodes.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace lad {

class ThreadPool;

using NodeId = std::int64_t;

class Graph {
 public:
  /// Allocation-free view of the dense node indices [0, n): the replacement
  /// for the old allocate-a-vector-per-call `all_nodes()` (a 10⁷-entry
  /// std::vector<int> per call is real money). Random-access, so it drops
  /// into range-for, std algorithms, and vector construction alike.
  class NodeRange {
   public:
    class iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = int;
      using difference_type = std::ptrdiff_t;
      using pointer = const int*;
      using reference = int;

      iterator() = default;
      explicit iterator(int i) : i_(i) {}
      int operator*() const { return i_; }
      int operator[](difference_type k) const { return i_ + static_cast<int>(k); }
      iterator& operator++() { ++i_; return *this; }
      iterator operator++(int) { iterator t = *this; ++i_; return t; }
      iterator& operator--() { --i_; return *this; }
      iterator operator--(int) { iterator t = *this; --i_; return t; }
      iterator& operator+=(difference_type k) { i_ += static_cast<int>(k); return *this; }
      iterator& operator-=(difference_type k) { i_ -= static_cast<int>(k); return *this; }
      friend iterator operator+(iterator a, difference_type k) { return a += k; }
      friend iterator operator+(difference_type k, iterator a) { return a += k; }
      friend iterator operator-(iterator a, difference_type k) { return a -= k; }
      friend difference_type operator-(iterator a, iterator b) { return a.i_ - b.i_; }
      friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
      friend bool operator!=(iterator a, iterator b) { return a.i_ != b.i_; }
      friend bool operator<(iterator a, iterator b) { return a.i_ < b.i_; }
      friend bool operator<=(iterator a, iterator b) { return a.i_ <= b.i_; }
      friend bool operator>(iterator a, iterator b) { return a.i_ > b.i_; }
      friend bool operator>=(iterator a, iterator b) { return a.i_ >= b.i_; }

     private:
      int i_ = 0;
    };

    NodeRange() = default;
    explicit NodeRange(int n) : n_(n) {}
    iterator begin() const { return iterator(0); }
    iterator end() const { return iterator(n_); }
    int size() const { return n_; }
    bool empty() const { return n_ == 0; }
    int operator[](int k) const { return k; }
    int front() const { return 0; }
    int back() const { return n_ - 1; }

   private:
    int n_ = 0;
  };

  /// Incrementally assembles a graph, then `build()`s it.
  class Builder {
   public:
    /// Declares a node with the given unique LOCAL identifier.
    /// Returns the dense index of the node.
    int add_node(NodeId id);

    /// Adds an undirected edge between node indices u and v.
    /// Parallel edges and self-loops are rejected.
    void add_edge(int u, int v);

    /// Pre-sizes the internal buffers (bulk ingestion at n = 10⁶–10⁷).
    void reserve(std::size_t nodes, std::size_t edges);

    /// Number of nodes added so far.
    int n() const { return static_cast<int>(ids_.size()); }

    /// Serial construction — identical to build(nullptr).
    Graph build() &&;

    /// Parallel counting-sort construction of the CSR arrays: edges are
    /// merge-sorted in parallel, deduplicated (parallel edges and
    /// duplicate IDs still throw), scattered through a degree histogram,
    /// and each adjacency slice is sorted by neighbor ID on the pool.
    /// Output is byte-identical to the serial path at any thread count
    /// (the §8 determinism contract): every sort key is a total order, so
    /// the sorted sequences are unique, and all parallel writes are
    /// per-index or per-slice.
    Graph build(ThreadPool* pool) &&;

   private:
    std::vector<NodeId> ids_;
    std::vector<std::pair<int, int>> edges_;
  };

  /// Raw CSR parts for direct adoption (the `.ladg` mmap loader in
  /// graph/io.* materializes these without re-running Builder's sorts).
  /// `from_parts` validates structure — offsets monotone, endpoints in
  /// range, adjacency sorted by neighbor ID, incident edges aligned —
  /// and throws ContractViolation otherwise.
  struct Parts {
    std::vector<NodeId> ids;
    std::vector<int> adj_off;  // size n+1
    std::vector<int> adj;      // size 2m
    std::vector<int> inc;      // size 2m
    std::vector<int> edge_u;   // size m
    std::vector<int> edge_v;   // size m
  };
  static Graph from_parts(Parts&& parts);

  Graph() = default;

  int n() const { return static_cast<int>(ids_.size()); }
  int m() const { return static_cast<int>(edge_u_.size()); }

  int degree(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return adj_off_[v + 1] - adj_off_[v];
  }
  int max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted by their IDs (deterministic port order).
  std::span<const int> neighbors(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return {adj_.data() + adj_off_[v], adj_.data() + adj_off_[v + 1]};
  }

  /// Incident edge indices of v, aligned with `neighbors(v)`:
  /// incident_edges(v)[p] is the edge {v, neighbors(v)[p]}.
  std::span<const int> incident_edges(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return {inc_.data() + adj_off_[v], inc_.data() + adj_off_[v + 1]};
  }

  NodeId id(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return ids_[v];
  }

  /// Dense index of the node with the given ID, or nullopt if absent.
  /// Binary search over the sorted ID index: O(log n), no hashing.
  std::optional<int> find_index(NodeId id) const;

  /// Deprecated shim for find_index: throws ContractViolation if absent.
  /// Prefer `find_index` — one lookup, explicit absence.
  int index_of(NodeId id) const;

  /// Deprecated shim for find_index().has_value().
  bool has_id(NodeId id) const { return find_index(id).has_value(); }

  /// Endpoints of edge e, with endpoint_u(e) < endpoint_v(e) as indices.
  int edge_u(int e) const {
    LAD_ASSERT(e >= 0 && e < m());
    return edge_u_[e];
  }
  int edge_v(int e) const {
    LAD_ASSERT(e >= 0 && e < m());
    return edge_v_[e];
  }

  /// The endpoint of edge e that is not w.
  int other_endpoint(int e, int w) const {
    LAD_CHECK(edge_u_[e] == w || edge_v_[e] == w);
    return edge_u_[e] == w ? edge_v_[e] : edge_u_[e];
  }

  /// Edge index of {u, v}; returns -1 if not adjacent.
  int edge_between(int u, int v) const;

  /// Port of u in v's adjacency list (position of u among v's neighbors);
  /// returns -1 if u is not a neighbor of v.
  int port_of(int v, int u) const;

  bool adjacent(int u, int v) const { return edge_between(u, v) >= 0; }

  /// All node indices [0, n) as an allocation-free view.
  NodeRange nodes() const { return NodeRange(n()); }

  /// Node indices ordered by ascending LOCAL identifier — the sorted ID
  /// index itself, exposed: "iterate nodes in ID order" costs nothing.
  std::span<const int> nodes_by_id() const { return by_id_ix_; }

  /// Deprecated shim: materializes nodes() into a vector. Prefer the
  /// nodes() view; this allocates n ints per call.
  std::vector<int> all_nodes() const;

  // Raw contiguous CSR views for serialization and digesting (graph/io.*).
  std::span<const NodeId> raw_ids() const { return ids_; }
  std::span<const int> raw_adj_off() const { return adj_off_; }
  std::span<const int> raw_adj() const { return adj_; }
  std::span<const int> raw_inc() const { return inc_; }
  std::span<const int> raw_edge_u() const { return edge_u_; }
  std::span<const int> raw_edge_v() const { return edge_v_; }

 private:
  friend class Builder;

  void rebuild_id_index(ThreadPool* pool);

  std::vector<NodeId> ids_;
  std::vector<NodeId> sorted_ids_;  // ids_ in ascending order
  std::vector<int> by_id_ix_;       // node index owning sorted_ids_[k]
  std::vector<int> adj_off_;  // CSR offsets, size n+1
  std::vector<int> adj_;      // neighbor indices, sorted by neighbor ID per node
  std::vector<int> inc_;      // incident edge ids, aligned with adj_
  std::vector<int> edge_u_, edge_v_;
  int max_degree_ = 0;
};

/// Convenience: builds a graph from explicit IDs and ID-pairs.
Graph make_graph(const std::vector<NodeId>& ids,
                 const std::vector<std::pair<NodeId, NodeId>>& edges_by_id);

}  // namespace lad
