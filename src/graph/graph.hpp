// Undirected simple graph with LOCAL-model identifiers.
//
// Nodes carry two names:
//   * a dense internal index in [0, n) used for storage, and
//   * a unique identifier (NodeId) from {1, ..., poly(n)} as in the LOCAL
//     model; algorithms and advice schemas are allowed to depend on IDs.
//
// Adjacency lists are sorted by neighbor *ID* (not index), which gives every
// node a deterministic, locally computable port order — the paper's
// "sorting the neighbors of v by their IDs".
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace lad {

using NodeId = std::int64_t;

class Graph {
 public:
  /// Incrementally assembles a graph, then `build()`s it.
  class Builder {
   public:
    /// Declares a node with the given unique LOCAL identifier.
    /// Returns the dense index of the node.
    int add_node(NodeId id);

    /// Adds an undirected edge between node indices u and v.
    /// Parallel edges and self-loops are rejected.
    void add_edge(int u, int v);

    /// Number of nodes added so far.
    int n() const { return static_cast<int>(ids_.size()); }

    Graph build() &&;

   private:
    std::vector<NodeId> ids_;
    std::vector<std::pair<int, int>> edges_;
  };

  Graph() = default;

  int n() const { return static_cast<int>(ids_.size()); }
  int m() const { return static_cast<int>(edge_u_.size()); }

  int degree(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return adj_off_[v + 1] - adj_off_[v];
  }
  int max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted by their IDs (deterministic port order).
  std::span<const int> neighbors(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return {adj_.data() + adj_off_[v], adj_.data() + adj_off_[v + 1]};
  }

  /// Incident edge indices of v, aligned with `neighbors(v)`:
  /// incident_edges(v)[p] is the edge {v, neighbors(v)[p]}.
  std::span<const int> incident_edges(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return {inc_.data() + adj_off_[v], inc_.data() + adj_off_[v + 1]};
  }

  NodeId id(int v) const {
    LAD_ASSERT(v >= 0 && v < n());
    return ids_[v];
  }

  /// Dense index of the node with the given ID; throws if absent.
  int index_of(NodeId id) const;

  /// True if the graph contains a node with this ID.
  bool has_id(NodeId id) const { return id_to_ix_.count(id) > 0; }

  /// Endpoints of edge e, with endpoint_u(e) < endpoint_v(e) as indices.
  int edge_u(int e) const {
    LAD_ASSERT(e >= 0 && e < m());
    return edge_u_[e];
  }
  int edge_v(int e) const {
    LAD_ASSERT(e >= 0 && e < m());
    return edge_v_[e];
  }

  /// The endpoint of edge e that is not w.
  int other_endpoint(int e, int w) const {
    LAD_CHECK(edge_u_[e] == w || edge_v_[e] == w);
    return edge_u_[e] == w ? edge_v_[e] : edge_u_[e];
  }

  /// Edge index of {u, v}; returns -1 if not adjacent.
  int edge_between(int u, int v) const;

  /// Port of u in v's adjacency list (position of u among v's neighbors);
  /// returns -1 if u is not a neighbor of v.
  int port_of(int v, int u) const;

  bool adjacent(int u, int v) const { return edge_between(u, v) >= 0; }

  /// All node indices [0, n).
  std::vector<int> all_nodes() const;

 private:
  friend class Builder;

  std::vector<NodeId> ids_;
  std::unordered_map<NodeId, int> id_to_ix_;
  std::vector<int> adj_off_;  // CSR offsets, size n+1
  std::vector<int> adj_;      // neighbor indices, sorted by neighbor ID per node
  std::vector<int> inc_;      // incident edge ids, aligned with adj_
  std::vector<int> edge_u_, edge_v_;
  int max_degree_ = 0;
};

/// Convenience: builds a graph from explicit IDs and ID-pairs.
Graph make_graph(const std::vector<NodeId>& ids,
                 const std::vector<std::pair<NodeId, NodeId>>& edges_by_id);

}  // namespace lad
