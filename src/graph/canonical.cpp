#include "graph/canonical.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace lad {

std::string canonical_view(const Graph& g, std::span<const int> nodes, int center,
                           const std::vector<int>& labels) {
  std::vector<int> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) { return g.id(a) < g.id(b); });
  std::unordered_map<int, int> rank;
  rank.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) rank[sorted[i]] = static_cast<int>(i);
  LAD_CHECK_MSG(rank.count(center), "canonical_view: center not in node set");

  std::vector<std::pair<int, int>> edges;
  for (const int v : sorted) {
    for (const int u : g.neighbors(v)) {
      const auto it = rank.find(u);
      if (it == rank.end()) continue;
      const int rv = rank[v], ru = it->second;
      if (rv < ru) edges.emplace_back(rv, ru);
    }
  }
  std::sort(edges.begin(), edges.end());

  std::ostringstream os;
  os << "n=" << sorted.size() << ";c=" << rank[center] << ";E=";
  for (const auto& [a, b] : edges) os << a << '-' << b << ',';
  if (!labels.empty()) {
    os << ";L=";
    for (const int v : sorted) os << labels[v] << ',';
  }
  return os.str();
}

}  // namespace lad
