#include "graph/distance.hpp"

#include <algorithm>
#include <deque>

namespace lad {
namespace {

inline bool in_mask(const NodeMask& mask, int v) { return mask.empty() || mask[v]; }

}  // namespace

std::vector<int> bfs_distances(const Graph& g, int source, const NodeMask& mask, int max_dist) {
  return bfs_distances_multi(g, {source}, mask, max_dist);
}

std::vector<int> bfs_distances_multi(const Graph& g, const std::vector<int>& sources,
                                     const NodeMask& mask, int max_dist) {
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreachable);
  std::deque<int> q;
  for (const int s : sources) {
    LAD_CHECK(s >= 0 && s < g.n());
    LAD_CHECK_MSG(in_mask(mask, s), "BFS source excluded by mask");
    if (dist[s] != 0) {
      dist[s] = 0;
      q.push_back(s);
    }
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop_front();
    if (max_dist >= 0 && dist[v] >= max_dist) continue;
    for (const int u : g.neighbors(v)) {
      if (!in_mask(mask, u) || dist[u] != kUnreachable) continue;
      dist[u] = dist[v] + 1;
      q.push_back(u);
    }
  }
  return dist;
}

std::vector<int> ball_nodes(const Graph& g, int v, int radius, const NodeMask& mask) {
  const auto dist = bfs_distances(g, v, mask, radius);
  std::vector<int> out;
  // BFS order: collect by distance layers.
  std::vector<std::vector<int>> layers(static_cast<std::size_t>(radius) + 1);
  for (int u = 0; u < g.n(); ++u) {
    if (dist[u] != kUnreachable) layers[static_cast<std::size_t>(dist[u])].push_back(u);
  }
  for (const auto& layer : layers)
    for (const int u : layer) out.push_back(u);
  return out;
}

int ball_size(const Graph& g, int v, int radius, const NodeMask& mask) {
  return static_cast<int>(ball_nodes(g, v, radius, mask).size());
}

int distance(const Graph& g, int u, int v, const NodeMask& mask) {
  const auto dist = bfs_distances(g, u, mask);
  return dist[v];
}

std::vector<int> shortest_path(const Graph& g, int u, int v, const NodeMask& mask) {
  const auto dist = bfs_distances(g, u, mask);
  if (dist[v] == kUnreachable) return {};
  std::vector<int> path = {v};
  int cur = v;
  while (cur != u) {
    for (const int w : g.neighbors(cur)) {
      if ((mask.empty() || mask[w]) && dist[w] == dist[cur] - 1) {
        cur = w;
        break;
      }
    }
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int eccentricity(const Graph& g, int v, const NodeMask& mask) {
  const auto dist = bfs_distances(g, v, mask);
  int ecc = 0;
  for (const int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int component_diameter(const Graph& g, int v, const NodeMask& mask) {
  const auto comp = ball_nodes(g, v, g.n(), mask);
  int diam = 0;
  for (const int u : comp) diam = std::max(diam, eccentricity(g, u, mask));
  return diam;
}

}  // namespace lad
