// Back-compat shim: the contract macros moved to util/contracts.hpp.
// Include that header directly in new code.
#pragma once

#include <cstdint>

#include "util/contracts.hpp"
