// Common utilities shared across the library: error checking and basic types.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace lad {

/// Thrown when a precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "LAD_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace lad

/// Precondition / invariant check that is always on (used on cold paths:
/// construction, encoding, validation). Throws lad::ContractViolation.
#define LAD_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::lad::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define LAD_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::lad::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());    \
    }                                                                       \
  } while (0)
