#include "graph/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/hashing.hpp"

namespace lad {

static_assert(std::endian::native == std::endian::little,
              ".ladg serialization assumes a little-endian host");

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.n() << ' ' << g.m() << '\n';
  for (int v = 0; v < g.n(); ++v) {
    os << g.id(v) << (v + 1 < g.n() ? ' ' : '\n');
  }
  if (g.n() == 0) os << '\n';
  for (int e = 0; e < g.m(); ++e) {
    os << g.id(g.edge_u(e)) << ' ' << g.id(g.edge_v(e)) << '\n';
  }
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

Graph read_edge_list(std::istream& is) {
  int n = 0, m = 0;
  LAD_CHECK_MSG(static_cast<bool>(is >> n >> m), "edge list: missing header");
  LAD_CHECK_MSG(n >= 0 && m >= 0, "edge list: negative counts");
  Graph::Builder b;
  b.reserve(static_cast<std::size_t>(n), static_cast<std::size_t>(m));
  std::vector<std::pair<NodeId, int>> ix(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    NodeId id = 0;
    LAD_CHECK_MSG(static_cast<bool>(is >> id), "edge list: truncated ID row");
    b.add_node(id);
    ix[static_cast<std::size_t>(v)] = {id, v};
  }
  std::sort(ix.begin(), ix.end());
  auto lookup = [&](NodeId id) -> int {
    auto it = std::lower_bound(ix.begin(), ix.end(), std::pair<NodeId, int>{id, 0});
    if (it == ix.end() || it->first != id) return -1;
    return it->second;
  };
  for (int e = 0; e < m; ++e) {
    NodeId a = 0, c = 0;
    LAD_CHECK_MSG(static_cast<bool>(is >> a >> c), "edge list: truncated edge row");
    int u = lookup(a), v = lookup(c);
    LAD_CHECK_MSG(u >= 0 && v >= 0, "edge list: edge references unknown ID");
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

namespace {

constexpr char kLadgMagic[4] = {'L', 'A', 'D', 'G'};
constexpr std::uint32_t kLadgVersion = 1;
constexpr std::uint64_t kDigestInit = 0x9e3779b97f4a7c15ULL;

// Folds `len` bytes into the running digest, one 64-bit word at a time
// (the tail word is zero-padded and salted with the tail length so
// truncation cannot collide with padding).
std::uint64_t fold_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, 8);
    h = hash2(h, w);
  }
  if (i < len) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, len - i);
    h = hash2(hash2(h, w), static_cast<std::uint64_t>(len - i));
  }
  return h;
}

template <typename T>
std::uint64_t fold_span(std::uint64_t h, std::span<const T> s) {
  return fold_bytes(h, s.data(), s.size_bytes());
}

// Streaming equivalent of a single fold_bytes call over the concatenation
// of every update(): carries a partial word across chunk boundaries, so
// the writer's per-array folds match the reader's whole-body fold even
// when an array's byte size is not a multiple of 8 (adj_off for even n).
struct DigestFolder {
  std::uint64_t h = kDigestInit;
  unsigned char pend[8] = {};
  std::size_t npend = 0;

  void update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    if (npend > 0) {
      const std::size_t take = std::min(len, 8 - npend);
      std::memcpy(pend + npend, p, take);
      npend += take;
      p += take;
      len -= take;
      if (npend < 8) return;
      std::uint64_t w = 0;
      std::memcpy(&w, pend, 8);
      h = hash2(h, w);
      npend = 0;
    }
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      std::uint64_t w = 0;
      std::memcpy(&w, p + i, 8);
      h = hash2(h, w);
    }
    if (i < len) {
      std::memcpy(pend, p + i, len - i);
      npend = len - i;
    }
  }

  std::uint64_t digest() const {
    if (npend == 0) return h;
    std::uint64_t w = 0;
    std::memcpy(&w, pend, npend);
    return hash2(hash2(h, w), static_cast<std::uint64_t>(npend));
  }
};

struct LadgHeader {
  char magic[4];
  std::uint32_t version;
  std::uint64_t n;
  std::uint64_t m;
};
static_assert(sizeof(LadgHeader) == 24, ".ladg header is 24 bytes");

// mmap'd read-only file with RAII cleanup.
struct MappedFile {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  int fd = -1;

  explicit MappedFile(const std::string& path) {
    fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw GraphIoError("cannot open graph file '" + path + "'");
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      fd = -1;
      throw GraphIoError("cannot stat graph file '" + path + "'");
    }
    size = static_cast<std::size_t>(st.st_size);
    if (size > 0) {
      void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p == MAP_FAILED) {
        ::close(fd);
        fd = -1;
        throw GraphIoError("cannot mmap graph file '" + path + "'");
      }
      data = static_cast<const unsigned char*>(p);
    }
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<unsigned char*>(data), size);
    if (fd >= 0) ::close(fd);
  }
};

template <typename T>
std::vector<T> copy_array(const unsigned char* base, std::size_t& off, std::size_t count) {
  std::vector<T> out(count);
  if (count > 0) std::memcpy(out.data(), base + off, count * sizeof(T));
  off += count * sizeof(T);
  return out;
}

}  // namespace

std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = hash2(kDigestInit, static_cast<std::uint64_t>(g.n()));
  h = hash2(h, static_cast<std::uint64_t>(g.m()));
  h = fold_span(h, g.raw_ids());
  h = fold_span(h, g.raw_adj_off());
  h = fold_span(h, g.raw_adj());
  return h;
}

std::string graph_digest_hex(const Graph& g) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(graph_digest(g)));
  return std::string(buf);
}

void write_ladg(const std::string& path, const Graph& g) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw GraphIoError("cannot create graph file '" + path + "'");
  DigestFolder folder;
  bool ok = true;
  auto put = [&](const void* data, std::size_t len) {
    if (len == 0) return;
    folder.update(data, len);
    ok = ok && std::fwrite(data, 1, len, f) == len;
  };
  LadgHeader hdr{};
  std::memcpy(hdr.magic, kLadgMagic, 4);
  hdr.version = kLadgVersion;
  hdr.n = static_cast<std::uint64_t>(g.n());
  hdr.m = static_cast<std::uint64_t>(g.m());
  put(&hdr, sizeof(hdr));
  put(g.raw_ids().data(), g.raw_ids().size_bytes());
  put(g.raw_adj_off().data(), g.raw_adj_off().size_bytes());
  put(g.raw_adj().data(), g.raw_adj().size_bytes());
  put(g.raw_inc().data(), g.raw_inc().size_bytes());
  put(g.raw_edge_u().data(), g.raw_edge_u().size_bytes());
  put(g.raw_edge_v().data(), g.raw_edge_v().size_bytes());
  const std::uint64_t h = folder.digest();
  ok = ok && std::fwrite(&h, 1, sizeof(h), f) == sizeof(h);
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) throw GraphIoError("short write to graph file '" + path + "'");
}

Graph read_ladg(const std::string& path) {
  MappedFile file(path);
  if (file.size < sizeof(LadgHeader) + sizeof(std::uint64_t)) {
    throw GraphIoError("truncated .ladg file '" + path + "'");
  }
  LadgHeader hdr{};
  std::memcpy(&hdr, file.data, sizeof(hdr));
  if (std::memcmp(hdr.magic, kLadgMagic, 4) != 0) {
    throw GraphIoError("bad magic in .ladg file '" + path + "'");
  }
  if (hdr.version != kLadgVersion) {
    throw GraphIoError("unsupported .ladg version " + std::to_string(hdr.version) +
                       " in '" + path + "' (expected " + std::to_string(kLadgVersion) + ")");
  }
  // 32-bit index scale contract: n and 2m must fit an int.
  constexpr std::uint64_t kMaxN = 0x7fffffffULL;
  if (hdr.n > kMaxN || hdr.m > kMaxN / 2) {
    throw GraphIoError("node/edge counts out of range in .ladg file '" + path + "'");
  }
  const std::uint64_t n = hdr.n, m = hdr.m;
  const std::uint64_t expected = sizeof(LadgHeader) + 8 * n        // ids
                                 + 4 * (n + 1)                     // adj_off
                                 + 4 * (2 * m) + 4 * (2 * m)       // adj, inc
                                 + 4 * m + 4 * m                   // edge_u, edge_v
                                 + sizeof(std::uint64_t);          // digest footer
  if (file.size != expected) {
    throw GraphIoError("truncated .ladg file '" + path + "' (have " +
                       std::to_string(file.size) + " bytes, expected " +
                       std::to_string(expected) + ")");
  }
  const std::size_t body = file.size - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, file.data + body, sizeof(stored));
  const std::uint64_t computed = fold_bytes(kDigestInit, file.data, body);
  if (stored != computed) {
    throw GraphIoError("digest mismatch in .ladg file '" + path + "' (corrupt file)");
  }
  std::size_t off = sizeof(LadgHeader);
  Graph::Parts parts;
  parts.ids = copy_array<NodeId>(file.data, off, static_cast<std::size_t>(n));
  parts.adj_off = copy_array<int>(file.data, off, static_cast<std::size_t>(n) + 1);
  parts.adj = copy_array<int>(file.data, off, static_cast<std::size_t>(2 * m));
  parts.inc = copy_array<int>(file.data, off, static_cast<std::size_t>(2 * m));
  parts.edge_u = copy_array<int>(file.data, off, static_cast<std::size_t>(m));
  parts.edge_v = copy_array<int>(file.data, off, static_cast<std::size_t>(m));
  try {
    return Graph::from_parts(std::move(parts));
  } catch (const ContractViolation& e) {
    // Structural corruption in a well-framed file is still an input-document
    // problem: surface it as GraphIoError so the CLI exits 2, not 4.
    throw GraphIoError("invalid graph structure in .ladg file '" + path + "': " + e.what());
  }
}

std::string to_dot(const Graph& g, const std::vector<std::string>& node_label,
                   const std::vector<char>& highlight) {
  std::ostringstream os;
  os << "graph G {\n";
  for (int v = 0; v < g.n(); ++v) {
    os << "  n" << g.id(v) << " [label=\"" << g.id(v);
    if (!node_label.empty() && !node_label[static_cast<std::size_t>(v)].empty()) {
      os << "\\n" << node_label[static_cast<std::size_t>(v)];
    }
    os << "\"";
    if (!highlight.empty() && highlight[static_cast<std::size_t>(v)]) {
      os << " style=filled fillcolor=gold";
    }
    os << "];\n";
  }
  for (int e = 0; e < g.m(); ++e) {
    os << "  n" << g.id(g.edge_u(e)) << " -- n" << g.id(g.edge_v(e)) << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace lad
