#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace lad {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.n() << ' ' << g.m() << '\n';
  for (int v = 0; v < g.n(); ++v) {
    os << g.id(v) << (v + 1 < g.n() ? ' ' : '\n');
  }
  if (g.n() == 0) os << '\n';
  for (int e = 0; e < g.m(); ++e) {
    os << g.id(g.edge_u(e)) << ' ' << g.id(g.edge_v(e)) << '\n';
  }
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

Graph read_edge_list(std::istream& is) {
  int n = 0, m = 0;
  LAD_CHECK_MSG(static_cast<bool>(is >> n >> m), "edge list: missing header");
  LAD_CHECK_MSG(n >= 0 && m >= 0, "edge list: negative counts");
  Graph::Builder b;
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    LAD_CHECK_MSG(static_cast<bool>(is >> ids[v]), "edge list: truncated ID row");
    b.add_node(ids[v]);
  }
  std::unordered_map<NodeId, int> ix;
  for (int v = 0; v < n; ++v) ix[ids[v]] = v;
  for (int e = 0; e < m; ++e) {
    NodeId a = 0, c = 0;
    LAD_CHECK_MSG(static_cast<bool>(is >> a >> c), "edge list: truncated edge row");
    LAD_CHECK_MSG(ix.count(a) && ix.count(c), "edge list: edge references unknown ID");
    b.add_edge(ix[a], ix[c]);
  }
  return std::move(b).build();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

std::string to_dot(const Graph& g, const std::vector<std::string>& node_label,
                   const std::vector<char>& highlight) {
  std::ostringstream os;
  os << "graph G {\n";
  for (int v = 0; v < g.n(); ++v) {
    os << "  n" << g.id(v) << " [label=\"" << g.id(v);
    if (!node_label.empty() && !node_label[static_cast<std::size_t>(v)].empty()) {
      os << "\\n" << node_label[static_cast<std::size_t>(v)];
    }
    os << "\"";
    if (!highlight.empty() && highlight[static_cast<std::size_t>(v)]) {
      os << " style=filled fillcolor=gold";
    }
    os << "];\n";
  }
  for (int e = 0; e < g.m(); ++e) {
    os << "  n" << g.id(g.edge_u(e)) << " -- n" << g.id(g.edge_v(e)) << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace lad
