#include "graph/checkers.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>

namespace lad {

bool is_proper_coloring(const Graph& g, const std::vector<int>& colors, int k,
                        const NodeMask& mask) {
  if (static_cast<int>(colors.size()) != g.n()) return false;
  for (int v = 0; v < g.n(); ++v) {
    if (!mask.empty() && !mask[v]) continue;
    if (colors[v] <= 0) return false;
    if (k > 0 && colors[v] > k) return false;
    for (const int u : g.neighbors(v)) {
      if (!mask.empty() && !mask[u]) continue;
      if (colors[u] == colors[v]) return false;
    }
  }
  return true;
}

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  if (static_cast<int>(in_set.size()) != g.n()) return false;
  for (int e = 0; e < g.m(); ++e) {
    if (in_set[g.edge_u(e)] && in_set[g.edge_v(e)]) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<char>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (int v = 0; v < g.n(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (const int u : g.neighbors(v)) {
      if (in_set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_matching(const Graph& g, const std::vector<char>& in_matching) {
  if (static_cast<int>(in_matching.size()) != g.m()) return false;
  std::vector<int> hits(static_cast<std::size_t>(g.n()), 0);
  for (int e = 0; e < g.m(); ++e) {
    if (!in_matching[e]) continue;
    if (++hits[g.edge_u(e)] > 1) return false;
    if (++hits[g.edge_v(e)] > 1) return false;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<char>& in_matching) {
  if (!is_matching(g, in_matching)) return false;
  std::vector<char> covered(static_cast<std::size_t>(g.n()), 0);
  for (int e = 0; e < g.m(); ++e) {
    if (in_matching[e]) covered[g.edge_u(e)] = covered[g.edge_v(e)] = 1;
  }
  for (int e = 0; e < g.m(); ++e) {
    if (!covered[g.edge_u(e)] && !covered[g.edge_v(e)]) return false;
  }
  return true;
}

int out_degree(const Graph& g, const Orientation& o, int v) {
  int d = 0;
  for (const int e : g.incident_edges(v)) {
    if (o[e] == EdgeDir::kForward && g.edge_u(e) == v) ++d;
    if (o[e] == EdgeDir::kBackward && g.edge_v(e) == v) ++d;
  }
  return d;
}

int in_degree(const Graph& g, const Orientation& o, int v) {
  int d = 0;
  for (const int e : g.incident_edges(v)) {
    if (o[e] == EdgeDir::kForward && g.edge_v(e) == v) ++d;
    if (o[e] == EdgeDir::kBackward && g.edge_u(e) == v) ++d;
  }
  return d;
}

bool is_balanced_orientation(const Graph& g, const Orientation& o, int tolerance) {
  if (static_cast<int>(o.size()) != g.m()) return false;
  for (int e = 0; e < g.m(); ++e) {
    if (o[e] == EdgeDir::kUnset) return false;
  }
  for (int v = 0; v < g.n(); ++v) {
    if (std::abs(out_degree(g, o, v) - in_degree(g, o, v)) > tolerance) return false;
  }
  return true;
}

bool is_sinkless_orientation(const Graph& g, const Orientation& o) {
  if (static_cast<int>(o.size()) != g.m()) return false;
  for (int v = 0; v < g.n(); ++v) {
    if (g.degree(v) >= 1 && out_degree(g, o, v) == 0) return false;
  }
  return true;
}

bool is_splitting(const Graph& g, const std::vector<int>& edge_color) {
  if (static_cast<int>(edge_color.size()) != g.m()) return false;
  for (int v = 0; v < g.n(); ++v) {
    int red = 0, blue = 0;
    for (const int e : g.incident_edges(v)) {
      if (edge_color[e] == 1)
        ++red;
      else if (edge_color[e] == 2)
        ++blue;
      else
        return false;
    }
    if (red != blue) return false;
  }
  return true;
}

bool is_proper_edge_coloring(const Graph& g, const std::vector<int>& edge_color, int k) {
  if (static_cast<int>(edge_color.size()) != g.m()) return false;
  for (int e = 0; e < g.m(); ++e) {
    if (edge_color[e] <= 0 || edge_color[e] > k) return false;
  }
  for (int v = 0; v < g.n(); ++v) {
    std::set<int> seen;
    for (const int e : g.incident_edges(v)) {
      if (!seen.insert(edge_color[e]).second) return false;
    }
  }
  return true;
}

bool is_bipartite(const Graph& g, const NodeMask& mask) {
  std::vector<int> side(static_cast<std::size_t>(g.n()), -1);
  for (int s = 0; s < g.n(); ++s) {
    if (!mask.empty() && !mask[s]) continue;
    if (side[s] != -1) continue;
    side[s] = 0;
    std::deque<int> q = {s};
    while (!q.empty()) {
      const int v = q.front();
      q.pop_front();
      for (const int u : g.neighbors(v)) {
        if (!mask.empty() && !mask[u]) continue;
        if (side[u] == -1) {
          side[u] = side[v] ^ 1;
          q.push_back(u);
        } else if (side[u] == side[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool is_greedy_coloring(const Graph& g, const std::vector<int>& colors) {
  if (!is_proper_coloring(g, colors)) return false;
  for (int v = 0; v < g.n(); ++v) {
    std::vector<char> seen(static_cast<std::size_t>(colors[v]) + 1, 0);
    for (const int u : g.neighbors(v)) {
      if (colors[u] < colors[v]) seen[colors[u]] = 1;
    }
    for (int c = 1; c < colors[v]; ++c) {
      if (!seen[c]) return false;
    }
  }
  return true;
}

}  // namespace lad
