#include "graph/distance_coloring.hpp"

#include <algorithm>
#include <set>

namespace lad {

std::vector<int> distance_coloring(const Graph& g, int d, const NodeMask& mask) {
  LAD_CHECK(d >= 1);
  std::vector<int> colors(static_cast<std::size_t>(g.n()), 0);
  std::vector<int> order;
  for (int v = 0; v < g.n(); ++v) {
    if (mask.empty() || mask[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) { return g.id(a) < g.id(b); });

  for (const int v : order) {
    std::set<int> used;
    for (const int u : ball_nodes(g, v, d, mask)) {
      if (u != v && colors[u] > 0) used.insert(colors[u]);
    }
    int c = 1;
    while (used.count(c)) ++c;
    colors[v] = c;
  }
  return colors;
}

bool is_distance_coloring(const Graph& g, const std::vector<int>& colors, int d,
                          const NodeMask& mask) {
  for (int v = 0; v < g.n(); ++v) {
    if (!mask.empty() && !mask[v]) continue;
    if (colors[v] <= 0) return false;
    for (const int u : ball_nodes(g, v, d, mask)) {
      if (u != v && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

int num_colors(const std::vector<int>& colors) {
  int mx = 0;
  for (const int c : colors) mx = std::max(mx, c);
  return mx;
}

}  // namespace lad
