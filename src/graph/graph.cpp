#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace lad {
namespace {

// 32-bit indices are deliberate (header): these are the exact quantities
// that must fit. 2m is the CSR arc count, so m gets half the range.
constexpr std::size_t kMaxNodes = static_cast<std::size_t>(std::numeric_limits<int>::max());
constexpr std::size_t kMaxEdges = kMaxNodes / 2;

// Below this size the merge tree costs more than it buys.
constexpr std::size_t kParallelSortCutoff = 1 << 15;

/// Deterministic parallel merge sort: per-chunk std::sort, then a binary
/// tree of stable std::inplace_merge passes (pairs merged concurrently at
/// each level). The output equals std::sort's for any thread count as long
/// as equal elements are bitwise identical — true for every key this file
/// sorts (full std::pair comparisons; genuinely equal pairs are duplicates
/// the caller rejects right after).
template <typename T>
void pool_sort(std::vector<T>& v, ThreadPool* pool) {
  const std::size_t size = v.size();
  const int threads = pool != nullptr ? pool->threads() : 1;
  if (threads <= 1 || size < kParallelSortCutoff) {
    std::sort(v.begin(), v.end());
    return;
  }
  const std::size_t chunks = static_cast<std::size_t>(threads);
  std::vector<std::size_t> bound(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bound[c] = size * c / chunks;
  pool->for_each(threads, [&](int c) {
    const auto uc = static_cast<std::size_t>(c);
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(bound[uc]),
              v.begin() + static_cast<std::ptrdiff_t>(bound[uc + 1]));
  });
  for (std::size_t width = 1; width < chunks; width *= 2) {
    std::vector<std::size_t> lo_chunk;
    for (std::size_t c = 0; c + width < chunks; c += 2 * width) lo_chunk.push_back(c);
    pool->for_each(static_cast<int>(lo_chunk.size()), [&](int i) {
      const std::size_t c = lo_chunk[static_cast<std::size_t>(i)];
      const std::size_t lo = bound[c];
      const std::size_t mid = bound[c + width];
      const std::size_t hi = bound[std::min(c + 2 * width, chunks)];
      std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
                         v.begin() + static_cast<std::ptrdiff_t>(mid),
                         v.begin() + static_cast<std::ptrdiff_t>(hi));
    });
  }
}

}  // namespace

int Graph::Builder::add_node(NodeId id) {
  LAD_CHECK_MSG(id >= 1, "LOCAL identifiers must be positive, got " << id);
  LAD_CHECK_MSG(ids_.size() < kMaxNodes, "graph too large: node count exceeds 32-bit index");
  ids_.push_back(id);
  return static_cast<int>(ids_.size()) - 1;
}

void Graph::Builder::add_edge(int u, int v) {
  LAD_CHECK_MSG(u >= 0 && u < n() && v >= 0 && v < n(),
                "edge endpoint out of range: {" << u << "," << v << "} with n=" << n());
  LAD_CHECK_MSG(u != v, "self-loop at node index " << u);
  LAD_CHECK_MSG(edges_.size() < kMaxEdges,
                "graph too large: edge count exceeds 32-bit arc index (2m must fit an int)");
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void Graph::Builder::reserve(std::size_t nodes, std::size_t edges) {
  ids_.reserve(nodes);
  edges_.reserve(edges);
}

Graph Graph::Builder::build() && {
  return std::move(*this).build(static_cast<ThreadPool*>(nullptr));
}

Graph Graph::Builder::build(ThreadPool* pool) && {
  // add_node/add_edge guard incrementally; these are the belt-and-braces
  // checks for the 32-bit-index contract before any arithmetic below.
  LAD_CHECK_MSG(ids_.size() <= kMaxNodes, "graph too large: " << ids_.size() << " nodes");
  LAD_CHECK_MSG(edges_.size() <= kMaxEdges, "graph too large: " << edges_.size() << " edges");

  Graph g;
  g.ids_ = std::move(ids_);
  const int n = static_cast<int>(g.ids_.size());

  g.rebuild_id_index(pool);  // throws on duplicate node IDs

  // Normalized edges sorted lexicographically; the sorted position is the
  // edge's identity (edge IDs are a pure function of the edge multiset).
  pool_sort(edges_, pool);
  const auto dup = std::adjacent_find(edges_.begin(), edges_.end());
  LAD_CHECK_MSG(dup == edges_.end(), "parallel edge between indices "
                                         << (dup == edges_.end() ? -1 : dup->first) << " and "
                                         << (dup == edges_.end() ? -1 : dup->second));

  const int m = static_cast<int>(edges_.size());
  g.edge_u_.resize(static_cast<std::size_t>(m));
  g.edge_v_.resize(static_cast<std::size_t>(m));
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  const bool parallel = pool != nullptr && pool->threads() > 1;
  if (parallel) {
    // Degree histogram via relaxed atomic increments: the final counts are
    // order-independent sums, so the histogram — and everything derived
    // from it — is byte-identical to the serial loop at any thread count.
    pool->parallel_for(m, [&](int b, int e, int) {
      for (int i = b; i < e; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const auto [u, v] = edges_[ui];
        g.edge_u_[ui] = u;
        g.edge_v_[ui] = v;
        std::atomic_ref<int>(deg[static_cast<std::size_t>(u)])
            .fetch_add(1, std::memory_order_relaxed);
        std::atomic_ref<int>(deg[static_cast<std::size_t>(v)])
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  } else {
    for (int e = 0; e < m; ++e) {
      const auto ue = static_cast<std::size_t>(e);
      const auto [u, v] = edges_[ue];
      g.edge_u_[ue] = u;
      g.edge_v_[ue] = v;
      ++deg[static_cast<std::size_t>(u)];
      ++deg[static_cast<std::size_t>(v)];
    }
  }

  g.adj_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    g.adj_off_[uv + 1] = g.adj_off_[uv] + deg[uv];
  }
  g.adj_.resize(static_cast<std::size_t>(g.adj_off_[static_cast<std::size_t>(n)]));
  g.inc_.resize(g.adj_.size());

  // Counting-sort scatter. The serial cursor pass defines slot order (arcs
  // land in edge order within each node's slice); it is O(m), memory-bound,
  // and every slice gets re-sorted by neighbor ID below anyway, so this
  // stays serial rather than buying nondeterminism for a scatter.
  std::vector<int> cursor(g.adj_off_.begin(), g.adj_off_.end() - 1);
  for (int e = 0; e < m; ++e) {
    const auto ue = static_cast<std::size_t>(e);
    const int u = g.edge_u_[ue], v = g.edge_v_[ue];
    auto& cu = cursor[static_cast<std::size_t>(u)];
    auto& cv = cursor[static_cast<std::size_t>(v)];
    g.adj_[static_cast<std::size_t>(cu)] = v;
    g.inc_[static_cast<std::size_t>(cu++)] = e;
    g.adj_[static_cast<std::size_t>(cv)] = u;
    g.inc_[static_cast<std::size_t>(cv++)] = e;
  }

  // Sort each adjacency slice by neighbor ID, carrying incident edge ids
  // along. Slices are disjoint, so chunking nodes over the pool is a pure
  // per-slice write; neighbor IDs are unique per slice (simple graph), so
  // each sorted slice is the unique ascending order.
  struct Arc {
    NodeId key;
    int adj;
    int inc;
    bool operator<(const Arc& o) const { return key < o.key; }
  };
  const int slice_chunks = parallel ? pool->threads() : 1;
  std::vector<int> chunk_max(static_cast<std::size_t>(slice_chunks), 0);
  auto sort_slices = [&](int b, int e, int chunk) {
    std::vector<Arc> buf;
    int local_max = 0;
    for (int v = b; v < e; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      const int lo = g.adj_off_[uv], hi = g.adj_off_[uv + 1];
      local_max = std::max(local_max, hi - lo);
      buf.clear();
      for (int k = lo; k < hi; ++k) {
        const auto uk = static_cast<std::size_t>(k);
        buf.push_back({g.ids_[static_cast<std::size_t>(g.adj_[uk])], g.adj_[uk], g.inc_[uk]});
      }
      std::sort(buf.begin(), buf.end());
      for (int k = lo; k < hi; ++k) {
        const auto& a = buf[static_cast<std::size_t>(k - lo)];
        g.adj_[static_cast<std::size_t>(k)] = a.adj;
        g.inc_[static_cast<std::size_t>(k)] = a.inc;
      }
    }
    chunk_max[static_cast<std::size_t>(chunk)] = local_max;
  };
  if (parallel) {
    pool->parallel_for(n, sort_slices);
  } else {
    sort_slices(0, n, 0);
  }
  g.max_degree_ = *std::max_element(chunk_max.begin(), chunk_max.end());
  return g;
}

void Graph::rebuild_id_index(ThreadPool* pool) {
  const std::size_t n = ids_.size();
  std::vector<std::pair<NodeId, int>> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = {ids_[v], static_cast<int>(v)};
  pool_sort(order, pool);  // (id, index) is a total order: no ties possible
  sorted_ids_.resize(n);
  by_id_ix_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_ids_[k] = order[k].first;
    by_id_ix_[k] = order[k].second;
    LAD_CHECK_MSG(k == 0 || sorted_ids_[k] != sorted_ids_[k - 1],
                  "duplicate node ID " << sorted_ids_[k]);
  }
}

Graph Graph::from_parts(Parts&& parts) {
  Graph g;
  g.ids_ = std::move(parts.ids);
  g.adj_off_ = std::move(parts.adj_off);
  g.adj_ = std::move(parts.adj);
  g.inc_ = std::move(parts.inc);
  g.edge_u_ = std::move(parts.edge_u);
  g.edge_v_ = std::move(parts.edge_v);

  const std::size_t n = g.ids_.size();
  const std::size_t m = g.edge_u_.size();
  LAD_CHECK_MSG(n <= kMaxNodes, "parts: " << n << " nodes exceeds 32-bit index");
  LAD_CHECK_MSG(m <= kMaxEdges, "parts: " << m << " edges exceeds 32-bit arc index");
  LAD_CHECK_MSG(g.edge_v_.size() == m, "parts: edge endpoint arrays disagree");
  LAD_CHECK_MSG(g.adj_off_.size() == n + 1, "parts: adj_off must have n+1 entries");
  LAD_CHECK_MSG(g.adj_.size() == 2 * m && g.inc_.size() == 2 * m,
                "parts: adjacency arrays must have 2m entries");
  LAD_CHECK_MSG(g.adj_off_.front() == 0 &&
                    static_cast<std::size_t>(g.adj_off_.back()) == 2 * m,
                "parts: CSR offsets must span [0, 2m]");

  // Structural validation, O(n + m): the digest footer of a .ladg file
  // guards against bit rot, this guards against a well-formed file that
  // simply encodes a non-graph (or a graph violating our invariants).
  g.max_degree_ = 0;
  for (std::size_t v = 0; v < n; ++v) {
    LAD_CHECK_MSG(g.adj_off_[v] <= g.adj_off_[v + 1], "parts: CSR offsets not monotone");
    g.max_degree_ = std::max(g.max_degree_, g.adj_off_[v + 1] - g.adj_off_[v]);
  }
  for (std::size_t e = 0; e < m; ++e) {
    const int u = g.edge_u_[e], v = g.edge_v_[e];
    LAD_CHECK_MSG(u >= 0 && u < v && static_cast<std::size_t>(v) < n,
                  "parts: edge " << e << " endpoints out of order or range");
    LAD_CHECK_MSG(e == 0 || std::pair(g.edge_u_[e - 1], g.edge_v_[e - 1]) < std::pair(u, v),
                  "parts: edges not strictly sorted (duplicate or misordered)");
  }
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(g.adj_off_[v]);
    const auto hi = static_cast<std::size_t>(g.adj_off_[v + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      const int w = g.adj_[k];
      const int e = g.inc_[k];
      LAD_CHECK_MSG(w >= 0 && static_cast<std::size_t>(w) < n,
                    "parts: neighbor index out of range");
      LAD_CHECK_MSG(e >= 0 && static_cast<std::size_t>(e) < m,
                    "parts: incident edge index out of range");
      const auto ue = static_cast<std::size_t>(e);
      const bool aligned =
          (g.edge_u_[ue] == static_cast<int>(v) && g.edge_v_[ue] == w) ||
          (g.edge_v_[ue] == static_cast<int>(v) && g.edge_u_[ue] == w);
      LAD_CHECK_MSG(aligned, "parts: incident edge " << e << " does not match adjacency");
      LAD_CHECK_MSG(k == lo || g.ids_[static_cast<std::size_t>(g.adj_[k - 1])] <
                                   g.ids_[static_cast<std::size_t>(w)],
                    "parts: adjacency of node " << v << " not sorted by neighbor ID");
    }
  }
  g.rebuild_id_index(nullptr);  // checks ID uniqueness; add_node checked >= 1
  for (std::size_t v = 0; v < n; ++v) {
    LAD_CHECK_MSG(g.ids_[v] >= 1, "parts: LOCAL identifiers must be positive");
  }
  return g;
}

std::optional<int> Graph::find_index(NodeId id) const {
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), id);
  if (it == sorted_ids_.end() || *it != id) return std::nullopt;
  return by_id_ix_[static_cast<std::size_t>(it - sorted_ids_.begin())];
}

int Graph::index_of(NodeId id) const {
  const auto ix = find_index(id);
  LAD_CHECK_MSG(ix.has_value(), "no node with ID " << id);
  return *ix;
}

int Graph::edge_between(int u, int v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nb = neighbors(u);
  const auto ie = incident_edges(u);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == v) return ie[p];
  }
  return -1;
}

int Graph::port_of(int v, int u) const {
  const auto nb = neighbors(v);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == u) return static_cast<int>(p);
  }
  return -1;
}

std::vector<int> Graph::all_nodes() const {
  std::vector<int> v(static_cast<std::size_t>(n()));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

Graph make_graph(const std::vector<NodeId>& ids,
                 const std::vector<std::pair<NodeId, NodeId>>& edges_by_id) {
  Graph::Builder b;
  std::unordered_map<NodeId, int> ix;
  for (const NodeId id : ids) ix[id] = b.add_node(id);
  for (const auto& [a, c] : edges_by_id) {
    LAD_CHECK_MSG(ix.count(a) && ix.count(c), "edge references unknown ID");
    b.add_edge(ix[a], ix[c]);
  }
  return std::move(b).build();
}

}  // namespace lad
