#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace lad {

int Graph::Builder::add_node(NodeId id) {
  LAD_CHECK_MSG(id >= 1, "LOCAL identifiers must be positive, got " << id);
  ids_.push_back(id);
  return static_cast<int>(ids_.size()) - 1;
}

void Graph::Builder::add_edge(int u, int v) {
  LAD_CHECK_MSG(u >= 0 && u < n() && v >= 0 && v < n(),
                "edge endpoint out of range: {" << u << "," << v << "} with n=" << n());
  LAD_CHECK_MSG(u != v, "self-loop at node index " << u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

Graph Graph::Builder::build() && {
  Graph g;
  g.ids_ = std::move(ids_);
  const int n = static_cast<int>(g.ids_.size());

  g.id_to_ix_.reserve(g.ids_.size());
  for (int v = 0; v < n; ++v) {
    auto [it, inserted] = g.id_to_ix_.emplace(g.ids_[v], v);
    (void)it;
    LAD_CHECK_MSG(inserted, "duplicate node ID " << g.ids_[v]);
  }

  std::sort(edges_.begin(), edges_.end());
  const auto dup = std::adjacent_find(edges_.begin(), edges_.end());
  LAD_CHECK_MSG(dup == edges_.end(), "parallel edge between indices "
                                         << (dup == edges_.end() ? -1 : dup->first) << " and "
                                         << (dup == edges_.end() ? -1 : dup->second));

  const int m = static_cast<int>(edges_.size());
  g.edge_u_.resize(m);
  g.edge_v_.resize(m);
  std::vector<int> deg(n, 0);
  for (int e = 0; e < m; ++e) {
    g.edge_u_[e] = edges_[e].first;
    g.edge_v_[e] = edges_[e].second;
    ++deg[edges_[e].first];
    ++deg[edges_[e].second];
  }

  g.adj_off_.assign(n + 1, 0);
  for (int v = 0; v < n; ++v) g.adj_off_[v + 1] = g.adj_off_[v] + deg[v];
  g.adj_.resize(g.adj_off_[n]);
  g.inc_.resize(g.adj_off_[n]);

  std::vector<int> cursor(g.adj_off_.begin(), g.adj_off_.end() - 1);
  for (int e = 0; e < m; ++e) {
    const int u = g.edge_u_[e], v = g.edge_v_[e];
    g.adj_[cursor[u]] = v;
    g.inc_[cursor[u]++] = e;
    g.adj_[cursor[v]] = u;
    g.inc_[cursor[v]++] = e;
  }

  // Sort each adjacency slice by neighbor ID, carrying incident edge ids along.
  for (int v = 0; v < n; ++v) {
    const int lo = g.adj_off_[v], hi = g.adj_off_[v + 1];
    std::vector<int> order(hi - lo);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return g.ids_[g.adj_[lo + a]] < g.ids_[g.adj_[lo + b]];
    });
    std::vector<int> adj2(hi - lo), inc2(hi - lo);
    for (int k = 0; k < hi - lo; ++k) {
      adj2[k] = g.adj_[lo + order[k]];
      inc2[k] = g.inc_[lo + order[k]];
    }
    std::copy(adj2.begin(), adj2.end(), g.adj_.begin() + lo);
    std::copy(inc2.begin(), inc2.end(), g.inc_.begin() + lo);
    g.max_degree_ = std::max(g.max_degree_, hi - lo);
  }
  return g;
}

int Graph::index_of(NodeId id) const {
  const auto it = id_to_ix_.find(id);
  LAD_CHECK_MSG(it != id_to_ix_.end(), "no node with ID " << id);
  return it->second;
}

int Graph::edge_between(int u, int v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nb = neighbors(u);
  const auto ie = incident_edges(u);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == v) return ie[p];
  }
  return -1;
}

int Graph::port_of(int v, int u) const {
  const auto nb = neighbors(v);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == u) return static_cast<int>(p);
  }
  return -1;
}

std::vector<int> Graph::all_nodes() const {
  std::vector<int> v(n());
  std::iota(v.begin(), v.end(), 0);
  return v;
}

Graph make_graph(const std::vector<NodeId>& ids,
                 const std::vector<std::pair<NodeId, NodeId>>& edges_by_id) {
  Graph::Builder b;
  std::unordered_map<NodeId, int> ix;
  for (const NodeId id : ids) ix[id] = b.add_node(id);
  for (const auto& [a, c] : edges_by_id) {
    LAD_CHECK_MSG(ix.count(a) && ix.count(c), "edge references unknown ID");
    b.add_edge(ix[a], ix[c]);
  }
  return std::move(b).build();
}

}  // namespace lad
