// Euler partition — the "virtual graph G'" of §5.
//
// Each node of degree d pairs its incident edges (taken in ID-sorted port
// order) as (0,1), (2,3), ...; a node of odd degree leaves its last port
// unpaired. Following partner edges decomposes E(G) into edge-disjoint
// trails: closed trails (the cycles of G') and open trails (paths whose ends
// are odd-degree nodes). This pairing is locally computable: it depends only
// on a node's own neighbor IDs, exactly as in the paper.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lad {

struct Trail {
  bool closed = false;
  /// Node sequence. Closed: edges[i] joins nodes[i] and nodes[(i+1) % L]
  /// where L = edges.size() == nodes.size(). Open: edges[i] joins nodes[i]
  /// and nodes[i+1], with nodes.size() == edges.size() + 1.
  std::vector<int> nodes;
  std::vector<int> edges;

  int length() const { return static_cast<int>(edges.size()); }
};

/// Port of the partner edge of port p at a node of degree d, or -1.
inline int partner_port(int p, int d) {
  const int q = p ^ 1;
  return q < d ? q : -1;
}

/// Decomposes g into trails per the local pairing above. Every edge of g
/// appears in exactly one trail, exactly once.
std::vector<Trail> euler_partition(const Graph& g);

/// Validates the trail decomposition against g (used by tests).
bool is_valid_euler_partition(const Graph& g, const std::vector<Trail>& trails);

/// Canonical advice-free direction of a trail: true means "traverse in the
/// as-given direction". Open trails orient from the smaller-ID endpoint;
/// closed trails pick the direction whose ID sequence has the
/// lexicographically smallest rotation. Depends only on the ID sequence, so
/// any node that sees the whole trail computes the same answer.
bool canonical_trail_direction(const Graph& g, const Trail& t);

}  // namespace lad
