// Connected components, optionally of a masked induced subgraph.
#pragma once

#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

struct Components {
  /// comp_of[v] is the component id of v, or -1 for nodes outside the mask.
  std::vector<int> comp_of;
  /// members[c] lists the nodes of component c.
  std::vector<std::vector<int>> members;

  int count() const { return static_cast<int>(members.size()); }
};

/// Computes connected components of g restricted to `mask` (all nodes when
/// the mask is empty).
Components connected_components(const Graph& g, const NodeMask& mask = {});

/// Mask covering exactly one component.
NodeMask component_mask(const Graph& g, const Components& comps, int c);

}  // namespace lad
