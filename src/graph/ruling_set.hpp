// Greedy ruling sets.
//
// An (alpha, beta)-ruling set S over a candidate set C satisfies:
//   * any two nodes of S are at distance >= alpha, and
//   * every node of C has a node of S within distance beta.
// The greedy construction below (scan candidates in ID order, keep a node
// iff no kept node is within distance < alpha) produces an
// (alpha, alpha-1)-ruling set, the form used throughout the paper.
#pragma once

#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Greedy (alpha, alpha-1)-ruling set over `candidates`; distances are
/// measured in g restricted to `mask`. Candidates must lie inside the mask.
std::vector<int> ruling_set(const Graph& g, int alpha, std::span<const int> candidates,
                            const NodeMask& mask = {});

/// Validity check used by tests: pairwise distance >= alpha and domination
/// radius <= beta over the candidate set.
bool is_ruling_set(const Graph& g, const std::vector<int>& s, int alpha, int beta,
                   std::span<const int> candidates, const NodeMask& mask = {});

}  // namespace lad
