// Graph serialization: a line-based edge-list format and Graphviz DOT
// export (for inspecting advice assignments and decoded solutions).
//
// Edge-list format:
//   n m
//   id_0 id_1 ... id_{n-1}
//   u_id v_id          (m lines, endpoints by LOCAL identifier)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

/// Writes the edge-list representation.
void write_edge_list(std::ostream& os, const Graph& g);
std::string to_edge_list(const Graph& g);

/// Parses the edge-list representation; throws ContractViolation on
/// malformed input.
Graph read_edge_list(std::istream& is);
Graph from_edge_list(const std::string& text);

/// Graphviz DOT export. `node_label[v]` (optional) is rendered next to the
/// ID; `highlight[v]` (optional) fills the node (e.g. the 1-bits of an
/// advice assignment).
std::string to_dot(const Graph& g, const std::vector<std::string>& node_label = {},
                   const std::vector<char>& highlight = {});

}  // namespace lad
