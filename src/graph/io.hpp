// Graph serialization: a line-based edge-list format, the `.ladg` versioned
// little-endian binary format (DESIGN.md §12), and Graphviz DOT export (for
// inspecting advice assignments and decoded solutions).
//
// Edge-list format:
//   n m
//   id_0 id_1 ... id_{n-1}
//   u_id v_id          (m lines, endpoints by LOCAL identifier)
//
// .ladg binary format (little-endian throughout):
//   header   magic "LADG" (4 bytes), u32 version = 1, u64 n, u64 m
//   arrays   ids      n   × i64
//            adj_off  n+1 × i32
//            adj      2m  × i32
//            inc      2m  × i32
//            edge_u   m   × i32
//            edge_v   m   × i32
//   footer   u64 splitmix digest over all preceding bytes
// Written by write_ladg / `lad gen --out`; loaded via mmap by read_ladg.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

/// Writes the edge-list representation.
void write_edge_list(std::ostream& os, const Graph& g);
std::string to_edge_list(const Graph& g);

/// Parses the edge-list representation; throws ContractViolation on
/// malformed input.
Graph read_edge_list(std::istream& is);
Graph from_edge_list(const std::string& text);

/// Malformed or unreadable graph *file* input (bad magic, wrong version,
/// truncation, digest mismatch, unreadable path). The CLI maps this to
/// exit 2 — an input-document problem, not an internal contract violation
/// (which stays exit 4).
class GraphIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Content digest of a graph: a splitmix64 word-fold over n, m, IDs, CSR
/// offsets, and adjacency. Two graphs have equal digests iff their CSR
/// representations are byte-identical — the check behind "serial and
/// parallel construction agree" and "load-from-file equals in-memory".
std::uint64_t graph_digest(const Graph& g);
/// graph_digest rendered as 16 lowercase hex digits (bench provenance).
std::string graph_digest_hex(const Graph& g);

/// Writes g to `path` in the .ladg binary format. Throws GraphIoError if
/// the file cannot be created or written.
void write_ladg(const std::string& path, const Graph& g);

/// Loads a .ladg file via mmap: validates magic, version, sizes, and the
/// digest footer, then materializes the CSR arrays through
/// Graph::from_parts (which re-checks structure). Throws GraphIoError on
/// any malformed input.
Graph read_ladg(const std::string& path);

/// Graphviz DOT export. `node_label[v]` (optional) is rendered next to the
/// ID; `highlight[v]` (optional) fills the node (e.g. the 1-bits of an
/// advice assignment).
std::string to_dot(const Graph& g, const std::vector<std::string>& node_label = {},
                   const std::vector<char>& highlight = {});

}  // namespace lad
