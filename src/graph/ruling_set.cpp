#include "graph/ruling_set.hpp"

#include <algorithm>

namespace lad {

std::vector<int> ruling_set(const Graph& g, int alpha, std::span<const int> candidates,
                            const NodeMask& mask) {
  LAD_CHECK(alpha >= 1);
  std::vector<int> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](int a, int b) { return g.id(a) < g.id(b); });

  std::vector<int> chosen;
  // blocked[v] == 1 when v is within distance < alpha of a chosen node.
  std::vector<char> blocked(static_cast<std::size_t>(g.n()), 0);
  for (const int v : order) {
    LAD_CHECK_MSG(mask.empty() || mask[v], "ruling-set candidate outside mask");
    if (blocked[v]) continue;
    chosen.push_back(v);
    const auto near = ball_nodes(g, v, alpha - 1, mask);
    for (const int u : near) blocked[u] = 1;
  }
  return chosen;
}

bool is_ruling_set(const Graph& g, const std::vector<int>& s, int alpha, int beta,
                   std::span<const int> candidates, const NodeMask& mask) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto dist = bfs_distances(g, s[i], mask, alpha - 1);
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (i != j && dist[s[j]] != kUnreachable) return false;
    }
  }
  if (s.empty()) return candidates.empty();
  const auto dom = bfs_distances_multi(g, s, mask, beta);
  for (const int v : candidates) {
    if (dom[v] == kUnreachable) return false;
  }
  return true;
}

}  // namespace lad
