// GraphSource: the one spec grammar for "where does the graph come from",
// shared by every CLI verb (bench, trace, audit, faultsim, chaos,
// verify-claims, gen). Three forms:
//
//   family:params[@seed]   generator, e.g. "cycle:4096", "torus:1000x1000",
//                          "grid:64x64@7", "banded:500x5x3x6"
//   path.ladg              binary graph file (graph/io.*, DESIGN.md §12)
//   path.txt               edge-list file (any spec containing '/' or
//                          ending in ".txt" is treated as an edge list)
//
// Parsing is separated from loading so verbs can reject bad specs with
// exit 2 (naming the offender) before doing any work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

struct GraphSource {
  enum class Kind { kFamily, kLadgFile, kEdgeListFile };

  Kind kind = Kind::kFamily;
  std::string spec;                // the original spec text
  std::string family;              // kFamily: generator name
  std::vector<long long> params;   // kFamily: numeric params ('x'-separated)
  std::optional<std::uint64_t> seed;  // kFamily: "@seed" suffix, if given
  std::string path;                // file kinds
};

/// Generator families parse_graph_source accepts, for error messages.
const std::vector<std::string>& graph_source_families();

/// Parses a source spec. On failure returns nullopt and, if `error` is
/// non-null, sets it to a message naming the offending spec (the CLI
/// prints it and exits 2).
std::optional<GraphSource> parse_graph_source(const std::string& spec, std::string* error);

/// A loaded graph plus its provenance, recorded by bench JSON schema v4.
struct LoadedGraph {
  Graph graph;
  std::string spec;    // canonical source spec (families: seed resolved)
  std::string digest;  // graph_digest_hex of the loaded graph
};

/// Builds or loads the graph a source describes. Generator families draw
/// IDs with IdMode::kRandomDense from the spec's "@seed" if present, else
/// from `seed`. Throws GraphIoError on unreadable or malformed files and
/// ContractViolation on generator parameter misuse.
LoadedGraph load_graph_source(const GraphSource& src, std::uint64_t seed = 1);

/// parse + load in one call; nullopt + *error on a bad spec.
std::optional<LoadedGraph> load_graph_source(const std::string& spec, std::string* error,
                                             std::uint64_t seed = 1);

}  // namespace lad
