// Independent validity checkers for every output the library produces.
//
// Decoder outputs are never trusted: each experiment validates its result
// with one of these centralized checkers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Orientation of every edge: kForward means edge_u(e) -> edge_v(e).
enum class EdgeDir : std::int8_t { kUnset = 0, kForward = 1, kBackward = -1 };
using Orientation = std::vector<EdgeDir>;

/// Proper node coloring with positive colors; if k > 0 also enforces
/// colors <= k. Nodes outside the mask are ignored.
bool is_proper_coloring(const Graph& g, const std::vector<int>& colors, int k = 0,
                        const NodeMask& mask = {});

bool is_independent_set(const Graph& g, const std::vector<char>& in_set);

/// Independent and dominating.
bool is_maximal_independent_set(const Graph& g, const std::vector<char>& in_set);

/// in_matching[e] over edges; checks no two chosen edges share a node.
bool is_matching(const Graph& g, const std::vector<char>& in_matching);
bool is_maximal_matching(const Graph& g, const std::vector<char>& in_matching);

int out_degree(const Graph& g, const Orientation& o, int v);
int in_degree(const Graph& g, const Orientation& o, int v);

/// Every edge oriented, and |indeg - outdeg| <= tolerance at every node
/// (tolerance 0 = balanced, 1 = almost balanced).
bool is_balanced_orientation(const Graph& g, const Orientation& o, int tolerance);

/// No node of degree >= 1 has outdegree 0.
bool is_sinkless_orientation(const Graph& g, const Orientation& o);

/// Red/blue edge coloring such that every node has an equal number of red
/// and blue incident edges (all degrees must be even). color[e] in {1, 2}.
bool is_splitting(const Graph& g, const std::vector<int>& edge_color);

/// Proper edge coloring with colors 1..k (0 < color <= k, incident edges
/// distinct).
bool is_proper_edge_coloring(const Graph& g, const std::vector<int>& edge_color, int k);

/// True if the masked subgraph is bipartite.
bool is_bipartite(const Graph& g, const NodeMask& mask = {});

/// Greedy coloring property (§7): every node of color c > 1 has, for each
/// color c' < c, at least one neighbor of color c'.
bool is_greedy_coloring(const Graph& g, const std::vector<int>& colors);

}  // namespace lad
