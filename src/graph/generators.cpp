#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace lad {
namespace {

Graph from_edges(int n, const std::vector<std::pair<int, int>>& edges, IdMode mode,
                 std::uint64_t seed) {
  Rng rng(seed);
  const auto ids = assign_ids(n, mode, rng);
  Graph::Builder b;
  for (const NodeId id : ids) b.add_node(id);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace

std::vector<NodeId> assign_ids(int n, IdMode mode, Rng& rng) {
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  switch (mode) {
    case IdMode::kSequential:
      for (int i = 0; i < n; ++i) ids[i] = i + 1;
      break;
    case IdMode::kRandomDense: {
      const auto perm = rng.permutation(n);
      for (int i = 0; i < n; ++i) ids[i] = perm[i] + 1;
      break;
    }
    case IdMode::kRandomSparse: {
      const std::int64_t hi = std::max<std::int64_t>(8, static_cast<std::int64_t>(n) *
                                                            static_cast<std::int64_t>(n) * n);
      std::unordered_set<std::int64_t> used;
      for (int i = 0; i < n; ++i) {
        std::int64_t id;
        do {
          id = rng.uniform(1, hi);
        } while (!used.insert(id).second);
        ids[i] = id;
      }
      break;
    }
  }
  return ids;
}

Graph make_path(int n, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(n >= 1);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return from_edges(n, e, mode, seed);
}

Graph make_cycle(int n, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(n >= 3);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return from_edges(n, e, mode, seed);
}

Graph make_grid(int w, int h, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(w >= 1 && h >= 1);
  auto at = [w](int x, int y) { return y * w + x; };
  std::vector<std::pair<int, int>> e;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) e.emplace_back(at(x, y), at(x + 1, y));
      if (y + 1 < h) e.emplace_back(at(x, y), at(x, y + 1));
    }
  }
  return from_edges(w * h, e, mode, seed);
}

Graph make_torus(int w, int h, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(w >= 3 && h >= 3);
  auto at = [w](int x, int y) { return y * w + x; };
  std::set<std::pair<int, int>> e;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      auto add = [&](int a, int b) { e.insert({std::min(a, b), std::max(a, b)}); };
      add(at(x, y), at((x + 1) % w, y));
      add(at(x, y), at(x, (y + 1) % h));
    }
  }
  return from_edges(w * h, {e.begin(), e.end()}, mode, seed);
}

Graph make_complete(int n, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(n >= 1);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) e.emplace_back(i, j);
  return from_edges(n, e, mode, seed);
}

Graph make_star(int n, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(n >= 1);
  std::vector<std::pair<int, int>> e;
  for (int i = 1; i < n; ++i) e.emplace_back(0, i);
  return from_edges(n, e, mode, seed);
}

Graph make_hypercube(int d, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(d >= 0 && d <= 20);
  const int n = 1 << d;
  std::vector<std::pair<int, int>> e;
  for (int v = 0; v < n; ++v)
    for (int b = 0; b < d; ++b)
      if (!(v & (1 << b))) e.emplace_back(v, v | (1 << b));
  return from_edges(n, e, mode, seed);
}

Graph make_circular_ladder(int m, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(m >= 3);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < m; ++i) {
    e.emplace_back(i, (i + 1) % m);          // outer cycle
    e.emplace_back(m + i, m + (i + 1) % m);  // inner cycle
    e.emplace_back(i, m + i);                // rungs
  }
  return from_edges(2 * m, e, mode, seed);
}

PlantedColoring make_planted_caterpillar(int spine, std::uint64_t seed, IdMode mode) {
  LAD_CHECK(spine >= 2);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i + 1 < spine; ++i) e.emplace_back(i, i + 1);
  for (int i = 0; i < spine; ++i) e.emplace_back(i, spine + i);  // pendant leaves
  PlantedColoring out;
  out.graph = from_edges(2 * spine, e, mode, seed);
  out.coloring.assign(static_cast<std::size_t>(2 * spine), 0);
  for (int i = 0; i < spine; ++i) {
    out.coloring[static_cast<std::size_t>(i)] = 2 + i % 2;
    out.coloring[static_cast<std::size_t>(spine + i)] = 1;
  }
  return out;
}

Graph make_complete_bipartite(int a, int b, IdMode mode, std::uint64_t seed) {
  LAD_CHECK(a >= 1 && b >= 1);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < a; ++i)
    for (int j = 0; j < b; ++j) e.emplace_back(i, a + j);
  return from_edges(a + b, e, mode, seed);
}

Graph make_banded_random(int n, int band, double avg_deg, int max_deg, std::uint64_t seed,
                         IdMode mode) {
  LAD_CHECK(n >= 3 && band >= 1 && max_deg >= 1);
  Rng rng(seed);
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::set<std::pair<int, int>> e;
  // A ring backbone keeps the graph connected with a large diameter.
  for (int i = 0; i < n; ++i) {
    e.insert({std::min(i, (i + 1) % n), std::max(i, (i + 1) % n)});
    ++deg[i];
    ++deg[(i + 1) % n];
  }
  const std::int64_t target_edges =
      std::min<std::int64_t>(static_cast<std::int64_t>(avg_deg * n / 2.0),
                             static_cast<std::int64_t>(n) * max_deg / 2);
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(e.size()) < target_edges && attempts < 80 * target_edges + 100) {
    ++attempts;
    const int a = static_cast<int>(rng.uniform(0, n - 1));
    const int off = static_cast<int>(rng.uniform(2, band));
    const int b = (a + off) % n;
    if (deg[a] >= max_deg || deg[b] >= max_deg) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (!e.insert(key).second) continue;
    ++deg[a];
    ++deg[b];
  }
  return from_edges(n, {e.begin(), e.end()}, mode, seed ^ 0x1234abcd);
}

Graph make_bounded_degree_tree(int n, int max_deg, std::uint64_t seed, IdMode mode) {
  LAD_CHECK(n >= 1 && max_deg >= 2);
  Rng rng(seed);
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<int, int>> e;
  std::vector<int> eligible = {0};
  for (int v = 1; v < n; ++v) {
    const int pick = static_cast<int>(rng.uniform(0, static_cast<int>(eligible.size()) - 1));
    const int parent = eligible[pick];
    e.emplace_back(parent, v);
    ++deg[parent];
    ++deg[v];
    if (deg[parent] >= max_deg) {
      eligible[pick] = eligible.back();
      eligible.pop_back();
    }
    if (deg[v] < max_deg) eligible.push_back(v);
    LAD_CHECK_MSG(!eligible.empty() || v == n - 1, "degree cap too tight for tree size");
  }
  return from_edges(n, e, mode, seed ^ 0x5bd1e995);
}

Graph make_random_regular(int n, int d, std::uint64_t seed, IdMode mode) {
  LAD_CHECK(n >= 2 && d >= 1 && d < n);
  LAD_CHECK_MSG((static_cast<std::int64_t>(n) * d) % 2 == 0, "n*d must be even");
  Rng rng(seed);
  // Configuration model followed by edge-swap repair: a self-loop or
  // parallel edge is fixed by a random double edge swap, which preserves
  // all degrees.
  std::vector<int> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (int v = 0; v < n; ++v)
    for (int k = 0; k < d; ++k) stubs.push_back(v);
  rng.shuffle(stubs);
  const int m = static_cast<int>(stubs.size() / 2);
  std::vector<std::pair<int, int>> edges(static_cast<std::size_t>(m));
  for (int e = 0; e < m; ++e) edges[e] = {stubs[2 * e], stubs[2 * e + 1]};

  auto count_multiplicity = [&]() {
    std::set<std::pair<int, int>> seen;
    std::vector<int> bad;
    for (int e = 0; e < m; ++e) {
      auto [a, b] = edges[e];
      if (a == b || !seen.insert({std::min(a, b), std::max(a, b)}).second) bad.push_back(e);
    }
    return bad;
  };

  for (int round = 0; round < 200000; ++round) {
    const auto bad = count_multiplicity();
    if (bad.empty()) {
      return from_edges(n, edges, mode, seed ^ 0xabcdef);
    }
    for (const int e : bad) {
      const int f = static_cast<int>(rng.uniform(0, m - 1));
      if (f == e) continue;
      // Swap one endpoint of e with one endpoint of f.
      std::swap(edges[e].second, edges[f].second);
    }
  }
  throw ContractViolation("make_random_regular: edge-swap repair did not converge");
}

Graph make_bipartite_regular(int side, int d, std::uint64_t seed, IdMode mode) {
  LAD_CHECK(side >= 1 && d >= 1 && d <= side);
  Rng rng(seed);
  const auto perm = rng.permutation(side);
  std::vector<std::pair<int, int>> e;
  // Left nodes are 0..side-1, right nodes are side..2*side-1. Matching k
  // connects left j to right perm[(j + k) mod side]; distinct shifts give
  // each left node d distinct right partners, so the graph is simple.
  for (int k = 0; k < d; ++k)
    for (int j = 0; j < side; ++j) e.emplace_back(j, side + perm[(j + k) % side]);
  return from_edges(2 * side, e, mode, seed ^ 0x2545f491);
}

Graph make_random_bounded_degree(int n, double avg_deg, int max_deg, std::uint64_t seed,
                                 IdMode mode) {
  LAD_CHECK(n >= 1 && max_deg >= 1 && avg_deg >= 0.0);
  Rng rng(seed);
  const std::int64_t target_edges =
      std::min<std::int64_t>(static_cast<std::int64_t>(avg_deg * n / 2.0),
                             static_cast<std::int64_t>(n) * max_deg / 2);
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::set<std::pair<int, int>> e;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(e.size()) < target_edges && attempts < 50 * target_edges + 100) {
    ++attempts;
    int a = static_cast<int>(rng.uniform(0, n - 1));
    int b = static_cast<int>(rng.uniform(0, n - 1));
    if (a == b) continue;
    if (deg[a] >= max_deg || deg[b] >= max_deg) continue;
    if (a > b) std::swap(a, b);
    if (!e.insert({a, b}).second) continue;
    ++deg[a];
    ++deg[b];
  }
  return from_edges(n, {e.begin(), e.end()}, mode, seed ^ 0x94d049bb);
}

PlantedColoring make_planted_colorable(int n, int k, double avg_deg, int max_deg,
                                       std::uint64_t seed, bool connect, IdMode mode) {
  LAD_CHECK(n >= 1 && k >= 2 && max_deg >= 1);
  Rng rng(seed);
  std::vector<int> color(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) color[v] = 1 + (v % k);
  rng.shuffle(color);

  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::set<std::pair<int, int>> e;
  auto try_add = [&](int a, int b) {
    if (a == b || color[a] == color[b]) return false;
    if (deg[a] >= max_deg || deg[b] >= max_deg) return false;
    if (a > b) std::swap(a, b);
    if (!e.insert({a, b}).second) return false;
    ++deg[a];
    ++deg[b];
    return true;
  };

  if (connect) {
    // Chain nodes in a random order, skipping same-color / saturated pairs.
    auto order = rng.permutation(n);
    int prev = order[0];
    for (int i = 1; i < n; ++i) {
      if (try_add(prev, order[i])) prev = order[i];
      // If the pair was invalid we still advance with probability 1/2 so the
      // structure stays path-like rather than star-like.
      else if (rng.flip(0.5))
        prev = order[i];
    }
  }

  const std::int64_t target_edges =
      std::min<std::int64_t>(static_cast<std::int64_t>(avg_deg * n / 2.0),
                             static_cast<std::int64_t>(n) * max_deg / 2);
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(e.size()) < target_edges && attempts < 80 * target_edges + 200) {
    ++attempts;
    try_add(static_cast<int>(rng.uniform(0, n - 1)), static_cast<int>(rng.uniform(0, n - 1)));
  }

  PlantedColoring out;
  out.graph = from_edges(n, {e.begin(), e.end()}, mode, seed ^ 0xbf58476d);
  out.coloring = std::move(color);
  return out;
}

Graph make_even_degree_graph(int n, int target_deg, std::uint64_t seed, IdMode mode) {
  LAD_CHECK(n >= 3 && target_deg >= 2 && target_deg % 2 == 0);
  Rng rng(seed);
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::set<std::pair<int, int>> e;
  auto can = [&](int a, int b) {
    if (a == b) return false;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    return deg[a] < target_deg && deg[b] < target_deg && !e.count(key);
  };
  auto add = [&](int a, int b) {
    e.insert({std::min(a, b), std::max(a, b)});
    ++deg[a];
    ++deg[b];
  };
  // Repeatedly lay down random simple cycles over nodes that still have
  // spare even capacity; every closed cycle adds degree exactly 2 to each
  // of its nodes, so all degrees stay even.
  for (int round = 0; round < 4 * target_deg; ++round) {
    std::vector<int> avail;
    for (int v = 0; v < n; ++v)
      if (deg[v] + 2 <= target_deg) avail.push_back(v);
    if (static_cast<int>(avail.size()) < 3) break;
    rng.shuffle(avail);
    // Greedily walk through `avail`, keeping only nodes that can chain.
    std::vector<int> cyc;
    for (const int v : avail) {
      if (cyc.empty() || can(cyc.back(), v)) cyc.push_back(v);
    }
    while (cyc.size() >= 3 && !can(cyc.back(), cyc.front())) cyc.pop_back();
    if (cyc.size() < 3) continue;
    for (std::size_t i = 0; i < cyc.size(); ++i) add(cyc[i], cyc[(i + 1) % cyc.size()]);
  }
  return from_edges(n, {e.begin(), e.end()}, mode, seed ^ 0xd6e8feb8);
}

Graph disjoint_union(const std::vector<Graph>& parts, IdMode mode, std::uint64_t seed) {
  int n = 0;
  for (const auto& g : parts) n += g.n();
  std::vector<std::pair<int, int>> e;
  int base = 0;
  for (const auto& g : parts) {
    for (int idx = 0; idx < g.m(); ++idx) e.emplace_back(base + g.edge_u(idx), base + g.edge_v(idx));
    base += g.n();
  }
  return from_edges(n, e, mode, seed);
}

}  // namespace lad
