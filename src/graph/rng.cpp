#include "graph/rng.hpp"

#include <numeric>

namespace lad {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(eng_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(eng_);
}

bool Rng::flip(double p) { return uniform01() < p; }

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  shuffle(p);
  return p;
}

}  // namespace lad
