// BFS-based distance utilities, with optional restriction to a node subset.
//
// Several constructions in the paper operate "within" an induced subgraph
// (a component of G_{2,3}, the not-yet-clustered graph G_i, ...). All
// functions here accept an optional mask: when given, only nodes v with
// mask[v] != 0 exist for the traversal.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lad {

/// Node mask: mask[v] != 0 means v participates. An empty vector means all.
using NodeMask = std::vector<char>;

constexpr int kUnreachable = -1;

/// Distances from `source` (capped at max_dist when >= 0); kUnreachable
/// marks nodes outside the cap / mask / component.
std::vector<int> bfs_distances(const Graph& g, int source, const NodeMask& mask = {},
                               int max_dist = -1);

/// Multi-source BFS distances.
std::vector<int> bfs_distances_multi(const Graph& g, const std::vector<int>& sources,
                                     const NodeMask& mask = {}, int max_dist = -1);

/// Nodes at distance <= radius from v (the ball N_<=radius(v)), in BFS order.
std::vector<int> ball_nodes(const Graph& g, int v, int radius, const NodeMask& mask = {});

/// |N_<=radius(v)|.
int ball_size(const Graph& g, int v, int radius, const NodeMask& mask = {});

/// Distance between u and v, kUnreachable if disconnected (within mask).
int distance(const Graph& g, int u, int v, const NodeMask& mask = {});

/// One shortest u-v path (node sequence, u first); empty if disconnected.
std::vector<int> shortest_path(const Graph& g, int u, int v, const NodeMask& mask = {});

/// Eccentricity of v within its (masked) component.
int eccentricity(const Graph& g, int v, const NodeMask& mask = {});

/// Exact diameter of the (masked) component containing v (all-pairs BFS;
/// intended for moderate component sizes).
int component_diameter(const Graph& g, int v, const NodeMask& mask = {});

}  // namespace lad
