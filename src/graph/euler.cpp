#include "graph/euler.hpp"

#include <algorithm>

namespace lad {
namespace {

// Walks forward from node `v` leaving through edge `e`, appending nodes and
// edges until the trail ends (unpaired port) or returns to the starting
// directed edge. Returns true if the walk closed on itself.
bool walk(const Graph& g, int v, int e, std::vector<char>& used, Trail& t) {
  const int start_v = v;
  const int start_e = e;
  t.nodes.push_back(v);
  while (true) {
    used[e] = 1;
    t.edges.push_back(e);
    const int u = g.other_endpoint(e, v);
    const int p = [&] {
      const auto inc = g.incident_edges(u);
      for (std::size_t i = 0; i < inc.size(); ++i)
        if (inc[i] == e) return static_cast<int>(i);
      return -1;
    }();
    LAD_CHECK(p >= 0);
    const int q = partner_port(p, g.degree(u));
    if (q < 0) {
      t.nodes.push_back(u);
      return false;  // open trail ends at u
    }
    const int next_e = g.incident_edges(u)[q];
    if (u == start_v && next_e == start_e) return true;  // closed
    if (used[next_e]) {
      // Closed trail completes when we are about to re-traverse; the only
      // way to hit a used edge is returning to the start.
      LAD_CHECK(u == start_v && next_e == start_e);
      return true;
    }
    t.nodes.push_back(u);
    v = u;
    e = next_e;
  }
}

}  // namespace

std::vector<Trail> euler_partition(const Graph& g) {
  std::vector<Trail> trails;
  std::vector<char> used(static_cast<std::size_t>(g.m()), 0);

  // Open trails start at odd-degree nodes through their unpaired last port.
  for (int v = 0; v < g.n(); ++v) {
    const int d = g.degree(v);
    if (d % 2 == 0) continue;
    const int e = g.incident_edges(v)[d - 1];
    if (used[e]) continue;
    Trail t;
    const bool closed = walk(g, v, e, used, t);
    LAD_CHECK(!closed);
    t.closed = false;
    trails.push_back(std::move(t));
  }

  // Remaining edges lie on closed trails.
  for (int e = 0; e < g.m(); ++e) {
    if (used[e]) continue;
    Trail t;
    const bool closed = walk(g, g.edge_u(e), e, used, t);
    LAD_CHECK(closed);
    t.closed = true;
    trails.push_back(std::move(t));
  }
  return trails;
}

namespace {

std::vector<NodeId> id_sequence(const Graph& g, const std::vector<int>& nodes) {
  std::vector<NodeId> ids;
  ids.reserve(nodes.size());
  for (const int v : nodes) ids.push_back(g.id(v));
  return ids;
}

// Lexicographically smallest rotation of a cyclic sequence (O(L^2); only
// called on short trails).
std::vector<NodeId> min_rotation(const std::vector<NodeId>& seq) {
  std::vector<NodeId> best = seq;
  const std::size_t L = seq.size();
  std::vector<NodeId> rot(L);
  for (std::size_t s = 1; s < L; ++s) {
    for (std::size_t i = 0; i < L; ++i) rot[i] = seq[(s + i) % L];
    if (rot < best) best = rot;
  }
  return best;
}

}  // namespace

bool canonical_trail_direction(const Graph& g, const Trail& t) {
  if (!t.closed) {
    return g.id(t.nodes.front()) < g.id(t.nodes.back());
  }
  const auto fwd = id_sequence(g, t.nodes);
  std::vector<NodeId> bwd(fwd.rbegin(), fwd.rend());
  return min_rotation(fwd) <= min_rotation(bwd);
}

bool is_valid_euler_partition(const Graph& g, const std::vector<Trail>& trails) {
  std::vector<int> seen(static_cast<std::size_t>(g.m()), 0);
  for (const auto& t : trails) {
    const int L = t.length();
    if (t.closed) {
      if (static_cast<int>(t.nodes.size()) != L || L < 3) return false;
    } else {
      if (static_cast<int>(t.nodes.size()) != L + 1 || L < 1) return false;
    }
    for (int i = 0; i < L; ++i) {
      const int a = t.nodes[static_cast<std::size_t>(i)];
      const int b = t.closed ? t.nodes[static_cast<std::size_t>((i + 1) % L)]
                             : t.nodes[static_cast<std::size_t>(i + 1)];
      const int e = t.edges[static_cast<std::size_t>(i)];
      if (e < 0 || e >= g.m()) return false;
      ++seen[e];
      const int eu = g.edge_u(e), ev = g.edge_v(e);
      if (!((eu == a && ev == b) || (eu == b && ev == a))) return false;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; });
}

}  // namespace lad
