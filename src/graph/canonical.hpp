// Canonical, order-invariant encodings of local views.
//
// §8 turns an arbitrary advice algorithm into an *order-invariant* one whose
// output depends only on the topology of the view, the relative order of the
// IDs, and the input labels — not on numerical ID values. We realize such
// algorithms as lookup tables keyed by the canonical string computed here:
// nodes of the view are renamed by their ID rank, making the key identical
// for any two views that are isomorphic as ordered labeled graphs.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

/// Canonical key of the view induced by `nodes` (a subset of g), centered at
/// `center` (which must be in `nodes`). `labels[v]` is an arbitrary integer
/// input (advice bit, color, ...); pass an empty vector for no labels.
/// The key depends only on: induced topology, relative ID order of `nodes`,
/// labels, and which node is the center.
std::string canonical_view(const Graph& g, std::span<const int> nodes, int center,
                           const std::vector<int>& labels = {});

}  // namespace lad
