// Graph generators for the experiment harness and tests.
//
// All generators take an IdMode that controls how LOCAL identifiers are
// assigned; advice schemas may legitimately depend on IDs (paper §1.1), so
// tests exercise both dense and sparse random ID spaces.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace lad {

enum class IdMode {
  kSequential,    // IDs 1..n in index order
  kRandomDense,   // a random permutation of 1..n
  kRandomSparse,  // n distinct random IDs from {1..n^3}
};

/// Draws an ID vector for n nodes according to the mode.
std::vector<NodeId> assign_ids(int n, IdMode mode, Rng& rng);

/// Simple path v0 - v1 - ... - v_{n-1}.
Graph make_path(int n, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// Simple cycle on n >= 3 nodes.
Graph make_cycle(int n, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// w x h grid (4-neighbor), polynomial growth.
Graph make_grid(int w, int h, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// w x h torus (4-regular when w,h >= 3), polynomial growth.
Graph make_torus(int w, int h, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// Complete graph K_n.
Graph make_complete(int n, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// Star with n-1 leaves.
Graph make_star(int n, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// d-dimensional hypercube (2^d nodes, d-regular).
Graph make_hypercube(int d, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// Circular ladder C_m x K_2 (3-regular, 2n = 2m nodes, diameter ~ m/2):
/// the canonical "roomy" bounded-degree family (large diameter at Δ = 3).
Graph make_circular_ladder(int m, IdMode mode = IdMode::kSequential, std::uint64_t seed = 1);

/// Complete bipartite graph K_{a,b}.
Graph make_complete_bipartite(int a, int b, IdMode mode = IdMode::kSequential,
                              std::uint64_t seed = 1);

/// "Banded" random graph: nodes on a ring, random edges only between nodes
/// at ring distance <= band. Large diameter (~ n / band) at tunable degree;
/// the roomy family used for geodesic 1-bit encodings.
Graph make_banded_random(int n, int band, double avg_deg, int max_deg, std::uint64_t seed,
                         IdMode mode = IdMode::kRandomDense);

/// Random tree with maximum degree at most max_deg.
Graph make_bounded_degree_tree(int n, int max_deg, std::uint64_t seed,
                               IdMode mode = IdMode::kRandomDense);

/// Random d-regular simple graph via the pairing model with retries.
/// Requires n*d even and d < n.
Graph make_random_regular(int n, int d, std::uint64_t seed,
                          IdMode mode = IdMode::kRandomDense);

/// Random bipartite d-regular simple graph on 2*side nodes, built from d
/// distinct cyclic shifts of a random permutation (always simple, d <= side).
Graph make_bipartite_regular(int side, int d, std::uint64_t seed,
                             IdMode mode = IdMode::kRandomDense);

/// Erdos–Renyi-style random graph with a hard degree cap.
Graph make_random_bounded_degree(int n, double avg_deg, int max_deg, std::uint64_t seed,
                                 IdMode mode = IdMode::kRandomDense);

/// Result of a planted-coloring construction: the graph is k-colorable by
/// construction and `coloring[v]` (values 1..k) is a witness.
struct PlantedColoring {
  Graph graph;
  std::vector<int> coloring;
};

/// Random k-colorable graph with max degree <= max_deg: nodes are split into
/// k classes and random cross-class edges are added up to the degree cap.
/// When `connect` is set, a cross-class spanning structure makes it connected
/// if possible.
PlantedColoring make_planted_colorable(int n, int k, double avg_deg, int max_deg,
                                       std::uint64_t seed, bool connect = true,
                                       IdMode mode = IdMode::kRandomDense);

/// Caterpillar with a 3-colorable structure: a spine of `spine` nodes, each
/// with a pendant leaf. The witness colors the spine 2/3 alternating and
/// the leaves 1 — the family whose G_{2,3} is one long path (the hard case
/// of the §7 schema).
PlantedColoring make_planted_caterpillar(int spine, std::uint64_t seed,
                                         IdMode mode = IdMode::kRandomDense);

/// Random graph in which every node has even degree (an edge-disjoint union
/// of random cycles), max degree <= max_deg.
Graph make_even_degree_graph(int n, int target_deg, std::uint64_t seed,
                             IdMode mode = IdMode::kRandomDense);

/// Disjoint union; IDs are re-drawn to stay unique.
Graph disjoint_union(const std::vector<Graph>& parts, IdMode mode = IdMode::kSequential,
                     std::uint64_t seed = 1);

}  // namespace lad
