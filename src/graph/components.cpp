#include "graph/components.hpp"

#include <deque>

namespace lad {

Components connected_components(const Graph& g, const NodeMask& mask) {
  Components out;
  out.comp_of.assign(static_cast<std::size_t>(g.n()), -1);
  for (int s = 0; s < g.n(); ++s) {
    if (!mask.empty() && !mask[s]) continue;
    if (out.comp_of[s] != -1) continue;
    const int c = out.count();
    out.members.emplace_back();
    std::deque<int> q = {s};
    out.comp_of[s] = c;
    while (!q.empty()) {
      const int v = q.front();
      q.pop_front();
      out.members[c].push_back(v);
      for (const int u : g.neighbors(v)) {
        if (!mask.empty() && !mask[u]) continue;
        if (out.comp_of[u] == -1) {
          out.comp_of[u] = c;
          q.push_back(u);
        }
      }
    }
  }
  return out;
}

NodeMask component_mask(const Graph& g, const Components& comps, int c) {
  NodeMask mask(static_cast<std::size_t>(g.n()), 0);
  for (const int v : comps.members[c]) mask[v] = 1;
  return mask;
}

}  // namespace lad
