#include "graph/source.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace lad {

namespace {

struct FamilySpec {
  const char* name;
  std::size_t min_params;
  std::size_t max_params;
  const char* shape;  // for error messages
};

// Parameter vocabularies mirror `lad gen` (defaults included), plus the
// families the fault campaigns use (torus) and a few zoo members.
constexpr FamilySpec kFamilies[] = {
    {"cycle", 0, 1, "cycle:N"},
    {"path", 0, 1, "path:N"},
    {"grid", 0, 2, "grid:WxH"},
    {"torus", 0, 2, "torus:WxH"},
    {"ladder", 0, 1, "ladder:M"},
    {"regular", 0, 2, "regular:NxD"},
    {"banded", 0, 4, "banded:NxBANDxAVGxMAX"},
    {"twocycles", 0, 2, "twocycles:N1xN2"},
    {"complete", 0, 1, "complete:N"},
    {"star", 0, 1, "star:N"},
    {"hypercube", 0, 1, "hypercube:D"},
    {"tree", 0, 2, "tree:NxMAXDEG"},
};

const FamilySpec* find_family(const std::string& name) {
  for (const auto& f : kFamilies) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

bool parse_ll(const std::string& s, long long* out) {
  if (s.empty()) return false;
  long long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (9'223'372'036'854'775'807LL - (c - '0')) / 10) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string family_list() {
  std::string out;
  for (const auto& f : kFamilies) {
    if (!out.empty()) out += ", ";
    out += f.name;
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

long long param_or(const GraphSource& src, std::size_t i, long long dflt) {
  return i < src.params.size() ? src.params[i] : dflt;
}

}  // namespace

const std::vector<std::string>& graph_source_families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& f : kFamilies) out.emplace_back(f.name);
    return out;
  }();
  return names;
}

std::optional<GraphSource> parse_graph_source(const std::string& spec, std::string* error) {
  GraphSource src;
  src.spec = spec;
  if (spec.empty()) {
    set_error(error, "empty graph source");
    return std::nullopt;
  }
  if (ends_with(spec, ".ladg")) {
    src.kind = GraphSource::Kind::kLadgFile;
    src.path = spec;
    return src;
  }
  if (ends_with(spec, ".txt") || spec.find('/') != std::string::npos) {
    src.kind = GraphSource::Kind::kEdgeListFile;
    src.path = spec;
    return src;
  }
  src.kind = GraphSource::Kind::kFamily;
  std::string body = spec;
  // Optional "@seed" suffix.
  if (auto at = body.rfind('@'); at != std::string::npos) {
    long long s = 0;
    if (!parse_ll(body.substr(at + 1), &s)) {
      set_error(error, "unknown graph source '" + spec + "': bad seed suffix");
      return std::nullopt;
    }
    src.seed = static_cast<std::uint64_t>(s);
    body.resize(at);
  }
  std::string params;
  if (auto colon = body.find(':'); colon != std::string::npos) {
    params = body.substr(colon + 1);
    body.resize(colon);
  }
  src.family = body;
  const FamilySpec* fam = find_family(src.family);
  if (fam == nullptr) {
    set_error(error, "unknown graph source '" + spec + "' (expected family:params [" +
                         family_list() + "], a .ladg file, or a .txt edge list)");
    return std::nullopt;
  }
  if (!params.empty()) {
    std::size_t pos = 0;
    while (pos <= params.size()) {
      auto x = params.find('x', pos);
      if (x == std::string::npos) x = params.size();
      long long v = 0;
      if (!parse_ll(params.substr(pos, x - pos), &v)) {
        set_error(error, "unknown graph source '" + spec + "': bad parameter in '" +
                             params + "' (expected " + fam->shape + ")");
        return std::nullopt;
      }
      src.params.push_back(v);
      pos = x + 1;
      if (x == params.size()) break;
    }
  }
  if (src.params.size() < fam->min_params || src.params.size() > fam->max_params) {
    set_error(error, "unknown graph source '" + spec + "': expected " + fam->shape);
    return std::nullopt;
  }
  return src;
}

LoadedGraph load_graph_source(const GraphSource& src, std::uint64_t seed) {
  LoadedGraph out;
  switch (src.kind) {
    case GraphSource::Kind::kLadgFile:
      out.graph = read_ladg(src.path);
      out.spec = src.path;
      break;
    case GraphSource::Kind::kEdgeListFile: {
      std::ifstream in(src.path);
      if (!in.good()) throw GraphIoError("cannot open graph file '" + src.path + "'");
      try {
        out.graph = read_edge_list(in);
      } catch (const ContractViolation& e) {
        throw GraphIoError("invalid edge list '" + src.path + "': " + e.what());
      }
      out.spec = src.path;
      break;
    }
    case GraphSource::Kind::kFamily: {
      const std::uint64_t s = src.seed.value_or(seed);
      const auto& f = src.family;
      const auto p = [&](std::size_t i, long long dflt) { return param_or(src, i, dflt); };
      const auto pi = [&](std::size_t i, long long dflt) {
        const long long v = p(i, dflt);
        LAD_CHECK_MSG(v <= 0x7fffffffLL, "graph source parameter out of int range");
        return static_cast<int>(v);
      };
      Graph g;
      if (f == "cycle") {
        g = make_cycle(pi(0, 100), IdMode::kRandomDense, s);
      } else if (f == "path") {
        g = make_path(pi(0, 100), IdMode::kRandomDense, s);
      } else if (f == "grid") {
        g = make_grid(pi(0, 10), pi(1, p(0, 10)), IdMode::kRandomDense, s);
      } else if (f == "torus") {
        g = make_torus(pi(0, 10), pi(1, p(0, 10)), IdMode::kRandomDense, s);
      } else if (f == "ladder") {
        g = make_circular_ladder(pi(0, 100), IdMode::kRandomDense, s);
      } else if (f == "regular") {
        g = make_random_regular(pi(0, 100), pi(1, 4), s);
      } else if (f == "banded") {
        g = make_banded_random(pi(0, 500), pi(1, 5), static_cast<double>(p(2, 3)), pi(3, 6), s);
      } else if (f == "twocycles") {
        g = disjoint_union({make_cycle(pi(0, 400)), make_cycle(pi(1, 24))},
                           IdMode::kRandomDense, s);
      } else if (f == "complete") {
        g = make_complete(pi(0, 10), IdMode::kRandomDense, s);
      } else if (f == "star") {
        g = make_star(pi(0, 10), IdMode::kRandomDense, s);
      } else if (f == "hypercube") {
        g = make_hypercube(pi(0, 4), IdMode::kRandomDense, s);
      } else if (f == "tree") {
        g = make_bounded_degree_tree(pi(0, 100), pi(1, 3), s);
      } else {
        LAD_UNREACHABLE("family accepted by parse_graph_source but not loadable");
      }
      out.graph = std::move(g);
      // Canonical spec: resolved params + seed, so provenance pins the
      // exact instance ("cycle" run at seed 7 reads back as cycle:100@7).
      std::ostringstream canon;
      canon << f;
      for (std::size_t i = 0; i < src.params.size(); ++i) {
        canon << (i == 0 ? ':' : 'x') << src.params[i];
      }
      canon << '@' << s;
      out.spec = canon.str();
      break;
    }
  }
  out.digest = graph_digest_hex(out.graph);
  return out;
}

std::optional<LoadedGraph> load_graph_source(const std::string& spec, std::string* error,
                                             std::uint64_t seed) {
  auto src = parse_graph_source(spec, error);
  if (!src) return std::nullopt;
  return load_graph_source(*src, seed);
}

}  // namespace lad
