// Greedy distance-d colorings.
//
// A distance-d coloring assigns colors to nodes such that any two distinct
// nodes with the same color are at distance > d (equivalently, a proper
// coloring of the power graph G^d). Used by the §4 clustering schema.
#pragma once

#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Greedy distance-d coloring with colors 1, 2, ...; nodes are processed in
/// increasing ID order. Returns the color vector (0 for nodes outside mask).
std::vector<int> distance_coloring(const Graph& g, int d, const NodeMask& mask = {});

/// Checks the distance-d coloring property over the masked subgraph.
bool is_distance_coloring(const Graph& g, const std::vector<int>& colors, int d,
                          const NodeMask& mask = {});

/// Largest color used (0 if none).
int num_colors(const std::vector<int>& colors);

}  // namespace lad
