// Deterministic random number generation used across generators and provers.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace lad {

/// Thin deterministic wrapper around mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : eng_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli with success probability p.
  bool flip(double p);

  /// Random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      const int j = static_cast<int>(uniform(0, i));
      std::swap(v[i], v[static_cast<std::size_t>(j)]);
    }
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace lad
