// The one wall clock of the perf surface.
//
// Before this header existed, bench/bench_runner.cpp carried its own
// steady_clock stopwatch and bench/bench_common.hpp its own stats math —
// two implementations that could silently drift apart. Both the legacy
// google-benchmark binaries (via bench_common.hpp) and the registry-driven
// `lad bench` runner now consume these helpers, so a timing or per-node
// normalization fix lands in exactly one place.
#pragma once

#include <chrono>
#include <functional>

namespace lad::obs {

/// Steady-clock stopwatch; ms() reads the elapsed time without stopping.
class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}

  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  void restart() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Wall time of one invocation of `fn`, in milliseconds.
inline double time_ms(const std::function<void()>& fn) {
  const Stopwatch sw;
  fn();
  return sw.ms();
}

/// Per-node normalization with the honest empty-graph convention: 0, not a
/// division by zero and not a hardcoded constant.
inline double per_node(long long total, long long nodes) {
  return nodes > 0 ? static_cast<double>(total) / static_cast<double>(nodes) : 0.0;
}

}  // namespace lad::obs
