#include "obs/export.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "obs/timeline.hpp"

namespace lad::obs {
namespace {

// Names and categories are code-controlled identifiers, but escape the two
// characters that could break the JSON framing anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_event_json(std::ostringstream& os, int tid, const TraceEvent& ev) {
  os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << json_escape(ev.cat)
     << "\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ev.ts_us
     << "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceRecorder exports

std::string TraceRecorder::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // thread_name metadata events first (ph "M"), so Perfetto labels the
  // lanes ("lad-main", "lad-pool-0", ...) instead of showing bare tids.
  for (const auto& [tid, name] : thread_names()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  // Flight-recorder counter lanes (ph "C", DESIGN.md §14): one sample per
  // recorded engine round, so Perfetto renders round-by-round message /
  // byte / barrier-wait series alongside the span lanes.
  for (const RoundSample& s : FlightRecorder::instance().samples()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"round.messages\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << s.ts_us
       << ",\"args\":{\"messages\":" << s.messages << "}},\n";
    os << "{\"name\":\"round.bytes\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << s.ts_us
       << ",\"args\":{\"bytes\":" << s.bytes << "}},\n";
    char wait[96];
    std::snprintf(wait, sizeof(wait), "{\"max\":%.1f,\"sum\":%.1f}", s.max_wait_us, s.wait_us);
    os << "{\"name\":\"round.barrier_wait_us\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
       << s.ts_us << ",\"args\":" << wait << "}";
  }
  for (const auto& [tid, events] : events_by_thread()) {
    for (const TraceEvent& ev : events) {
      if (!first) os << ",\n";
      first = false;
      append_event_json(os, tid, ev);
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string TraceRecorder::to_jsonl() const {
  std::ostringstream os;
  for (const auto& [tid, events] : events_by_thread()) {
    for (const TraceEvent& ev : events) {
      append_event_json(os, tid, ev);
      os << "\n";
    }
  }
  return os.str();
}

std::string to_chrome_trace_json(const TraceRecorder& rec) { return rec.to_chrome_json(); }
std::string to_events_jsonl(const TraceRecorder& rec) { return rec.to_jsonl(); }

// ---------------------------------------------------------------------------
// MetricsRegistry exports

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "# HELP " << e->name << " " << e->help
       << (e->thread_variant ? " (thread-variant)" : "") << "\n";
    switch (e->kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << e->name << " counter\n";
        os << e->name << " " << e->counter->value() << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << e->name << " gauge\n";
        os << e->name << " " << e->gauge->value() << "\n";
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << e->name << " histogram\n";
        long long cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += e->histogram->bucket(b);
          if (b + 1 < Histogram::kBuckets) {
            os << e->name << "_bucket{le=\"" << Histogram::bound(b) << "\"} " << cumulative
               << "\n";
          } else {
            os << e->name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
          }
        }
        os << e->name << "_sum " << e->histogram->sum() << "\n";
        os << e->name << "_count " << e->histogram->count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_table(bool skip_zero) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e->name.size() + 6);
  char line[256];
  for (const auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge: {
        const long long v = e->kind == MetricKind::kCounter ? e->counter->value()
                                                            : e->gauge->value();
        if (skip_zero && v == 0) break;
        std::snprintf(line, sizeof(line), "  %-*s %12lld%s\n", static_cast<int>(width),
                      e->name.c_str(), v, e->thread_variant ? "  [thread-variant]" : "");
        os << line;
        break;
      }
      case MetricKind::kHistogram: {
        const long long count = e->histogram->count();
        if (skip_zero && count == 0) break;
        const long long sum = e->histogram->sum();
        const double avg = count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                                     : 0.0;
        std::snprintf(line, sizeof(line), "  %-*s count=%lld sum=%lld avg=%.2f%s\n",
                      static_cast<int>(width), e->name.c_str(), count, sum, avg,
                      e->thread_variant ? "  [thread-variant]" : "");
        os << line;
        break;
      }
    }
  }
  return os.str();
}

std::string to_prometheus_text(const MetricsRegistry& reg) { return reg.to_prometheus(); }
std::string to_summary_table(const MetricsRegistry& reg, bool skip_zero) {
  return reg.to_table(skip_zero);
}

std::string iso8601_utc_now() {
  const std::time_t t = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace lad::obs
