#include "obs/fit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lad::obs {
namespace {

double basis_value(GrowthClass basis, double n) {
  switch (basis) {
    case GrowthClass::kConstant:
      return 1.0;
    case GrowthClass::kLogStar:
      return static_cast<double>(log_star(n));
    case GrowthClass::kLog:
      return std::log2(n);
    case GrowthClass::kSqrt:
      return std::sqrt(n);
    case GrowthClass::kLinear:
      return n;
  }
  return n;
}

/// OLS of y against x with R² relative to the mean-only model. A degenerate
/// x (zero variance — e.g. log* constant across the sweep) fits nothing:
/// slope 0, r2 0.
BasisFit ols(GrowthClass basis, const std::vector<double>& xs, const std::vector<double>& ys) {
  const auto k = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / k;
  const double my = sy / k;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  BasisFit fit;
  fit.basis = basis;
  if (sxx <= 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0) {
    // A perfectly flat series is explained perfectly by any basis; the
    // flatness shortcut fires before this matters.
    fit.r2 = 1.0;
    return fit;
  }
  double sse = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - (fit.intercept + fit.slope * xs[i]);
    sse += resid * resid;
  }
  fit.r2 = 1.0 - sse / syy;
  return fit;
}

}  // namespace

const char* to_string(GrowthClass cls) {
  switch (cls) {
    case GrowthClass::kConstant:
      return "constant";
    case GrowthClass::kLogStar:
      return "log*";
    case GrowthClass::kLog:
      return "log";
    case GrowthClass::kSqrt:
      return "sqrt";
    case GrowthClass::kLinear:
      return "linear";
  }
  return "?";
}

std::optional<GrowthClass> parse_growth_class(std::string_view name) {
  if (name == "constant" || name == "O(1)") return GrowthClass::kConstant;
  if (name == "log*" || name == "logstar" || name == "log_star") return GrowthClass::kLogStar;
  if (name == "log" || name == "logn") return GrowthClass::kLog;
  if (name == "sqrt") return GrowthClass::kSqrt;
  if (name == "linear" || name == "n") return GrowthClass::kLinear;
  return std::nullopt;
}

int log_star(double n) {
  int iters = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++iters;
  }
  return iters;
}

std::string FitResult::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s (r2=%.3f, exponent=%.3f, rel_range=%.3f, growth=%.2fx)",
                obs::to_string(cls), r2, exponent, rel_range, growth_factor);
  return buf;
}

FitResult fit_growth(const std::vector<double>& ns, const std::vector<double>& ys,
                     const FitOptions& opts) {
  if (ns.size() != ys.size()) throw std::invalid_argument("fit_growth: size mismatch");
  if (ns.size() < 3) throw std::invalid_argument("fit_growth: need at least 3 points");
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (!(ns[i] >= 1.0) || (i > 0 && !(ns[i] > ns[i - 1]))) {
      throw std::invalid_argument("fit_growth: ns must be strictly increasing and >= 1");
    }
    if (!std::isfinite(ys[i]) || ys[i] < 0) {
      throw std::invalid_argument("fit_growth: ys must be finite and non-negative");
    }
  }

  FitResult res;
  const double y_min = *std::min_element(ys.begin(), ys.end());
  const double y_max = *std::max_element(ys.begin(), ys.end());
  double mean = 0;
  for (const double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  res.rel_range = mean > 0 ? (y_max - y_min) / mean : 0.0;
  res.intercept = mean;

  // Power-law exponent from the log–log regression (reported regardless of
  // the class; clamp zeros so an all-positive series next to one zero
  // observation cannot blow the fit up).
  {
    std::vector<double> lx(ns.size()), ly(ys.size());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      lx[i] = std::log(ns[i]);
      ly[i] = std::log(std::max(ys[i], 1e-9));
    }
    res.exponent = ols(GrowthClass::kLinear, lx, ly).slope;
  }

  // Flatness shortcut: a materially flat series is constant, full stop.
  if (res.rel_range <= opts.flat_tol) {
    res.r2 = 1.0;
    res.growth_factor = mean > 0 && y_min > 0 ? y_max / y_min : 1.0;
    return res;
  }

  const GrowthClass bases[] = {GrowthClass::kLogStar, GrowthClass::kLog, GrowthClass::kSqrt,
                               GrowthClass::kLinear};
  // Track the winner by index — push_back reallocation invalidates pointers
  // into candidates.
  constexpr std::size_t kNoBest = std::numeric_limits<std::size_t>::max();
  std::size_t best = kNoBest;
  for (const GrowthClass basis : bases) {
    std::vector<double> xs(ns.size());
    for (std::size_t i = 0; i < ns.size(); ++i) xs[i] = basis_value(basis, ns[i]);
    res.candidates.push_back(ols(basis, xs, ys));
    const BasisFit& fit = res.candidates.back();
    if (fit.slope <= 0) continue;  // shrinking or flat in this basis: not growth
    if (best == kNoBest || fit.r2 > res.candidates[best].r2) best = res.candidates.size() - 1;
  }

  if (best != kNoBest && res.candidates[best].r2 >= opts.min_r2) {
    const BasisFit& bf = res.candidates[best];
    const double lo = bf.intercept + bf.slope * basis_value(bf.basis, ns.front());
    const double hi = bf.intercept + bf.slope * basis_value(bf.basis, ns.back());
    const double growth =
        lo > 0 ? hi / lo : std::numeric_limits<double>::infinity();
    if (growth >= opts.growth_margin) {
      res.cls = bf.basis;
      res.slope = bf.slope;
      res.intercept = bf.intercept;
      res.r2 = bf.r2;
      res.growth_factor = growth;
      return res;
    }
  }

  // No basis explains material growth: the series is bounded noise around a
  // constant (the Δ-coloring cluster-radius case).
  res.cls = GrowthClass::kConstant;
  res.r2 = best != kNoBest ? res.candidates[best].r2 : 0.0;
  res.growth_factor = y_min > 0 ? y_max / y_min : 1.0;
  return res;
}

}  // namespace lad::obs
