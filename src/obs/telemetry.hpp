// Telemetry core: metrics registry + RAII span tracer (DESIGN.md §9).
//
// The paper states every quantitative claim in observable units — rounds,
// messages, bits of advice per node, ball radii — and "Message Reduction in
// the LOCAL Model is a Free Lunch" (Bitton et al.) makes message/bit volume
// a complexity measure of its own, distinct from rounds. This layer turns
// those units into one instrumented source of truth: counters/gauges/
// histograms with deterministic registration order, plus begin/end spans
// collected into per-thread buffers, exportable as a Chrome trace_event
// JSON (chrome://tracing / Perfetto), a flat JSONL log, or Prometheus text
// (obs/export.hpp).
//
// Contract with the rest of the system, in priority order:
//
//   1. *Telemetry never influences outputs.* Instrumentation only reads
//      program state; enabling it must not change a single node digest
//      (tests/test_telemetry.cpp pins this for all six registry pipelines,
//      and the §8 byte-identity determinism contract stays intact).
//   2. *Zero overhead when disabled.* Compile-time: building with
//      -DLAD_TELEMETRY=OFF turns every hook into an empty statement.
//      Runtime: hooks are compiled in but gated on one relaxed atomic load
//      (telemetry is off by default; `lad trace` / `lad bench --trace`
//      switch it on).
//   3. *Thread safety without determinism loss.* Counters are relaxed
//      atomics — increments commute, so totals that aggregate a
//      thread-count-independent multiset of increments (engine messages,
//      campaign faults, advice bits) are byte-identical at any thread
//      count. Spans land in thread-local buffers; their interleaving is
//      scheduling-dependent by nature, but per-thread order and B/E balance
//      are stable per run.
//
// This library sits below util/ (contracts.hpp counts checks through it),
// so it depends on nothing but the standard library.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Compile-time toggle (CMake option LAD_TELEMETRY, default ON -> =1).
#ifndef LAD_TELEMETRY
#define LAD_TELEMETRY 0
#endif

namespace lad::obs {

/// True iff the build carries telemetry hooks (LAD_TELEMETRY != 0).
bool compiled_in();

/// Runtime master switch. Off by default; enabling it materializes the core
/// metric catalog (so exports list every metric even at value 0). A no-op
/// warning-free call when telemetry is compiled out.
void set_enabled(bool on);

#if LAD_TELEMETRY
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
inline bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
#else
inline bool enabled() { return false; }
#endif

// ---------------------------------------------------------------------------
// Metrics

/// Monotone counter. add() is a relaxed atomic fetch-add: increments
/// commute, so totals are deterministic whenever the multiset of increments
/// is (which every serial-phase metric in this repository guarantees).
class Counter {
 public:
  void add(long long delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Last-writer-wins instantaneous value (thread counts, configured sizes).
class Gauge {
 public:
  void set(long long v) { v_.store(v, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Power-of-two-bucket histogram for non-negative integer observations
/// (rounds per decode, messages per run, repair radii). Bucket upper bounds
/// are 1, 2, 4, ..., 2^(kBuckets-2), +Inf; counts are relaxed atomics, so
/// the same commutativity argument as Counter applies.
class Histogram {
 public:
  static constexpr int kBuckets = 22;  // le=1 .. le=2^20, +Inf

  void observe(long long x);
  long long count() const { return count_.load(std::memory_order_relaxed); }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Non-cumulative count of bucket `i` (upper bound = bound(i)).
  long long bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i; the last bucket is +Inf (returns -1).
  static long long bound(int i) {
    return i + 1 < kBuckets ? (1LL << i) : -1;
  }
  void reset();

 private:
  std::atomic<long long> buckets_[kBuckets] = {};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time scalar view of one metric (histograms expand to their
/// _sum and _count), used for bench-row snapshots and the summary table.
struct MetricValue {
  std::string name;
  long long value = 0;
};

/// Process-wide metric registry. Metrics are created on first lookup and
/// kept in registration order; the core catalog below is registered as one
/// block, so exports and snapshots are deterministically ordered no matter
/// which instrumentation point fires first.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // `thread_variant` marks a metric whose value legitimately depends on the
  // thread count (pool geometry, contract-check multiplicity under work
  // stealing). Everything else is covered by the §8 determinism contract:
  // byte-identical at any thread count. The flag is catalog data — the
  // determinism test and the exporters query it instead of each keeping a
  // private exclusion list.
  Counter& counter(const std::string& name, const std::string& help,
                   bool thread_variant = false);
  Gauge& gauge(const std::string& name, const std::string& help, bool thread_variant = false);
  Histogram& histogram(const std::string& name, const std::string& help,
                       bool thread_variant = false);

  /// True iff `name` is registered and flagged thread-variant.
  bool is_thread_variant(const std::string& name) const;
  /// All thread-variant metric names, in registration order.
  std::vector<std::string> thread_variant_names() const;
  /// All registered metric names (raw entry names, histograms without the
  /// _sum/_count expansion), in registration order. `lad lint` checks
  /// metric-name literals in instrumented code against this list.
  std::vector<std::string> names() const;

  /// Scalar values in registration order. Histograms contribute
  /// `<name>_sum` and `<name>_count`. `skip_zero` drops zero-valued entries
  /// (compact bench rows).
  std::vector<MetricValue> snapshot(bool skip_zero = false) const;

  /// Zeroes every registered metric (tests and per-case bench deltas).
  void reset();

  // Export surface (implemented in obs/export.cpp).
  std::string to_prometheus() const;
  std::string to_table(bool skip_zero = true) const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::string help;
    bool thread_variant = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get_or_create(MetricKind kind, const std::string& name, const std::string& help,
                       bool thread_variant);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// The core metric catalog, registered in one deterministic block on first
/// use (set_enabled(true) touches it). Units are in the help strings; the
/// full catalog with units is documented in DESIGN.md §9.
struct CoreMetrics {
  // LOCAL engine (local/engine.cpp): the message-complexity axis.
  Counter& engine_runs;
  Counter& engine_rounds;
  Counter& engine_messages;
  Counter& engine_message_bits;
  Counter& engine_messages_dropped;
  Counter& engine_messages_corrupted;
  Counter& engine_messages_duplicated;
  Counter& engine_messages_delayed;
  Counter& engine_crashed_nodes;
  Counter& engine_recovered_nodes;
  Histogram& engine_run_messages;

  // Ball gather + §8 canonical-view memo (local/gather.cpp).
  Counter& gather_balls;
  Counter& gather_cache_hits;
  Counter& gather_cache_misses;

  // Pipeline registry (core/pipeline.cpp): the advice/rounds axes.
  Counter& pipeline_encodes;
  Counter& pipeline_decodes;
  Counter& pipeline_verifies;
  Counter& pipeline_decode_rounds;
  Counter& advice_bits_written;
  Counter& advice_bits_read;
  Histogram& decode_rounds;

  // Guarded decoding + fault campaigns (faults/).
  Counter& guard_detections;
  Counter& repaired_nodes;
  Counter& degraded_nodes;
  Counter& flagged_nodes;
  Counter& repair_regions;
  Counter& repair_escalations;
  Counter& repair_retries;
  Counter& repair_budget_exhausted;
  Counter& repair_deadline_exhausted;
  Histogram& repair_region_radius;
  Counter& campaign_trials;
  Counter& campaign_faults_injected;
  Counter& chaos_cells;

  // Allocation accounting for the profiler (obs/profile.*): heap traffic
  // on the two hot paths ROADMAP item 2 targets — per-round message
  // buffers that outgrow SSO (local/engine.cpp) and serialized ball
  // gathers (local/gather.cpp). Counted at the call sites, not via
  // allocator hooks, so the multisets are thread-count-invariant and the
  // counts stay under the §8 byte-identity determinism contract.
  Counter& alloc_msgbuf;
  Counter& alloc_msgbuf_bytes;
  Counter& alloc_gather;
  Counter& alloc_gather_bytes;

  // Execution substrate (util/thread_pool.cpp) + contracts.
  Counter& pool_chunks;
  Gauge& pool_threads;
  Counter& contract_checks;

  // Timeline observatory (obs/timeline.*, DESIGN.md §14): per-round flight
  // recording plus pool dispatch/wait attribution. The round and dump
  // counters are deterministic (round counts are thread-count-invariant);
  // the dispatch/wait timings are wall-clock sums and thread-variant.
  Counter& timeline_rounds;
  Counter& flight_dumps;
  Counter& pool_dispatches;
  Counter& pool_dispatch_us;
  Counter& pool_barrier_wait_us;
  Counter& pool_queue_us;
};

CoreMetrics& core();

/// The span-name catalog: every name LAD_TM_SPAN may use. Entries ending in
/// '/' are prefixes for composed names (e.g. "pipeline.decode/" +
/// pipeline name). Like the metric catalog it is the single source of
/// truth `lad lint` checks span literals against, so adding a span site
/// means adding its name here (and to DESIGN.md §9).
const std::vector<std::string>& span_name_catalog();

// ---------------------------------------------------------------------------
// Span tracing

/// One begin ('B') or end ('E') event, Chrome trace_event flavored.
struct TraceEvent {
  std::string name;
  const char* cat = "lad";
  std::uint64_t ts_us = 0;  // microseconds since process trace epoch
  char phase = 'B';
};

/// Process-wide trace collector. Spans append to a per-thread buffer (one
/// uncontended mutex each); export after parallel work has joined — the
/// thread-pool barrier orders all appends before the caller's read. A
/// per-thread cap bounds memory; dropped spans are counted, never silent
/// (the cap drops whole B/E pairs, so balance is preserved).
class TraceRecorder {
 public:
  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  static TraceRecorder& instance();

  /// Forgets all recorded events (thread ids are kept). Do not call while
  /// spans are open.
  void clear();

  /// Total events currently buffered / events dropped to the cap.
  std::size_t event_count() const;
  long long dropped() const;

  /// Events grouped by thread id (ascending), in per-thread record order.
  std::vector<std::pair<int, std::vector<TraceEvent>>> events_by_thread() const;

  /// Labels the calling thread's buffer ("lad-main", "lad-pool-0", ...).
  /// Survives clear(); exported as Chrome `thread_name` metadata events and
  /// used by the profiler's per-thread rows. Unlike span recording this is
  /// not gated on enabled() — it runs once per thread and must stick even
  /// when the thread starts before telemetry is switched on.
  void name_thread(const std::string& name);

  /// (tid, name) pairs for every named thread, tid ascending.
  std::vector<std::pair<int, std::string>> thread_names() const;

  /// Trace thread id of the calling thread (allocating one on first use) —
  /// lets pool accounting attribute slots to the same ids the trace uses.
  int current_tid();

  // Export surface (implemented in obs/export.cpp).
  std::string to_chrome_json() const;
  std::string to_jsonl() const;

  void record(char phase, const std::string& name, const char* cat);

 private:
  struct ThreadBuf {
    int tid = 0;
    std::string name;  // empty until name_thread(); guarded by `mu`
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    long long dropped = 0;
    int open_dropped = 0;  // B events dropped whose E must be dropped too
  };

  ThreadBuf& local_buf();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  int next_tid_ = 0;
};

/// Microseconds since the process trace epoch (steady clock; monotone
/// within a thread, which the Chrome trace format requires).
std::uint64_t trace_now_us();

/// RAII span: records B at construction and E at destruction into the
/// current thread's buffer. Inactive (and nearly free) while telemetry is
/// runtime-disabled; spans must begin and end on the same thread (RAII
/// guarantees it).
class Span {
 public:
  explicit Span(std::string name, const char* cat = "lad");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  const char* cat_ = nullptr;
  bool active_ = false;
};

}  // namespace lad::obs

// ---------------------------------------------------------------------------
// Hook macros: the only things instrumented code should touch. All of them
// compile to empty statements under -DLAD_TELEMETRY=OFF and to a single
// relaxed load + branch when runtime-disabled.

#if LAD_TELEMETRY
/// Runs `stmt` only when telemetry is runtime-enabled.
#define LAD_TM(stmt)                \
  do {                              \
    if (::lad::obs::enabled()) {    \
      stmt;                         \
    }                               \
  } while (0)
/// Declares an RAII span named `var` (inactive when runtime-disabled).
#define LAD_TM_SPAN(var, name, cat) ::lad::obs::Span var((name), (cat))
/// Labels the calling thread in trace exports and profile reports. Compile
/// gated only (not on enabled()): it runs once per thread and the label
/// must stick even when the thread starts before telemetry is enabled.
#define LAD_TM_THREAD_NAME(name) ::lad::obs::TraceRecorder::instance().name_thread(name)
/// Contract-check accounting hook used by util/contracts.hpp.
#define LAD_TM_COUNT_CONTRACT()                               \
  do {                                                        \
    if (::lad::obs::enabled()) {                              \
      ::lad::obs::core().contract_checks.add(1);              \
    }                                                         \
  } while (0)
#else
#define LAD_TM(stmt) \
  do {               \
  } while (0)
#define LAD_TM_SPAN(var, name, cat) ((void)0)
#define LAD_TM_THREAD_NAME(name) ((void)0)
#define LAD_TM_COUNT_CONTRACT() \
  do {                          \
  } while (0)
#endif
