#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json_mini.hpp"

namespace lad::obs {
namespace {

using jsonmini::JsonParser;
using jsonmini::JsonValue;
using jsonmini::json_escape;
using jsonmini::num_field;
using jsonmini::str_field;

std::string fmt3(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt1(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

double us_to_ms(long long us) { return static_cast<double>(us) / 1000.0; }

int phase_rank(const std::string& phase) {
  const auto& tax = phase_taxonomy();
  for (std::size_t i = 0; i < tax.size(); ++i) {
    if (tax[i] == phase) return static_cast<int>(i);
  }
  return static_cast<int>(tax.size());
}

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// splitmix64 (Steele–Lea–Flood): self-contained so obs stays stdlib-only.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const std::vector<std::string>& phase_taxonomy() {
  static const std::vector<std::string> kPhases = {
      "gather", "compute", "message-exchange", "fault-transition", "verify", "other",
  };
  return kPhases;
}

std::string phase_of_span(const std::string& span_name) {
  // The mapping is total over span_name_catalog(); tests pin that every
  // catalog entry lands in a non-"other" phase unless listed as harness
  // scaffolding (engine.run/round, campaign/chaos wrappers, pool chunks
  // outside compute are impossible — chunks only run compute work).
  if (has_prefix(span_name, "gather.")) return "gather";
  if (span_name == "engine.compute" || span_name == "pool.chunk" ||
      has_prefix(span_name, "pipeline.encode/") || has_prefix(span_name, "pipeline.decode/") ||
      has_prefix(span_name, "pipeline.decode_tolerant/")) {
    return "compute";
  }
  if (span_name == "engine.deliver") return "message-exchange";
  if (span_name == "engine.faults") return "fault-transition";
  if (has_prefix(span_name, "pipeline.verify/") || has_prefix(span_name, "guarded.decode/")) {
    return "verify";
  }
  return "other";
}

// ---------------------------------------------------------------------------
// PoolAccounting

struct PoolAccounting::SlotCell {
  int tid = -1;
  std::atomic<long long> busy_us{0};
  std::atomic<long long> chunks{0};
};

PoolAccounting& PoolAccounting::instance() {
  static PoolAccounting acc;
  return acc;
}

PoolAccounting::SlotCell& PoolAccounting::local_slot() {
  thread_local std::shared_ptr<SlotCell> cell;
  if (!cell) {
    cell = std::make_shared<SlotCell>();
    cell->tid = TraceRecorder::instance().current_tid();
    std::lock_guard<std::mutex> lk(mu_);
    cells_.push_back(cell);
  }
  return *cell;
}

void PoolAccounting::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& c : cells_) {
    c->busy_us.store(0, std::memory_order_relaxed);
    c->chunks.store(0, std::memory_order_relaxed);
  }
}

void PoolAccounting::record_chunk(std::uint64_t dur_us) {
  SlotCell& c = local_slot();
  c.busy_us.fetch_add(static_cast<long long>(dur_us), std::memory_order_relaxed);
  c.chunks.fetch_add(1, std::memory_order_relaxed);
}

std::vector<PoolAccounting::Slot> PoolAccounting::slots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Slot> out;
  for (const auto& c : cells_) {
    const long long chunks = c->chunks.load(std::memory_order_relaxed);
    if (chunks == 0) continue;
    out.push_back({c->tid, c->busy_us.load(std::memory_order_relaxed), chunks});
  }
  std::sort(out.begin(), out.end(), [](const Slot& a, const Slot& b) { return a.tid < b.tid; });
  return out;
}

ChunkTimer::ChunkTimer() {
  if (!enabled()) return;
  active_ = true;
  begin_us_ = trace_now_us();
}

ChunkTimer::~ChunkTimer() {
  if (active_) PoolAccounting::instance().record_chunk(trace_now_us() - begin_us_);
}

// ---------------------------------------------------------------------------
// Self-time attribution

std::map<std::pair<std::string, int>, CellAccum> self_times_by_cell(
    const std::vector<std::pair<int, std::vector<TraceEvent>>>& events_by_thread) {
  std::map<std::pair<std::string, int>, CellAccum> out;
  struct Frame {
    const std::string* name;
    std::uint64_t begin_us;
    long long child_us;
  };
  for (const auto& [tid, events] : events_by_thread) {
    std::vector<Frame> stack;
    for (const TraceEvent& ev : events) {
      if (ev.phase == 'B') {
        stack.push_back({&ev.name, ev.ts_us, 0});
        continue;
      }
      if (ev.phase != 'E' || stack.empty()) continue;  // foreign or unbalanced
      const Frame f = stack.back();
      stack.pop_back();
      const long long total_us = static_cast<long long>(ev.ts_us - f.begin_us);
      const long long self_us = std::max(0LL, total_us - f.child_us);
      CellAccum& cell = out[{phase_of_span(*f.name), tid}];
      cell.self_us += self_us;
      cell.spans += 1;
      if (!stack.empty()) stack.back().child_us += total_us;
    }
    // Spans still open at snapshot time are dropped, not guessed at.
  }
  return out;
}

std::string top_phase_from_trace() {
  const auto cells = self_times_by_cell(TraceRecorder::instance().events_by_thread());
  if (cells.empty()) return {};
  std::map<std::string, long long> by_phase;
  for (const auto& [key, acc] : cells) by_phase[key.first] += acc.self_us;
  std::string best;
  long long best_us = -1;
  for (const std::string& phase : phase_taxonomy()) {  // taxonomy order breaks ties
    const auto it = by_phase.find(phase);
    const long long us = it == by_phase.end() ? 0 : it->second;
    if (us > best_us) {
      best = phase;
      best_us = us;
    }
  }
  return best_us > 0 ? best : std::string{};
}

// ---------------------------------------------------------------------------
// Report assembly

ProfileReport build_profile_report(
    const ProfileIdentity& id, const std::vector<PhaseAlloc>& phase_allocs,
    const std::vector<std::pair<int, std::vector<TraceEvent>>>& events_by_thread,
    const std::vector<PoolAccounting::Slot>& pool_slots,
    const std::vector<std::pair<int, std::string>>& thread_names, int threads, int reps,
    double total_ms) {
  ProfileReport rep;
  rep.id = id;
  rep.phase_allocs = phase_allocs;
  rep.threads = threads;
  rep.reps = reps;
  rep.total_ms = total_ms;

  const auto cells = self_times_by_cell(events_by_thread);
  long long total_self_us = 0;
  for (const auto& [key, acc] : cells) total_self_us += acc.self_us;

  std::map<std::string, CellAccum> by_phase;
  for (const auto& [key, acc] : cells) {
    CellAccum& p = by_phase[key.first];
    p.self_us += acc.self_us;
    p.spans += acc.spans;
    rep.cells.push_back({key.first, key.second, us_to_ms(acc.self_us), acc.spans});
  }
  std::sort(rep.cells.begin(), rep.cells.end(), [](const ProfileCell& a, const ProfileCell& b) {
    if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
    if (a.phase != b.phase) return phase_rank(a.phase) < phase_rank(b.phase);
    return a.tid < b.tid;
  });

  for (const std::string& phase : phase_taxonomy()) {
    const auto it = by_phase.find(phase);
    if (it == by_phase.end()) continue;
    const double pct = total_self_us > 0
                           ? 100.0 * static_cast<double>(it->second.self_us) /
                                 static_cast<double>(total_self_us)
                           : 0.0;
    rep.phases.push_back({phase, us_to_ms(it->second.self_us), pct, it->second.spans});
  }
  std::sort(rep.phases.begin(), rep.phases.end(), [](const PhaseTime& a, const PhaseTime& b) {
    if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
    return phase_rank(a.phase) < phase_rank(b.phase);
  });

  // Thread rows: one per pool slot plus any traced-but-chunkless thread.
  long long total_chunks = 0;
  for (const auto& s : pool_slots) total_chunks += s.chunks;
  const long long workers = static_cast<long long>(pool_slots.size());
  const long long fair_share = workers > 0 ? (total_chunks + workers - 1) / workers : 0;
  const auto name_of = [&thread_names](int tid) -> std::string {
    for (const auto& [t, n] : thread_names) {
      if (t == tid) return n;
    }
    return {};
  };
  std::vector<int> tids;
  for (const auto& s : pool_slots) tids.push_back(s.tid);
  for (const auto& [tid, events] : events_by_thread) {
    (void)events;
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) tids.push_back(tid);
  }
  std::sort(tids.begin(), tids.end());
  for (const int tid : tids) {
    ProfileThread row;
    row.tid = tid;
    row.name = name_of(tid);
    for (const auto& s : pool_slots) {
      if (s.tid != tid) continue;
      row.busy_ms = us_to_ms(s.busy_us);
      row.chunks = s.chunks;
      row.steal = std::max(0LL, s.chunks - fair_share);
    }
    row.idle_ms = std::max(0.0, total_ms - row.busy_ms);
    rep.thread_rows.push_back(row);
  }

  // Imbalance: max busy / mean busy across workers that executed chunks.
  if (workers >= 2) {
    long long max_busy = 0;
    long long sum_busy = 0;
    for (const auto& s : pool_slots) {
      max_busy = std::max(max_busy, s.busy_us);
      sum_busy += s.busy_us;
    }
    const double mean = static_cast<double>(sum_busy) / static_cast<double>(workers);
    rep.imbalance = mean > 0 ? static_cast<double>(max_busy) / mean : 1.0;
  }

  for (const auto& [tid, events] : events_by_thread) {
    (void)tid;
    rep.trace_events += static_cast<long long>(events.size());
  }
  rep.trace_dropped = TraceRecorder::instance().dropped();
  return rep;
}

std::string fingerprint_hex(const std::vector<std::string>& parts) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::string& p : parts) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(p.size()));
    for (const char c : p) {
      h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

// ---------------------------------------------------------------------------
// JSON

std::string ProfileReport::deterministic_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "    \"profile_schema_version\": " << kProfileSchemaVersion << ",\n";
  os << "    \"pipeline\": \"" << json_escape(id.pipeline) << "\",\n";
  os << "    \"source\": \"" << json_escape(id.source) << "\",\n";
  os << "    \"graph_digest\": \"" << json_escape(id.graph_digest) << "\",\n";
  os << "    \"n\": " << id.n << ",\n";
  os << "    \"m\": " << id.m << ",\n";
  os << "    \"seed\": " << id.seed << ",\n";
  os << "    \"decode_rounds\": " << id.decode_rounds << ",\n";
  os << "    \"verify_ok\": " << (id.verify_ok ? "true" : "false") << ",\n";
  os << "    \"output_digest\": \"" << json_escape(id.output_digest) << "\",\n";
  os << "    \"advice_bits\": " << id.advice_bits << ",\n";
  os << "    \"engine_messages\": " << id.engine_messages << ",\n";
  os << "    \"engine_message_bits\": " << id.engine_message_bits << ",\n";
  os << "    \"phases\": [\n";
  for (std::size_t i = 0; i < phase_allocs.size(); ++i) {
    const PhaseAlloc& p = phase_allocs[i];
    os << "      {\"phase\": \"" << json_escape(p.phase) << "\", \"allocs\": " << p.allocs
       << ", \"alloc_bytes\": " << p.alloc_bytes << "}" << (i + 1 < phase_allocs.size() ? "," : "")
       << "\n";
  }
  os << "    ]\n";
  os << "  }";
  return os.str();
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"deterministic\": " << deterministic_json() << ",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"git_commit\": \"" << json_escape(git_commit) << "\",\n";
  os << "  \"timestamp\": \"" << json_escape(timestamp) << "\",\n";
  os << "  \"measured\": {\n";
  os << "    \"total_ms\": " << fmt3(total_ms) << ",\n";
  os << "    \"imbalance\": " << fmt2(imbalance) << ",\n";
  os << "    \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseTime& p = phases[i];
    os << "      {\"phase\": \"" << json_escape(p.phase) << "\", \"self_ms\": " << fmt3(p.self_ms)
       << ", \"pct\": " << fmt1(p.pct) << ", \"spans\": " << p.spans << "}"
       << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  os << "    ],\n";
  os << "    \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ProfileCell& c = cells[i];
    os << "      {\"phase\": \"" << json_escape(c.phase) << "\", \"tid\": " << c.tid
       << ", \"self_ms\": " << fmt3(c.self_ms) << ", \"spans\": " << c.spans << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "    ],\n";
  os << "    \"threads\": [\n";
  for (std::size_t i = 0; i < thread_rows.size(); ++i) {
    const ProfileThread& t = thread_rows[i];
    os << "      {\"tid\": " << t.tid << ", \"name\": \"" << json_escape(t.name)
       << "\", \"busy_ms\": " << fmt3(t.busy_ms) << ", \"idle_ms\": " << fmt3(t.idle_ms)
       << ", \"chunks\": " << t.chunks << ", \"steal\": " << t.steal << "}"
       << (i + 1 < thread_rows.size() ? "," : "") << "\n";
  }
  os << "    ],\n";
  os << "    \"trace_events\": " << trace_events << ",\n";
  os << "    \"trace_dropped\": " << trace_dropped << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Markdown

std::string ProfileReport::to_markdown() const {
  std::ostringstream os;
  os << "# PERF — profiling observatory report\n\n";
  os << "Generated by `lad profile`; do not edit by hand. Timings are measured\n"
        "on the build machine; every other field is deterministic and must be\n"
        "byte-identical across reruns and thread counts (DESIGN.md §13).\n\n";
  os << "- pipeline: `" << id.pipeline << "`\n";
  os << "- source: `" << id.source << "` (n=" << id.n << ", m=" << id.m << ", digest `"
     << id.graph_digest << "`)\n";
  os << "- seed: " << id.seed << " · threads: " << threads << " · reps: " << reps << "\n";
  os << "- verify: " << (id.verify_ok ? "ok" : "FAILED") << " · output digest: `"
     << id.output_digest << "` · decode rounds: " << id.decode_rounds << "\n";
  os << "- advice bits: " << id.advice_bits << " · engine messages: " << id.engine_messages
     << " (" << id.engine_message_bits << " bits)\n";
  os << "- total wall: " << fmt3(total_ms) << " ms (min of " << reps
     << ") · imbalance: " << fmt2(imbalance) << "\n";
  os << "- trace: " << trace_events << " events, " << trace_dropped << " dropped\n\n";

  os << "## Top time sinks\n\n";
  const std::size_t top = std::min<std::size_t>(3, phases.size());
  for (std::size_t i = 0; i < top; ++i) {
    const PhaseTime& p = phases[i];
    os << (i + 1) << ". **" << p.phase << "** — " << fmt3(p.self_ms) << " ms self ("
       << fmt1(p.pct) << "%), " << p.spans << " spans\n";
  }
  if (top == 0) os << "(no spans recorded)\n";
  os << "\n";

  os << "## Phase totals\n\n";
  os << "| phase | self_ms | % | spans | allocs | alloc_bytes |\n";
  os << "|---|---:|---:|---:|---:|---:|\n";
  const auto alloc_of = [this](const std::string& phase) -> const PhaseAlloc* {
    for (const auto& a : phase_allocs) {
      if (a.phase == phase) return &a;
    }
    return nullptr;
  };
  for (const PhaseTime& p : phases) {
    const PhaseAlloc* a = alloc_of(p.phase);
    os << "| " << p.phase << " | " << fmt3(p.self_ms) << " | " << fmt1(p.pct) << " | " << p.spans
       << " | " << (a != nullptr ? a->allocs : 0) << " | " << (a != nullptr ? a->alloc_bytes : 0)
       << " |\n";
  }
  // Phases with allocations but no measured self-time still matter.
  for (const PhaseAlloc& a : phase_allocs) {
    const bool timed = std::any_of(phases.begin(), phases.end(),
                                   [&a](const PhaseTime& p) { return p.phase == a.phase; });
    if (!timed && (a.allocs != 0 || a.alloc_bytes != 0)) {
      os << "| " << a.phase << " | 0.000 | 0.0 | 0 | " << a.allocs << " | " << a.alloc_bytes
         << " |\n";
    }
  }
  os << "\n";

  os << "## Cost centers (phase × thread)\n\n";
  os << "| rank | phase | tid | thread | self_ms | spans |\n";
  os << "|---:|---|---:|---|---:|---:|\n";
  const auto name_of = [this](int tid) -> std::string {
    for (const auto& t : thread_rows) {
      if (t.tid == tid && !t.name.empty()) return t.name;
    }
    return "-";
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ProfileCell& c = cells[i];
    os << "| " << (i + 1) << " | " << c.phase << " | " << c.tid << " | " << name_of(c.tid)
       << " | " << fmt3(c.self_ms) << " | " << c.spans << " |\n";
  }
  os << "\n";

  os << "## Threads\n\n";
  os << "| tid | name | busy_ms | idle_ms | chunks | steal |\n";
  os << "|---:|---|---:|---:|---:|---:|\n";
  for (const ProfileThread& t : thread_rows) {
    os << "| " << t.tid << " | " << (t.name.empty() ? "-" : t.name) << " | " << fmt3(t.busy_ms)
       << " | " << fmt3(t.idle_ms) << " | " << t.chunks << " | " << t.steal << " |\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// diffprof

ProfDoc parse_profile_json(const std::string& text) {
  const JsonValue root = JsonParser(text, "profile JSON").parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("profile JSON: top level is not an object");
  }
  const JsonValue* det = root.find("deterministic");
  if (det == nullptr || det->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("profile JSON: missing \"deterministic\" object");
  }
  ProfDoc doc;
  doc.schema_version = static_cast<int>(num_field(*det, "profile_schema_version", true));
  if (doc.schema_version < 1 || doc.schema_version > kProfileSchemaVersion) {
    throw std::runtime_error("profile JSON: unsupported profile_schema_version " +
                             std::to_string(doc.schema_version));
  }
  doc.pipeline = str_field(*det, "pipeline", true);
  doc.source = str_field(*det, "source", true);
  doc.graph_digest = str_field(*det, "graph_digest", true);
  doc.n = static_cast<long long>(num_field(*det, "n", true));
  doc.m = static_cast<long long>(num_field(*det, "m", true));
  doc.seed = static_cast<long long>(num_field(*det, "seed", true));
  doc.decode_rounds = static_cast<long long>(num_field(*det, "decode_rounds", true));
  const JsonValue* ok = det->find("verify_ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    throw std::runtime_error("profile JSON: missing boolean \"verify_ok\"");
  }
  doc.verify_ok = ok->boolean;
  doc.output_digest = str_field(*det, "output_digest", true);
  doc.advice_bits = static_cast<long long>(num_field(*det, "advice_bits", true));
  doc.engine_messages = static_cast<long long>(num_field(*det, "engine_messages", true));
  doc.engine_message_bits = static_cast<long long>(num_field(*det, "engine_message_bits", true));
  const JsonValue* phases = det->find("phases");
  if (phases == nullptr || phases->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("profile JSON: missing \"phases\" array");
  }
  for (const JsonValue& p : phases->array) {
    if (p.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("profile JSON: phase entry is not an object");
    }
    PhaseAlloc row;
    row.phase = str_field(p, "phase", true);
    row.allocs = static_cast<long long>(num_field(p, "allocs", true));
    row.alloc_bytes = static_cast<long long>(num_field(p, "alloc_bytes", true));
    doc.phase_allocs.push_back(std::move(row));
  }
  doc.threads = static_cast<int>(num_field(root, "threads", /*required=*/false, 1));
  if (const JsonValue* meas = root.find("measured");
      meas != nullptr && meas->kind == JsonValue::Kind::kObject) {
    doc.total_ms = num_field(*meas, "total_ms", /*required=*/false, 0);
  }
  return doc;
}

DiffStatus ProfDiffResult::status() const {
  DiffStatus worst = DiffStatus::kClean;
  for (const auto& d : diffs) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

std::string ProfDiffResult::to_text() const {
  std::ostringstream os;
  if (diffs.empty()) {
    os << "diffprof: clean\n";
    return os.str();
  }
  for (const auto& d : diffs) {
    os << (d.severity == DiffStatus::kRegression ? "REGRESSION" : "MISMATCH") << " ["
       << d.field << "]: " << d.detail << "\n";
  }
  os << "diffprof: " << diffs.size() << " finding(s), exit " << static_cast<int>(status())
     << "\n";
  return os.str();
}

std::string ProfDiffResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"exit\": " << static_cast<int>(status()) << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const auto& d = diffs[i];
    os << "    {\"field\": \"" << json_escape(d.field) << "\", \"severity\": "
       << (d.severity == DiffStatus::kRegression ? "\"regression\"" : "\"mismatch\"")
       << ", \"detail\": \"" << json_escape(d.detail) << "\"}"
       << (i + 1 < diffs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

ProfDiffResult diff_profile(const ProfDoc& baseline, const ProfDoc& candidate,
                            const BenchDiffOptions& opts) {
  ProfDiffResult res;
  auto mismatch = [&res](const std::string& field, const std::string& detail) {
    res.diffs.push_back({"", field, detail, DiffStatus::kMismatch});
  };
  auto exact_str = [&](const char* field, const std::string& b, const std::string& c) {
    if (b != c) mismatch(field, "baseline '" + b + "' != candidate '" + c + "'");
  };
  auto exact_num = [&](const char* field, long long b, long long c) {
    if (b != c) {
      mismatch(field, "baseline " + std::to_string(b) + " != candidate " + std::to_string(c));
    }
  };

  exact_str("pipeline", baseline.pipeline, candidate.pipeline);
  exact_str("source", baseline.source, candidate.source);
  exact_str("graph_digest", baseline.graph_digest, candidate.graph_digest);
  exact_num("n", baseline.n, candidate.n);
  exact_num("m", baseline.m, candidate.m);
  exact_num("seed", baseline.seed, candidate.seed);
  exact_num("decode_rounds", baseline.decode_rounds, candidate.decode_rounds);
  if (baseline.verify_ok != candidate.verify_ok) {
    mismatch("verify_ok", std::string("baseline ") + (baseline.verify_ok ? "true" : "false") +
                              " != candidate " + (candidate.verify_ok ? "true" : "false"));
  }
  exact_str("output_digest", baseline.output_digest, candidate.output_digest);
  exact_num("advice_bits", baseline.advice_bits, candidate.advice_bits);
  exact_num("engine_messages", baseline.engine_messages, candidate.engine_messages);
  exact_num("engine_message_bits", baseline.engine_message_bits, candidate.engine_message_bits);

  // Phase allocation rows: compared by phase name, both directions.
  const auto find_phase = [](const ProfDoc& doc, const std::string& phase) -> const PhaseAlloc* {
    for (const auto& p : doc.phase_allocs) {
      if (p.phase == phase) return &p;
    }
    return nullptr;
  };
  for (const auto& bp : baseline.phase_allocs) {
    const PhaseAlloc* cp = find_phase(candidate, bp.phase);
    if (cp == nullptr) {
      mismatch("phases", "phase '" + bp.phase + "' missing from candidate");
      continue;
    }
    if (bp.allocs != cp->allocs || bp.alloc_bytes != cp->alloc_bytes) {
      mismatch("phases." + bp.phase,
               "allocs baseline " + std::to_string(bp.allocs) + "/" +
                   std::to_string(bp.alloc_bytes) + "B != candidate " +
                   std::to_string(cp->allocs) + "/" + std::to_string(cp->alloc_bytes) + "B");
    }
  }
  for (const auto& cp : candidate.phase_allocs) {
    if (find_phase(baseline, cp.phase) == nullptr) {
      mismatch("phases", "phase '" + cp.phase + "' missing from baseline");
    }
  }

  // Timing gate on end-to-end wall time, mirroring diff_bench's slack.
  const double allowed =
      baseline.total_ms + std::max(opts.tol_ms, opts.tol_rel * baseline.total_ms);
  if (candidate.total_ms > allowed) {
    res.diffs.push_back({"", "total_ms",
                         "candidate " + fmt3(candidate.total_ms) + " ms exceeds baseline " +
                             fmt3(baseline.total_ms) + " ms + tolerance (allowed " +
                             fmt3(allowed) + " ms)",
                         DiffStatus::kRegression});
  }
  return res;
}

}  // namespace lad::obs
