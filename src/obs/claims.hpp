// Claims observatory: machine-readable paper claims per pipeline, and the
// n-sweep conformance check behind `lad verify-claims` / `lad report`
// (DESIGN.md §9.6).
//
// The paper's results are asymptotic statements — "T(Δ) decode rounds
// independent of n", "1 bit of advice per node", "arbitrarily sparse
// advice" — that until this layer lived only in prose (EXPERIMENTS.md
// tables read by a human). The observatory closes that loop:
//
//   * every Pipeline declares its claims through Pipeline::claims()
//     (growth classes of rounds / bits-per-node / ones-ratio versus n,
//     plus optional absolute ceilings), so registering a pipeline
//     registers its claims — the claim registry is assembled from
//     pipelines() and cannot drift from it;
//   * run_claim_sweep() drives the real encode → decode → verify stack
//     over an n-sweep of make_instance() graphs and records the measured
//     series;
//   * check_pipeline_claims() classifies each series with the scaling-law
//     fitter (obs/fit.hpp) and compares against the declared class, plus
//     pointwise bound checks; verify() failing at any sweep point fails
//     the claim outright.
//
// Lives in lad_claims (needs the Pipeline registry, which lad_obs must not
// depend on); fit/benchdiff stay stdlib-only in lad_obs underneath.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/source.hpp"
#include "obs/fit.hpp"

namespace lad::obs {

/// One measured point of a pipeline n-sweep (the real stack, not a model):
/// instance size, decode rounds, and Definition 2/3 advice accounting.
struct SweepPoint {
  int n = 0;
  int m = 0;
  int rounds = 0;
  double bits_per_node = 0;
  long long total_bits = 0;
  /// Definition 3 sparsity (ones / n); only meaningful for kUniformBits.
  double ones_ratio = 0;
  bool verified = false;
};

/// One checked claim: a measured series against its declared growth class
/// or absolute bound.
struct ClaimCheck {
  std::string metric;       // "rounds", "bits_per_node", "ones_ratio", ...
  std::string expected;     // declared class or bound, printable
  std::string observed;     // FitResult::to_string() or worst observed value
  bool pass = false;
  FitResult fit;            // populated for growth-class checks
};

struct PipelineClaimReport {
  std::string name;
  std::string section;
  std::string statement;
  std::vector<SweepPoint> points;
  std::vector<ClaimCheck> checks;

  bool pass() const;
};

struct ClaimsReport {
  std::string git_commit;
  std::string timestamp;
  std::vector<double> sweep_ns;
  std::vector<PipelineClaimReport> pipelines;

  bool pass() const;
  std::string to_text() const;
  std::string to_json() const;
  /// EXPERIMENTS-generated.md: the `lad report` body — per-pipeline claim
  /// tables with PASS/FAIL verdicts, regenerable from source.
  std::string to_markdown() const;
};

/// The default sweep: large enough that linear/sqrt escapes would be
/// unmistakable, small enough that the full six-pipeline sweep stays in
/// smoke-test territory.
std::vector<int> default_sweep_ns();

/// Runs one pipeline's real encode/decode/verify over the sweep.
/// Instance configs come from Pipeline::sweep_config(n) with cfg.seed
/// derived from `seed` so the sweep is deterministic.
std::vector<SweepPoint> run_claim_sweep(const Pipeline& p, const std::vector<int>& ns,
                                        std::uint64_t seed = 1);

/// Like run_claim_sweep, but the sweep points are explicit GraphSources
/// (generated families, .ladg files, or edge lists) instead of
/// make_instance sizes — the path by which imported graphs feed the
/// scaling-law fitter. The graphs must satisfy p.graph_requirements();
/// as with generated sweeps, verify() is the gate that catches mismatches.
std::vector<SweepPoint> run_claim_sweep_sources(const Pipeline& p,
                                                const std::vector<GraphSource>& sources,
                                                std::uint64_t seed = 1);

/// Fits the measured series and checks them against p.claims().
PipelineClaimReport check_pipeline_claims(const Pipeline& p, const std::vector<SweepPoint>& points,
                                          const FitOptions& opts = {});

/// The whole observatory: sweep + check for every registered pipeline
/// (or only `family`, by registry name, when non-empty). With
/// `extend_sweeps` set (the no---ns CLI default), each pipeline may grow
/// the base sweep through Pipeline::sweep_ns so its fits span more
/// decades of n; with explicit sizes the caller's list is used verbatim.
ClaimsReport verify_claims(const std::vector<int>& ns, const std::string& family = "",
                           std::uint64_t seed = 1, bool extend_sweeps = false);

/// The observatory over explicit graph sources (`lad verify-claims
/// --graphs`): one sweep point per source, checked against the claims of
/// the single pipeline named by `family` (required — arbitrary imported
/// graphs cannot satisfy every pipeline's instance preconditions).
/// Needs at least 3 sources, the fitter's minimum.
ClaimsReport verify_claims_sources(const std::vector<GraphSource>& sources,
                                   const std::string& family, std::uint64_t seed = 1);

}  // namespace lad::obs
