// Runtime timeline observatory (DESIGN.md §14): per-round time-series,
// wait/barrier attribution, and Amdahl/critical-path analysis on top of the
// §9 Span/MetricsRegistry machinery and the §13 profile conventions.
//
// Three ingredients, all compiled out under -DLAD_TELEMETRY=OFF:
//
//   1. *Flight recorder.* local/engine.cpp marks every round
//      (begin_run/begin_round/end_round); the recorder turns the engine's
//      cumulative per-run counters into per-round deltas and stores them in
//      a bounded ring buffer. Each sample carries a deterministic slice
//      (messages, bytes, faults injected, repairs, message-buffer
//      allocation deltas — byte-identical across reruns and thread counts
//      by the §8 contract) and a measured slice (round wall time, pool
//      dispatch latency, per-worker barrier wait, chunk queueing delay,
//      imbalance, critical worker). On a failed chaos cell the ring is
//      dumped post-mortem to stderr (faults/chaos.cpp).
//   2. *Wait accounting.* util/thread_pool.cpp brackets every parallel
//      dispatch (begin_dispatch/end_dispatch) and timestamps every chunk
//      (LAD_TM_WAIT_TIMER); WaitAccounting folds them into per-dispatch
//      dispatch latency (enqueue -> first chunk start), per-chunk queueing
//      delay, and per-worker barrier wait (own last chunk end -> barrier
//      release). The serial inline path (threads <= 1) never opens a
//      dispatch window, so it reports exactly zero waits.
//   3. *Amdahl analyzer.* The six-phase taxonomy of §13 splits traced
//      self-time into parallelizable compute vs serial sections (deliver,
//      fault transitions, gather setup, verify, scaffolding). The serial
//      fraction measured at one thread feeds Amdahl's law for the
//      predicted max speedup at each thread count; per-round imbalance
//      (max busy / mean busy) names the critical worker.
//
// The report separates *deterministic structure* (identity + the per-round
// delta series — what `lad difftl` gates exactly, exit 4 on divergence)
// from *measured timings* (per-thread-count total/serial/wait series —
// compared only with tolerance, exit 3). Same split, same exit codes as
// obs/benchdiff.* and obs/profile.*.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/benchdiff.hpp"  // DiffStatus, CaseDiff, BenchDiffOptions
#include "obs/profile.hpp"    // ProfileIdentity, phase taxonomy
#include "obs/telemetry.hpp"

namespace lad::obs {

/// Bumped whenever the timeline JSON layout changes incompatibly.
/// v1: initial format — nested "deterministic" object + "measured" object.
inline constexpr int kTimelineSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Wait accounting

/// Folds pool dispatch/chunk timestamps into per-dispatch wait attribution.
/// One dispatch window is open at a time (ThreadPool::parallel_for is
/// non-reentrant and serializes dispatches through the pool lock); chunk
/// records outside a window — the serial inline path — are discarded, so
/// threads=1 reports zero dispatches and zero waits by construction.
class WaitAccounting {
 public:
  /// Aggregate of every dispatch since the last drain (one engine round
  /// performs one compute dispatch, so FlightRecorder drains per round).
  struct Window {
    long long dispatches = 0;
    long long dispatch_us = 0;  // sum of enqueue -> first chunk start
    long long queue_us = 0;     // sum over chunks of enqueue -> chunk start
    long long wait_us = 0;      // sum of per-worker barrier waits
    long long max_wait_us = 0;  // worst single worker barrier wait
    long long busy_us = 0;      // summed chunk execution time
    long long max_busy_us = 0;  // busiest worker's chunk execution time
    int workers = 0;            // most distinct workers in one dispatch
    int critical_tid = -1;      // trace tid of the busiest worker
  };

  static WaitAccounting& instance();

  /// Discards the open window and the folded aggregates (run boundary).
  void reset();

  /// Caller side, parallel path only: marks the enqueue instant.
  void begin_dispatch();
  /// Caller side, after the completion barrier: closes the window, folding
  /// per-worker first-start/last-end into the aggregates. No-op when no
  /// window is open (telemetry enabled mid-dispatch).
  void end_dispatch();

  /// Worker side (WaitChunkTimer): one executed chunk [start_us, end_us].
  /// Discarded when no dispatch window is open.
  void record_chunk(std::uint64_t start_us, std::uint64_t end_us);

  /// Returns the folded aggregates and zeroes them (round boundary).
  Window drain_window();

 private:
  struct WorkerCell;
  WorkerCell& local_cell();
  void fold_open_window_locked(std::uint64_t now_us);

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<WorkerCell>> cells_;
  std::atomic<std::uint64_t> epoch_{0};     // dispatch id; cells self-reset on change
  std::atomic<std::uint64_t> begin_us_{0};  // enqueue instant of the open dispatch
  std::atomic<bool> open_{false};
  Window window_;
};

/// RAII chunk timer feeding WaitAccounting: measures one pool chunk's
/// [start, end]. Inactive while telemetry is runtime-disabled (latched at
/// construction, like Span and ChunkTimer).
class WaitChunkTimer {
 public:
  WaitChunkTimer();
  ~WaitChunkTimer();
  WaitChunkTimer(const WaitChunkTimer&) = delete;
  WaitChunkTimer& operator=(const WaitChunkTimer&) = delete;

 private:
  std::uint64_t begin_us_ = 0;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Flight recorder

/// One recorded round. The deterministic fields are per-round *deltas* of
/// the engine's cumulative per-run counters; the measured fields come from
/// the wall clock and WaitAccounting.
struct RoundSample {
  long long run_id = 0;  // process-wide monotone run number
  long long round = 0;   // 1-based round index within the run

  // Deterministic slice (§8: byte-identical across reruns/thread counts).
  long long messages = 0;     // messages delivered this round
  long long bytes = 0;        // payload bytes delivered this round
  long long faults = 0;       // engine faults injected this round
  long long repairs = 0;      // crashed nodes recovered this round
  long long allocs = 0;       // message buffers allocated this round
  long long alloc_bytes = 0;  // bytes in those buffers

  // Measured slice (scheduling-dependent; never diffed exactly).
  double wall_ms = 0;        // round wall time
  double dispatch_us = 0;    // pool dispatch latency this round
  double queue_us = 0;       // summed chunk queueing delay
  double wait_us = 0;        // summed per-worker barrier wait
  double max_wait_us = 0;    // worst single worker barrier wait
  int workers = 0;           // pool workers that executed chunks
  double imbalance = 1.0;    // max busy / mean busy (1.0 under 2 workers)
  int critical_tid = -1;     // busiest worker's trace tid (critical path)
  std::uint64_t ts_us = 0;   // trace-epoch time at round end (counter lanes)
};

/// Bounded flight recorder: a process-wide ring of the most recent
/// kRingCapacity round samples. Per-run cursors are thread-local (chaos
/// campaigns run engines concurrently on pool workers); the ring itself is
/// shared and mutex-guarded. Overwritten samples are counted, never silent.
class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 4096;

  static FlightRecorder& instance();

  /// Forgets all samples and the overwrite count (run ids keep advancing).
  void clear();

  /// Starts a new run on the calling thread: allocates a run id, snapshots
  /// the allocation counters, and discards any stale wait window.
  void begin_run();

  /// Marks the start of one round (timestamp + allocation snapshot).
  void begin_round();

  /// Records one finished round. The engine passes its *cumulative* per-run
  /// totals; the recorder differences them against the previous round.
  void end_round(long long round, long long cum_messages, long long cum_bytes,
                 long long cum_faults, long long cum_repairs);

  /// Samples currently held, oldest first.
  std::vector<RoundSample> samples() const;

  /// Rounds overwritten because the ring was full.
  long long dropped() const;

  /// Post-mortem dump: the most recent `max_rounds` samples as aligned
  /// text, prefixed by `reason`. Used on failed chaos cells and safe to
  /// call from any thread.
  void dump(std::ostream& os, const std::string& reason,
            std::size_t max_rounds = 32) const;

 private:
  struct RunCursor {
    long long run_id = 0;
    std::uint64_t round_begin_us = 0;
    long long prev_messages = 0;
    long long prev_bytes = 0;
    long long prev_faults = 0;
    long long prev_repairs = 0;
    long long alloc_base = 0;        // core().alloc_msgbuf at round start
    long long alloc_bytes_base = 0;  // core().alloc_msgbuf_bytes at round start
  };

  RunCursor& cursor();
  void push(const RoundSample& s);

  mutable std::mutex mu_;
  std::vector<RoundSample> ring_;
  std::size_t head_ = 0;  // index of the oldest sample once full
  long long dropped_ = 0;
  std::atomic<long long> next_run_id_{0};
};

// ---------------------------------------------------------------------------
// Amdahl / critical path

/// Traced self-time split into the §13 taxonomy's parallelizable compute
/// phase vs everything serial (message exchange, fault transitions, gather
/// setup, verify, scaffolding).
struct SerialSplit {
  double serial_ms = 0;
  double compute_ms = 0;
  /// serial / (serial + compute); 0 when nothing was traced.
  double serial_fraction = 0;
};

/// Computes the split from the recorder's current events (stack-replay
/// self-times, §13). Measured at one thread this is the Amdahl serial
/// fraction of the run.
SerialSplit serial_split_from_trace();

/// Amdahl's law: max speedup 1 / (s + (1 - s) / T) for serial fraction `s`
/// at `T` threads. T < 1 is treated as 1; s is clamped to [0, 1].
double amdahl_speedup(double serial_fraction, int threads);

// ---------------------------------------------------------------------------
// Report

/// Deterministic per-round delta row (the byte-stable series).
struct TimelineRound {
  long long round = 0;
  long long messages = 0;
  long long bytes = 0;
  long long faults = 0;
  long long repairs = 0;
  long long allocs = 0;
  long long alloc_bytes = 0;
};

/// Measured per-round row of one thread-count run.
struct MeasuredRound {
  long long round = 0;
  double wall_ms = 0;
  double dispatch_us = 0;
  double queue_us = 0;
  double wait_us = 0;
  double max_wait_us = 0;
  int workers = 0;
  double imbalance = 1.0;
  int critical_tid = -1;
};

/// One measured run at a fixed thread count.
struct TimelineThreadRun {
  int threads = 1;
  double total_ms = 0;  // min-of-reps end-to-end wall time
  double serial_ms = 0;
  double compute_ms = 0;
  double serial_fraction = 0;        // this run's own split
  double predicted_max_speedup = 1;  // Amdahl at the 1-thread serial fraction
  double measured_speedup = 0;       // 1-thread total_ms / this total_ms
  std::vector<MeasuredRound> rounds;
};

/// Raw per-run input to the report builder.
struct TimelineRunInput {
  int threads = 1;
  double total_ms = 0;
  SerialSplit split;
  std::vector<RoundSample> samples;  // this run's flight-recorder slice
};

struct TimelineReport {
  ProfileIdentity id;
  std::vector<TimelineRound> rounds;  // deterministic series (round order)

  std::vector<TimelineThreadRun> runs;  // ascending thread count
  long long flight_dropped = 0;

  std::string git_commit;
  std::string timestamp;

  /// Exactly the nested "deterministic" object of to_json(): the byte-
  /// stable slice CI diffs across thread counts.
  std::string deterministic_json() const;
  std::string to_json() const;
  /// Round-series table + Amdahl summary for humans.
  std::string to_markdown() const;
};

/// Assembles a report from per-thread-count run inputs. The deterministic
/// round series is taken from the first run and every other run must match
/// it exactly; a divergence (a §8 violation) throws std::runtime_error —
/// the CLI maps it to the MISMATCH exit code 4.
TimelineReport build_timeline_report(const ProfileIdentity& id,
                                     const std::vector<TimelineRunInput>& runs);

// ---------------------------------------------------------------------------
// difftl

/// Parsed timeline JSON, reduced to what the differ compares.
struct TimelineDoc {
  int schema_version = 0;
  std::string pipeline;
  std::string source;
  std::string graph_digest;
  long long n = 0;
  long long m = 0;
  long long seed = 1;
  long long decode_rounds = 0;
  bool verify_ok = false;
  std::string output_digest;
  long long advice_bits = 0;
  long long engine_messages = 0;
  long long engine_message_bits = 0;
  std::vector<TimelineRound> rounds;
  std::vector<std::pair<int, double>> run_times;  // (threads, total_ms)
};

/// Parses a `lad timeline --json` document. Throws std::runtime_error on
/// malformed input or an unknown schema version.
TimelineDoc parse_timeline_json(const std::string& text);

struct TimelineDiffResult {
  std::vector<CaseDiff> diffs;  // empty = clean

  DiffStatus status() const;
  std::string to_text() const;
};

/// Structural diff mirroring diff_profile: deterministic fields and the
/// per-round series exact (MISMATCH, exit 4); total_ms per matching thread
/// count gated by baseline + max(tol_ms, tol_rel·baseline) (REGRESSION,
/// exit 3). Thread counts present on only one side are not compared.
TimelineDiffResult diff_timeline(const TimelineDoc& baseline, const TimelineDoc& candidate,
                                 const BenchDiffOptions& opts = {});

}  // namespace lad::obs

// ---------------------------------------------------------------------------
// Chunk wait-timing hook for util/thread_pool.cpp. Mirrors LAD_TM_CHUNK_TIMER
// in profile.hpp: an empty statement under -DLAD_TELEMETRY=OFF.
#if LAD_TELEMETRY
#define LAD_TM_WAIT_TIMER(var) ::lad::obs::WaitChunkTimer var
#else
#define LAD_TM_WAIT_TIMER(var) ((void)0)
#endif
