#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json_mini.hpp"

namespace lad::obs {
namespace {

// JSON machinery lives in obs/json_mini.hpp, shared with obs/profile.cpp.
using jsonmini::JsonParser;
using jsonmini::JsonValue;
using jsonmini::json_escape;
using jsonmini::num_field;
using jsonmini::str_field;

std::string fmt_ms(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

BenchDoc parse_bench_json(const std::string& text) {
  const JsonValue root = JsonParser(text, "bench JSON").parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("bench JSON: top level is not an object");
  }
  BenchDoc doc;
  doc.schema_version = static_cast<int>(num_field(root, "schema_version", /*required=*/true));
  if (doc.schema_version < 2) {
    throw std::runtime_error("bench JSON: schema_version " +
                             std::to_string(doc.schema_version) +
                             " predates the diffable format (need >= 2)");
  }
  doc.git_commit = str_field(root, "git_commit", true);
  doc.timestamp = str_field(root, "timestamp", true);
  doc.suite = str_field(root, "suite", true);
  doc.threads = static_cast<int>(num_field(root, "threads", true));
  doc.hardware_threads = static_cast<int>(num_field(root, "hardware_threads", true));
  doc.reps = static_cast<int>(num_field(root, "reps", /*required=*/false, 1));

  const JsonValue* cases = root.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("bench JSON: missing \"cases\" array");
  }
  for (const JsonValue& c : cases->array) {
    if (c.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("bench JSON: case entry is not an object");
    }
    BenchCaseRow row;
    row.name = str_field(c, "name", true);
    row.n = static_cast<int>(num_field(c, "n", true));
    row.m = static_cast<int>(num_field(c, "m", true));
    row.rounds = static_cast<int>(num_field(c, "rounds", true));
    row.bits_per_node = num_field(c, "bits_per_node", true);
    row.total_bits = static_cast<long long>(num_field(c, "total_bits", true));
    row.wall_ms_1 = num_field(c, "wall_ms_1t", true);
    row.wall_ms = num_field(c, "wall_ms", true);
    row.digest = str_field(c, "digest", /*required=*/false);
    row.source = str_field(c, "source", /*required=*/false);
    row.graph_digest = str_field(c, "graph_digest", /*required=*/false);
    row.threads = static_cast<int>(num_field(c, "threads", /*required=*/false, 1));
    row.top_phase = str_field(c, "top_phase", /*required=*/false);
    if (const JsonValue* m = c.find("metrics"); m != nullptr) {
      if (m->kind != JsonValue::Kind::kObject) {
        throw std::runtime_error("bench JSON: \"metrics\" is not an object");
      }
      for (const auto& [k, v] : m->object) {
        row.metrics[k] = static_cast<long long>(v.number);
      }
    }
    doc.cases.push_back(std::move(row));
  }
  return doc;
}

DiffStatus BenchDiffResult::status() const {
  DiffStatus worst = DiffStatus::kClean;
  for (const auto& d : diffs) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

std::string BenchDiffResult::to_text() const {
  std::ostringstream os;
  if (diffs.empty()) {
    os << "diffbench: clean (" << cases_compared << " cases compared)\n";
    return os.str();
  }
  for (const auto& d : diffs) {
    os << (d.severity == DiffStatus::kRegression ? "REGRESSION" : "MISMATCH") << " ";
    if (!d.name.empty()) os << d.name << " ";
    os << "[" << d.field << "]: " << d.detail << "\n";
  }
  os << "diffbench: " << diffs.size() << " finding(s) over " << cases_compared
     << " compared case(s), exit " << static_cast<int>(status()) << "\n";
  return os.str();
}

std::string BenchDiffResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"exit\": " << static_cast<int>(status())
     << ",\n  \"cases_compared\": " << cases_compared << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const auto& d = diffs[i];
    os << "    {\"case\": \"" << json_escape(d.name) << "\", \"field\": \""
       << json_escape(d.field) << "\", \"severity\": "
       << (d.severity == DiffStatus::kRegression ? "\"regression\"" : "\"mismatch\"")
       << ", \"detail\": \"" << json_escape(d.detail) << "\"}"
       << (i + 1 < diffs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

BenchDiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& candidate,
                           const BenchDiffOptions& opts) {
  BenchDiffResult res;
  auto mismatch = [&res](const std::string& name, const std::string& field,
                         const std::string& detail) {
    res.diffs.push_back({name, field, detail, DiffStatus::kMismatch});
  };

  if (baseline.suite != candidate.suite) {
    mismatch("", "suite",
             "baseline ran suite '" + baseline.suite + "', candidate '" + candidate.suite + "'");
    return res;  // different suites: case-level comparison is meaningless
  }

  for (const auto& base : baseline.cases) {
    const auto it =
        std::find_if(candidate.cases.begin(), candidate.cases.end(),
                     [&base](const BenchCaseRow& c) { return c.name == base.name; });
    if (it == candidate.cases.end()) {
      mismatch(base.name, "cases", "case present in baseline but missing from candidate");
      continue;
    }
    const BenchCaseRow& cand = *it;
    ++res.cases_compared;

    auto exact = [&](const char* field, long long b, long long c) {
      if (b != c) {
        mismatch(base.name, field,
                 "baseline " + std::to_string(b) + " != candidate " + std::to_string(c));
      }
    };
    exact("n", base.n, cand.n);
    exact("m", base.m, cand.m);
    exact("rounds", base.rounds, cand.rounds);
    exact("total_bits", base.total_bits, cand.total_bits);
    if (std::fabs(base.bits_per_node - cand.bits_per_node) > 1e-4) {
      mismatch(base.name, "bits_per_node",
               "baseline " + fmt_ms(base.bits_per_node) + " != candidate " +
                   fmt_ms(cand.bits_per_node));
    }
    if (!base.digest.empty() && !cand.digest.empty() && base.digest != cand.digest) {
      mismatch(base.name, "digest",
               "output digest diverged (baseline " + base.digest + ", candidate " +
                   cand.digest + ")");
    }
    if (!base.source.empty() && !cand.source.empty() && base.source != cand.source) {
      mismatch(base.name, "source",
               "graph source diverged (baseline '" + base.source + "', candidate '" +
                   cand.source + "')");
    }
    if (!base.graph_digest.empty() && !cand.graph_digest.empty() &&
        base.graph_digest != cand.graph_digest) {
      mismatch(base.name, "graph_digest",
               "graph digest diverged (baseline " + base.graph_digest + ", candidate " +
                   cand.graph_digest + ")");
    }

    // Timing gate: serial min-of-K wall time, absolute + relative slack.
    const double allowed =
        base.wall_ms_1 + std::max(opts.tol_ms, opts.tol_rel * base.wall_ms_1);
    if (cand.wall_ms_1 > allowed) {
      res.diffs.push_back(
          {base.name, "wall_ms_1t",
           "candidate " + fmt_ms(cand.wall_ms_1) + " ms exceeds baseline " +
               fmt_ms(base.wall_ms_1) + " ms + tolerance (allowed " + fmt_ms(allowed) + " ms)",
           DiffStatus::kRegression});
    }
  }

  for (const auto& cand : candidate.cases) {
    const bool known = std::any_of(baseline.cases.begin(), baseline.cases.end(),
                                   [&cand](const BenchCaseRow& b) { return b.name == cand.name; });
    if (!known) {
      mismatch(cand.name, "cases",
               "case present in candidate but missing from baseline (rebaseline needed)");
    }
  }
  return res;
}

}  // namespace lad::obs
