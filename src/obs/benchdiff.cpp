#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace lad::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the subset our bench writer emits: objects,
// arrays, strings (no escapes beyond \" and \\), numbers, true/false.
// Anything else is a hard parse error — this reads our own artifacts, so
// leniency would only mask writer bugs.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("bench JSON parse error at byte " + std::to_string(pos_) + ": " +
                             why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           ((std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double num_field(const JsonValue& obj, const std::string& key, bool required,
                 double dflt = 0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw std::runtime_error("bench JSON: missing field \"" + key + "\"");
    return dflt;
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error("bench JSON: field \"" + key + "\" is not a number");
  }
  return v->number;
}

std::string str_field(const JsonValue& obj, const std::string& key, bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw std::runtime_error("bench JSON: missing field \"" + key + "\"");
    return {};
  }
  if (v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error("bench JSON: field \"" + key + "\" is not a string");
  }
  return v->string;
}

std::string fmt_ms(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

BenchDoc parse_bench_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("bench JSON: top level is not an object");
  }
  BenchDoc doc;
  doc.schema_version = static_cast<int>(num_field(root, "schema_version", /*required=*/true));
  if (doc.schema_version < 2) {
    throw std::runtime_error("bench JSON: schema_version " +
                             std::to_string(doc.schema_version) +
                             " predates the diffable format (need >= 2)");
  }
  doc.git_commit = str_field(root, "git_commit", true);
  doc.timestamp = str_field(root, "timestamp", true);
  doc.suite = str_field(root, "suite", true);
  doc.threads = static_cast<int>(num_field(root, "threads", true));
  doc.hardware_threads = static_cast<int>(num_field(root, "hardware_threads", true));
  doc.reps = static_cast<int>(num_field(root, "reps", /*required=*/false, 1));

  const JsonValue* cases = root.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("bench JSON: missing \"cases\" array");
  }
  for (const JsonValue& c : cases->array) {
    if (c.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("bench JSON: case entry is not an object");
    }
    BenchCaseRow row;
    row.name = str_field(c, "name", true);
    row.n = static_cast<int>(num_field(c, "n", true));
    row.m = static_cast<int>(num_field(c, "m", true));
    row.rounds = static_cast<int>(num_field(c, "rounds", true));
    row.bits_per_node = num_field(c, "bits_per_node", true);
    row.total_bits = static_cast<long long>(num_field(c, "total_bits", true));
    row.wall_ms_1 = num_field(c, "wall_ms_1t", true);
    row.wall_ms = num_field(c, "wall_ms", true);
    row.digest = str_field(c, "digest", /*required=*/false);
    row.source = str_field(c, "source", /*required=*/false);
    row.graph_digest = str_field(c, "graph_digest", /*required=*/false);
    if (const JsonValue* m = c.find("metrics"); m != nullptr) {
      if (m->kind != JsonValue::Kind::kObject) {
        throw std::runtime_error("bench JSON: \"metrics\" is not an object");
      }
      for (const auto& [k, v] : m->object) {
        row.metrics[k] = static_cast<long long>(v.number);
      }
    }
    doc.cases.push_back(std::move(row));
  }
  return doc;
}

DiffStatus BenchDiffResult::status() const {
  DiffStatus worst = DiffStatus::kClean;
  for (const auto& d : diffs) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

std::string BenchDiffResult::to_text() const {
  std::ostringstream os;
  if (diffs.empty()) {
    os << "diffbench: clean (" << cases_compared << " cases compared)\n";
    return os.str();
  }
  for (const auto& d : diffs) {
    os << (d.severity == DiffStatus::kRegression ? "REGRESSION" : "MISMATCH") << " ";
    if (!d.name.empty()) os << d.name << " ";
    os << "[" << d.field << "]: " << d.detail << "\n";
  }
  os << "diffbench: " << diffs.size() << " finding(s) over " << cases_compared
     << " compared case(s), exit " << static_cast<int>(status()) << "\n";
  return os.str();
}

std::string BenchDiffResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"exit\": " << static_cast<int>(status())
     << ",\n  \"cases_compared\": " << cases_compared << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const auto& d = diffs[i];
    os << "    {\"case\": \"" << json_escape(d.name) << "\", \"field\": \""
       << json_escape(d.field) << "\", \"severity\": "
       << (d.severity == DiffStatus::kRegression ? "\"regression\"" : "\"mismatch\"")
       << ", \"detail\": \"" << json_escape(d.detail) << "\"}"
       << (i + 1 < diffs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

BenchDiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& candidate,
                           const BenchDiffOptions& opts) {
  BenchDiffResult res;
  auto mismatch = [&res](const std::string& name, const std::string& field,
                         const std::string& detail) {
    res.diffs.push_back({name, field, detail, DiffStatus::kMismatch});
  };

  if (baseline.suite != candidate.suite) {
    mismatch("", "suite",
             "baseline ran suite '" + baseline.suite + "', candidate '" + candidate.suite + "'");
    return res;  // different suites: case-level comparison is meaningless
  }

  for (const auto& base : baseline.cases) {
    const auto it =
        std::find_if(candidate.cases.begin(), candidate.cases.end(),
                     [&base](const BenchCaseRow& c) { return c.name == base.name; });
    if (it == candidate.cases.end()) {
      mismatch(base.name, "cases", "case present in baseline but missing from candidate");
      continue;
    }
    const BenchCaseRow& cand = *it;
    ++res.cases_compared;

    auto exact = [&](const char* field, long long b, long long c) {
      if (b != c) {
        mismatch(base.name, field,
                 "baseline " + std::to_string(b) + " != candidate " + std::to_string(c));
      }
    };
    exact("n", base.n, cand.n);
    exact("m", base.m, cand.m);
    exact("rounds", base.rounds, cand.rounds);
    exact("total_bits", base.total_bits, cand.total_bits);
    if (std::fabs(base.bits_per_node - cand.bits_per_node) > 1e-4) {
      mismatch(base.name, "bits_per_node",
               "baseline " + fmt_ms(base.bits_per_node) + " != candidate " +
                   fmt_ms(cand.bits_per_node));
    }
    if (!base.digest.empty() && !cand.digest.empty() && base.digest != cand.digest) {
      mismatch(base.name, "digest",
               "output digest diverged (baseline " + base.digest + ", candidate " +
                   cand.digest + ")");
    }
    if (!base.source.empty() && !cand.source.empty() && base.source != cand.source) {
      mismatch(base.name, "source",
               "graph source diverged (baseline '" + base.source + "', candidate '" +
                   cand.source + "')");
    }
    if (!base.graph_digest.empty() && !cand.graph_digest.empty() &&
        base.graph_digest != cand.graph_digest) {
      mismatch(base.name, "graph_digest",
               "graph digest diverged (baseline " + base.graph_digest + ", candidate " +
                   cand.graph_digest + ")");
    }

    // Timing gate: serial min-of-K wall time, absolute + relative slack.
    const double allowed =
        base.wall_ms_1 + std::max(opts.tol_ms, opts.tol_rel * base.wall_ms_1);
    if (cand.wall_ms_1 > allowed) {
      res.diffs.push_back(
          {base.name, "wall_ms_1t",
           "candidate " + fmt_ms(cand.wall_ms_1) + " ms exceeds baseline " +
               fmt_ms(base.wall_ms_1) + " ms + tolerance (allowed " + fmt_ms(allowed) + " ms)",
           DiffStatus::kRegression});
    }
  }

  for (const auto& cand : candidate.cases) {
    const bool known = std::any_of(baseline.cases.begin(), baseline.cases.end(),
                                   [&cand](const BenchCaseRow& b) { return b.name == cand.name; });
    if (!known) {
      mismatch(cand.name, "cases",
               "case present in candidate but missing from baseline (rebaseline needed)");
    }
  }
  return res;
}

}  // namespace lad::obs
