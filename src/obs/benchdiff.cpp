#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json_mini.hpp"

namespace lad::obs {
namespace {

// JSON machinery lives in obs/json_mini.hpp, shared with obs/profile.cpp.
using jsonmini::JsonParser;
using jsonmini::JsonValue;
using jsonmini::json_escape;
using jsonmini::num_field;
using jsonmini::str_field;

std::string fmt_ms(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Shared parse body: the strict path (`lad diffbench`) requires every
// field of the diffable format; the lenient path (`lad report`'s
// trajectory table) lets any schema generation through with defaults.
BenchDoc parse_bench_json_impl(const std::string& text, bool strict) {
  const JsonValue root = JsonParser(text, "bench JSON").parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("bench JSON: top level is not an object");
  }
  BenchDoc doc;
  doc.schema_version =
      static_cast<int>(num_field(root, "schema_version", /*required=*/strict, 1));
  if (strict && doc.schema_version < 2) {
    throw std::runtime_error("bench JSON: schema_version " +
                             std::to_string(doc.schema_version) +
                             " predates the diffable format (need >= 2)");
  }
  doc.git_commit = str_field(root, "git_commit", strict);
  doc.timestamp = str_field(root, "timestamp", strict);
  doc.suite = str_field(root, "suite", strict);
  doc.threads = static_cast<int>(num_field(root, "threads", strict));
  doc.hardware_threads = static_cast<int>(num_field(root, "hardware_threads", strict));
  doc.reps = static_cast<int>(num_field(root, "reps", /*required=*/false, 1));

  const JsonValue* cases = root.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("bench JSON: missing \"cases\" array");
  }
  for (const JsonValue& c : cases->array) {
    if (c.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("bench JSON: case entry is not an object");
    }
    BenchCaseRow row;
    row.name = str_field(c, "name", true);
    row.n = static_cast<int>(num_field(c, "n", strict));
    row.m = static_cast<int>(num_field(c, "m", strict));
    row.rounds = static_cast<int>(num_field(c, "rounds", strict));
    row.bits_per_node = num_field(c, "bits_per_node", strict);
    row.total_bits = static_cast<long long>(num_field(c, "total_bits", strict));
    row.wall_ms_1 = num_field(c, "wall_ms_1t", strict);
    row.wall_ms = num_field(c, "wall_ms", strict);
    row.digest = str_field(c, "digest", /*required=*/false);
    row.source = str_field(c, "source", /*required=*/false);
    row.graph_digest = str_field(c, "graph_digest", /*required=*/false);
    row.threads = static_cast<int>(num_field(c, "threads", /*required=*/false, 1));
    row.top_phase = str_field(c, "top_phase", /*required=*/false);
    if (const JsonValue* m = c.find("metrics"); m != nullptr) {
      if (m->kind != JsonValue::Kind::kObject) {
        throw std::runtime_error("bench JSON: \"metrics\" is not an object");
      }
      for (const auto& [k, v] : m->object) {
        row.metrics[k] = static_cast<long long>(v.number);
      }
    }
    doc.cases.push_back(std::move(row));
  }
  return doc;
}

}  // namespace

BenchDoc parse_bench_json(const std::string& text) {
  return parse_bench_json_impl(text, /*strict=*/true);
}

BenchDoc parse_bench_json_lenient(const std::string& text) {
  return parse_bench_json_impl(text, /*strict=*/false);
}

std::string perf_trajectory_markdown(const std::vector<BenchGeneration>& generations) {
  std::ostringstream os;
  os << "## Perf trajectory\n\n"
     << "Serial wall time (`wall_ms_1t`, min-of-reps, milliseconds) per case\n"
     << "across the checked-in bench generations. Wall times are\n"
     << "machine-dependent: read the column-to-column *shape*, not the\n"
     << "absolute numbers, and use `lad diffbench` for gating.\n\n";
  if (generations.empty()) {
    os << "No BENCH_*.json generations found.\n";
    return os.str();
  }
  // Union of case names in first-seen order, so rows stay stable as
  // generations add cases.
  std::vector<std::string> names;
  for (const auto& gen : generations) {
    for (const auto& c : gen.doc.cases) {
      if (std::find(names.begin(), names.end(), c.name) == names.end()) {
        names.push_back(c.name);
      }
    }
  }
  os << "| case |";
  for (const auto& gen : generations) {
    os << " " << gen.label << " (v" << gen.doc.schema_version;
    if (!gen.doc.suite.empty()) os << ", " << gen.doc.suite;
    os << ") |";
  }
  os << "\n|---|";
  for (std::size_t i = 0; i < generations.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& name : names) {
    os << "| " << name << " |";
    for (const auto& gen : generations) {
      const auto it =
          std::find_if(gen.doc.cases.begin(), gen.doc.cases.end(),
                       [&name](const BenchCaseRow& c) { return c.name == name; });
      if (it == gen.doc.cases.end()) {
        os << " — |";
      } else {
        os << " " << fmt_ms(it->wall_ms_1) << " |";
      }
    }
    os << "\n";
  }
  return os.str();
}

DiffStatus BenchDiffResult::status() const {
  DiffStatus worst = DiffStatus::kClean;
  for (const auto& d : diffs) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

std::string BenchDiffResult::to_text() const {
  std::ostringstream os;
  if (diffs.empty()) {
    os << "diffbench: clean (" << cases_compared << " cases compared)\n";
    return os.str();
  }
  for (const auto& d : diffs) {
    os << (d.severity == DiffStatus::kRegression ? "REGRESSION" : "MISMATCH") << " ";
    if (!d.name.empty()) os << d.name << " ";
    os << "[" << d.field << "]: " << d.detail << "\n";
  }
  os << "diffbench: " << diffs.size() << " finding(s) over " << cases_compared
     << " compared case(s), exit " << static_cast<int>(status()) << "\n";
  return os.str();
}

std::string BenchDiffResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"exit\": " << static_cast<int>(status())
     << ",\n  \"cases_compared\": " << cases_compared << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const auto& d = diffs[i];
    os << "    {\"case\": \"" << json_escape(d.name) << "\", \"field\": \""
       << json_escape(d.field) << "\", \"severity\": "
       << (d.severity == DiffStatus::kRegression ? "\"regression\"" : "\"mismatch\"")
       << ", \"detail\": \"" << json_escape(d.detail) << "\"}"
       << (i + 1 < diffs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

BenchDiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& candidate,
                           const BenchDiffOptions& opts) {
  BenchDiffResult res;
  auto mismatch = [&res](const std::string& name, const std::string& field,
                         const std::string& detail) {
    res.diffs.push_back({name, field, detail, DiffStatus::kMismatch});
  };

  if (baseline.suite != candidate.suite) {
    mismatch("", "suite",
             "baseline ran suite '" + baseline.suite + "', candidate '" + candidate.suite + "'");
    return res;  // different suites: case-level comparison is meaningless
  }

  for (const auto& base : baseline.cases) {
    const auto it =
        std::find_if(candidate.cases.begin(), candidate.cases.end(),
                     [&base](const BenchCaseRow& c) { return c.name == base.name; });
    if (it == candidate.cases.end()) {
      mismatch(base.name, "cases", "case present in baseline but missing from candidate");
      continue;
    }
    const BenchCaseRow& cand = *it;
    ++res.cases_compared;

    auto exact = [&](const char* field, long long b, long long c) {
      if (b != c) {
        mismatch(base.name, field,
                 "baseline " + std::to_string(b) + " != candidate " + std::to_string(c));
      }
    };
    exact("n", base.n, cand.n);
    exact("m", base.m, cand.m);
    exact("rounds", base.rounds, cand.rounds);
    exact("total_bits", base.total_bits, cand.total_bits);
    if (std::fabs(base.bits_per_node - cand.bits_per_node) > 1e-4) {
      mismatch(base.name, "bits_per_node",
               "baseline " + fmt_ms(base.bits_per_node) + " != candidate " +
                   fmt_ms(cand.bits_per_node));
    }
    if (!base.digest.empty() && !cand.digest.empty() && base.digest != cand.digest) {
      mismatch(base.name, "digest",
               "output digest diverged (baseline " + base.digest + ", candidate " +
                   cand.digest + ")");
    }
    if (!base.source.empty() && !cand.source.empty() && base.source != cand.source) {
      mismatch(base.name, "source",
               "graph source diverged (baseline '" + base.source + "', candidate '" +
                   cand.source + "')");
    }
    if (!base.graph_digest.empty() && !cand.graph_digest.empty() &&
        base.graph_digest != cand.graph_digest) {
      mismatch(base.name, "graph_digest",
               "graph digest diverged (baseline " + base.graph_digest + ", candidate " +
                   cand.graph_digest + ")");
    }

    // Timing gate: serial min-of-K wall time, absolute + relative slack.
    const double allowed =
        base.wall_ms_1 + std::max(opts.tol_ms, opts.tol_rel * base.wall_ms_1);
    if (cand.wall_ms_1 > allowed) {
      res.diffs.push_back(
          {base.name, "wall_ms_1t",
           "candidate " + fmt_ms(cand.wall_ms_1) + " ms exceeds baseline " +
               fmt_ms(base.wall_ms_1) + " ms + tolerance (allowed " + fmt_ms(allowed) + " ms)",
           DiffStatus::kRegression});
    }
  }

  for (const auto& cand : candidate.cases) {
    const bool known = std::any_of(baseline.cases.begin(), baseline.cases.end(),
                                   [&cand](const BenchCaseRow& b) { return b.name == cand.name; });
    if (!known) {
      mismatch(cand.name, "cases",
               "case present in candidate but missing from baseline (rebaseline needed)");
    }
  }
  return res;
}

}  // namespace lad::obs
