#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>

namespace lad::obs {

bool compiled_in() { return LAD_TELEMETRY != 0; }

void set_enabled(bool on) {
#if LAD_TELEMETRY
  if (on) core();  // materialize the catalog so exports list every metric
  enabled_flag().store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

// ---------------------------------------------------------------------------
// Histogram

void Histogram::observe(long long x) {
  int b = 0;
  while (b + 1 < kBuckets && x > bound(b)) ++b;
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(MetricKind kind, const std::string& name,
                                                       const std::string& help,
                                                       bool thread_variant) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : entries_) {
    if (e->name == name) return *e;
  }
  auto e = std::make_unique<Entry>();
  e->kind = kind;
  e->name = name;
  e->help = help;
  e->thread_variant = thread_variant;
  switch (kind) {
    case MetricKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  bool thread_variant) {
  return *get_or_create(MetricKind::kCounter, name, help, thread_variant).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              bool thread_variant) {
  return *get_or_create(MetricKind::kGauge, name, help, thread_variant).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      bool thread_variant) {
  return *get_or_create(MetricKind::kHistogram, name, help, thread_variant).histogram;
}

bool MetricsRegistry::is_thread_variant(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) return e->thread_variant;
  }
  return false;
}

std::vector<std::string> MetricsRegistry::thread_variant_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e->thread_variant) out.push_back(e->name);
  }
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e->name);
  return out;
}

std::vector<MetricValue> MetricsRegistry::snapshot(bool skip_zero) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricValue> out;
  out.reserve(entries_.size());
  const auto push = [&](const std::string& name, long long v) {
    if (skip_zero && v == 0) return;
    out.push_back({name, v});
  };
  for (const auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter:
        push(e->name, e->counter->value());
        break;
      case MetricKind::kGauge:
        push(e->name, e->gauge->value());
        break;
      case MetricKind::kHistogram:
        push(e->name + "_sum", e->histogram->sum());
        push(e->name + "_count", e->histogram->count());
        break;
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter:
        e->counter->reset();
        break;
      case MetricKind::kGauge:
        e->gauge->reset();
        break;
      case MetricKind::kHistogram:
        e->histogram->reset();
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Core catalog. One registration block = one deterministic order, no matter
// which instrumentation point fires first.

CoreMetrics& core() {
  static CoreMetrics m = [] {
    auto& r = MetricsRegistry::instance();
    return CoreMetrics{
        r.counter("lad_engine_runs_total", "Engine::run invocations"),
        r.counter("lad_engine_rounds_total", "synchronous LOCAL rounds executed (rounds)"),
        r.counter("lad_engine_messages_total", "messages delivered between nodes (messages)"),
        r.counter("lad_engine_message_bits_total", "payload bits on the wire (bits)"),
        r.counter("lad_engine_messages_dropped_total", "messages dropped by the fault model"),
        r.counter("lad_engine_messages_corrupted_total", "messages corrupted by the fault model"),
        r.counter("lad_engine_messages_duplicated_total",
                  "stale duplicate deliveries scheduled by the fault model"),
        r.counter("lad_engine_messages_delayed_total",
                  "messages the fault model held in transit at least one extra round"),
        r.counter("lad_engine_crashed_nodes_total", "nodes crashed by the fault model"),
        r.counter("lad_engine_recovered_nodes_total",
                  "crash-recovery rejoins with blank state (on_recover calls)"),
        r.histogram("lad_engine_run_messages", "messages delivered per Engine::run (messages)"),
        r.counter("lad_gather_balls_total", "radius-t balls reconstructed from messages"),
        r.counter("lad_gather_cache_hits_total", "canonical-view memo hits (nodes)"),
        r.counter("lad_gather_cache_misses_total", "canonical-view memo misses = distinct views"),
        r.counter("lad_pipeline_encodes_total", "registry pipeline encode() calls"),
        r.counter("lad_pipeline_decodes_total", "registry pipeline decode() calls"),
        r.counter("lad_pipeline_verifies_total", "registry pipeline verify() calls"),
        r.counter("lad_pipeline_decode_rounds_total", "LOCAL rounds over all decodes (rounds)"),
        r.counter("lad_advice_bits_written_total", "advice bits produced by encoders (bits)"),
        r.counter("lad_advice_bits_read_total", "advice bits consumed by decoders (bits)"),
        r.histogram("lad_decode_rounds", "LOCAL rounds per pipeline decode (rounds)"),
        r.counter("lad_guard_detections_total", "violations detected by guarded decoders"),
        r.counter("lad_repaired_nodes_total", "nodes whose output was locally repaired"),
        r.counter("lad_degraded_nodes_total",
                  "nodes served by a fallback-ladder rung below local repair"),
        r.counter("lad_flagged_nodes_total", "nodes flagged unservable (repair impossible)"),
        r.counter("lad_repair_regions_total", "repair regions grown by guarded decoders"),
        r.counter("lad_repair_escalations_total", "repair regions that escalated past radius 1"),
        r.counter("lad_repair_retries_total", "repair attempts beyond the first per region"),
        r.counter("lad_repair_budget_exhausted_total",
                  "repair regions abandoned to the global node budget"),
        r.counter("lad_repair_deadline_exhausted_total",
                  "repair regions abandoned to the per-run round deadline"),
        r.histogram("lad_repair_region_radius", "final radius per repair region (hops)"),
        r.counter("lad_campaign_trials_total", "fault-campaign trials executed"),
        r.counter("lad_campaign_faults_injected_total", "faults injected across campaign trials"),
        r.counter("lad_chaos_cells_total", "chaos-matrix cells executed (campaign runs)"),
        r.counter("lad_alloc_msgbuf_total",
                  "per-round message payloads that outgrew SSO (heap allocations)"),
        r.counter("lad_alloc_msgbuf_bytes_total",
                  "bytes of heap-allocated per-round message payloads (bytes)"),
        r.counter("lad_alloc_gather_total", "serialized ball-gather buffers built (allocations)"),
        r.counter("lad_alloc_gather_bytes_total",
                  "bytes of serialized ball-gather buffers (bytes)"),
        // Thread-variant metrics: pool geometry, dispatch/wait timing, and
        // contract-check multiplicity are functions of the thread count (or
        // the wall clock) by design, so they are exempt from the
        // byte-identity determinism contract.
        r.counter("lad_pool_chunks_total", "thread-pool chunks executed",
                  /*thread_variant=*/true),
        r.gauge("lad_pool_threads", "threads of the most recently created pool",
                /*thread_variant=*/true),
        r.counter("lad_contract_checks_total", "LAD_CHECK/LAD_ASSERT evaluations",
                  /*thread_variant=*/true),
        // Timeline observatory (obs/timeline.*, DESIGN.md §14).
        r.counter("lad_timeline_rounds_total",
                  "engine rounds recorded by the flight recorder (rounds)"),
        r.counter("lad_flight_dumps_total", "flight-recorder post-mortem dumps emitted"),
        r.counter("lad_pool_dispatches_total", "parallel dispatch windows completed",
                  /*thread_variant=*/true),
        r.counter("lad_pool_dispatch_us_total",
                  "enqueue-to-first-chunk dispatch latency (microseconds)",
                  /*thread_variant=*/true),
        r.counter("lad_pool_barrier_wait_us_total",
                  "per-worker wait at the completion barrier (microseconds)",
                  /*thread_variant=*/true),
        r.counter("lad_pool_queue_us_total", "enqueue-to-chunk-start queueing delay "
                  "(microseconds)",
                  /*thread_variant=*/true),
    };
  }();
  return m;
}

const std::vector<std::string>& span_name_catalog() {
  // Every LAD_TM_SPAN site's name, or its literal prefix for composed
  // names (prefix entries end in '/'). `lad lint` rule obs-span-name
  // checks span literals in instrumented code against this list.
  static const std::vector<std::string> kSpans = {
      "engine.run",        "engine.round",      "engine.faults",
      "engine.compute",    "engine.deliver",    "parallel_engine.run",
      "gather.balls",      "gather.views",      "pool.chunk",
      "campaign.trial",    "chaos.cell",        "guarded.decode/",
      "pipeline.encode/",  "pipeline.decode/",  "pipeline.decode_tolerant/",
      "pipeline.verify/",
  };
  return kSpans;
}

// ---------------------------------------------------------------------------
// TraceRecorder / Span

std::uint64_t trace_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder rec;
  return rec;
}

TraceRecorder::ThreadBuf& TraceRecorder::local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> lk(mu_);
    buf->tid = next_tid_++;
    bufs_.push_back(buf);
  }
  return *buf;
}

void TraceRecorder::record(char phase, const std::string& name, const char* cat) {
  ThreadBuf& b = local_buf();
  const std::uint64_t ts = trace_now_us();
  std::lock_guard<std::mutex> lk(b.mu);
  if (phase == 'E' && b.open_dropped > 0) {
    // The matching B was dropped to the cap; drop the E too so the
    // exported stream stays balanced (spans nest LIFO within a thread).
    --b.open_dropped;
    ++b.dropped;
    return;
  }
  if (b.events.size() >= kMaxEventsPerThread) {
    ++b.dropped;
    if (phase == 'B') ++b.open_dropped;
    return;
  }
  b.events.push_back(TraceEvent{name, cat, ts, phase});
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
    b->dropped = 0;
    b->open_dropped = 0;
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t total = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    total += b->events.size();
  }
  return total;
}

long long TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  long long total = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    total += b->dropped;
  }
  return total;
}

void TraceRecorder::name_thread(const std::string& name) {
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lk(b.mu);
  b.name = name;
}

std::vector<std::pair<int, std::string>> TraceRecorder::thread_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<int, std::string>> out;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    if (!b->name.empty()) out.emplace_back(b->tid, b->name);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b2) { return a.first < b2.first; });
  return out;
}

int TraceRecorder::current_tid() { return local_buf().tid; }

std::vector<std::pair<int, std::vector<TraceEvent>>> TraceRecorder::events_by_thread() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<int, std::vector<TraceEvent>>> out;
  out.reserve(bufs_.size());
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    if (!b->events.empty()) out.emplace_back(b->tid, b->events);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b2) { return a.first < b2.first; });
  return out;
}

Span::Span(std::string name, const char* cat) : name_(std::move(name)), cat_(cat) {
  if (!enabled()) return;
  active_ = true;
  TraceRecorder::instance().record('B', name_, cat_);
}

Span::~Span() {
  // active_ is latched at construction: a span that began is always closed,
  // even if telemetry was disabled mid-span, so B/E stay balanced.
  if (active_) TraceRecorder::instance().record('E', name_, cat_);
}

}  // namespace lad::obs
