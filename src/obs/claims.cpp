#include "obs/claims.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/version.hpp"
#include "util/hashing.hpp"

namespace lad::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Growth-class conformance: a measured class satisfies a claim when it is
/// at or below the declared ceiling in the kConstant < kLogStar < kLog <
/// kSqrt < kLinear order — a theorem promising O(log n) is not violated by
/// a sweep that measures flat.
bool within_class(GrowthClass measured, GrowthClass declared) {
  return static_cast<int>(measured) <= static_cast<int>(declared);
}

ClaimCheck growth_check(const std::string& metric, GrowthClass declared,
                        const std::vector<double>& ns, const std::vector<double>& ys,
                        const FitOptions& opts) {
  ClaimCheck check;
  check.metric = metric;
  check.expected = std::string("O(") + to_string(declared) + ") growth";
  check.fit = fit_growth(ns, ys, opts);
  check.observed = check.fit.to_string();
  check.pass = within_class(check.fit.cls, declared);
  return check;
}

ClaimCheck bound_check(const std::string& metric, double bound,
                       const std::vector<double>& ys) {
  ClaimCheck check;
  check.metric = metric;
  check.expected = "<= " + fmt(bound) + " at every sweep point";
  const double worst = *std::max_element(ys.begin(), ys.end());
  check.observed = "max " + fmt(worst);
  check.pass = worst <= bound + 1e-9;
  return check;
}

}  // namespace

bool PipelineClaimReport::pass() const {
  if (checks.empty()) return false;
  for (const ClaimCheck& c : checks) {
    if (!c.pass) return false;
  }
  return true;
}

bool ClaimsReport::pass() const {
  if (pipelines.empty()) return false;
  for (const PipelineClaimReport& r : pipelines) {
    if (!r.pass()) return false;
  }
  return true;
}

std::vector<int> default_sweep_ns() { return {256, 512, 1024, 2048, 4096, 8192}; }

namespace {

/// One encode -> decode -> verify pass on a concrete graph: the shared
/// measurement body behind both the generated and the source-driven sweeps.
SweepPoint measure_point(const Pipeline& p, const Graph& g, const PipelineConfig& cfg) {
  const PipelineAdvice adv = p.encode(g, cfg);
  const PipelineOutput out = p.decode(g, adv, cfg);
  const AdviceStats stats = adv.stats(g.n());

  SweepPoint pt;
  pt.n = g.n();
  pt.m = g.m();
  pt.rounds = out.rounds;
  pt.total_bits = stats.total_bits;
  pt.bits_per_node = g.n() > 0 ? static_cast<double>(stats.total_bits) / g.n() : 0.0;
  pt.ones_ratio = stats.ones_ratio;
  pt.verified = p.verify(g, out, cfg);
  return pt;
}

}  // namespace

std::vector<SweepPoint> run_claim_sweep(const Pipeline& p, const std::vector<int>& ns,
                                        std::uint64_t seed) {
  std::vector<SweepPoint> points;
  points.reserve(ns.size());
  for (const int n : ns) {
    PipelineConfig cfg = p.sweep_config(n);
    cfg.seed = hash2(seed, static_cast<std::uint64_t>(n));
    const Graph g = p.make_instance(n, cfg.seed);
    points.push_back(measure_point(p, g, cfg));
  }
  return points;
}

std::vector<SweepPoint> run_claim_sweep_sources(const Pipeline& p,
                                                const std::vector<GraphSource>& sources,
                                                std::uint64_t seed) {
  std::vector<SweepPoint> points;
  points.reserve(sources.size());
  for (const GraphSource& src : sources) {
    const LoadedGraph lg = load_graph_source(src, seed);
    PipelineConfig cfg = p.sweep_config(lg.graph.n());
    cfg.seed = hash2(seed, static_cast<std::uint64_t>(lg.graph.n()));
    points.push_back(measure_point(p, lg.graph, cfg));
  }
  return points;
}

PipelineClaimReport check_pipeline_claims(const Pipeline& p,
                                          const std::vector<SweepPoint>& points,
                                          const FitOptions& opts) {
  PipelineClaimReport report;
  report.name = p.name();
  report.section = p.paper_section();
  const PipelineClaims claims = p.claims();
  report.statement = claims.statement;
  report.points = points;
  if (points.size() < 3) {
    throw std::invalid_argument("check_pipeline_claims: need at least 3 sweep points");
  }

  std::vector<double> ns, rounds, bits, ones;
  ns.reserve(points.size());
  for (const SweepPoint& pt : points) {
    ns.push_back(pt.n);
    rounds.push_back(pt.rounds);
    bits.push_back(pt.bits_per_node);
    ones.push_back(pt.ones_ratio);
  }

  // verify() is the ground truth: a sweep point whose decode fails the
  // centralized checker invalidates every fitted series above it.
  {
    ClaimCheck check;
    check.metric = "verify";
    check.expected = "decode verifies at every sweep point";
    int failed = 0;
    for (const SweepPoint& pt : points) {
      if (!pt.verified) ++failed;
    }
    check.observed = failed == 0 ? "all points verified"
                                 : std::to_string(failed) + " point(s) failed verification";
    check.pass = failed == 0;
    report.checks.push_back(check);
  }

  report.checks.push_back(growth_check("rounds", claims.rounds_growth, ns, rounds, opts));
  report.checks.push_back(growth_check("bits_per_node", claims.bits_growth, ns, bits, opts));
  if (p.carrier() == AdviceCarrier::kUniformBits) {
    report.checks.push_back(growth_check("ones_ratio", claims.ones_growth, ns, ones, opts));
  }
  if (claims.max_bits_per_node > 0) {
    report.checks.push_back(bound_check("bits_per_node bound", claims.max_bits_per_node, bits));
  }
  if (claims.max_ones_ratio > 0 && p.carrier() == AdviceCarrier::kUniformBits) {
    report.checks.push_back(bound_check("ones_ratio bound", claims.max_ones_ratio, ones));
  }
  return report;
}

ClaimsReport verify_claims(const std::vector<int>& ns, const std::string& family,
                           std::uint64_t seed, bool extend_sweeps) {
  if (ns.size() < 3) throw std::invalid_argument("verify_claims: need at least 3 sweep sizes");
  ClaimsReport report;
  report.git_commit = kGitCommit;
  report.timestamp = iso8601_utc_now();
  report.sweep_ns.assign(ns.begin(), ns.end());

  bool matched = false;
  for (const Pipeline* p : pipelines()) {
    if (!family.empty() && family != p->name()) continue;
    matched = true;
    const std::vector<int> sweep = extend_sweeps ? p->sweep_ns(ns) : ns;
    report.pipelines.push_back(check_pipeline_claims(*p, run_claim_sweep(*p, sweep, seed)));
  }
  if (!matched) throw std::invalid_argument("verify_claims: unknown pipeline family: " + family);
  return report;
}

ClaimsReport verify_claims_sources(const std::vector<GraphSource>& sources,
                                   const std::string& family, std::uint64_t seed) {
  if (family.empty()) {
    throw std::invalid_argument(
        "verify_claims_sources: --graphs sweeps need an explicit pipeline family "
        "(imported graphs cannot satisfy every pipeline's instance preconditions)");
  }
  if (sources.size() < 3) {
    throw std::invalid_argument("verify_claims_sources: need at least 3 graph sources");
  }
  ClaimsReport report;
  report.git_commit = kGitCommit;
  report.timestamp = iso8601_utc_now();

  bool matched = false;
  for (const Pipeline* p : pipelines()) {
    if (family != p->name()) continue;
    matched = true;
    const std::vector<SweepPoint> points = run_claim_sweep_sources(*p, sources, seed);
    for (const SweepPoint& pt : points) report.sweep_ns.push_back(pt.n);
    report.pipelines.push_back(check_pipeline_claims(*p, points));
  }
  if (!matched) throw std::invalid_argument("verify_claims: unknown pipeline family: " + family);
  return report;
}

std::string ClaimsReport::to_text() const {
  std::ostringstream os;
  os << "claims observatory: " << pipelines.size() << " pipeline(s), sweep n = {";
  for (std::size_t i = 0; i < sweep_ns.size(); ++i) {
    if (i != 0) os << ", ";
    os << static_cast<long long>(sweep_ns[i]);
  }
  os << "}\n";
  for (const PipelineClaimReport& r : pipelines) {
    os << "\n[" << (r.pass() ? "PASS" : "FAIL") << "] " << r.name << " (" << r.section << ")\n";
    os << "  claim: " << r.statement << "\n";
    for (const ClaimCheck& c : r.checks) {
      os << "  " << (c.pass ? "pass" : "FAIL") << "  " << c.metric << ": expected "
         << c.expected << "; observed " << c.observed << "\n";
    }
  }
  os << "\noverall: " << (pass() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

std::string ClaimsReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"git_commit\": \"" << json_escape(git_commit) << "\",\n";
  os << "  \"timestamp\": \"" << json_escape(timestamp) << "\",\n";
  os << "  \"sweep_ns\": [";
  for (std::size_t i = 0; i < sweep_ns.size(); ++i) {
    if (i != 0) os << ", ";
    os << static_cast<long long>(sweep_ns[i]);
  }
  os << "],\n";
  os << "  \"pass\": " << (pass() ? "true" : "false") << ",\n";
  os << "  \"pipelines\": [\n";
  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    const PipelineClaimReport& r = pipelines[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"section\": \"" << json_escape(r.section) << "\",\n";
    os << "      \"statement\": \"" << json_escape(r.statement) << "\",\n";
    os << "      \"pass\": " << (r.pass() ? "true" : "false") << ",\n";
    os << "      \"points\": [\n";
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const SweepPoint& pt = r.points[j];
      os << "        {\"n\": " << pt.n << ", \"m\": " << pt.m << ", \"rounds\": " << pt.rounds
         << ", \"bits_per_node\": " << fmt(pt.bits_per_node)
         << ", \"total_bits\": " << pt.total_bits << ", \"ones_ratio\": " << fmt(pt.ones_ratio)
         << ", \"verified\": " << (pt.verified ? "true" : "false") << "}"
         << (j + 1 < r.points.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"checks\": [\n";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const ClaimCheck& c = r.checks[j];
      os << "        {\"metric\": \"" << json_escape(c.metric) << "\", \"expected\": \""
         << json_escape(c.expected) << "\", \"observed\": \"" << json_escape(c.observed)
         << "\", \"pass\": " << (c.pass ? "true" : "false") << "}"
         << (j + 1 < r.checks.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < pipelines.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string ClaimsReport::to_markdown() const {
  std::ostringstream os;
  os << "# Claims conformance report\n\n";
  os << "<!-- Generated by `lad report` — do not edit by hand; rerun to refresh. -->\n\n";
  os << "Source: arXiv:2405.04519 claims, checked mechanically against the real\n"
        "encode → decode → verify stack by the claims observatory (DESIGN.md §9.6).\n\n";
  os << "- commit: `" << git_commit << "`\n";
  os << "- generated: " << timestamp << "\n";
  os << "- sweep: n ∈ {";
  for (std::size_t i = 0; i < sweep_ns.size(); ++i) {
    if (i != 0) os << ", ";
    os << static_cast<long long>(sweep_ns[i]);
  }
  os << "}\n";
  os << "- overall: **" << (pass() ? "PASS" : "FAIL") << "**\n";

  for (const PipelineClaimReport& r : pipelines) {
    os << "\n## " << r.name << " (" << r.section << ") — "
       << (r.pass() ? "PASS" : "FAIL") << "\n\n";
    os << "> " << r.statement << "\n\n";
    os << "| n | m | rounds | bits/node | total bits | ones ratio | verified |\n";
    os << "|--:|--:|-------:|----------:|-----------:|-----------:|:--------:|\n";
    for (const SweepPoint& pt : r.points) {
      os << "| " << pt.n << " | " << pt.m << " | " << pt.rounds << " | "
         << fmt(pt.bits_per_node) << " | " << pt.total_bits << " | " << fmt(pt.ones_ratio)
         << " | " << (pt.verified ? "yes" : "NO") << " |\n";
    }
    os << "\n| check | expected | observed | verdict |\n";
    os << "|-------|----------|----------|:-------:|\n";
    for (const ClaimCheck& c : r.checks) {
      os << "| " << c.metric << " | " << c.expected << " | " << c.observed << " | "
         << (c.pass ? "pass" : "**FAIL**") << " |\n";
    }
  }
  return os.str();
}

}  // namespace lad::obs
