// Sink-side exporters for the telemetry subsystem (DESIGN.md §9).
//
// Formats:
//   * Chrome trace_event JSON — load in chrome://tracing or
//     https://ui.perfetto.dev ("Open trace file"). Balanced B/E duration
//     events, ts in microseconds, one tid per recording thread.
//   * JSONL — one event object per line, for ad-hoc jq/awk pipelines.
//   * Prometheus text exposition format — counters/gauges/histograms with
//     HELP/TYPE headers; histograms use cumulative le buckets. All values
//     are integers, so the rendering is byte-deterministic for a fixed
//     metric state.
//   * Human summary table — what `lad trace` prints.
//
// Everything here renders a point-in-time view; record first, export after
// parallel work has joined (the pool barrier orders the buffer writes).
#pragma once

#include <string>

#include "obs/telemetry.hpp"

namespace lad::obs {

std::string to_chrome_trace_json(const TraceRecorder& rec);
std::string to_events_jsonl(const TraceRecorder& rec);
std::string to_prometheus_text(const MetricsRegistry& reg);

/// Aligned `metric value` lines; histograms render count/sum/avg.
/// `skip_zero` drops zero-valued scalars (default: compact output).
std::string to_summary_table(const MetricsRegistry& reg, bool skip_zero = true);

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ" (bench JSON stamps).
std::string iso8601_utc_now();

}  // namespace lad::obs
