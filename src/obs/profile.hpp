// Profiling observatory (DESIGN.md §13): deterministic phase/thread time
// attribution on top of the §9 Span/MetricsRegistry machinery.
//
// Three ingredients, all compiled out under -DLAD_TELEMETRY=OFF:
//
//   1. *Phase attribution.* Every span name in span_name_catalog() maps to
//      one of six fixed phases (gather / compute / message-exchange /
//      fault-transition / verify / other). Self-time is computed by stack
//      replay over each thread's balanced B/E stream: a span's self-time is
//      its duration minus the durations of its direct children, so summing
//      self-time over all cells reproduces total traced time exactly once.
//      Summed across threads it is CPU time, which can exceed wall time.
//   2. *Pool accounting.* util/thread_pool.* timestamps every chunk
//      (LAD_TM_CHUNK_TIMER); PoolAccounting folds the per-thread busy time
//      and chunk counts into utilization and an imbalance ratio
//      (max busy / mean busy across pool workers).
//   3. *Allocation accounting.* Deterministic counting hooks — not
//      allocator interposition — around per-round message buffers
//      (local/engine.cpp) and serialized ball gathers (local/gather.cpp).
//      Their increment multisets are thread-count-invariant, so allocation
//      columns are part of the report's deterministic contract.
//
// The report separates *deterministic structure* (identity, graph digests,
// message/advice counts, allocation totals — byte-identical across reruns
// and thread counts; what `lad diffprof` gates exactly) from *measured
// timings* (self-ms, imbalance — compared only with tolerance). Same split,
// same exit codes (0/3/4, CLI maps usage to 2) as obs/benchdiff.*.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/benchdiff.hpp"  // DiffStatus, CaseDiff, BenchDiffOptions
#include "obs/telemetry.hpp"

namespace lad::obs {

/// Bumped whenever the profile JSON layout changes incompatibly.
/// v1: initial format — nested "deterministic" object + "measured" object.
inline constexpr int kProfileSchemaVersion = 1;

/// The six phases, in canonical (report) order. The last entry, "other",
/// absorbs spans outside the explicit mapping (harness scaffolding).
const std::vector<std::string>& phase_taxonomy();

/// Maps a span name from span_name_catalog() to its phase. Unknown names
/// fall into "other" — the taxonomy is total by construction.
std::string phase_of_span(const std::string& span_name);

// ---------------------------------------------------------------------------
// Pool accounting

/// Per-worker busy-time/chunk ledger fed by LAD_TM_CHUNK_TIMER in
/// util/thread_pool.cpp. Slots are keyed by the TraceRecorder tid of the
/// executing thread so profile rows line up with trace lanes. Like the
/// trace buffers, slots persist across reset() (ids are stable per thread);
/// reset() zeroes the accumulators.
class PoolAccounting {
 public:
  struct Slot {
    int tid = -1;
    long long busy_us = 0;
    long long chunks = 0;
  };

  static PoolAccounting& instance();

  /// Zeroes every slot's accumulators (profiling rep boundary).
  void reset();

  /// Adds one executed chunk of `dur_us` to the calling thread's slot.
  void record_chunk(std::uint64_t dur_us);

  /// Snapshot of all slots that executed at least one chunk, tid ascending.
  std::vector<Slot> slots() const;

 private:
  struct SlotCell;
  SlotCell& local_slot();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SlotCell>> cells_;
};

/// RAII chunk timer: measures one pool chunk and folds it into
/// PoolAccounting. Inactive while telemetry is runtime-disabled (latched at
/// construction, like Span).
class ChunkTimer {
 public:
  ChunkTimer();
  ~ChunkTimer();
  ChunkTimer(const ChunkTimer&) = delete;
  ChunkTimer& operator=(const ChunkTimer&) = delete;

 private:
  std::uint64_t begin_us_ = 0;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Self-time attribution

/// One (phase, tid) accumulator from stack replay.
struct CellAccum {
  long long self_us = 0;
  long long spans = 0;
};

/// Replays each thread's B/E stream with an explicit stack and returns
/// self-time per (phase, tid). Unbalanced leftovers (spans still open when
/// the snapshot was taken) are ignored rather than guessed at.
std::map<std::pair<std::string, int>, CellAccum> self_times_by_cell(
    const std::vector<std::pair<int, std::vector<TraceEvent>>>& events_by_thread);

/// Phase with the largest summed self-time across the recorder's current
/// events; empty when nothing was traced. Bench uses this for per-case
/// top-phase provenance (schema v5).
std::string top_phase_from_trace();

/// Warmup discipline shared by `lad profile` and `lad timeline` (--reps K),
/// matching `lad bench`: one discarded warmup run before the timed
/// min-of-K loop when K > 1, none for a single-rep run. Pinned by
/// tests/test_profile.cpp.
constexpr int profile_warmup_runs(int reps) { return reps > 1 ? 1 : 0; }

// ---------------------------------------------------------------------------
// Report

/// Deterministic identity of one profiled run: everything here must be
/// byte-identical across reruns and thread counts (§8 contract).
struct ProfileIdentity {
  std::string pipeline;
  std::string source;        // GraphSource spec, §12 grammar
  std::string graph_digest;  // 16-hex Graph::digest()
  long long n = 0;
  long long m = 0;
  std::uint64_t seed = 1;
  long long decode_rounds = 0;
  bool verify_ok = false;
  std::string output_digest;  // 16-hex fingerprint of per-node outputs
  long long advice_bits = 0;
  long long engine_messages = 0;
  long long engine_message_bits = 0;
};

/// Deterministic allocation totals for one phase (taxonomy order).
struct PhaseAlloc {
  std::string phase;
  long long allocs = 0;
  long long alloc_bytes = 0;
};

/// Measured per-phase timing row, ranked by self_ms descending.
struct PhaseTime {
  std::string phase;
  double self_ms = 0;
  double pct = 0;  // share of summed self-time, 0..100
  long long spans = 0;
};

/// Measured phase × thread cost-center cell, ranked by self_ms descending.
struct ProfileCell {
  std::string phase;
  int tid = 0;
  double self_ms = 0;
  long long spans = 0;
};

/// Measured per-thread utilization row (main thread + pool workers).
struct ProfileThread {
  int tid = 0;
  std::string name;  // from TraceRecorder::thread_names(); "" if unnamed
  double busy_ms = 0;
  double idle_ms = 0;
  long long chunks = 0;
  long long steal = 0;  // chunks beyond an even share (static partition = 0)
};

struct ProfileReport {
  ProfileIdentity id;
  std::vector<PhaseAlloc> phase_allocs;  // taxonomy order, all six phases

  int threads = 1;
  int reps = 1;
  double total_ms = 0;  // min-of-reps end-to-end wall time
  double imbalance = 1.0;
  std::vector<PhaseTime> phases;
  std::vector<ProfileCell> cells;
  std::vector<ProfileThread> thread_rows;
  long long trace_events = 0;
  long long trace_dropped = 0;

  std::string git_commit;
  std::string timestamp;

  /// Exactly the nested "deterministic" object of to_json(): the byte-
  /// stable slice CI diffs across thread counts.
  std::string deterministic_json() const;
  std::string to_json() const;
  /// Ranked cost-center report with a top-3 time-sink summary (PERF page).
  std::string to_markdown() const;
};

/// Assembles a report from a trace snapshot + pool slots. `total_ms` is the
/// caller-measured wall time of the profiled rep; identity and allocation
/// fields must already be filled in `id` / `phase_allocs` by the caller
/// (the CLI reads them from obs::core() after the run).
ProfileReport build_profile_report(
    const ProfileIdentity& id, const std::vector<PhaseAlloc>& phase_allocs,
    const std::vector<std::pair<int, std::vector<TraceEvent>>>& events_by_thread,
    const std::vector<PoolAccounting::Slot>& pool_slots,
    const std::vector<std::pair<int, std::string>>& thread_names, int threads, int reps,
    double total_ms);

/// 16-hex order-sensitive fingerprint of a string sequence (splitmix64
/// folding; self-contained so obs stays stdlib-only). The CLI uses it for
/// the output digest over per-node output labels.
std::string fingerprint_hex(const std::vector<std::string>& parts);

// ---------------------------------------------------------------------------
// diffprof

/// Parsed profile JSON, reduced to what the differ compares.
struct ProfDoc {
  int schema_version = 0;
  std::string pipeline;
  std::string source;
  std::string graph_digest;
  long long n = 0;
  long long m = 0;
  long long seed = 1;
  long long decode_rounds = 0;
  bool verify_ok = false;
  std::string output_digest;
  long long advice_bits = 0;
  long long engine_messages = 0;
  long long engine_message_bits = 0;
  std::vector<PhaseAlloc> phase_allocs;
  int threads = 1;
  double total_ms = 0;
};

/// Parses a `lad profile --json` document. Throws std::runtime_error on
/// malformed input or an unknown schema version.
ProfDoc parse_profile_json(const std::string& text);

struct ProfDiffResult {
  std::vector<CaseDiff> diffs;  // empty = clean; name = "" (document-level)

  DiffStatus status() const;
  std::string to_text() const;
  std::string to_json() const;
};

/// Structural diff mirroring diff_bench: deterministic fields exact
/// (MISMATCH, exit 4), total_ms gated by baseline + max(tol_ms,
/// tol_rel·baseline) (REGRESSION, exit 3). Thread counts are *not*
/// compared — the whole point is that deterministic fields agree across
/// thread counts.
ProfDiffResult diff_profile(const ProfDoc& baseline, const ProfDoc& candidate,
                            const BenchDiffOptions& opts = {});

}  // namespace lad::obs

// ---------------------------------------------------------------------------
// Chunk-timing hook for util/thread_pool.cpp. Mirrors the LAD_TM_* macros
// in telemetry.hpp: an empty statement under -DLAD_TELEMETRY=OFF.
#if LAD_TELEMETRY
#define LAD_TM_CHUNK_TIMER(var) ::lad::obs::ChunkTimer var
#else
#define LAD_TM_CHUNK_TIMER(var) ((void)0)
#endif
