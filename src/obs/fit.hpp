// Scaling-law fitter: classify an observed (n, y) series into the growth
// classes the paper's theorems are stated in (DESIGN.md §9.6).
//
// The source paper's "evaluation" is a set of asymptotic statements — O(1)
// decode rounds, 1 bit of advice per node, Θ(log* n) advice-free baselines,
// Θ(n) lower bounds — and Rozhoň's survey (arXiv:2406.19430) frames exactly
// these classes (O(1), Θ(log* n), Θ(log n), poly n) as the observable
// signatures of LOCAL complexity. This module turns a measured n-sweep into
// one of those signatures so the claim registry (obs/claims.hpp) can check
// theorems mechanically instead of by hand-read tables.
//
// Method: a flatness shortcut (relative range of the series), then ordinary
// least squares of y against each candidate basis b(n) ∈ {log* n, log2 n,
// √n, n}. The winner is the positive-slope basis with the highest R²,
// demoted back to "constant" when no basis explains the data (R² below
// min_r2) or when the fitted model predicts less total growth over the
// sweep than growth_margin — over any feasible n-range a noisy constant
// correlates with *something*, so "grows" must mean "grows materially".
// The log–log slope (power-law exponent) is reported alongside for the
// polynomial classes.
//
// Pure standard library; lives in lad_obs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lad::obs {

/// The growth classes claims are stated in, coarsest meaningful partition
/// of what a bench-scale n-sweep can distinguish.
enum class GrowthClass {
  kConstant,  // O(1): flat in n
  kLogStar,   // Θ(log* n): iterated-logarithm growth (Cole–Vishkin régime)
  kLog,       // Θ(log n)
  kSqrt,      // Θ(√n)
  kLinear,    // Θ(n)
};

const char* to_string(GrowthClass cls);
std::optional<GrowthClass> parse_growth_class(std::string_view name);

/// Iterated logarithm: number of times log2 must be applied to n before the
/// value drops to <= 1. log_star(1) = 0, log_star(16) = 3, log_star(2^16) = 4.
int log_star(double n);

struct FitOptions {
  /// Flatness shortcut: relative range (max-min)/mean at or below this
  /// classifies as constant without touching the regressions.
  double flat_tol = 0.10;
  /// Minimum R² a growth basis must reach to beat "constant".
  double min_r2 = 0.85;
  /// Minimum predicted total growth factor y^(n_max)/y^(n_min) of the
  /// winning fit; below it the series is materially flat.
  double growth_margin = 1.25;
};

/// Per-basis ordinary-least-squares diagnostics (y = intercept + slope·b(n)).
struct BasisFit {
  GrowthClass basis = GrowthClass::kConstant;
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};

struct FitResult {
  GrowthClass cls = GrowthClass::kConstant;
  /// Winning-basis regression (slope/intercept in that basis; for the
  /// constant class: slope 0, intercept = mean, r2 of the flat model).
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
  /// Power-law exponent: OLS slope of ln y vs ln n (0 for flat series).
  double exponent = 0;
  /// (max - min) / mean of the raw series — the flatness statistic.
  double rel_range = 0;
  /// Predicted growth factor of the winning fit across the sweep.
  double growth_factor = 1.0;
  /// All four growth-basis fits, for reporting (log*, log, sqrt, linear).
  std::vector<BasisFit> candidates;

  std::string to_string() const;
};

/// Classifies the growth of ys over ns. Requires matching sizes, at least
/// three points, strictly increasing ns >= 1, and finite non-negative ys;
/// throws std::invalid_argument otherwise.
FitResult fit_growth(const std::vector<double>& ns, const std::vector<double>& ys,
                     const FitOptions& opts = {});

}  // namespace lad::obs
