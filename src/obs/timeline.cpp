#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json_mini.hpp"

namespace lad::obs {
namespace {

using jsonmini::JsonParser;
using jsonmini::JsonValue;
using jsonmini::json_escape;
using jsonmini::num_field;
using jsonmini::str_field;

std::string fmt3(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt1(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

double us_to_ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

/// now - then, clamped at zero (telemetry can be enabled mid-window, in
/// which case "then" may postdate an earlier timestamp).
std::uint64_t delta_us(std::uint64_t now, std::uint64_t then) {
  return now > then ? now - then : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// WaitAccounting

struct WaitAccounting::WorkerCell {
  int tid = -1;
  // Single-writer (the owning worker thread); read by the dispatching
  // thread only after the pool's completion barrier, so relaxed atomics
  // are enough for TSan-cleanliness without ordering cost.
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<long long> busy_us{0};
  std::atomic<long long> chunks{0};
  std::atomic<std::uint64_t> first_start{0};
  std::atomic<std::uint64_t> last_end{0};
  std::atomic<long long> queue_us{0};
};

WaitAccounting& WaitAccounting::instance() {
  static WaitAccounting acc;
  return acc;
}

WaitAccounting::WorkerCell& WaitAccounting::local_cell() {
  thread_local std::shared_ptr<WorkerCell> cell;
  if (!cell) {
    cell = std::make_shared<WorkerCell>();
    cell->tid = TraceRecorder::instance().current_tid();
    std::lock_guard<std::mutex> lk(mu_);
    cells_.push_back(cell);
  }
  return *cell;
}

void WaitAccounting::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  open_.store(false, std::memory_order_relaxed);
  window_ = Window{};
}

void WaitAccounting::begin_dispatch() {
  // The pool serializes dispatches through its own lock, so no two windows
  // can be open at once; bumping the epoch retires every cell lazily.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  begin_us_.store(trace_now_us(), std::memory_order_relaxed);
  open_.store(true, std::memory_order_release);
}

void WaitAccounting::record_chunk(std::uint64_t start_us, std::uint64_t end_us) {
  if (!open_.load(std::memory_order_acquire)) return;  // serial inline path
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  WorkerCell& c = local_cell();
  if (c.epoch.load(std::memory_order_relaxed) != e) {
    c.epoch.store(e, std::memory_order_relaxed);
    c.busy_us.store(0, std::memory_order_relaxed);
    c.chunks.store(0, std::memory_order_relaxed);
    c.first_start.store(start_us, std::memory_order_relaxed);
    c.queue_us.store(0, std::memory_order_relaxed);
  }
  c.busy_us.fetch_add(static_cast<long long>(delta_us(end_us, start_us)),
                      std::memory_order_relaxed);
  c.chunks.fetch_add(1, std::memory_order_relaxed);
  c.last_end.store(end_us, std::memory_order_relaxed);
  c.queue_us.fetch_add(
      static_cast<long long>(delta_us(start_us, begin_us_.load(std::memory_order_relaxed))),
      std::memory_order_relaxed);
}

void WaitAccounting::end_dispatch() {
  const std::uint64_t now = trace_now_us();
  std::lock_guard<std::mutex> lk(mu_);
  if (!open_.load(std::memory_order_relaxed)) return;  // enabled mid-dispatch
  open_.store(false, std::memory_order_relaxed);
  fold_open_window_locked(now);
}

void WaitAccounting::fold_open_window_locked(std::uint64_t now_us) {
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  const std::uint64_t begin = begin_us_.load(std::memory_order_relaxed);
  int workers = 0;
  std::uint64_t min_first_start = 0;
  long long wait_sum = 0;
  long long max_wait = 0;
  long long queue_sum = 0;
  long long busy_sum = 0;
  long long max_busy = 0;
  int critical_tid = -1;
  for (const auto& c : cells_) {
    if (c->epoch.load(std::memory_order_relaxed) != e) continue;
    if (c->chunks.load(std::memory_order_relaxed) == 0) continue;
    ++workers;
    const std::uint64_t first = c->first_start.load(std::memory_order_relaxed);
    if (workers == 1 || first < min_first_start) min_first_start = first;
    const long long wait =
        static_cast<long long>(delta_us(now_us, c->last_end.load(std::memory_order_relaxed)));
    wait_sum += wait;
    max_wait = std::max(max_wait, wait);
    queue_sum += c->queue_us.load(std::memory_order_relaxed);
    const long long busy = c->busy_us.load(std::memory_order_relaxed);
    busy_sum += busy;
    if (busy > max_busy || critical_tid < 0) {
      max_busy = busy;
      critical_tid = c->tid;
    }
  }
  const long long latency =
      workers > 0 ? static_cast<long long>(delta_us(min_first_start, begin)) : 0;

  window_.dispatches += 1;
  window_.dispatch_us += latency;
  window_.queue_us += queue_sum;
  window_.wait_us += wait_sum;
  window_.max_wait_us = std::max(window_.max_wait_us, max_wait);
  window_.busy_us += busy_sum;
  if (max_busy > window_.max_busy_us) {
    window_.max_busy_us = max_busy;
    window_.critical_tid = critical_tid;
  }
  window_.workers = std::max(window_.workers, workers);

  core().pool_dispatches.add(1);
  core().pool_dispatch_us.add(latency);
  core().pool_barrier_wait_us.add(wait_sum);
  core().pool_queue_us.add(queue_sum);
}

WaitAccounting::Window WaitAccounting::drain_window() {
  std::lock_guard<std::mutex> lk(mu_);
  Window out = window_;
  window_ = Window{};
  return out;
}

WaitChunkTimer::WaitChunkTimer() {
  if (!enabled()) return;
  active_ = true;
  begin_us_ = trace_now_us();
}

WaitChunkTimer::~WaitChunkTimer() {
  if (active_) WaitAccounting::instance().record_chunk(begin_us_, trace_now_us());
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder rec;
  return rec;
}

FlightRecorder::RunCursor& FlightRecorder::cursor() {
  thread_local RunCursor cur;
  return cur;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

void FlightRecorder::begin_run() {
  RunCursor& c = cursor();
  c = RunCursor{};
  c.run_id = next_run_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  c.alloc_base = core().alloc_msgbuf.value();
  c.alloc_bytes_base = core().alloc_msgbuf_bytes.value();
  // Discard any pre-run dispatch window (gather/encode pool work).
  (void)WaitAccounting::instance().drain_window();
}

void FlightRecorder::begin_round() {
  RunCursor& c = cursor();
  c.round_begin_us = trace_now_us();
  c.alloc_base = core().alloc_msgbuf.value();
  c.alloc_bytes_base = core().alloc_msgbuf_bytes.value();
  // Scope the wait window to this round's dispatches.
  (void)WaitAccounting::instance().drain_window();
}

void FlightRecorder::end_round(long long round, long long cum_messages, long long cum_bytes,
                               long long cum_faults, long long cum_repairs) {
  RunCursor& c = cursor();
  const std::uint64_t now = trace_now_us();
  const WaitAccounting::Window w = WaitAccounting::instance().drain_window();

  RoundSample s;
  s.run_id = c.run_id;
  s.round = round;
  s.messages = cum_messages - c.prev_messages;
  s.bytes = cum_bytes - c.prev_bytes;
  s.faults = cum_faults - c.prev_faults;
  s.repairs = cum_repairs - c.prev_repairs;
  s.allocs = core().alloc_msgbuf.value() - c.alloc_base;
  s.alloc_bytes = core().alloc_msgbuf_bytes.value() - c.alloc_bytes_base;

  s.wall_ms = us_to_ms(delta_us(now, c.round_begin_us));
  s.dispatch_us = static_cast<double>(w.dispatch_us);
  s.queue_us = static_cast<double>(w.queue_us);
  s.wait_us = static_cast<double>(w.wait_us);
  s.max_wait_us = static_cast<double>(w.max_wait_us);
  s.workers = w.workers;
  if (w.workers >= 2 && w.busy_us > 0) {
    const double mean = static_cast<double>(w.busy_us) / static_cast<double>(w.workers);
    s.imbalance = mean > 0 ? static_cast<double>(w.max_busy_us) / mean : 1.0;
  }
  s.critical_tid = w.critical_tid;
  s.ts_us = now;

  c.prev_messages = cum_messages;
  c.prev_bytes = cum_bytes;
  c.prev_faults = cum_faults;
  c.prev_repairs = cum_repairs;

  push(s);
  core().timeline_rounds.add(1);
}

void FlightRecorder::push(const RoundSample& s) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(s);
    return;
  }
  ring_[head_] = s;
  head_ = (head_ + 1) % kRingCapacity;
  ++dropped_;
}

std::vector<RoundSample> FlightRecorder::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<RoundSample> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

long long FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void FlightRecorder::dump(std::ostream& os, const std::string& reason,
                          std::size_t max_rounds) const {
  const std::vector<RoundSample> all = samples();
  long long overwritten = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    overwritten = dropped_;
  }
  os << "[flight-recorder] " << reason << "\n";
  os << "[flight-recorder] " << all.size() << " round(s) held, " << overwritten
     << " overwritten; showing last " << std::min(max_rounds, all.size()) << "\n";
  os << "[flight-recorder]   run round     msgs    bytes faults repairs  wall_ms "
        "wait_us(max) workers\n";
  const std::size_t first = all.size() > max_rounds ? all.size() - max_rounds : 0;
  for (std::size_t i = first; i < all.size(); ++i) {
    const RoundSample& s = all[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "[flight-recorder] %5lld %5lld %8lld %8lld %6lld %7lld %8.3f %12.1f %7d\n",
                  s.run_id, s.round, s.messages, s.bytes, s.faults, s.repairs, s.wall_ms,
                  s.max_wait_us, s.workers);
    os << buf;
  }
  LAD_TM(core().flight_dumps.add(1));
}

// ---------------------------------------------------------------------------
// Amdahl / critical path

SerialSplit serial_split_from_trace() {
  const auto cells = self_times_by_cell(TraceRecorder::instance().events_by_thread());
  long long compute_us = 0;
  long long serial_us = 0;
  for (const auto& [key, acc] : cells) {
    if (key.first == "compute") {
      compute_us += acc.self_us;
    } else {
      serial_us += acc.self_us;
    }
  }
  SerialSplit split;
  split.serial_ms = static_cast<double>(serial_us) / 1000.0;
  split.compute_ms = static_cast<double>(compute_us) / 1000.0;
  const double total = split.serial_ms + split.compute_ms;
  split.serial_fraction = total > 0 ? split.serial_ms / total : 0.0;
  return split;
}

double amdahl_speedup(double serial_fraction, int threads) {
  const double s = std::min(1.0, std::max(0.0, serial_fraction));
  const double t = threads < 1 ? 1.0 : static_cast<double>(threads);
  return 1.0 / (s + (1.0 - s) / t);
}

// ---------------------------------------------------------------------------
// Report assembly

namespace {

TimelineRound round_of(const RoundSample& s) {
  return {s.round, s.messages, s.bytes, s.faults, s.repairs, s.allocs, s.alloc_bytes};
}

MeasuredRound measured_of(const RoundSample& s) {
  return {s.round,      s.wall_ms, s.dispatch_us, s.queue_us, s.wait_us,
          s.max_wait_us, s.workers, s.imbalance,   s.critical_tid};
}

}  // namespace

TimelineReport build_timeline_report(const ProfileIdentity& id,
                                     const std::vector<TimelineRunInput>& runs) {
  TimelineReport rep;
  rep.id = id;
  if (runs.empty()) return rep;

  std::vector<TimelineRunInput> ordered = runs;
  std::sort(ordered.begin(), ordered.end(),
            [](const TimelineRunInput& a, const TimelineRunInput& b) {
              return a.threads < b.threads;
            });

  for (const RoundSample& s : ordered.front().samples) rep.rounds.push_back(round_of(s));

  // §8 contract: the deterministic per-round series must agree exactly
  // across thread counts. A divergence is a determinism bug, not noise.
  for (const TimelineRunInput& run : ordered) {
    if (run.samples.size() != rep.rounds.size()) {
      throw std::runtime_error(
          "timeline: deterministic round count diverged across thread counts (" +
          std::to_string(rep.rounds.size()) + " at " +
          std::to_string(ordered.front().threads) + "t vs " +
          std::to_string(run.samples.size()) + " at " + std::to_string(run.threads) + "t)");
    }
    for (std::size_t i = 0; i < run.samples.size(); ++i) {
      const TimelineRound a = rep.rounds[i];
      const TimelineRound b = round_of(run.samples[i]);
      if (a.round != b.round || a.messages != b.messages || a.bytes != b.bytes ||
          a.faults != b.faults || a.repairs != b.repairs || a.allocs != b.allocs ||
          a.alloc_bytes != b.alloc_bytes) {
        throw std::runtime_error("timeline: deterministic round " + std::to_string(a.round) +
                                 " diverged between " +
                                 std::to_string(ordered.front().threads) + "t and " +
                                 std::to_string(run.threads) + "t runs");
      }
    }
  }

  // The Amdahl serial fraction is measured where it is well-defined: the
  // 1-thread run (all self-time on one thread). Fall back to the smallest
  // thread count when no 1-thread run was requested.
  const TimelineRunInput* one = nullptr;
  for (const TimelineRunInput& run : ordered) {
    if (run.threads == 1) one = &run;
  }
  const double s1 = (one != nullptr ? *one : ordered.front()).split.serial_fraction;
  const double t1_total = one != nullptr ? one->total_ms : 0.0;

  for (const TimelineRunInput& run : ordered) {
    TimelineThreadRun row;
    row.threads = run.threads;
    row.total_ms = run.total_ms;
    row.serial_ms = run.split.serial_ms;
    row.compute_ms = run.split.compute_ms;
    row.serial_fraction = run.split.serial_fraction;
    row.predicted_max_speedup = amdahl_speedup(s1, run.threads);
    row.measured_speedup = (t1_total > 0 && run.total_ms > 0) ? t1_total / run.total_ms : 0.0;
    for (const RoundSample& s : run.samples) row.rounds.push_back(measured_of(s));
    rep.runs.push_back(std::move(row));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// JSON

std::string TimelineReport::deterministic_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "    \"timeline_schema_version\": " << kTimelineSchemaVersion << ",\n";
  os << "    \"pipeline\": \"" << json_escape(id.pipeline) << "\",\n";
  os << "    \"source\": \"" << json_escape(id.source) << "\",\n";
  os << "    \"graph_digest\": \"" << json_escape(id.graph_digest) << "\",\n";
  os << "    \"n\": " << id.n << ",\n";
  os << "    \"m\": " << id.m << ",\n";
  os << "    \"seed\": " << id.seed << ",\n";
  os << "    \"decode_rounds\": " << id.decode_rounds << ",\n";
  os << "    \"verify_ok\": " << (id.verify_ok ? "true" : "false") << ",\n";
  os << "    \"output_digest\": \"" << json_escape(id.output_digest) << "\",\n";
  os << "    \"advice_bits\": " << id.advice_bits << ",\n";
  os << "    \"engine_messages\": " << id.engine_messages << ",\n";
  os << "    \"engine_message_bits\": " << id.engine_message_bits << ",\n";
  os << "    \"rounds\": [\n";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const TimelineRound& r = rounds[i];
    os << "      {\"round\": " << r.round << ", \"messages\": " << r.messages
       << ", \"bytes\": " << r.bytes << ", \"faults\": " << r.faults
       << ", \"repairs\": " << r.repairs << ", \"allocs\": " << r.allocs
       << ", \"alloc_bytes\": " << r.alloc_bytes << "}" << (i + 1 < rounds.size() ? "," : "")
       << "\n";
  }
  os << "    ]\n";
  os << "  }";
  return os.str();
}

std::string TimelineReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"deterministic\": " << deterministic_json() << ",\n";
  os << "  \"git_commit\": \"" << json_escape(git_commit) << "\",\n";
  os << "  \"timestamp\": \"" << json_escape(timestamp) << "\",\n";
  os << "  \"measured\": {\n";
  os << "    \"flight_dropped\": " << flight_dropped << ",\n";
  os << "    \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TimelineThreadRun& r = runs[i];
    os << "      {\n";
    os << "        \"threads\": " << r.threads << ",\n";
    os << "        \"total_ms\": " << fmt3(r.total_ms) << ",\n";
    os << "        \"serial_ms\": " << fmt3(r.serial_ms) << ",\n";
    os << "        \"compute_ms\": " << fmt3(r.compute_ms) << ",\n";
    os << "        \"serial_fraction\": " << fmt3(r.serial_fraction) << ",\n";
    os << "        \"predicted_max_speedup\": " << fmt3(r.predicted_max_speedup) << ",\n";
    os << "        \"measured_speedup\": " << fmt3(r.measured_speedup) << ",\n";
    os << "        \"rounds\": [\n";
    for (std::size_t j = 0; j < r.rounds.size(); ++j) {
      const MeasuredRound& m = r.rounds[j];
      os << "          {\"round\": " << m.round << ", \"wall_ms\": " << fmt3(m.wall_ms)
         << ", \"dispatch_us\": " << fmt1(m.dispatch_us) << ", \"queue_us\": "
         << fmt1(m.queue_us) << ", \"wait_us\": " << fmt1(m.wait_us) << ", \"max_wait_us\": "
         << fmt1(m.max_wait_us) << ", \"workers\": " << m.workers << ", \"imbalance\": "
         << fmt3(m.imbalance) << ", \"critical_tid\": " << m.critical_tid << "}"
         << (j + 1 < r.rounds.size() ? "," : "") << "\n";
    }
    os << "        ]\n";
    os << "      }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Markdown

std::string TimelineReport::to_markdown() const {
  std::ostringstream os;
  os << "# TIMELINE — runtime timeline observatory report\n\n";
  os << "Generated by `lad timeline`; do not edit by hand. The per-round\n"
        "delta series is deterministic (byte-identical across reruns and\n"
        "thread counts, DESIGN.md §14); wait/dispatch columns are measured.\n\n";
  os << "- pipeline: `" << id.pipeline << "`\n";
  os << "- source: `" << id.source << "` (n=" << id.n << ", m=" << id.m << ", digest `"
     << id.graph_digest << "`)\n";
  os << "- seed: " << id.seed << " · verify: " << (id.verify_ok ? "ok" : "FAILED")
     << " · output digest: `" << id.output_digest << "`\n";
  os << "- decode rounds: " << id.decode_rounds << " · advice bits: " << id.advice_bits
     << " · engine messages: " << id.engine_messages << " (" << id.engine_message_bits
     << " bits)\n";
  os << "- recorded rounds: " << rounds.size() << " · flight samples overwritten: "
     << flight_dropped << "\n\n";

  os << "## Amdahl summary\n\n";
  os << "| threads | total_ms | serial_ms | compute_ms | serial_fraction | "
        "predicted_max_speedup | measured_speedup |\n";
  os << "|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const TimelineThreadRun& r : runs) {
    os << "| " << r.threads << " | " << fmt3(r.total_ms) << " | " << fmt3(r.serial_ms) << " | "
       << fmt3(r.compute_ms) << " | " << fmt3(r.serial_fraction) << " | "
       << fmt3(r.predicted_max_speedup) << " | " << fmt3(r.measured_speedup) << " |\n";
  }
  os << "\n";

  os << "## Deterministic round series\n\n";
  os << "| round | messages | bytes | faults | repairs | allocs | alloc_bytes |\n";
  os << "|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const TimelineRound& r : rounds) {
    os << "| " << r.round << " | " << r.messages << " | " << r.bytes << " | " << r.faults
       << " | " << r.repairs << " | " << r.allocs << " | " << r.alloc_bytes << " |\n";
  }
  os << "\n";

  for (const TimelineThreadRun& r : runs) {
    os << "## Measured rounds at " << r.threads << " thread" << (r.threads == 1 ? "" : "s")
       << "\n\n";
    os << "| round | wall_ms | dispatch_us | queue_us | wait_us | max_wait_us | workers | "
          "imbalance | critical_tid |\n";
    os << "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const MeasuredRound& m : r.rounds) {
      os << "| " << m.round << " | " << fmt3(m.wall_ms) << " | " << fmt1(m.dispatch_us)
         << " | " << fmt1(m.queue_us) << " | " << fmt1(m.wait_us) << " | "
         << fmt1(m.max_wait_us) << " | " << m.workers << " | " << fmt3(m.imbalance) << " | "
         << m.critical_tid << " |\n";
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// difftl

TimelineDoc parse_timeline_json(const std::string& text) {
  const JsonValue root = JsonParser(text, "timeline JSON").parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("timeline JSON: top level is not an object");
  }
  const JsonValue* det = root.find("deterministic");
  if (det == nullptr || det->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("timeline JSON: missing \"deterministic\" object");
  }
  TimelineDoc doc;
  doc.schema_version = static_cast<int>(num_field(*det, "timeline_schema_version", true));
  if (doc.schema_version < 1 || doc.schema_version > kTimelineSchemaVersion) {
    throw std::runtime_error("timeline JSON: unsupported timeline_schema_version " +
                             std::to_string(doc.schema_version));
  }
  doc.pipeline = str_field(*det, "pipeline", true);
  doc.source = str_field(*det, "source", true);
  doc.graph_digest = str_field(*det, "graph_digest", true);
  doc.n = static_cast<long long>(num_field(*det, "n", true));
  doc.m = static_cast<long long>(num_field(*det, "m", true));
  doc.seed = static_cast<long long>(num_field(*det, "seed", true));
  doc.decode_rounds = static_cast<long long>(num_field(*det, "decode_rounds", true));
  const JsonValue* ok = det->find("verify_ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    throw std::runtime_error("timeline JSON: missing boolean \"verify_ok\"");
  }
  doc.verify_ok = ok->boolean;
  doc.output_digest = str_field(*det, "output_digest", true);
  doc.advice_bits = static_cast<long long>(num_field(*det, "advice_bits", true));
  doc.engine_messages = static_cast<long long>(num_field(*det, "engine_messages", true));
  doc.engine_message_bits = static_cast<long long>(num_field(*det, "engine_message_bits", true));
  const JsonValue* rounds = det->find("rounds");
  if (rounds == nullptr || rounds->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("timeline JSON: missing \"rounds\" array");
  }
  for (const JsonValue& r : rounds->array) {
    if (r.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("timeline JSON: round entry is not an object");
    }
    TimelineRound row;
    row.round = static_cast<long long>(num_field(r, "round", true));
    row.messages = static_cast<long long>(num_field(r, "messages", true));
    row.bytes = static_cast<long long>(num_field(r, "bytes", true));
    row.faults = static_cast<long long>(num_field(r, "faults", true));
    row.repairs = static_cast<long long>(num_field(r, "repairs", true));
    row.allocs = static_cast<long long>(num_field(r, "allocs", true));
    row.alloc_bytes = static_cast<long long>(num_field(r, "alloc_bytes", true));
    doc.rounds.push_back(row);
  }
  if (const JsonValue* meas = root.find("measured");
      meas != nullptr && meas->kind == JsonValue::Kind::kObject) {
    if (const JsonValue* runs = meas->find("runs");
        runs != nullptr && runs->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& r : runs->array) {
        if (r.kind != JsonValue::Kind::kObject) continue;
        doc.run_times.emplace_back(static_cast<int>(num_field(r, "threads", true)),
                                   num_field(r, "total_ms", true));
      }
    }
  }
  return doc;
}

DiffStatus TimelineDiffResult::status() const {
  DiffStatus worst = DiffStatus::kClean;
  for (const auto& d : diffs) {
    if (static_cast<int>(d.severity) > static_cast<int>(worst)) worst = d.severity;
  }
  return worst;
}

std::string TimelineDiffResult::to_text() const {
  std::ostringstream os;
  if (diffs.empty()) {
    os << "difftl: clean\n";
    return os.str();
  }
  for (const auto& d : diffs) {
    os << (d.severity == DiffStatus::kRegression ? "REGRESSION" : "MISMATCH") << " [" << d.field
       << "]: " << d.detail << "\n";
  }
  os << "difftl: " << diffs.size() << " finding(s), exit " << static_cast<int>(status()) << "\n";
  return os.str();
}

TimelineDiffResult diff_timeline(const TimelineDoc& baseline, const TimelineDoc& candidate,
                                 const BenchDiffOptions& opts) {
  TimelineDiffResult res;
  auto mismatch = [&res](const std::string& field, const std::string& detail) {
    res.diffs.push_back({"", field, detail, DiffStatus::kMismatch});
  };
  auto exact_str = [&](const char* field, const std::string& b, const std::string& c) {
    if (b != c) mismatch(field, "baseline '" + b + "' != candidate '" + c + "'");
  };
  auto exact_num = [&](const char* field, long long b, long long c) {
    if (b != c) {
      mismatch(field, "baseline " + std::to_string(b) + " != candidate " + std::to_string(c));
    }
  };

  exact_str("pipeline", baseline.pipeline, candidate.pipeline);
  exact_str("source", baseline.source, candidate.source);
  exact_str("graph_digest", baseline.graph_digest, candidate.graph_digest);
  exact_num("n", baseline.n, candidate.n);
  exact_num("m", baseline.m, candidate.m);
  exact_num("seed", baseline.seed, candidate.seed);
  exact_num("decode_rounds", baseline.decode_rounds, candidate.decode_rounds);
  if (baseline.verify_ok != candidate.verify_ok) {
    mismatch("verify_ok", std::string("baseline ") + (baseline.verify_ok ? "true" : "false") +
                              " != candidate " + (candidate.verify_ok ? "true" : "false"));
  }
  exact_str("output_digest", baseline.output_digest, candidate.output_digest);
  exact_num("advice_bits", baseline.advice_bits, candidate.advice_bits);
  exact_num("engine_messages", baseline.engine_messages, candidate.engine_messages);
  exact_num("engine_message_bits", baseline.engine_message_bits, candidate.engine_message_bits);

  if (baseline.rounds.size() != candidate.rounds.size()) {
    mismatch("rounds", "round count baseline " + std::to_string(baseline.rounds.size()) +
                           " != candidate " + std::to_string(candidate.rounds.size()));
  } else {
    for (std::size_t i = 0; i < baseline.rounds.size(); ++i) {
      const TimelineRound& b = baseline.rounds[i];
      const TimelineRound& c = candidate.rounds[i];
      const std::string at = "rounds[" + std::to_string(b.round) + "]";
      if (b.round != c.round || b.messages != c.messages || b.bytes != c.bytes ||
          b.faults != c.faults || b.repairs != c.repairs || b.allocs != c.allocs ||
          b.alloc_bytes != c.alloc_bytes) {
        mismatch(at, "deterministic round deltas diverged (messages " +
                         std::to_string(b.messages) + "->" + std::to_string(c.messages) +
                         ", bytes " + std::to_string(b.bytes) + "->" +
                         std::to_string(c.bytes) + ", faults " + std::to_string(b.faults) +
                         "->" + std::to_string(c.faults) + ", repairs " +
                         std::to_string(b.repairs) + "->" + std::to_string(c.repairs) +
                         ", allocs " + std::to_string(b.allocs) + "->" +
                         std::to_string(c.allocs) + ")");
      }
    }
  }

  // Timing gate per matching thread count, mirroring diff_profile's slack.
  for (const auto& [threads, b_ms] : baseline.run_times) {
    for (const auto& [c_threads, c_ms] : candidate.run_times) {
      if (c_threads != threads) continue;
      const double allowed = b_ms + std::max(opts.tol_ms, opts.tol_rel * b_ms);
      if (c_ms > allowed) {
        res.diffs.push_back(
            {"", "total_ms/t=" + std::to_string(threads),
             "candidate " + fmt3(c_ms) + " ms exceeds baseline " + fmt3(b_ms) +
                 " ms + tolerance (allowed " + fmt3(allowed) + " ms)",
             DiffStatus::kRegression});
      }
    }
  }
  return res;
}

}  // namespace lad::obs
