// Bench-regression sentinel: structural diff of two `lad bench --json`
// documents (DESIGN.md §9.7).
//
// The bench JSON separates two kinds of fields and the diff treats them
// accordingly:
//
//   * *Deterministic* fields — the case set, n/m, decode rounds, advice
//     bits, and (schema v3+) the output digest — are contract: any change
//     is a structural MISMATCH (exit 4), because the same source at the
//     same seeds must reproduce them byte-for-byte on any machine.
//   * *Timing* fields — wall_ms_1t per case — are compared with tolerance
//     (absolute --tol-ms plus relative --tol-rel slack); a candidate slower
//     than baseline + max(tol_ms, tol_rel·baseline) is a REGRESSION
//     (exit 3). The serial time is gated, not the threaded one: min-of-K
//     serial timing (bench --reps) is the stable axis, thread scheduling
//     noise is not.
//
// Exit-code contract (machine-checkable; CI gates on >= 3):
//   0 clean · 3 timing regression · 4 structural/digest mismatch
//   (the CLI maps parse/usage errors to 2, like every other lad command).
//
// The parser accepts exactly the JSON subset our own writer emits (schema
// v2+), field order free; it rejects anything else loudly rather than
// guessing.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lad::obs {

/// One parsed bench case row. `digest` is empty on schema-v2 documents
/// (pre-digest); the diff then skips digest comparison for that case.
struct BenchCaseRow {
  std::string name;
  int n = 0;
  int m = 0;
  int rounds = 0;
  double bits_per_node = 0;
  long long total_bits = 0;
  double wall_ms_1 = 0;
  double wall_ms = 0;
  std::string digest;
  /// Graph provenance (schema v4, source-driven cases only; empty
  /// otherwise): when present in both documents they are deterministic
  /// fields — a diverged source spec or graph digest is a MISMATCH.
  std::string source;
  std::string graph_digest;
  /// Per-case thread count (schema v5; defaults to 1 on older documents).
  /// Informational — `--threads 1,2,4` scaling rows are named "case/t=K",
  /// so the case-set comparison already keys on thread count.
  int threads = 1;
  /// Hottest profiling phase during the serial reps (schema v5, metrics
  /// runs only; empty otherwise). Provenance, not contract: never diffed —
  /// timing attribution may legitimately shift between machines.
  std::string top_phase;
  std::map<std::string, long long> metrics;
};

struct BenchDoc {
  int schema_version = 0;
  std::string git_commit;
  std::string timestamp;
  std::string suite;
  int threads = 0;
  int hardware_threads = 0;
  int reps = 1;  // schema v3; defaults to 1 on older documents
  std::vector<BenchCaseRow> cases;
};

/// Parses a bench JSON document. Throws std::runtime_error on malformed
/// input or schema_version < 2.
BenchDoc parse_bench_json(const std::string& text);

/// Lenient variant for the perf-trajectory table (`lad report`): accepts
/// every schema generation back to the v1 documents that predate
/// schema_version (missing document/case fields default instead of
/// throwing; a v1 document parses as schema_version 1). Still throws on
/// malformed JSON or a case without a name — the lenience is about schema
/// evolution, not syntax.
BenchDoc parse_bench_json_lenient(const std::string& text);

/// One named bench generation for the perf-trajectory table.
struct BenchGeneration {
  std::string label;  // provenance, e.g. the file name "BENCH_pr3.json"
  BenchDoc doc;
};

/// Markdown perf-trajectory table: one row per case name (union across
/// generations, first-seen order), one column per generation's serial
/// min-of-reps wall time (`wall_ms_1t`); cases absent from a generation
/// render as "—". Wall times are machine-dependent, so the table is
/// provenance for humans, never diffed.
std::string perf_trajectory_markdown(const std::vector<BenchGeneration>& generations);

enum class DiffStatus {
  kClean = 0,
  kRegression = 3,  // timing outside tolerance
  kMismatch = 4,    // deterministic field / case set / digest diverged
};

struct BenchDiffOptions {
  /// Absolute wall-time slack in milliseconds.
  double tol_ms = 250.0;
  /// Relative wall-time slack as a fraction of the baseline case time.
  double tol_rel = 0.75;
};

struct CaseDiff {
  std::string name;   // case name ("" = document-level)
  std::string field;  // which field diverged
  std::string detail; // human-readable one-liner
  DiffStatus severity = DiffStatus::kMismatch;
};

struct BenchDiffResult {
  std::vector<CaseDiff> diffs;  // empty = clean
  int cases_compared = 0;

  /// Worst severity across diffs — the process exit code.
  DiffStatus status() const;
  std::string to_text() const;
  std::string to_json() const;
};

BenchDiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& candidate,
                           const BenchDiffOptions& opts = {});

}  // namespace lad::obs
