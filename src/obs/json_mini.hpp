// Minimal JSON reader for the subset our own writers emit: objects,
// arrays, strings (no escapes beyond \" and \\), numbers, true/false.
// Anything else is a hard parse error — this reads our own artifacts
// (bench JSON, profile JSON), so leniency would only mask writer bugs.
//
// Shared by obs/benchdiff.cpp and obs/profile.cpp; header-only so the
// parser stays a single definition with zero link-time surface.
#pragma once

#include <cctype>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lad::obs::jsonmini {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  /// `what` names the artifact kind in error messages ("bench JSON",
  /// "profile JSON", ...).
  explicit JsonParser(const std::string& text, std::string what = "bench JSON")
      : text_(text), what_(std::move(what)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(what_ + " parse error at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           ((std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // The greedy scan accepts shapes stod rejects ("-", "1e", "1.2.3");
    // surface those as parse errors instead of leaking std::invalid_argument.
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      v.number = std::stod(token, &used);
      if (used != token.size()) fail("invalid number '" + token + "'");
    } catch (const std::logic_error&) {  // invalid_argument / out_of_range
      fail("invalid number '" + token + "'");
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string what_;
  std::size_t pos_ = 0;
};

inline double num_field(const JsonValue& obj, const std::string& key, bool required,
                        double dflt = 0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw std::runtime_error("JSON: missing field \"" + key + "\"");
    return dflt;
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error("JSON: field \"" + key + "\" is not a number");
  }
  return v->number;
}

inline std::string str_field(const JsonValue& obj, const std::string& key, bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) throw std::runtime_error("JSON: missing field \"" + key + "\"");
    return {};
  }
  if (v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error("JSON: field \"" + key + "\" is not a string");
  }
  return v->string;
}

/// Escapes `"` and `\` — the only two characters our writers ever need.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace lad::obs::jsonmini
