// 1-bit-per-node marker codes written *along trails* (§5's encoding).
//
// The §5 schema stores the orientation of each long cycle/path of the
// virtual graph G' in single bits placed on nodes of that trail. We write
// the self-delimiting code
//
//   B'' = 11110110 · map(0 -> 110, 1 -> 1110 over payload) · 0
//
// onto consecutive trail positions. Two facts make decoding unambiguous:
//   * "1111" occurs only at the start of B'' and the reverse of B'' never
//     contains "11110110", so a marker parses in exactly one direction —
//     the direction in which the encoder wrote it. The read direction is
//     therefore itself one bit of information (it pins the trail
//     orientation) even when the payload is empty.
//   * Stray 1s (the same node can occur on several trails, and every node
//     carries a globally visible bit) are eliminated constructively: the
//     encoder re-samples segment positions along their trails until no
//     marked trail carries a bit that differs from its planted pattern —
//     the algorithmic counterpart of the paper's Lovász-Local-Lemma
//     shifting argument.
//
// Markers may carry a per-segment payload (computed from the segment's
// start position), used e.g. by the splitting schema to ship the 2-coloring
// of the marker's start node.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "advice/bitstring.hpp"
#include "graph/euler.hpp"
#include "graph/graph.hpp"

namespace lad {

struct TrailCodeParams {
  /// Nominal distance between consecutive segment starts on a trail.
  /// Sparsity knob: larger spacing = sparser 1s = larger decoding radius.
  int spacing = 40;
  /// Segments may be shifted up to +- jitter during re-sampling.
  int jitter = 10;
  /// Re-sampling budget before the encoder gives up.
  int max_resample_rounds = 50000;
  std::uint64_t seed = 987654321;
};

struct TrailCode {
  std::vector<char> bits;  // one bit per node of g
  /// Trail-walk distance within which every position of a marked trail is
  /// guaranteed to see (and successfully parse) a complete marker.
  int walk_limit = 0;
  /// Re-sampling rounds the encoder needed (the constructive LLL cost).
  int resample_rounds = 0;
};

struct TrailDecode {
  /// +1: marker read in the trail's as-given direction; -1: reversed.
  int direction = 0;
  BitString payload;
  /// Absolute trail position of the marker's first bit (normalized to
  /// [0, positions) for closed trails).
  int marker_start = 0;
  /// Trail steps walked until the marker was fully read.
  int steps = 0;
};

/// Encoded marker length for a payload.
int trail_marker_length(const BitString& payload);

/// The walk radius the decoder needs, as a function of the parameters and
/// the longest marker; both encoder and decoder derive it from here.
int trail_walk_limit(const TrailCodeParams& params, int max_marker_len);

/// Marker spacing scaled with the maximum degree: a node of degree d occurs
/// ceil(d/2) times across trails, so every marker bit produces up to
/// ceil(d/2)-1 stray occurrences on other trails. Spreading markers
/// proportionally keeps the expected strays-per-marker-span below the
/// re-sampling threshold — the concrete form of the paper's Δ^O(α) round
/// bound. Both encoder and decoder derive the spacing from here.
int degree_scaled_spacing(int base_spacing, int max_degree);

/// Payload for the segment of trail `t` starting at position `start`
/// (re-evaluated whenever re-sampling moves the segment).
using SegmentPayloadFn = std::function<BitString(int t, int start)>;

/// Writes markers on every trail with needs_marks[t] != 0. All markers are
/// written in the trail's as-given direction. Payloads must have at most
/// max_payload_bits bits. Throws if the re-sampling budget is exhausted.
TrailCode encode_trail_marks(const Graph& g, const std::vector<Trail>& trails,
                             const std::vector<char>& needs_marks,
                             const SegmentPayloadFn& payload_fn, int max_payload_bits,
                             const TrailCodeParams& params = {});

/// Convenience overload: one constant payload per trail.
TrailCode encode_trail_marks(const Graph& g, const std::vector<Trail>& trails,
                             const std::vector<char>& needs_marks,
                             const std::vector<BitString>& payloads,
                             const TrailCodeParams& params = {});

/// LOCAL decode: starting from trail position `pos` of trail t, walk at most
/// walk_limit steps in both directions reading node bits and parse the
/// nearest marker. All markers in range must agree on the direction (the
/// encoder guarantees they do). Returns nullopt when no marker is in range.
std::optional<TrailDecode> decode_trail_mark(const Graph& g, const Trail& t, int pos,
                                             const std::vector<char>& bits, int walk_limit);

}  // namespace lad
