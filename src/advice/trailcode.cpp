#include "advice/trailcode.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/rng.hpp"

namespace lad {
namespace {

constexpr int kPreamble[8] = {1, 1, 1, 1, 0, 1, 1, 0};

BitString expand_marker(const BitString& payload) {
  BitString b;
  for (const int bit : kPreamble) b.append(bit != 0);
  for (int i = 0; i < payload.size(); ++i) {
    if (payload.bit(i)) {
      b.append(true);
      b.append(true);
      b.append(true);
      b.append(false);
    } else {
      b.append(true);
      b.append(true);
      b.append(false);
    }
  }
  b.append(false);
  return b;
}

// Node at trail position `pos` (wrapped for closed trails, -1 out of range
// for open trails).
int node_at(const Trail& t, int pos) {
  if (t.closed) {
    const int L = t.length();
    return t.nodes[static_cast<std::size_t>(((pos % L) + L) % L)];
  }
  if (pos < 0 || pos >= static_cast<int>(t.nodes.size())) return -1;
  return t.nodes[static_cast<std::size_t>(pos)];
}

int num_positions(const Trail& t) {
  return t.closed ? t.length() : static_cast<int>(t.nodes.size());
}

// Parses a marker whose first bit sits at absolute trail position `start`,
// read in direction d. On success stores the marker length (in positions).
std::optional<BitString> parse_marker(const Trail& t, const std::vector<char>& bits, int start,
                                      int d, int* length_out) {
  auto read = [&](int k) -> int {
    const int node = node_at(t, start + d * k);
    if (node < 0) return -1;
    return bits[static_cast<std::size_t>(node)] ? 1 : 0;
  };
  for (int j = 0; j < 8; ++j) {
    if (read(j) != kPreamble[j]) return std::nullopt;
  }
  BitString payload;
  int j = 8;
  while (true) {
    const int b0 = read(j);
    if (b0 == -1) return std::nullopt;
    if (b0 == 0) {
      if (length_out != nullptr) *length_out = j + 1;
      return payload;
    }
    if (read(j + 1) != 1) return std::nullopt;
    const int b2 = read(j + 2);
    if (b2 == 0) {
      payload.append(false);
      j += 3;
    } else if (b2 == 1 && read(j + 3) == 0) {
      payload.append(true);
      j += 4;
    } else {
      return std::nullopt;
    }
  }
}

struct Segment {
  int trail = 0;
  int nominal = 0;
  int start = 0;
  int jitter = 0;  // legal re-sampling window around `nominal`
  BitString code;  // expanded marker for the payload at `start`
};

struct Found {
  int direction = 0;
  BitString payload;
  int start_offset = 0;  // relative to the probe position
  int length = 0;
};

// All markers parsable from trail position pos within the walk window.
std::vector<Found> scan_markers(const Trail& t, const std::vector<char>& bits, int pos,
                                int walk_limit) {
  std::vector<Found> out;
  for (int off = -walk_limit; off <= walk_limit; ++off) {
    for (const int d : {+1, -1}) {
      int len = 0;
      auto payload = parse_marker(t, bits, pos + off, d, &len);
      if (!payload) continue;
      const int far_end = off + d * (len - 1);
      if (std::abs(far_end) > walk_limit) continue;  // must fit in window
      out.push_back({d, std::move(*payload), off, len});
    }
  }
  return out;
}

}  // namespace

int trail_marker_length(const BitString& payload) { return expand_marker(payload).size(); }

int degree_scaled_spacing(int base_spacing, int max_degree) {
  const int occurrences = (max_degree + 1) / 2;
  return std::max(base_spacing, 150 * std::max(0, occurrences - 1));
}

int trail_walk_limit(const TrailCodeParams& params, int max_marker_len) {
  const int min_gap = max_marker_len + 4 + 2 * params.jitter;
  const int spacing = std::max(params.spacing, 2 * min_gap);
  return (3 * spacing) / 2 + 2 * params.jitter + max_marker_len + 2;
}

TrailCode encode_trail_marks(const Graph& g, const std::vector<Trail>& trails,
                             const std::vector<char>& needs_marks,
                             const SegmentPayloadFn& payload_fn, int max_payload_bits,
                             const TrailCodeParams& params) {
  LAD_CHECK(needs_marks.size() == trails.size());
  LAD_CHECK(params.spacing >= 1 && params.jitter >= 0 && max_payload_bits >= 0);
  Rng rng(params.seed);

  const int max_len = 8 + 4 * max_payload_bits + 1;

  TrailCode out;
  out.bits.assign(static_cast<std::size_t>(g.n()), 0);
  out.walk_limit = trail_walk_limit(params, max_len);
  if (std::none_of(needs_marks.begin(), needs_marks.end(), [](char c) { return c != 0; })) {
    return out;
  }

  // Effective spacing guarantees nominal inter-segment gaps of at least
  // max_len + 4 + 2*jitter, so jittered segments can never overlap and every
  // gap keeps >= 4 zero positions (the preamble-uniqueness argument).
  const int min_gap = max_len + 4 + 2 * params.jitter;
  const int spacing = std::max(params.spacing, 2 * min_gap);

  auto make_code = [&](int t, int start) {
    BitString payload = payload_fn(t, start);
    LAD_CHECK_MSG(payload.size() <= max_payload_bits,
                  "segment payload exceeds max_payload_bits");
    return expand_marker(payload);
  };

  // Nominal segment starts, spread evenly along each marked trail. Each
  // segment gets the widest re-sampling window that keeps inter-segment
  // gaps >= max_len + 4 (a single segment may roam its whole trail).
  std::vector<Segment> segs;
  for (std::size_t t = 0; t < trails.size(); ++t) {
    if (!needs_marks[t]) continue;
    const int P = num_positions(trails[t]);
    auto add = [&](int s, int jit) {
      Segment seg;
      seg.trail = static_cast<int>(t);
      seg.nominal = seg.start = s;
      seg.jitter = std::max(0, jit);
      seg.code = make_code(seg.trail, seg.start);
      segs.push_back(std::move(seg));
    };
    if (trails[t].closed) {
      LAD_CHECK_MSG(P >= max_len + 4 + params.jitter,
                    "closed trail of length " << P << " too short for markers of length "
                                              << max_len);
      if (P <= spacing) {
        add(0, P);  // single segment: any position is legal
      } else {
        const int k = std::max(1, (P + spacing / 2) / spacing);
        const int gap = P / k;
        for (int i = 0; i < k; ++i) {
          add(static_cast<int>(static_cast<long long>(i) * P / k),
              (gap - max_len - 4) / 2);
        }
      }
    } else {
      const int span = P - max_len;
      LAD_CHECK_MSG(span >= 0, "open trail too short for its marker");
      if (span <= spacing) {
        add(span / 2, span);  // single segment: clamped to [0, span]
      } else {
        const int k = std::max(1, (span + spacing / 2) / spacing);
        const int gap = span / k;
        for (int i = 0; i <= k; ++i) {
          add(static_cast<int>(static_cast<long long>(i) * span / k),
              (gap - max_len - 4) / 2);
        }
      }
    }
  }

  auto clamp_start = [&](const Segment& seg, int start) {
    const Trail& t = trails[static_cast<std::size_t>(seg.trail)];
    const int P = num_positions(t);
    if (t.closed) return ((start % P) + P) % P;
    return std::clamp(start, 0, P - max_len);
  };

  // expected[t][pos]: bit that position pos of marked trail t must carry.
  std::vector<std::vector<char>> expected(trails.size());

  auto write_round = [&]() {
    std::fill(out.bits.begin(), out.bits.end(), 0);
    for (std::size_t t = 0; t < trails.size(); ++t) {
      if (needs_marks[t]) expected[t].assign(static_cast<std::size_t>(num_positions(trails[t])), 0);
    }
    for (const auto& seg : segs) {
      const Trail& t = trails[static_cast<std::size_t>(seg.trail)];
      const int P = num_positions(t);
      for (int j = 0; j < seg.code.size(); ++j) {
        if (!seg.code.bit(j)) continue;
        const int pos = t.closed ? ((seg.start + j) % P) : (seg.start + j);
        out.bits[static_cast<std::size_t>(node_at(t, pos))] = 1;
        expected[static_cast<std::size_t>(seg.trail)][static_cast<std::size_t>(pos)] = 1;
      }
    }
  };

  // A placement is valid iff (a) segments use pairwise-disjoint node sets
  // with no repeated node inside a segment, and (b) on every marked trail,
  // the set of parseable markers equals exactly the planted segments (read
  // forward, with the planted payload). Stray 1s — a segment node occurring
  // again elsewhere on a marked trail — are harmless unless they corrupt a
  // planted marker or combine into a spurious parse; (b) tests precisely
  // that, which is the property the decoder relies on.
  auto violations = [&]() {
    std::set<int> bad;
    std::vector<int> owner(static_cast<std::size_t>(g.n()), -1);
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const auto& seg = segs[i];
      const Trail& t = trails[static_cast<std::size_t>(seg.trail)];
      std::set<int> mine;
      for (int j = 0; j < seg.code.size(); ++j) {
        const int node = node_at(t, seg.start + j);
        if (!mine.insert(node).second) bad.insert(static_cast<int>(i));
        if (owner[node] >= 0 && owner[node] != static_cast<int>(i)) {
          bad.insert(static_cast<int>(i));
          bad.insert(owner[node]);
        }
        owner[node] = static_cast<int>(i);
      }
    }
    if (!bad.empty()) return bad;

    // Planted marker starts per trail.
    std::vector<std::map<int, const Segment*>> planted(trails.size());
    for (const auto& seg : segs) {
      planted[static_cast<std::size_t>(seg.trail)][seg.start] = &seg;
    }
    auto blame_span = [&](const Trail& t, int start, int d, int len, std::set<int>* sink) {
      for (int j = 0; j < len; ++j) {
        const int node = node_at(t, start + d * j);
        if (node >= 0 && out.bits[static_cast<std::size_t>(node)] && owner[node] >= 0) {
          sink->insert(owner[node]);
        }
      }
    };
    for (std::size_t ti = 0; ti < trails.size(); ++ti) {
      if (!needs_marks[ti]) continue;
      const Trail& t = trails[ti];
      const int P = num_positions(t);
      std::set<const Segment*> seen;
      for (int pos = 0; pos < P; ++pos) {
        for (const int d : {+1, -1}) {
          int len = 0;
          const auto payload = parse_marker(t, out.bits, pos, d, &len);
          if (!payload) continue;
          const auto it = planted[ti].find(pos);
          const bool genuine =
              d == +1 && it != planted[ti].end() && expand_marker(*payload) == it->second->code;
          if (genuine) {
            seen.insert(it->second);
          } else {
            blame_span(t, pos, d, len, &bad);  // spurious marker
          }
        }
      }
      for (const auto& [start, seg] : planted[ti]) {
        if (seen.count(seg)) continue;
        // The planted marker got corrupted: blame whoever wrote the
        // unexpected 1s in its span, plus the segment itself.
        bad.insert(static_cast<int>(seg - segs.data()));
        for (int j = 0; j < seg->code.size(); ++j) {
          const int node = node_at(t, start + j);
          if (out.bits[static_cast<std::size_t>(node)] != (seg->code.bit(j) ? 1 : 0)) {
            if (owner[node] >= 0) bad.insert(owner[node]);
          }
        }
      }
    }
    return bad;
  };

  for (int round = 0; round <= params.max_resample_rounds; ++round) {
    write_round();
    const auto bad = violations();
    if (bad.empty()) {
      out.resample_rounds = round;
      return out;
    }
    LAD_CHECK_MSG(round < params.max_resample_rounds,
                  "trail-mark re-sampling budget exhausted with " << bad.size()
                                                                  << " offending segments");
    // Moser–Tardos-style: each offender re-samples with probability 1/2
    // (simultaneous deterministic moves can cycle); at least one moves.
    bool moved = false;
    for (const int i : bad) {
      if (moved && !rng.flip(0.5)) continue;
      auto& seg = segs[static_cast<std::size_t>(i)];
      const int jit = std::max(params.jitter, seg.jitter);
      const int delta = static_cast<int>(rng.uniform(-jit, jit));
      seg.start = clamp_start(seg, seg.nominal + delta);
      seg.code = make_code(seg.trail, seg.start);
      moved = true;
    }
  }
  throw ContractViolation("unreachable");
}

TrailCode encode_trail_marks(const Graph& g, const std::vector<Trail>& trails,
                             const std::vector<char>& needs_marks,
                             const std::vector<BitString>& payloads,
                             const TrailCodeParams& params) {
  LAD_CHECK(payloads.size() == trails.size());
  int max_bits = 0;
  for (std::size_t t = 0; t < trails.size(); ++t) {
    if (needs_marks[t]) max_bits = std::max(max_bits, payloads[t].size());
  }
  return encode_trail_marks(
      g, trails, needs_marks,
      [&payloads](int t, int /*start*/) { return payloads[static_cast<std::size_t>(t)]; },
      max_bits, params);
}

std::optional<TrailDecode> decode_trail_mark(const Graph& g, const Trail& t, int pos,
                                             const std::vector<char>& bits, int walk_limit) {
  (void)g;
  const auto found = scan_markers(t, bits, pos, walk_limit);
  if (found.empty()) return std::nullopt;
  // All markers in range must agree on the direction.
  for (const auto& f : found) {
    if (f.direction != found.front().direction) return std::nullopt;
  }
  const auto& best =
      *std::min_element(found.begin(), found.end(), [](const Found& a, const Found& b) {
        return std::abs(a.start_offset) + a.length < std::abs(b.start_offset) + b.length;
      });
  TrailDecode d;
  d.direction = best.direction;
  d.payload = best.payload;
  const int P = num_positions(t);
  int start = pos + best.start_offset;
  if (t.closed) start = ((start % P) + P) % P;
  d.marker_start = start;
  d.steps = std::max(std::abs(best.start_offset),
                     std::abs(best.start_offset + best.direction * (best.length - 1)));
  return d;
}

}  // namespace lad
