// Variable-length -> uniform 1-bit conversion (the Lemma 2 analogue) via
// the paper's path-marker encoding (§4):
//
//   B'' = 11110110 · map(0 -> 110, 1 -> 1110 over the payload) · 0
//
// B'' is written bit-by-bit on the nodes of a shortest path leaving the
// anchor; every other node is labeled 0. Three properties make decoding
// unambiguous:
//   * "1111" occurs in B'' only at the very start, so only the anchor can
//     pass the preamble check;
//   * each distance layer around the anchor contains at most one 1-node, so
//     the anchor can read B'' off its BFS layers without knowing the path;
//   * "00" occurs only at the end, so the payload is self-delimiting.
// Anchors must be pairwise farther than 2*L + 4 apart (L = encoded length),
// which the encoder checks.
#pragma once

#include <map>
#include <optional>

#include "advice/bitstring.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Encoded length of B'' for a given payload.
int encoded_path_length(const BitString& payload);

/// Encoded length upper bound for payloads of at most `payload_bits` bits.
int max_encoded_path_length(int payload_bits);

/// Separation the anchors must keep for `payload_bits`-bit payloads.
int required_anchor_separation(int payload_bits);

struct UniformOneBit {
  std::vector<char> bits;  // one bit per node of g
  int max_path_len = 0;    // longest written path (decoder search slack)
};

/// Writes each anchor's payload along a path (within mask); all remaining
/// in-mask nodes get 0. Preconditions (checked):
///  * anchors pairwise > 2*L_max + 4 apart within the mask;
///  * each anchor's masked eccentricity >= its encoded length - 1.
/// When `verify` is set, the encoder round-trips every anchor through the
/// decoder.
UniformOneBit encode_paths_one_bit(const Graph& g, const std::map<int, BitString>& anchors,
                                   const NodeMask& mask = {}, bool verify = true);

/// Local test: is v an anchor, and if so what payload does it carry?
/// Examines only the radius-(L_max + 2) ball around v within the mask, where
/// L_max = max_encoded_path_length(max_payload_bits).
std::optional<BitString> decode_anchor_at(const Graph& g, int v, const std::vector<char>& bits,
                                          int max_payload_bits, const NodeMask& mask = {});

/// Centralized convenience: runs decode_anchor_at on every node.
std::map<int, BitString> decode_paths_one_bit(const Graph& g, const std::vector<char>& bits,
                                              int max_payload_bits, const NodeMask& mask = {});

}  // namespace lad
