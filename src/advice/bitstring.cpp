#include "advice/bitstring.hpp"

namespace lad {

BitString BitString::parse(const std::string& s) {
  BitString b;
  for (const char c : s) {
    LAD_CHECK_MSG(c == '0' || c == '1', "BitString::parse: bad character '" << c << "'");
    b.append(c == '1');
  }
  return b;
}

BitString BitString::fixed_width(std::uint64_t value, int width) {
  LAD_CHECK(width >= 0 && width <= 64);
  LAD_CHECK_MSG(width == 64 || value < (1ULL << width), "value does not fit in width");
  BitString b;
  for (int i = width - 1; i >= 0; --i) b.append((value >> i) & 1ULL);
  return b;
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

void BitString::append_gamma(std::uint64_t value) {
  LAD_CHECK_MSG(value >= 1, "Elias gamma encodes positive integers only");
  int len = 0;
  for (std::uint64_t v = value; v > 1; v >>= 1) ++len;
  for (int i = 0; i < len; ++i) append(false);
  for (int i = len; i >= 0; --i) append((value >> i) & 1ULL);
}

std::uint64_t BitString::read_fixed(int& pos, int width) const {
  LAD_CHECK_MSG(pos + width <= size(), "read_fixed past end of BitString");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) v = (v << 1) | (bit(pos + i) ? 1ULL : 0ULL);
  pos += width;
  return v;
}

std::uint64_t BitString::read_gamma(int& pos) const {
  int zeros = 0;
  while (pos + zeros < size() && !bit(pos + zeros)) ++zeros;
  LAD_CHECK_MSG(pos + 2 * zeros + 1 <= size(), "truncated gamma code");
  pos += zeros;
  std::uint64_t v = 0;
  for (int i = 0; i <= zeros; ++i) v = (v << 1) | (bit(pos + i) ? 1ULL : 0ULL);
  pos += zeros + 1;
  return v;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (const auto b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

}  // namespace lad
