#include "advice/advice.hpp"

#include <algorithm>

namespace lad {

SchemaType classify_advice(const Advice& advice) {
  int common_len = -1;
  bool uniform = true;
  bool subset_fixed = true;
  for (const auto& b : advice) {
    if (b.empty()) {
      uniform = false;
      continue;
    }
    if (common_len == -1) {
      common_len = b.size();
    } else if (b.size() != common_len) {
      uniform = false;
      subset_fixed = false;
    }
  }
  if (uniform && common_len != -1) return SchemaType::kUniformFixedLength;
  if (subset_fixed) return SchemaType::kSubsetFixedLength;
  return SchemaType::kVariableLength;
}

AdviceStats advice_stats(const Advice& advice) {
  AdviceStats s;
  s.n = static_cast<int>(advice.size());
  s.uniform_one_bit = true;
  for (const auto& b : advice) {
    if (!b.empty()) ++s.bit_holding_nodes;
    s.total_bits += b.size();
    s.max_bits_per_node = std::max(s.max_bits_per_node, b.size());
    if (b.size() != 1) {
      s.uniform_one_bit = false;
    } else {
      (b.bit(0) ? s.ones : s.zeros) += 1;
    }
  }
  if (!s.uniform_one_bit) {
    s.ones = s.zeros = 0;
  } else if (s.n > 0) {
    s.ones_ratio = static_cast<double>(s.ones) / s.n;
  }
  return s;
}

Advice advice_from_bits(const std::vector<char>& bits) {
  Advice a(bits.size());
  for (std::size_t v = 0; v < bits.size(); ++v) a[v].append(bits[v] != 0);
  return a;
}

std::vector<char> bits_from_advice(const Advice& advice) {
  std::vector<char> bits(advice.size(), 0);
  for (std::size_t v = 0; v < advice.size(); ++v) {
    LAD_CHECK_MSG(advice[v].size() == 1, "advice is not uniform 1-bit");
    bits[v] = advice[v].bit(0) ? 1 : 0;
  }
  return bits;
}

}  // namespace lad
