// Composition of advice schemas (the Lemma 1 analogue).
//
// The paper composes schemas by letting each sub-schema place variable-
// length strings on a sparse set of nodes, then merging. We make the merge
// loss-free by tagging every payload with (schema_id, anchor node ID): a
// payload can then be *stored* at any nearby node without losing the
// information of which node it describes. compose_schemas relocates entries
// greedily so that the storage nodes of the combined schema keep a required
// pairwise separation — the property the uniform-1-bit conversion
// (sparsify.hpp, the Lemma 2 analogue) needs.
#pragma once

#include <map>
#include <vector>

#include "advice/bitstring.hpp"
#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

struct SchemaEntry {
  int schema_id = 0;       // which sub-schema this payload belongs to
  NodeId anchor_id = 0;    // the node the payload describes (LOCAL ID)
  BitString payload;

  bool operator==(const SchemaEntry& o) const {
    return schema_id == o.schema_id && anchor_id == o.anchor_id && payload == o.payload;
  }
};

/// Self-delimiting packing of a list of entries into one bit-string.
BitString pack_entries(const std::vector<SchemaEntry>& entries);
std::vector<SchemaEntry> unpack_entries(const BitString& packed);

/// Variable-length advice: storage node -> entries stored there.
using VarAdvice = std::map<int, std::vector<SchemaEntry>>;

/// Merges several variable-length schemas into one whose storage nodes are
/// pairwise >= sep apart (within mask). Entries of a storage node that is
/// too close to an already-kept storage node are relocated to the nearest
/// kept node; because entries carry anchor IDs, relocation is loss-free.
/// Entries keep their schema_id verbatim — callers composing several
/// sub-schemas must pre-tag them with distinct ids. A decoder that
/// searched radius R per storage node must search R + sep after
/// composition.
VarAdvice compose_schemas(const Graph& g, const std::vector<VarAdvice>& schemas, int sep,
                          const NodeMask& mask = {});

/// Flattens a VarAdvice into per-storage-node packed bit-strings.
std::map<int, BitString> pack_var_advice(const VarAdvice& advice);

/// Inverse of pack_var_advice.
VarAdvice unpack_var_advice(const std::map<int, BitString>& packed);

}  // namespace lad
