#include "advice/uniform.hpp"

#include <algorithm>

namespace lad {
namespace {

int max_pack_bits(const std::map<int, BitString>& packed) {
  int mx = 0;
  for (const auto& [node, bits] : packed) {
    (void)node;
    mx = std::max(mx, bits.size());
  }
  return mx;
}

}  // namespace

UniformEncodingResult encode_var_advice_one_bit(const Graph& g, const VarAdvice& advice,
                                                const NodeMask& mask) {
  // Separation fixpoint: the required separation depends on the largest
  // packed payload, and composing at a larger separation can merge storage
  // nodes and grow payloads. Iterate until stable.
  VarAdvice composed = advice;
  int sep = required_anchor_separation(max_pack_bits(pack_var_advice(composed)));
  for (int iter = 0; iter < 16; ++iter) {
    composed = compose_schemas(g, {advice}, sep, mask);
    const int need = required_anchor_separation(max_pack_bits(pack_var_advice(composed)));
    if (need <= sep) break;
    LAD_CHECK_MSG(iter + 1 < 16, "uniform conversion did not reach a separation fixpoint; "
                                 "the schema is too dense for this graph");
    sep = need;
  }

  const auto packed = pack_var_advice(composed);
  std::map<int, BitString> anchors(packed.begin(), packed.end());
  UniformEncodingResult res;
  res.num_anchors = static_cast<int>(anchors.size());
  res.max_payload_bits = max_pack_bits(packed);
  auto uni = encode_paths_one_bit(g, anchors, mask, /*verify=*/true);
  res.bits = std::move(uni.bits);
  return res;
}

VarAdvice decode_var_advice_one_bit(const Graph& g, const std::vector<char>& bits,
                                    int max_payload_bits, const NodeMask& mask) {
  const auto anchors = decode_paths_one_bit(g, bits, max_payload_bits, mask);
  std::map<int, BitString> packed(anchors.begin(), anchors.end());
  return unpack_var_advice(packed);
}

}  // namespace lad
