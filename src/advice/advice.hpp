// Advice assignments and the schema taxonomy of Definition 2 / Definition 3.
#pragma once

#include <vector>

#include "advice/bitstring.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Advice assignment: one bit-string (possibly empty) per node.
using Advice = std::vector<BitString>;

/// Definition 2 classifies schemas by the shape of their label assignment.
enum class SchemaType {
  kUniformFixedLength,  // all nodes get strings of the same length
  kSubsetFixedLength,   // a subset gets equal-length strings, rest length 0
  kVariableLength,      // arbitrary positive lengths on a subset
};

/// Classifies a concrete assignment (Type 1 ⊂ Type 2 ⊂ Type 3; the most
/// specific applicable type is returned).
SchemaType classify_advice(const Advice& advice);

struct AdviceStats {
  int n = 0;
  int bit_holding_nodes = 0;  // nodes with non-empty strings
  long long total_bits = 0;
  int max_bits_per_node = 0;
  // For uniform 1-bit assignments: Definition 3 sparsity = ones / n.
  long long ones = 0;
  long long zeros = 0;
  double ones_ratio = 0.0;
  bool uniform_one_bit = false;
};

AdviceStats advice_stats(const Advice& advice);

/// Builds a uniform 1-bit Advice from a raw bit vector.
Advice advice_from_bits(const std::vector<char>& bits);

/// Extracts the per-node bit of a uniform 1-bit advice.
std::vector<char> bits_from_advice(const Advice& advice);

}  // namespace lad
