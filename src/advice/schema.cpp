#include "advice/schema.hpp"

#include <algorithm>
#include <limits>

namespace lad {

BitString pack_entries(const std::vector<SchemaEntry>& entries) {
  BitString out;
  out.append_gamma(entries.size() + 1);
  for (const auto& e : entries) {
    LAD_CHECK(e.schema_id >= 0);
    LAD_CHECK(e.anchor_id >= 1);
    out.append_gamma(static_cast<std::uint64_t>(e.schema_id) + 1);
    out.append_gamma(static_cast<std::uint64_t>(e.anchor_id));
    out.append_gamma(static_cast<std::uint64_t>(e.payload.size()) + 1);
    out.append(e.payload);
  }
  return out;
}

std::vector<SchemaEntry> unpack_entries(const BitString& packed) {
  int pos = 0;
  const auto count = packed.read_gamma(pos) - 1;
  std::vector<SchemaEntry> entries(count);
  for (auto& e : entries) {
    e.schema_id = static_cast<int>(packed.read_gamma(pos) - 1);
    e.anchor_id = static_cast<NodeId>(packed.read_gamma(pos));
    const int len = static_cast<int>(packed.read_gamma(pos) - 1);
    for (int i = 0; i < len; ++i) e.payload.append(packed.bit(pos + i));
    pos += len;
  }
  LAD_CHECK_MSG(pos == packed.size(), "trailing bits after packed entries");
  return entries;
}

VarAdvice compose_schemas(const Graph& g, const std::vector<VarAdvice>& schemas, int sep,
                          const NodeMask& mask) {
  // Gather all storage nodes with their entries (schema ids untouched).
  std::map<int, std::vector<SchemaEntry>> pending;
  for (const auto& schema : schemas) {
    for (const auto& [node, entries] : schema) {
      for (const SchemaEntry& e : entries) pending[node].push_back(e);
    }
  }

  // Keep storage nodes greedily in ID order; relocate violators to the
  // nearest kept node.
  std::vector<int> order;
  for (const auto& [node, _] : pending) order.push_back(node);
  std::sort(order.begin(), order.end(), [&](int a, int b) { return g.id(a) < g.id(b); });

  VarAdvice out;
  std::vector<int> kept;
  for (const int node : order) {
    int nearest = -1;
    int nearest_d = std::numeric_limits<int>::max();
    const auto dist = bfs_distances(g, node, mask, sep - 1);
    for (const int k : kept) {
      if (dist[k] != kUnreachable && dist[k] < nearest_d) {
        nearest = k;
        nearest_d = dist[k];
      }
    }
    if (nearest == -1) {
      kept.push_back(node);
      auto& slot = out[node];
      for (auto& e : pending[node]) slot.push_back(std::move(e));
    } else {
      auto& slot = out[nearest];
      for (auto& e : pending[node]) slot.push_back(std::move(e));
    }
  }
  return out;
}

std::map<int, BitString> pack_var_advice(const VarAdvice& advice) {
  std::map<int, BitString> out;
  for (const auto& [node, entries] : advice) out[node] = pack_entries(entries);
  return out;
}

VarAdvice unpack_var_advice(const std::map<int, BitString>& packed) {
  VarAdvice out;
  for (const auto& [node, bits] : packed) out[node] = unpack_entries(bits);
  return out;
}

}  // namespace lad
