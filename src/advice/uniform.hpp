// The generic variable-length -> uniform 1-bit conversion (the paper's
// Lemma 2 analogue, end to end): compose the storage nodes of a
// variable-length schema to a sufficient pairwise separation, then write
// each storage node's packed payload along a geodesic with the
// self-delimiting path code of sparsify.hpp.
//
// The separation a payload needs grows with the payload, and merging
// storage nodes grows payloads, so the composition runs to a fixpoint.
// Feasibility (checked, with clear errors): the graph must be "roomy" —
// anchors keep eccentricity >= encoded length and pairwise distance
// > 2*length + 4. Families with Θ(n) diameter (cycles, ladders, banded
// randoms) qualify; low-diameter expanders do not, which is exactly why §5
// encodes along trails instead (advice/trailcode.hpp).
#pragma once

#include "advice/schema.hpp"
#include "advice/sparsify.hpp"

namespace lad {

struct UniformEncodingResult {
  std::vector<char> bits;    // one bit per node
  int max_payload_bits = 0;  // decoder parameter
  int num_anchors = 0;       // storage nodes after composition
};

/// Converts a variable-length schema into uniform 1-bit advice.
UniformEncodingResult encode_var_advice_one_bit(const Graph& g, const VarAdvice& advice,
                                                const NodeMask& mask = {});

/// Inverse: recovers the schema entries (anchors are identified by the IDs
/// stored in the entries, independent of where they were relocated).
VarAdvice decode_var_advice_one_bit(const Graph& g, const std::vector<char>& bits,
                                    int max_payload_bits, const NodeMask& mask = {});

}  // namespace lad
