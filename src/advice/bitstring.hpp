// Bit strings used as advice labels (Definition 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace lad {

/// A sequence of bits with self-delimiting integer codecs (Elias gamma),
/// used both as per-node advice labels and as the payload format of the
/// variable-length -> uniform-1-bit conversion.
class BitString {
 public:
  BitString() = default;

  /// Parses a string of '0'/'1' characters.
  static BitString parse(const std::string& s);

  /// Fixed-width big-endian encoding of value (0 <= value < 2^width).
  static BitString fixed_width(std::uint64_t value, int width);

  int size() const { return static_cast<int>(bits_.size()); }
  bool empty() const { return bits_.empty(); }
  bool bit(int i) const {
    LAD_ASSERT(i >= 0 && i < size());
    return bits_[static_cast<std::size_t>(i)] != 0;
  }

  void append(bool b) { bits_.push_back(b ? 1 : 0); }
  void append(const BitString& other);

  /// Overwrites bit i (bounds-checked even in release builds: callers are
  /// typically fault injectors working on untrusted positions).
  void set_bit(int i, bool b) {
    LAD_CHECK(i >= 0 && i < size());
    bits_[static_cast<std::size_t>(i)] = b ? 1 : 0;
  }

  /// Keeps only the first `count` bits.
  void truncate(int count) {
    LAD_CHECK(count >= 0 && count <= size());
    bits_.resize(static_cast<std::size_t>(count));
  }

  /// Appends Elias gamma code of value >= 1 (self-delimiting).
  void append_gamma(std::uint64_t value);

  /// Reads bits [pos, pos+width) as a big-endian integer, advancing pos.
  std::uint64_t read_fixed(int& pos, int width) const;

  /// Reads an Elias gamma code at pos, advancing pos.
  std::uint64_t read_gamma(int& pos) const;

  bool operator==(const BitString& other) const { return bits_ == other.bits_; }

  std::string to_string() const;

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace lad
