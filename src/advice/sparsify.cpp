#include "advice/sparsify.hpp"

#include <algorithm>

namespace lad {
namespace {

constexpr int kPreamble[8] = {1, 1, 1, 1, 0, 1, 1, 0};

BitString expand_payload(const BitString& payload) {
  BitString b;
  for (const int bit : kPreamble) b.append(bit != 0);
  for (int i = 0; i < payload.size(); ++i) {
    if (payload.bit(i)) {
      b.append(true);
      b.append(true);
      b.append(true);
      b.append(false);
    } else {
      b.append(true);
      b.append(true);
      b.append(false);
    }
  }
  b.append(false);
  return b;
}

}  // namespace

int encoded_path_length(const BitString& payload) {
  int ones = 0;
  for (int i = 0; i < payload.size(); ++i) ones += payload.bit(i) ? 1 : 0;
  return 8 + 3 * payload.size() + ones + 1;
}

int max_encoded_path_length(int payload_bits) { return 8 + 4 * payload_bits + 1; }

int required_anchor_separation(int payload_bits) {
  return 2 * max_encoded_path_length(payload_bits) + 5;
}

UniformOneBit encode_paths_one_bit(const Graph& g, const std::map<int, BitString>& anchors,
                                   const NodeMask& mask, bool verify) {
  UniformOneBit out;
  out.bits.assign(static_cast<std::size_t>(g.n()), 0);

  int max_payload = 0;
  for (const auto& [a, payload] : anchors) {
    (void)a;
    max_payload = std::max(max_payload, payload.size());
  }
  out.max_path_len = max_encoded_path_length(max_payload);
  const int sep = 2 * out.max_path_len + 4;

  // Separation precondition.
  for (auto it = anchors.begin(); it != anchors.end(); ++it) {
    const auto dist = bfs_distances(g, it->first, mask, sep);
    for (auto jt = std::next(it); jt != anchors.end(); ++jt) {
      LAD_CHECK_MSG(dist[jt->first] == kUnreachable,
                    "anchors " << g.id(it->first) << " and " << g.id(jt->first)
                               << " violate separation " << sep);
    }
  }

  for (const auto& [a, payload] : anchors) {
    LAD_CHECK_MSG(mask.empty() || mask[a], "anchor outside mask");
    const BitString code = expand_payload(payload);
    const int len = code.size();
    const auto dist = bfs_distances(g, a, mask, len - 1);
    // Find a node at distance len-1 and take a shortest path to it.
    int target = -1;
    for (int u = 0; u < g.n(); ++u) {
      if (dist[u] == len - 1) {
        target = u;
        break;
      }
    }
    LAD_CHECK_MSG(target >= 0, "anchor " << g.id(a) << " eccentricity < encoded length " << len);
    const auto path = shortest_path(g, a, target, mask);
    LAD_CHECK(static_cast<int>(path.size()) == len);
    for (int j = 0; j < len; ++j) {
      if (code.bit(j)) out.bits[path[static_cast<std::size_t>(j)]] = 1;
    }
  }

  if (verify) {
    for (const auto& [a, payload] : anchors) {
      const auto got = decode_anchor_at(g, a, out.bits, max_payload, mask);
      LAD_CHECK_MSG(got.has_value() && *got == payload,
                    "round-trip failed for anchor " << g.id(a));
    }
  }
  return out;
}

std::optional<BitString> decode_anchor_at(const Graph& g, int v, const std::vector<char>& bits,
                                          int max_payload_bits, const NodeMask& mask) {
  if ((!mask.empty() && !mask[v]) || !bits[v]) return std::nullopt;
  const int lmax = max_encoded_path_length(max_payload_bits);
  const auto dist = bfs_distances(g, v, mask, lmax + 2);

  // layer_one[j]: the unique 1-node at distance j, or -1 if none, or -2 if
  // the layer has two or more 1-nodes.
  std::vector<int> layer_one(static_cast<std::size_t>(lmax) + 3, -1);
  for (int u = 0; u < g.n(); ++u) {
    if (dist[u] == kUnreachable || !bits[u]) continue;
    auto& slot = layer_one[static_cast<std::size_t>(dist[u])];
    slot = (slot == -1) ? u : -2;
  }

  auto layer_bit = [&](int j) -> int {
    if (j > lmax + 2) return 0;
    if (layer_one[static_cast<std::size_t>(j)] == -2) return -1;  // ambiguous
    return layer_one[static_cast<std::size_t>(j)] >= 0 ? 1 : 0;
  };

  // Preamble.
  for (int j = 0; j < 8; ++j) {
    if (layer_bit(j) != kPreamble[j]) return std::nullopt;
  }
  // Adjacency chain inside the preamble run.
  for (int j = 0; j + 1 < 4; ++j) {
    const int a = layer_one[static_cast<std::size_t>(j)];
    const int b = layer_one[static_cast<std::size_t>(j + 1)];
    if (!g.adjacent(a, b)) return std::nullopt;
  }
  if (!g.adjacent(layer_one[5], layer_one[6])) return std::nullopt;

  // Parse (110 | 1110)* terminated by a 0 at a group start.
  BitString payload;
  int j = 8;
  while (true) {
    if (j > lmax) return std::nullopt;
    const int b0 = layer_bit(j);
    if (b0 == -1) return std::nullopt;
    if (b0 == 0) break;  // terminator
    if (layer_bit(j + 1) != 1) return std::nullopt;
    if (!g.adjacent(layer_one[static_cast<std::size_t>(j)],
                    layer_one[static_cast<std::size_t>(j + 1)]))
      return std::nullopt;
    if (layer_bit(j + 2) == 0) {
      payload.append(false);  // 110
      j += 3;
    } else if (layer_bit(j + 2) == 1 && layer_bit(j + 3) == 0) {
      if (!g.adjacent(layer_one[static_cast<std::size_t>(j + 1)],
                      layer_one[static_cast<std::size_t>(j + 2)]))
        return std::nullopt;
      payload.append(true);  // 1110
      j += 4;
    } else {
      return std::nullopt;
    }
  }
  if (payload.size() > max_payload_bits) return std::nullopt;
  return payload;
}

std::map<int, BitString> decode_paths_one_bit(const Graph& g, const std::vector<char>& bits,
                                              int max_payload_bits, const NodeMask& mask) {
  LAD_CHECK_MSG(static_cast<int>(bits.size()) == g.n(),
                "one-bit advice has " << bits.size() << " bits for n = " << g.n());
  std::map<int, BitString> out;
  for (int v = 0; v < g.n(); ++v) {
    if (!mask.empty() && !mask[v]) continue;
    auto payload = decode_anchor_at(g, v, bits, max_payload_bits, mask);
    if (payload) out[v] = std::move(*payload);
  }
  return out;
}

}  // namespace lad
