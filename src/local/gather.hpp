// Reusable message-passing building blocks on the Engine.
//
// gather_balls_by_messages is the operational proof of the view API: t+1
// rounds of flooding reconstruct exactly the radius-t balls that
// local/ball.hpp extracts combinatorially (the classical LOCAL
// equivalence). bfs_by_messages is the standard distributed BFS.
//
// The parallel variants fan the per-node ball reconstruction (the heavy,
// embarrassingly parallel part) out over a ThreadPool with byte-identical
// results, and gather_canonical_views adds the §8 order-invariance memo: a
// cache keyed by the canonical form of each ball, so any view-based decoder
// that is order-invariant needs to be evaluated once per *distinct* view
// instead of once per node (on structured families — cycles, grids, tori —
// the distinct-view count is O(1), not O(n)).
#pragma once

#include <string>
#include <vector>

#include "local/ball.hpp"
#include "local/engine.hpp"

namespace lad {

class ThreadPool;

/// Runs a flooding algorithm for radius+1 rounds and reconstructs each
/// node's radius-`radius` ball from the messages alone.
std::vector<Ball> gather_balls_by_messages(const Graph& g, int radius);

/// Same result, byte-identical, with the flooding compute phase and the
/// per-node ball reconstruction fanned out over `pool`.
std::vector<Ball> gather_balls_by_messages(const Graph& g, int radius, ThreadPool& pool);

/// Canonical-ball memo: per-node radius-t views interned by canonical form.
struct CanonicalViews {
  /// Node -> dense class id. Class ids are assigned in ascending node order
  /// of first appearance, so they are deterministic at any thread count.
  std::vector<int> view_class;
  /// Class id -> canonical key (graph/canonical.hpp).
  std::vector<std::string> key;
  /// Class id -> smallest node index with that view (the memo
  /// representative: evaluate an order-invariant decoder here, broadcast to
  /// the class).
  std::vector<int> representative;
  /// Nodes whose view was already interned = n - distinct views.
  long long memo_hits = 0;

  int distinct() const { return static_cast<int>(key.size()); }
};

/// Extracts every node's radius-`radius` ball, canonicalizes it (optionally
/// with per-node input `labels`), and interns the keys. Ball extraction and
/// canonicalization fan out over `pool` when given; interning is serial in
/// node order, so the classes are deterministic.
CanonicalViews gather_canonical_views(const Graph& g, int radius,
                                      const std::vector<int>& labels = {},
                                      ThreadPool* pool = nullptr);

struct DistributedBfsResult {
  std::vector<int> dist;    // kUnreachable outside the source's component
  std::vector<int> parent;  // BFS parent (-1 for source/unreached)
  int rounds = 0;
};

/// Single-source BFS as a message-passing algorithm.
DistributedBfsResult bfs_by_messages(const Graph& g, int source);

}  // namespace lad
