// Reusable message-passing building blocks on the Engine.
//
// gather_balls_by_messages is the operational proof of the view API: t+1
// rounds of flooding reconstruct exactly the radius-t balls that
// local/ball.hpp extracts combinatorially (the classical LOCAL
// equivalence). bfs_by_messages is the standard distributed BFS.
#pragma once

#include <vector>

#include "local/ball.hpp"
#include "local/engine.hpp"

namespace lad {

/// Runs a flooding algorithm for radius+1 rounds and reconstructs each
/// node's radius-`radius` ball from the messages alone.
std::vector<Ball> gather_balls_by_messages(const Graph& g, int radius);

struct DistributedBfsResult {
  std::vector<int> dist;    // kUnreachable outside the source's component
  std::vector<int> parent;  // BFS parent (-1 for source/unreached)
  int rounds = 0;
};

/// Single-source BFS as a message-passing algorithm.
DistributedBfsResult bfs_by_messages(const Graph& g, int source);

}  // namespace lad
