// Locality-conformance auditing for LOCAL-model algorithms.
//
// The paper's claims are all of the form "this decoder works in T rounds of
// the LOCAL model": node v's output must be a function of its radius-T view
// (topology, IDs and advice within distance T). Nothing in a centralized
// simulation *enforces* that — a buggy solver could peek at global state and
// every benchmark would still pass. This header provides two complementary
// mechanical checks:
//
// 1. Provenance tracking (engine.hpp, enable_audit): every message carries
//    the set of origin nodes its content can depend on; the engine asserts
//    after each round that no node's provenance escapes its radius-`round`
//    ball. This validates information flow through the sanctioned NodeCtx
//    API (and the engine's own routing), and yields per-round provenance
//    statistics.
//
// 2. Indistinguishability auditing (this header): the classical LOCAL-model
//    lower-bound argument run as a test oracle. Execute an algorithm (or
//    advice decoder) on two instances; every node whose radius-T view is
//    IDENTICAL in both instances must produce the identical output. A node
//    with an identical view but a different output provably used
//    information from outside its ball — the violation is reported with the
//    node, the audited radius, and the nearest out-of-ball difference (the
//    "offending origin"). This catches algorithms that bypass the NodeCtx
//    API entirely (shared state, captured Graph references, global advice
//    reads), which no cooperative instrumentation can see.
//
// The audit is sound: an honest T-round algorithm can never be flagged.
// Coverage depends on the chosen perturbation — nodes whose views differ
// between the two instances are skipped (reported as nodes_skipped). Tests
// should assert nodes_checked > 0 to guard against vacuous passes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/engine.hpp"

namespace lad {

/// Same shape as the engine's provenance violations: `round` is the audited
/// radius, `origin` the nearest instance difference outside the ball.
using LocalityViolation = ProvenanceViolation;

struct LocalityAuditReport {
  /// Nodes whose views matched between the instances (verdict rendered).
  int nodes_checked = 0;
  /// Nodes whose views differed (no verdict possible for them).
  int nodes_skipped = 0;
  std::vector<LocalityViolation> violations;
  /// Per-round provenance log of the base run (audit_sync_algorithm only).
  EngineAuditLog provenance;

  bool clean() const { return violations.empty(); }
};

/// One run of a LOCAL algorithm or advice decoder, in algorithm-agnostic
/// form: what every node was given and what it produced.
struct DecodedInstance {
  const Graph* g = nullptr;
  /// Per-node advice rendering ("" = no advice). Empty vector = no advice
  /// anywhere. Any injective serialization works; the audit only compares
  /// strings for equality.
  std::vector<std::string> advice;
  /// Per-node outputs (the claim under audit).
  std::vector<std::string> outputs;
  /// Per-node LOCAL radius; empty means `rounds` applies to every node.
  std::vector<int> rounds_per_node;
  /// Declared LOCAL radius of the run.
  int rounds = 0;
};

/// True iff the radius-`radius` views of node index v agree between the two
/// instances: same ball node set (by index), same IDs, same advice strings,
/// and same induced edges. Graphs must have equal n.
bool views_identical(const DecodedInstance& a, const DecodedInstance& b, int v, int radius);

/// Indistinguishability audit over a pair of decoded runs: every node whose
/// declared-radius view matches must have matching output.
LocalityAuditReport audit_decoded_pair(const DecodedInstance& base, const DecodedInstance& alt);

using AlgFactory = std::function<std::unique_ptr<SyncAlgorithm>(const Graph&)>;

/// Runs `make(g)` under the provenance-audited engine and `make(alt)` under
/// a plain engine, then cross-checks outputs and halting rounds of every
/// node whose view (at its own halting radius) is identical in g and alt.
LocalityAuditReport audit_sync_algorithm(const Graph& g, const Graph& alt, const AlgFactory& make,
                                         int max_rounds);

/// Rebuilds g with the same topology (by node index) but new IDs.
Graph with_ids(const Graph& g, const std::vector<NodeId>& ids);

/// The standard perturbation: rotates the IDs of all nodes at distance
/// > radius from `center` among themselves (identity if fewer than two such
/// nodes exist). Views within distance `radius - r` of the center are
/// untouched for radius-r observers.
Graph rotate_ids_outside_ball(const Graph& g, int center, int radius);

/// Renders uniform 1-bit advice as per-node strings for DecodedInstance.
std::vector<std::string> advice_strings_from_bits(const std::vector<char>& bits);

}  // namespace lad
