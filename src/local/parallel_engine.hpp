// ParallelEngine — the batched execution front end of the LOCAL simulator.
//
// Rozhoň's "Invitation to Local Algorithms" observation, operationalized:
// within a synchronous round the node steps are independent *by definition*
// of the model, so a round is an embarrassingly parallel batch. The
// ParallelEngine executes each round's compute phase across a fixed thread
// pool; message delivery (the per-node outboxes, merged in node-id order)
// and the provenance audit stay serial — they are the barrier between
// rounds. The result is byte-identical to Engine at every thread count
// (asserted by tests/test_parallel_engine.cpp), because:
//
//   * the pool partitions nodes statically (no work stealing), so the
//     chunk -> node mapping is a pure function of (n, threads);
//   * every per-node effect lands in a slot owned by that node (outbox
//     slots are CSR-indexed by the sender, halt/output/provenance state is
//     indexed by the executing node);
//   * cross-chunk accumulators (active flags, crash counts) are folded with
//     order-independent reductions.
//
// Determinism contract for algorithms: round(ctx) must touch only state
// belonging to ctx.node() plus the NodeCtx API — the same property the
// locality auditor already demands, and what every SyncAlgorithm in this
// repository (vectors indexed by ctx.node()) satisfies.
//
// Profiling (DESIGN.md §13): the inner engine emits per-phase spans
// (engine.faults / engine.compute / engine.deliver) and the pool's chunks
// carry pool.chunk spans + chunk timers, so `lad profile` attributes this
// front end's time to phases and worker threads without any hooks here
// beyond the run-level span below.
//
// Timeline (DESIGN.md §14): likewise hook-free here — the inner engine's
// begin_run/begin_round/end_round flight-recorder marks and the pool's
// dispatch/wait window (begin_dispatch/end_dispatch + LAD_TM_WAIT_TIMER)
// give `lad timeline` its per-round series and barrier-wait attribution
// for runs driven through this front end.
#pragma once

#include <memory>

#include "local/engine.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace lad {

class ParallelEngine {
 public:
  /// Runs on an external pool (non-owning; must outlive the engine).
  ParallelEngine(const Graph& g, ThreadPool& pool) : eng_(g), pool_(&pool) {
    eng_.set_thread_pool(pool_);
  }

  /// Owns a pool of `threads` workers (threads <= 0 = hardware default).
  ParallelEngine(const Graph& g, int threads)
      : eng_(g), owned_pool_(std::make_unique<ThreadPool>(threads)) {
    pool_ = owned_pool_.get();
    eng_.set_thread_pool(pool_);
  }

  int threads() const { return pool_->threads(); }

  /// Same surface as Engine (see local/engine.hpp).
  void enable_audit(bool fail_fast = true) { eng_.enable_audit(fail_fast); }
  const EngineAuditLog& audit_log() const { return eng_.audit_log(); }
  void set_fault_model(const EngineFaultModel* model) { eng_.set_fault_model(model); }
  const EngineFaultStats& fault_stats() const { return eng_.fault_stats(); }

  RunResult run(SyncAlgorithm& alg, int max_rounds) {
    // Wraps the inner engine.run span so traces show which runs went
    // through the batched front end (and on how many workers).
    LAD_TM_SPAN(span, "parallel_engine.run", "engine");
    return eng_.run(alg, max_rounds);
  }

 private:
  Engine eng_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace lad
