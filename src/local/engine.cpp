#include "local/engine.hpp"

#include <algorithm>
#include <sstream>

#include "graph/distance.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "util/thread_pool.hpp"

namespace lad {
namespace {

// Sorted-set union of `add` into `into`.
void merge_sorted(std::vector<int>& into, const std::vector<int>& add) {
  if (add.empty()) return;
  std::vector<int> merged;
  merged.reserve(into.size() + add.size());
  std::set_union(into.begin(), into.end(), add.begin(), add.end(), std::back_inserter(merged));
  into.swap(merged);
}

}  // namespace

NodeId NodeCtx::id() const { return eng_.g_.id(v_); }
int NodeCtx::degree() const { return eng_.g_.degree(v_); }
int NodeCtx::n() const { return eng_.g_.n(); }
int NodeCtx::max_degree() const { return eng_.g_.max_degree(); }

NodeId NodeCtx::neighbor_id(int port) const {
  const auto nb = eng_.g_.neighbors(v_);
  LAD_CHECK(port >= 0 && port < static_cast<int>(nb.size()));
  return eng_.g_.id(nb[port]);
}

const std::string& NodeCtx::received(int port) const {
  static const std::string kEmpty;
  const int s = eng_.slot(v_, port);
  if (eng_.audit_ && eng_.inbox_present_[s]) {
    eng_.merge_provenance(v_, eng_.inbox_prov_[s]);
  }
  return eng_.inbox_present_[s] ? eng_.inbox_[s] : kEmpty;
}

bool NodeCtx::has_message(int port) const {
  const int s = eng_.slot(v_, port);
  // The presence bit is information originating at the sender; taint it too.
  if (eng_.audit_ && eng_.inbox_present_[s]) {
    eng_.merge_provenance(v_, eng_.inbox_prov_[s]);
  }
  return eng_.inbox_present_[s] != 0;
}

void NodeCtx::send(int port, std::string payload) {
  const int s = eng_.slot(v_, port);
  // Message-buffer allocation accounting (obs/profile.*): payloads beyond
  // the 15-byte SSO capacity heap-allocate. Counted per send — the multiset
  // of increments is a pure function of the run, so the totals are byte-
  // deterministic at any thread count and land in the profile's
  // message-exchange allocation column.
  LAD_TM({
    if (payload.size() > 15) {
      obs::core().alloc_msgbuf.add(1);
      obs::core().alloc_msgbuf_bytes.add(static_cast<long long>(payload.size()));
    }
  });
  eng_.outbox_[s] = std::move(payload);
  eng_.outbox_present_[s] = 1;
  if (eng_.audit_) eng_.outbox_prov_[s] = eng_.prov_[v_];
}

void NodeCtx::broadcast(const std::string& payload) {
  for (int p = 0; p < degree(); ++p) send(p, payload);
}

void NodeCtx::halt(std::string output) {
  eng_.halted_[v_] = 1;
  eng_.outputs_[v_] = std::move(output);
  eng_.halt_round_[v_] = round_;
}

void Engine::merge_provenance(int v, const std::vector<int>& origins) {
  merge_sorted(prov_[static_cast<std::size_t>(v)], origins);
}

void Engine::audit_round(int round) {
  ProvenanceRoundStats stats;
  stats.round = round;
  long long total = 0;
  for (int v = 0; v < g_.n(); ++v) {
    // Nodes halted in an earlier round have frozen (already-checked) sets.
    if (halt_round_[static_cast<std::size_t>(v)] >= 0 &&
        halt_round_[static_cast<std::size_t>(v)] < round) {
      continue;
    }
    const auto& pv = prov_[static_cast<std::size_t>(v)];
    ++stats.active_nodes;
    total += static_cast<long long>(pv.size());
    stats.max_set_size = std::max(stats.max_set_size, static_cast<int>(pv.size()));
    const auto& dv = dist_[static_cast<std::size_t>(v)];
    for (const int o : pv) {
      const int d = dv[static_cast<std::size_t>(o)];
      LAD_ASSERT_MSG(d != kUnreachable, "provenance crossed a component boundary");
      stats.max_radius = std::max(stats.max_radius, d);
      if (d > round) {
        ProvenanceViolation viol;
        viol.node = v;
        viol.node_id = g_.id(v);
        viol.round = round;
        viol.origin = o;
        viol.origin_id = g_.id(o);
        viol.origin_distance = d;
        std::ostringstream os;
        os << "node " << g_.id(v) << " depends on origin " << g_.id(o) << " at distance " << d
           << " after round " << round;
        viol.detail = os.str();
        audit_log_.violations.push_back(viol);
        if (audit_fail_fast_) {
          LAD_CHECK_MSG(false, "locality violation: " << viol.detail);
        }
      }
    }
  }
  stats.avg_set_size =
      stats.active_nodes > 0 ? static_cast<double>(total) / stats.active_nodes : 0.0;
  audit_log_.per_round.push_back(stats);
}

RunResult Engine::run(SyncAlgorithm& alg, int max_rounds) {
  // Telemetry is read-only observation: the span and the counters at the
  // end never feed back into the run, so enabling it cannot change a byte
  // of any output (pinned by tests/test_telemetry.cpp).
  LAD_TM_SPAN(run_span, "engine.run", "engine");
  // Flight recorder (DESIGN.md §14): open a per-run cursor so each round
  // below lands one RoundSample. The hook only reads counters — like the
  // span it cannot influence outputs.
  LAD_TM(obs::FlightRecorder::instance().begin_run());
  const int n = g_.n();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g_.degree(v);
  }
  const int total_ports = offsets_[n];
  const auto& offsets = offsets_;

  inbox_.assign(static_cast<std::size_t>(total_ports), "");
  inbox_present_.assign(static_cast<std::size_t>(total_ports), 0);
  outbox_.assign(static_cast<std::size_t>(total_ports), "");
  outbox_present_.assign(static_cast<std::size_t>(total_ports), 0);
  halted_.assign(static_cast<std::size_t>(n), 0);
  crashed_.assign(static_cast<std::size_t>(n), 0);
  outputs_.assign(static_cast<std::size_t>(n), "");
  halt_round_.assign(static_cast<std::size_t>(n), -1);
  fault_stats_ = {};

  if (audit_) {
    audit_log_ = {};
    // Initial knowledge: own ID/input plus the IDs of the port-ordered
    // neighbors — exactly the radius-1 ball.
    prov_.assign(static_cast<std::size_t>(n), {});
    for (int v = 0; v < n; ++v) {
      auto& pv = prov_[static_cast<std::size_t>(v)];
      const auto nb = g_.neighbors(v);
      pv.assign(nb.begin(), nb.end());
      pv.push_back(v);
      std::sort(pv.begin(), pv.end());
    }
    inbox_prov_.assign(static_cast<std::size_t>(total_ports), {});
    outbox_prov_.assign(static_cast<std::size_t>(total_ports), {});
    dist_.assign(static_cast<std::size_t>(n), {});
    for (int v = 0; v < n; ++v) {
      dist_[static_cast<std::size_t>(v)] = bfs_distances(g_, v);
    }
  }

  alg.init(g_);

  // Messages in transit beyond the synchronous one-round latency: delayed
  // originals and stale duplicates, due at the delivery phase of `due`.
  // Insertion order is the serial (sender, port) scan order, so replaying
  // the queue is deterministic at any thread count.
  struct PendingMsg {
    int due = 0;
    int slot = 0;  // receiver inbox slot
    std::string payload;
    std::vector<int> prov;
  };
  std::vector<PendingMsg> pending;

  RunResult res;
  for (int round = 1; round <= max_rounds; ++round) {
    // One span per synchronous round (compute + audit + delivery). Short
    // SSO name: no allocation even with telemetry enabled.
    LAD_TM_SPAN(round_span, "engine.round", "engine");
    LAD_TM(obs::FlightRecorder::instance().begin_round());
    // Fault transitions, serial: crash decisions are pure functions of
    // (round, v), so hoisting them out of the parallel compute phase keeps
    // results byte-identical while letting crash-*recovery* mutate shared
    // per-node state (inbox, outbox, algorithm state) race-free.
    if (faults_ != nullptr) {
      // Phase span for the profiler: fault-transition time (crash/recovery
      // scans) attributed separately from compute and delivery.
      LAD_TM_SPAN(faults_span, "engine.faults", "engine");
      for (int v = 0; v < n; ++v) {
        if (halted_[v]) continue;
        const bool down = faults_->crashed(round, v);
        if (down && !crashed_[v]) {
          // Crash: the node executes nothing while down and never halts,
          // but it does not count as active, so runs still terminate.
          crashed_[v] = 1;
          ++fault_stats_.crashed_nodes;
        } else if (!down && crashed_[v]) {
          // Recovery: rejoin with blank state. Everything the node held or
          // was about to receive is discarded; the algorithm resets its
          // per-node state and the node re-converges from scratch.
          crashed_[v] = 0;
          ++fault_stats_.recovered_nodes;
          for (int s = offsets_[v]; s < offsets_[v + 1]; ++s) {
            inbox_present_[static_cast<std::size_t>(s)] = 0;
            inbox_[static_cast<std::size_t>(s)].clear();
            outbox_present_[static_cast<std::size_t>(s)] = 0;
            outbox_[static_cast<std::size_t>(s)].clear();
            if (audit_) {
              inbox_prov_[static_cast<std::size_t>(s)].clear();
              outbox_prov_[static_cast<std::size_t>(s)].clear();
            }
          }
          alg.on_recover(g_, v);
          if (audit_) {
            // Blank state resets knowledge to the initial radius-1 ball.
            auto& pv = prov_[static_cast<std::size_t>(v)];
            const auto nb = g_.neighbors(v);
            pv.assign(nb.begin(), nb.end());
            pv.push_back(v);
            std::sort(pv.begin(), pv.end());
          }
        }
      }
    }
    // Compute phase. Node steps within a synchronous round are independent
    // (LOCAL-model semantics), and every per-node effect — outbox slots,
    // halt state, the reader-side provenance set — lands in slots owned by
    // the executing node, so the steps may fan out over a thread pool with
    // byte-identical results. The pool's static partition keeps the
    // chunk -> node mapping deterministic; per-chunk accumulators are folded
    // with order-independent reductions (OR / sum).
    bool any_active = false;
    {
      // Phase span for the profiler: node-step compute time on the caller's
      // thread; pool dispatch additionally shows up as pool.chunk spans on
      // the executing workers.
      LAD_TM_SPAN(compute_span, "engine.compute", "engine");
      auto step_nodes = [&](int begin, int end, bool& active) {
        for (int v = begin; v < end; ++v) {
          if (halted_[v] || crashed_[v]) continue;
          active = true;
          NodeCtx ctx(*this, v, round);
          alg.round(ctx);
        }
      };
      if (pool_ != nullptr && pool_->threads() > 1) {
        std::vector<char> chunk_active(static_cast<std::size_t>(pool_->threads()), 0);
        pool_->parallel_for(n, [&](int begin, int end, int c) {
          bool active = false;
          step_nodes(begin, end, active);
          chunk_active[static_cast<std::size_t>(c)] = active ? 1 : 0;
        });
        for (const char a : chunk_active) any_active = any_active || a != 0;
      } else {
        step_nodes(0, n, any_active);
      }
    }
    if (!any_active) break;
    res.rounds = round;
    if (audit_) audit_round(round);

    // Deliver: a message sent by v on port p arrives at u = nb(v)[p] on
    // u's port q = port_of(u, v). The span covers the rest of the round
    // body — delivery plus the late-delivery replay below — and closes
    // before the round span (reverse declaration order), so the profiler
    // attributes both to the message-exchange phase.
    LAD_TM_SPAN(deliver_span, "engine.deliver", "engine");
    std::fill(inbox_present_.begin(), inbox_present_.end(), 0);
    for (int v = 0; v < n; ++v) {
      const auto nb = g_.neighbors(v);
      for (int p = 0; p < static_cast<int>(nb.size()); ++p) {
        const int s = offsets[v] + p;
        if (!outbox_present_[s]) continue;
        const int u = nb[p];
        if (faults_ != nullptr && faults_->drop_message(round, v, u)) {
          // A drop only removes information, so provenance stays sound.
          ++fault_stats_.dropped;
          outbox_present_[s] = 0;
          outbox_[s].clear();
          if (audit_) outbox_prov_[static_cast<std::size_t>(s)].clear();
          continue;
        }
        const int q = g_.port_of(u, v);
        LAD_ASSERT_MSG(q >= 0, "delivery to a non-neighbor port");
        const int t = offsets[u] + q;
        const int delay = faults_ != nullptr ? faults_->delay_rounds(round, v, u) : 0;
        if (delay > 0) {
          // Held in transit: accounted (messages/bytes) at actual delivery.
          // The payload keeps the sender's tag; reading it later only
          // increases the round, so ball containment still holds.
          ++fault_stats_.delayed;
          PendingMsg pm;
          pm.due = round + delay;
          pm.slot = t;
          pm.payload = std::move(outbox_[s]);
          if (audit_) pm.prov = std::move(outbox_prov_[static_cast<std::size_t>(s)]);
          pending.push_back(std::move(pm));
          outbox_present_[s] = 0;
          outbox_[s].clear();
          if (audit_) outbox_prov_[static_cast<std::size_t>(s)].clear();
          continue;
        }
        res.messages += 1;
        res.bytes += static_cast<long long>(outbox_[s].size());
        inbox_[t] = std::move(outbox_[s]);
        inbox_present_[t] = 1;
        outbox_present_[s] = 0;
        outbox_[s].clear();
        if (faults_ != nullptr && faults_->corrupt_message(round, v, u, inbox_[t])) {
          ++fault_stats_.corrupted;
        }
        if (audit_) {
          // A corrupted payload keeps the sender's tag: that over-approximates
          // what the reader can learn, so ball containment still holds.
          inbox_prov_[static_cast<std::size_t>(t)] =
              std::move(outbox_prov_[static_cast<std::size_t>(s)]);
          outbox_prov_[static_cast<std::size_t>(s)].clear();
        }
        if (faults_ != nullptr && faults_->duplicate_message(round, v, u)) {
          // A stale copy of the (possibly corrupted) delivered payload
          // arrives again next round; same provenance tag, so sound.
          ++fault_stats_.duplicated;
          PendingMsg pm;
          pm.due = round + 1;
          pm.slot = t;
          pm.payload = inbox_[t];
          if (audit_) pm.prov = inbox_prov_[static_cast<std::size_t>(t)];
          pending.push_back(std::move(pm));
        }
      }
    }
    // Late deliveries due this round, in insertion (send) order. Fresh
    // messages win port conflicts: a stale copy landing on an occupied
    // port is discarded and counted, never overwrites.
    if (!pending.empty()) {
      std::vector<PendingMsg> still_pending;
      still_pending.reserve(pending.size());
      for (auto& pm : pending) {
        if (pm.due != round) {
          still_pending.push_back(std::move(pm));
          continue;
        }
        if (inbox_present_[pm.slot]) {
          ++fault_stats_.stale_discarded;
          continue;
        }
        res.messages += 1;
        res.bytes += static_cast<long long>(pm.payload.size());
        inbox_[static_cast<std::size_t>(pm.slot)] = std::move(pm.payload);
        inbox_present_[static_cast<std::size_t>(pm.slot)] = 1;
        if (audit_) inbox_prov_[static_cast<std::size_t>(pm.slot)] = std::move(pm.prov);
      }
      pending.swap(still_pending);
    }
    // One flight-recorder sample per completed round: the recorder turns
    // these cumulative per-run totals into per-round deltas (deterministic
    // slice) and drains the pool's wait window (measured slice).
    LAD_TM(obs::FlightRecorder::instance().end_round(
        round, res.messages, res.bytes,
        fault_stats_.dropped + fault_stats_.corrupted + fault_stats_.duplicated +
            fault_stats_.delayed + fault_stats_.crashed_nodes,
        fault_stats_.recovered_nodes));
  }

  res.all_halted = std::all_of(halted_.begin(), halted_.end(), [](char h) { return h != 0; });
  res.outputs = outputs_;
  res.halt_round = halt_round_;
  if (faults_ != nullptr) res.crashed = crashed_;

  // Message/round/fault accounting, folded once per run from the serial
  // counters above — the totals are a pure function of the run, so they are
  // byte-deterministic at any thread count.
  LAD_TM({
    auto& m = obs::core();
    m.engine_runs.add(1);
    m.engine_rounds.add(res.rounds);
    m.engine_messages.add(res.messages);
    m.engine_message_bits.add(res.bytes * 8);
    m.engine_messages_dropped.add(fault_stats_.dropped);
    m.engine_messages_corrupted.add(fault_stats_.corrupted);
    m.engine_messages_duplicated.add(fault_stats_.duplicated);
    m.engine_messages_delayed.add(fault_stats_.delayed);
    m.engine_crashed_nodes.add(fault_stats_.crashed_nodes);
    m.engine_recovered_nodes.add(fault_stats_.recovered_nodes);
    m.engine_run_messages.observe(res.messages);
  });
  return res;
}

}  // namespace lad
