#include "local/engine.hpp"

#include <algorithm>

namespace lad {

NodeId NodeCtx::id() const { return eng_.g_.id(v_); }
int NodeCtx::degree() const { return eng_.g_.degree(v_); }
int NodeCtx::n() const { return eng_.g_.n(); }
int NodeCtx::max_degree() const { return eng_.g_.max_degree(); }

NodeId NodeCtx::neighbor_id(int port) const {
  const auto nb = eng_.g_.neighbors(v_);
  LAD_CHECK(port >= 0 && port < static_cast<int>(nb.size()));
  return eng_.g_.id(nb[port]);
}

const std::string& NodeCtx::received(int port) const {
  static const std::string kEmpty;
  const int s = eng_.slot(v_, port);
  return eng_.inbox_present_[s] ? eng_.inbox_[s] : kEmpty;
}

bool NodeCtx::has_message(int port) const { return eng_.inbox_present_[eng_.slot(v_, port)]; }

void NodeCtx::send(int port, std::string payload) {
  const int s = eng_.slot(v_, port);
  eng_.outbox_[s] = std::move(payload);
  eng_.outbox_present_[s] = 1;
}

void NodeCtx::broadcast(const std::string& payload) {
  for (int p = 0; p < degree(); ++p) send(p, payload);
}

void NodeCtx::halt(std::string output) {
  eng_.halted_[v_] = 1;
  eng_.outputs_[v_] = std::move(output);
}

RunResult Engine::run(SyncAlgorithm& alg, int max_rounds) {
  const int n = g_.n();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g_.degree(v);
  }
  const int total_ports = offsets_[n];
  const auto& offsets = offsets_;

  inbox_.assign(static_cast<std::size_t>(total_ports), "");
  inbox_present_.assign(static_cast<std::size_t>(total_ports), 0);
  outbox_.assign(static_cast<std::size_t>(total_ports), "");
  outbox_present_.assign(static_cast<std::size_t>(total_ports), 0);
  halted_.assign(static_cast<std::size_t>(n), 0);
  outputs_.assign(static_cast<std::size_t>(n), "");

  alg.init(g_);

  RunResult res;
  for (int round = 1; round <= max_rounds; ++round) {
    bool any_active = false;
    for (int v = 0; v < n; ++v) {
      if (halted_[v]) continue;
      any_active = true;
      NodeCtx ctx(*this, v, round);
      alg.round(ctx);
    }
    if (!any_active) break;
    res.rounds = round;

    // Deliver: a message sent by v on port p arrives at u = nb(v)[p] on
    // u's port q = port_of(u, v).
    std::fill(inbox_present_.begin(), inbox_present_.end(), 0);
    for (int v = 0; v < n; ++v) {
      const auto nb = g_.neighbors(v);
      for (int p = 0; p < static_cast<int>(nb.size()); ++p) {
        const int s = offsets[v] + p;
        if (!outbox_present_[s]) continue;
        const int u = nb[p];
        const int q = g_.port_of(u, v);
        const int t = offsets[u] + q;
        res.messages += 1;
        res.bytes += static_cast<long long>(outbox_[s].size());
        inbox_[t] = std::move(outbox_[s]);
        inbox_present_[t] = 1;
        outbox_present_[s] = 0;
        outbox_[s].clear();
      }
    }
  }

  res.all_halted = std::all_of(halted_.begin(), halted_.end(), [](char h) { return h != 0; });
  res.outputs = outputs_;
  return res;
}

}  // namespace lad
