#include "local/audit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "graph/distance.hpp"

namespace lad {
namespace {

const std::string& advice_at(const DecodedInstance& inst, int v) {
  static const std::string kEmpty;
  if (inst.advice.empty()) return kEmpty;
  return inst.advice[static_cast<std::size_t>(v)];
}

int radius_at(const DecodedInstance& inst, int v) {
  if (!inst.rounds_per_node.empty()) {
    const int r = inst.rounds_per_node[static_cast<std::size_t>(v)];
    return r >= 0 ? r : inst.rounds;
  }
  return inst.rounds;
}

// Sorted (min, max) index pairs of the edges induced on `nodes`.
std::vector<std::pair<int, int>> induced_edges(const Graph& g, const std::vector<int>& nodes,
                                               const std::vector<char>& in_ball) {
  std::vector<std::pair<int, int>> edges;
  for (const int u : nodes) {
    for (const int w : g.neighbors(u)) {
      if (u < w && in_ball[static_cast<std::size_t>(w)]) edges.emplace_back(u, w);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// Nearest node (by distance from v in `base.g`) at which the two instances
// differ in ID, advice, or incident edges. Returns {-1, -1} if none.
std::pair<int, int> nearest_difference(const DecodedInstance& base, const DecodedInstance& alt,
                                       int v) {
  const Graph& g = *base.g;
  const Graph& h = *alt.g;
  const auto dist = bfs_distances(g, v);
  int best = -1, best_d = -1;
  for (int u = 0; u < g.n(); ++u) {
    bool differs = g.id(u) != h.id(u) || advice_at(base, u) != advice_at(alt, u);
    if (!differs) {
      const auto nb_g = g.neighbors(u);
      const auto nb_h = h.neighbors(u);
      differs = !std::equal(nb_g.begin(), nb_g.end(), nb_h.begin(), nb_h.end());
    }
    if (!differs) continue;
    const int d = dist[static_cast<std::size_t>(u)];
    if (d == kUnreachable) continue;
    if (best < 0 || d < best_d) {
      best = u;
      best_d = d;
    }
  }
  return {best, best_d};
}

LocalityViolation make_violation(const DecodedInstance& base, const DecodedInstance& alt, int v,
                                 int radius, const std::string& what) {
  LocalityViolation viol;
  viol.node = v;
  viol.node_id = base.g->id(v);
  viol.round = radius;
  const auto [origin, origin_d] = nearest_difference(base, alt, v);
  viol.origin = origin;
  viol.origin_id = origin >= 0 ? base.g->id(origin) : 0;
  viol.origin_distance = origin_d;
  std::ostringstream os;
  os << "node " << viol.node_id << ": " << what << " despite identical radius-" << radius
     << " view";
  if (origin >= 0) {
    os << "; nearest instance difference at node " << viol.origin_id << ", distance " << origin_d;
  }
  viol.detail = os.str();
  return viol;
}

}  // namespace

bool views_identical(const DecodedInstance& a, const DecodedInstance& b, int v, int radius) {
  const Graph& g = *a.g;
  const Graph& h = *b.g;
  LAD_CHECK(g.n() == h.n());
  LAD_CHECK(v >= 0 && v < g.n() && radius >= 0);

  auto ball_a = ball_nodes(g, v, radius);
  auto ball_b = ball_nodes(h, v, radius);
  std::sort(ball_a.begin(), ball_a.end());
  std::sort(ball_b.begin(), ball_b.end());
  if (ball_a != ball_b) return false;

  for (const int u : ball_a) {
    if (g.id(u) != h.id(u)) return false;
    if (advice_at(a, u) != advice_at(b, u)) return false;
  }

  std::vector<char> in_ball(static_cast<std::size_t>(g.n()), 0);
  for (const int u : ball_a) in_ball[static_cast<std::size_t>(u)] = 1;
  return induced_edges(g, ball_a, in_ball) == induced_edges(h, ball_b, in_ball);
}

LocalityAuditReport audit_decoded_pair(const DecodedInstance& base, const DecodedInstance& alt) {
  LAD_CHECK(base.g != nullptr && alt.g != nullptr);
  LAD_CHECK(base.g->n() == alt.g->n());
  LAD_CHECK(static_cast<int>(base.outputs.size()) == base.g->n());
  LAD_CHECK(static_cast<int>(alt.outputs.size()) == alt.g->n());

  LocalityAuditReport report;
  for (int v = 0; v < base.g->n(); ++v) {
    const int radius = radius_at(base, v);
    if (!views_identical(base, alt, v, radius)) {
      ++report.nodes_skipped;
      continue;
    }
    ++report.nodes_checked;
    const auto& out_base = base.outputs[static_cast<std::size_t>(v)];
    const auto& out_alt = alt.outputs[static_cast<std::size_t>(v)];
    if (out_base != out_alt) {
      report.violations.push_back(make_violation(
          base, alt, v, radius,
          "output changed from \"" + out_base + "\" to \"" + out_alt + "\""));
      continue;
    }
    // Halting rounds are per-node observables only for engine runs; a global
    // declared radius is a max over nodes and may change with far inputs.
    if (!base.rounds_per_node.empty() && !alt.rounds_per_node.empty() &&
        radius_at(base, v) != radius_at(alt, v)) {
      report.violations.push_back(make_violation(base, alt, v, radius, "halting round changed"));
    }
  }
  return report;
}

LocalityAuditReport audit_sync_algorithm(const Graph& g, const Graph& alt, const AlgFactory& make,
                                         int max_rounds) {
  auto base_alg = make(g);
  Engine base_eng(g);
  base_eng.enable_audit(/*fail_fast=*/false);
  const RunResult base_run = base_eng.run(*base_alg, max_rounds);

  auto alt_alg = make(alt);
  Engine alt_eng(alt);
  const RunResult alt_run = alt_eng.run(*alt_alg, max_rounds);

  DecodedInstance base_inst;
  base_inst.g = &g;
  base_inst.outputs = base_run.outputs;
  base_inst.rounds_per_node = base_run.halt_round;
  base_inst.rounds = base_run.rounds;

  DecodedInstance alt_inst;
  alt_inst.g = &alt;
  alt_inst.outputs = alt_run.outputs;
  alt_inst.rounds_per_node = alt_run.halt_round;
  alt_inst.rounds = alt_run.rounds;

  LocalityAuditReport report = audit_decoded_pair(base_inst, alt_inst);
  report.provenance = base_eng.audit_log();
  for (const auto& viol : report.provenance.violations) {
    report.violations.push_back(viol);
  }
  return report;
}

Graph with_ids(const Graph& g, const std::vector<NodeId>& ids) {
  LAD_CHECK(static_cast<int>(ids.size()) == g.n());
  Graph::Builder b;
  for (int v = 0; v < g.n(); ++v) b.add_node(ids[static_cast<std::size_t>(v)]);
  for (int e = 0; e < g.m(); ++e) b.add_edge(g.edge_u(e), g.edge_v(e));
  return std::move(b).build();
}

Graph rotate_ids_outside_ball(const Graph& g, int center, int radius) {
  const auto dist = bfs_distances(g, center, {}, radius);
  std::vector<int> outside;
  for (int v = 0; v < g.n(); ++v) {
    if (dist[static_cast<std::size_t>(v)] == kUnreachable) outside.push_back(v);
  }
  if (outside.size() < 2) return with_ids(g, [&] {
    std::vector<NodeId> same;
    for (int v = 0; v < g.n(); ++v) same.push_back(g.id(v));
    return same;
  }());

  // Sort the outside nodes by ID and hand each the next ID in the cycle — a
  // derangement of the outside IDs, identity inside.
  std::sort(outside.begin(), outside.end(),
            [&](int x, int y) { return g.id(x) < g.id(y); });
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) ids.push_back(g.id(v));
  const std::size_t k = outside.size();
  for (std::size_t i = 0; i < k; ++i) {
    ids[static_cast<std::size_t>(outside[i])] = g.id(outside[(i + 1) % k]);
  }
  return with_ids(g, ids);
}

std::vector<std::string> advice_strings_from_bits(const std::vector<char>& bits) {
  std::vector<std::string> out;
  out.reserve(bits.size());
  for (const char b : bits) out.emplace_back(b ? "1" : "0");
  return out;
}

}  // namespace lad
