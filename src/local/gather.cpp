#include "local/gather.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "graph/canonical.hpp"
#include "graph/distance.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace lad {
namespace {

// Flooding state per node: known node IDs and known edges (as ID pairs).
struct Knowledge {
  std::set<NodeId> nodes;
  std::set<std::pair<NodeId, NodeId>> edges;

  std::string serialize() const {
    std::ostringstream os;
    os << nodes.size() << ' ';
    for (const auto id : nodes) os << id << ' ';
    os << edges.size() << ' ';
    for (const auto& [a, b] : edges) os << a << ' ' << b << ' ';
    std::string s = os.str();
    // Ball-gather allocation accounting (obs/profile.*): one serialized
    // knowledge buffer per flooding send. The multiset of increments is a
    // pure function of the gather, so the totals stay byte-deterministic
    // at any thread count (the profile's gather allocation column).
    LAD_TM({
      obs::core().alloc_gather.add(1);
      obs::core().alloc_gather_bytes.add(static_cast<long long>(s.size()));
    });
    return s;
  }

  void merge_serialized(const std::string& s) {
    std::istringstream is(s);
    std::size_t nn = 0, ne = 0;
    is >> nn;
    for (std::size_t i = 0; i < nn; ++i) {
      NodeId id = 0;
      is >> id;
      nodes.insert(id);
    }
    is >> ne;
    for (std::size_t i = 0; i < ne; ++i) {
      NodeId a = 0, b = 0;
      is >> a >> b;
      edges.insert({a, b});
    }
  }
};

class GatherAlgorithm : public SyncAlgorithm {
 public:
  explicit GatherAlgorithm(int radius) : radius_(radius) {}

  void init(const Graph& g) override {
    know_.assign(static_cast<std::size_t>(g.n()), {});
    for (int v = 0; v < g.n(); ++v) {
      auto& k = know_[static_cast<std::size_t>(v)];
      k.nodes.insert(g.id(v));
      // A node initially knows its incident edges (neighbor IDs via ports).
      for (const int u : g.neighbors(v)) {
        k.nodes.insert(g.id(u));
        k.edges.insert({std::min(g.id(v), g.id(u)), std::max(g.id(v), g.id(u))});
      }
    }
  }

  void round(NodeCtx& ctx) override {
    auto& k = know_[static_cast<std::size_t>(ctx.node())];
    for (int p = 0; p < ctx.degree(); ++p) {
      if (ctx.has_message(p)) k.merge_serialized(ctx.received(p));
    }
    if (ctx.round_number() > radius_) {
      ctx.halt(k.serialize());
      return;
    }
    ctx.broadcast(k.serialize());
  }

  const Knowledge& knowledge(int v) const { return know_[static_cast<std::size_t>(v)]; }

 private:
  int radius_;
  std::vector<Knowledge> know_;
};

// Reconstructs node v's radius-t ball from its flooded knowledge: build a
// graph from the known edges, cut the ball, re-anchor to parent indices.
Ball reconstruct_ball(const Graph& g, const Knowledge& k, int v, int radius) {
  std::map<NodeId, int> ix;
  Graph::Builder b;
  for (const auto id : k.nodes) ix[id] = b.add_node(id);
  for (const auto& [a, c] : k.edges) b.add_edge(ix.at(a), ix.at(c));
  const Graph known = std::move(b).build();
  const auto center = known.find_index(g.id(v));
  LAD_CHECK_MSG(center.has_value(), "flooded knowledge is missing its own center node");
  const Ball ball = extract_ball(known, *center, radius);

  Ball out;
  out.radius = radius;
  Graph::Builder ob;
  for (int i = 0; i < ball.graph.n(); ++i) ob.add_node(ball.graph.id(i));
  for (int e = 0; e < ball.graph.m(); ++e) ob.add_edge(ball.graph.edge_u(e), ball.graph.edge_v(e));
  out.graph = std::move(ob).build();
  out.center = ball.center;
  out.dist = ball.dist;
  for (int i = 0; i < ball.graph.n(); ++i) {
    const auto parent = g.find_index(ball.graph.id(i));
    LAD_CHECK_MSG(parent.has_value(), "ball node missing from its parent graph");
    out.to_parent.push_back(*parent);
  }
  return out;
}

std::vector<Ball> gather_balls_impl(const Graph& g, int radius, ThreadPool* pool) {
  LAD_TM_SPAN(span, "gather.balls", "gather");
  GatherAlgorithm alg(radius);
  Engine eng(g);
  eng.set_thread_pool(pool);
  const auto run = eng.run(alg, radius + 2);
  LAD_CHECK(run.all_halted);

  // After t+1 rounds a node knows edges incident to nodes at distance <= t;
  // restrict to the induced radius-t ball. Each reconstruction writes only
  // its own slot, so the fan-out is deterministic at any thread count.
  std::vector<Ball> balls(static_cast<std::size_t>(g.n()));
  auto build = [&](int v) {
    balls[static_cast<std::size_t>(v)] = reconstruct_ball(g, alg.knowledge(v), v, radius);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->for_each(g.n(), build);
  } else {
    for (int v = 0; v < g.n(); ++v) build(v);
  }
  LAD_TM(obs::core().gather_balls.add(g.n()));
  return balls;
}

}  // namespace

std::vector<Ball> gather_balls_by_messages(const Graph& g, int radius) {
  return gather_balls_impl(g, radius, nullptr);
}

std::vector<Ball> gather_balls_by_messages(const Graph& g, int radius, ThreadPool& pool) {
  return gather_balls_impl(g, radius, &pool);
}

CanonicalViews gather_canonical_views(const Graph& g, int radius, const std::vector<int>& labels,
                                      ThreadPool* pool) {
  LAD_TM_SPAN(span, "gather.views", "gather");
  LAD_CHECK(labels.empty() || static_cast<int>(labels.size()) == g.n());
  // Canonicalization is per-node work on per-node slots; interning stays
  // serial in node order so class ids never depend on the thread count.
  std::vector<std::string> keys(static_cast<std::size_t>(g.n()));
  auto canon = [&](int v) {
    const Ball ball = extract_ball(g, v, radius);
    std::vector<int> ball_labels;
    if (!labels.empty()) {
      ball_labels.reserve(ball.to_parent.size());
      for (const int p : ball.to_parent) {
        ball_labels.push_back(labels[static_cast<std::size_t>(p)]);
      }
    }
    keys[static_cast<std::size_t>(v)] =
        canonical_view(ball.graph, ball.graph.nodes_by_id(), ball.center, ball_labels);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->for_each(g.n(), canon);
  } else {
    for (int v = 0; v < g.n(); ++v) canon(v);
  }

  CanonicalViews views;
  views.view_class.assign(static_cast<std::size_t>(g.n()), -1);
  std::unordered_map<std::string, int> intern;
  for (int v = 0; v < g.n(); ++v) {
    auto& key = keys[static_cast<std::size_t>(v)];
    const auto [it, inserted] = intern.emplace(key, views.distinct());
    if (inserted) {
      views.key.push_back(std::move(key));
      views.representative.push_back(v);
    } else {
      ++views.memo_hits;
    }
    views.view_class[static_cast<std::size_t>(v)] = it->second;
  }
  // Hits/misses come from the serial interning loop, so they are identical
  // at every thread count (the §8 memo-effectiveness metric).
  LAD_TM({
    obs::core().gather_cache_hits.add(views.memo_hits);
    obs::core().gather_cache_misses.add(views.distinct());
  });
  return views;
}

namespace {

class BfsAlgorithm : public SyncAlgorithm {
 public:
  BfsAlgorithm(int source, DistributedBfsResult& out) : source_(source), out_(out) {}

  void init(const Graph& g) override {
    g_ = &g;
    out_.dist.assign(static_cast<std::size_t>(g.n()), kUnreachable);
    out_.parent.assign(static_cast<std::size_t>(g.n()), -1);
  }

  void round(NodeCtx& ctx) override {
    const int v = ctx.node();
    auto& d = out_.dist[static_cast<std::size_t>(v)];
    if (ctx.round_number() == 1) {
      if (v == source_) {
        d = 0;
        ctx.broadcast("0");
      }
      return;
    }
    bool announced = false;
    if (d == kUnreachable) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (!ctx.has_message(p)) continue;
        const int du = std::stoi(ctx.received(p));
        if (d == kUnreachable || du + 1 < d) {
          d = du + 1;
          out_.parent[static_cast<std::size_t>(v)] = g_->neighbors(v)[p];
        }
      }
      if (d != kUnreachable) {
        ctx.broadcast(std::to_string(d));
        announced = true;
      }
    }
    // Termination: nodes cannot know the diameter, so the driver bounds the
    // rounds; halt once settled and already announced.
    if (d != kUnreachable && !announced) ctx.halt(std::to_string(d));
  }

 private:
  int source_;
  DistributedBfsResult& out_;
  const Graph* g_ = nullptr;
};

}  // namespace

DistributedBfsResult bfs_by_messages(const Graph& g, int source) {
  DistributedBfsResult out;
  BfsAlgorithm alg(source, out);
  Engine eng(g);
  const auto run = eng.run(alg, g.n() + 3);
  out.rounds = run.rounds;
  return out;
}

}  // namespace lad
