// Radius-t views ("balls") — the information-theoretic content of t rounds
// in the LOCAL model.
//
// A classical fact about the LOCAL model with unbounded messages: a T-round
// algorithm is exactly a function mapping each node's radius-T ball
// (topology + IDs + inputs within distance T) to an output. The heavy
// decoders in this library are written against this view API; the message
// engine in engine.hpp provides the operational semantics, and the test
// suite cross-validates the two (gather-by-flooding reconstructs the same
// ball).
#pragma once

#include <vector>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace lad {

struct Ball {
  /// Induced subgraph on N_<=radius(center); nodes keep their original IDs.
  Graph graph;
  /// Index of the center within `graph`.
  int center = 0;
  /// Ball index -> index in the parent graph.
  std::vector<int> to_parent;
  /// Ball index -> distance from the center.
  std::vector<int> dist;
  int radius = 0;

  /// Parent index -> ball index lookup (linear; balls are small).
  int from_parent(int parent_ix) const {
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      if (to_parent[i] == parent_ix) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Extracts the radius-t ball around `center`, optionally restricted to a
/// masked subgraph.
Ball extract_ball(const Graph& g, int center, int radius, const NodeMask& mask = {});

/// Tracks the number of LOCAL rounds a view-based decoder has consumed. The
/// final round count of an algorithm run in the view API is the maximum
/// radius it gathered (plus any explicit extra rounds it charges).
class RoundLedger {
 public:
  /// Records that some node gathered a radius-r ball.
  void charge_radius(int r) { rounds_ = std::max(rounds_, r); }

  /// Records r additional synchronous rounds after gathering.
  void charge_extra(int r) { extra_ += r; }

  int rounds() const { return rounds_ + extra_; }

 private:
  int rounds_ = 0;
  int extra_ = 0;
};

}  // namespace lad
