#include "local/ball.hpp"

namespace lad {

Ball extract_ball(const Graph& g, int center, int radius, const NodeMask& mask) {
  LAD_CHECK(radius >= 0);
  LAD_CHECK(center >= 0 && center < g.n());
  Ball b;
  b.radius = radius;
  const auto nodes = ball_nodes(g, center, radius, mask);
  const auto dist = bfs_distances(g, center, mask, radius);

  Graph::Builder builder;
  std::vector<int> ball_ix(static_cast<std::size_t>(g.n()), -1);
  for (const int v : nodes) {
    ball_ix[v] = builder.add_node(g.id(v));
    b.to_parent.push_back(v);
    b.dist.push_back(dist[v]);
  }
  for (const int v : nodes) {
    for (const int u : g.neighbors(v)) {
      if (ball_ix[u] >= 0 && v < u) builder.add_edge(ball_ix[v], ball_ix[u]);
    }
  }
  b.graph = std::move(builder).build();
  b.center = ball_ix[center];
  return b;
}

}  // namespace lad
