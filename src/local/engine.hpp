// Synchronous message-passing engine for the LOCAL model.
//
// Semantics (§3.2 of the paper): computation proceeds in synchronous rounds;
// in each round every non-halted node reads the messages its neighbors sent
// in the previous round, performs arbitrary local computation, sends one
// (arbitrarily large) message per port, and may halt with an output. The
// runtime of an algorithm is the number of rounds until every node has
// halted.
//
// Nodes initially know: their own ID, their degree, their neighbors' IDs
// (port-numbered with ID-sorted ports), the maximum degree Delta, and n.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lad {

class Engine;

/// Per-node, per-round interface handed to algorithms.
class NodeCtx {
 public:
  int node() const { return v_; }
  NodeId id() const;
  int degree() const;
  int n() const;
  int max_degree() const;
  int round_number() const { return round_; }

  /// ID of the neighbor on the given port (ports are ID-sorted).
  NodeId neighbor_id(int port) const;

  /// Message received on `port` this round ("" if none).
  const std::string& received(int port) const;
  bool has_message(int port) const;

  /// Sends `payload` to the neighbor on `port`, delivered next round.
  void send(int port, std::string payload);

  /// Sends the same payload on all ports.
  void broadcast(const std::string& payload);

  /// Terminates this node with the given output; `round()` is not called on
  /// it again.
  void halt(std::string output);

 private:
  friend class Engine;
  NodeCtx(Engine& eng, int v, int round) : eng_(eng), v_(v), round_(round) {}
  Engine& eng_;
  int v_;
  int round_;
};

/// A distributed algorithm: `round` is invoked once per node per round.
/// Implementations typically keep per-node state in vectors indexed by
/// ctx.node(); `init` is the place to size them.
class SyncAlgorithm {
 public:
  virtual ~SyncAlgorithm() = default;
  virtual void init(const Graph& g) { (void)g; }
  virtual void round(NodeCtx& ctx) = 0;
};

struct RunResult {
  /// Rounds executed until global termination (or max_rounds).
  int rounds = 0;
  bool all_halted = false;
  /// Output string each node halted with ("" if it never halted).
  std::vector<std::string> outputs;
  /// Message complexity: messages delivered and their total payload bytes.
  long long messages = 0;
  long long bytes = 0;
};

class Engine {
 public:
  explicit Engine(const Graph& g) : g_(g) {}

  /// Runs `alg` until all nodes halt or `max_rounds` elapse.
  RunResult run(SyncAlgorithm& alg, int max_rounds);

 private:
  friend class NodeCtx;
  const Graph& g_;
  std::vector<std::string> inbox_;      // flattened: adj offset indexing
  std::vector<char> inbox_present_;
  std::vector<std::string> outbox_;
  std::vector<char> outbox_present_;
  std::vector<char> halted_;
  std::vector<std::string> outputs_;
  std::vector<int> offsets_;  // CSR port offsets, size n+1
  int slot(int v, int port) const { return offsets_[v] + port; }
};

}  // namespace lad
