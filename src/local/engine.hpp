// Synchronous message-passing engine for the LOCAL model.
//
// Semantics (§3.2 of the paper): computation proceeds in synchronous rounds;
// in each round every non-halted node reads the messages its neighbors sent
// in the previous round, performs arbitrary local computation, sends one
// (arbitrarily large) message per port, and may halt with an output. The
// runtime of an algorithm is the number of rounds until every node has
// halted.
//
// Nodes initially know: their own ID, their degree, their neighbors' IDs
// (port-numbered with ID-sorted ports), the maximum degree Delta, and n.
//
// Audit mode (enable_audit) additionally tracks per-node information
// provenance: the set of origin nodes whose initial state (ID, input,
// advice) the node's view can depend on. Every message is tagged with its
// sender's provenance at send time; reading a message merges the tag into
// the reader's set. After every round the engine asserts that each node's
// provenance lies inside its radius-`round` ball — the LOCAL-model analogue
// of a race detector. See local/audit.hpp for the complementary
// indistinguishability audit that catches algorithms bypassing this API.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/contracts.hpp"

namespace lad {

class Engine;
class ThreadPool;

/// Per-node, per-round interface handed to algorithms.
class NodeCtx {
 public:
  int node() const { return v_; }
  NodeId id() const;
  int degree() const;
  int n() const;
  int max_degree() const;
  int round_number() const { return round_; }

  /// ID of the neighbor on the given port (ports are ID-sorted).
  NodeId neighbor_id(int port) const;

  /// Message received on `port` this round ("" if none).
  const std::string& received(int port) const;
  bool has_message(int port) const;

  /// Sends `payload` to the neighbor on `port`, delivered next round.
  void send(int port, std::string payload);

  /// Sends the same payload on all ports.
  void broadcast(const std::string& payload);

  /// Terminates this node with the given output; `round()` is not called on
  /// it again.
  void halt(std::string output);

 private:
  friend class Engine;
  NodeCtx(Engine& eng, int v, int round) : eng_(eng), v_(v), round_(round) {}
  Engine& eng_;
  int v_;
  int round_;
};

/// A distributed algorithm: `round` is invoked once per node per round.
/// Implementations typically keep per-node state in vectors indexed by
/// ctx.node(); `init` is the place to size them.
class SyncAlgorithm {
 public:
  virtual ~SyncAlgorithm() = default;
  virtual void init(const Graph& g) { (void)g; }
  virtual void round(NodeCtx& ctx) = 0;

  /// Called when the fault model recovers node `v` from a crash
  /// (crash-recovery faults): the node rejoins with *blank* state — the
  /// engine has already discarded its pending inbox and outbox — and this
  /// hook must reset whatever per-node state the algorithm keeps for `v`
  /// so that it genuinely re-converges instead of resuming mid-protocol.
  /// Default: the algorithm keeps no resettable per-node state.
  virtual void on_recover(const Graph& g, int v) {
    (void)g;
    (void)v;
  }
};

struct RunResult {
  /// Rounds executed until global termination (or max_rounds).
  int rounds = 0;
  bool all_halted = false;
  /// Output string each node halted with ("" if it never halted).
  std::vector<std::string> outputs;
  /// Round in which each node halted (-1 if it never halted).
  std::vector<int> halt_round;
  /// Message complexity: messages delivered and their total payload bytes.
  long long messages = 0;
  long long bytes = 0;
  /// Nodes down at the end of the run (empty when no fault model is
  /// installed). Under crash-stop this is every node that ever crashed;
  /// under crash-recovery a node that rejoined is no longer marked.
  std::vector<char> crashed;
};

/// Optional fault model consulted by the engine while running an algorithm.
///
/// All hooks must be *deterministic pure functions* of their arguments
/// (plus any seed baked into the implementation): the engine may consult
/// them in any order, and reproducibility of fault campaigns depends on the
/// answers not varying with iteration order. Faults are applied so that the
/// audit/provenance machinery stays sound: a dropped message removes
/// information (never adds any); a corrupted, duplicated, or delayed
/// payload keeps the sender's provenance tag, which over-approximates what
/// the reader can now know (delay only increases the round at read time, so
/// ball containment still holds).
class EngineFaultModel {
 public:
  virtual ~EngineFaultModel() = default;

  /// True if node `v` is down during `round` (1-based). A down node
  /// executes nothing and sends nothing; it does not count as active, so
  /// runs still terminate. A model whose answer is monotone in the round
  /// describes crash-stop; a model that answers true on a bounded interval
  /// describes crash-*recovery* — when the answer flips back to false the
  /// engine discards the node's pending messages, calls
  /// SyncAlgorithm::on_recover, and lets it rejoin with blank state.
  virtual bool crashed(int round, int v) const {
    (void)round;
    (void)v;
    return false;
  }

  /// True if the message sent in `round` from node `from` to node `to`
  /// is dropped in transit (receiver sees no message on that port).
  virtual bool drop_message(int round, int from, int to) const {
    (void)round;
    (void)from;
    (void)to;
    return false;
  }

  /// May mutate `payload` in place; returns true iff it did.
  virtual bool corrupt_message(int round, int from, int to, std::string& payload) const {
    (void)round;
    (void)from;
    (void)to;
    (void)payload;
    return false;
  }

  /// True if the message delivered in `round` from `from` to `to` is also
  /// duplicated: a stale copy arrives again one round later. The duplicate
  /// is discarded (and counted) if a fresh message occupies the port when
  /// it lands — stale information never masks fresh information.
  virtual bool duplicate_message(int round, int from, int to) const {
    (void)round;
    (void)from;
    (void)to;
    return false;
  }

  /// Extra rounds the message sent in `round` from `from` to `to` spends
  /// in transit (0 = delivered on time). A delayed message lands in the
  /// receiver's port only if no fresh message occupies it by then.
  virtual int delay_rounds(int round, int from, int to) const {
    (void)round;
    (void)from;
    (void)to;
    return 0;
  }
};

/// Accounting of faults the engine actually applied during one run().
struct EngineFaultStats {
  long long dropped = 0;
  long long corrupted = 0;
  long long duplicated = 0;       // stale copies scheduled by the model
  long long delayed = 0;          // messages held back at least one round
  long long stale_discarded = 0;  // late copies that lost to a fresh message
  int crashed_nodes = 0;          // crash events (a node crashes at most once)
  int recovered_nodes = 0;        // crash-recovery rejoins with blank state
};

/// Per-round provenance accounting of an audited run.
struct ProvenanceRoundStats {
  int round = 0;
  int active_nodes = 0;      // nodes that executed this round
  int max_set_size = 0;      // largest provenance set
  double avg_set_size = 0.0; // mean provenance set size over active nodes
  int max_radius = 0;        // max dist(v, origin) over all tracked pairs
};

/// A node whose provenance escaped its radius-`round` ball.
struct ProvenanceViolation {
  int node = -1;
  NodeId node_id = 0;
  int round = 0;
  int origin = -1;          // offending origin (node index)
  NodeId origin_id = 0;
  int origin_distance = 0;  // dist(node, origin) > round
  std::string detail;
};

struct EngineAuditLog {
  std::vector<ProvenanceRoundStats> per_round;
  std::vector<ProvenanceViolation> violations;
  bool clean() const { return violations.empty(); }
};

class Engine {
 public:
  explicit Engine(const Graph& g) : g_(g) {}

  /// Turns on provenance tracking for subsequent run() calls. With
  /// `fail_fast` (the default) a ball-containment violation throws
  /// ContractViolation; otherwise it is recorded in audit_log().
  void enable_audit(bool fail_fast = true) {
    audit_ = true;
    audit_fail_fast_ = fail_fast;
  }

  const EngineAuditLog& audit_log() const { return audit_log_; }

  /// Installs a fault model for subsequent run() calls (non-owning; pass
  /// nullptr to restore fault-free execution). Composes with enable_audit.
  void set_fault_model(const EngineFaultModel* model) { faults_ = model; }

  /// Faults applied during the most recent run().
  const EngineFaultStats& fault_stats() const { return fault_stats_; }

  /// Fans the compute phase of each round out over `pool` (non-owning; pass
  /// nullptr to restore serial execution). Node steps within a synchronous
  /// round are independent by definition of the model, and every per-node
  /// effect (outbox slots, halt state, provenance set) lands in slots owned
  /// by that node, so results are byte-identical to serial execution at any
  /// thread count. Requirement on algorithms: round(ctx) must touch only
  /// state belonging to ctx.node() (every SyncAlgorithm in this repository
  /// keeps its state in vectors indexed by ctx.node(), which qualifies).
  /// Message delivery and the audit pass stay serial — they are the
  /// synchronization barrier between rounds.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Runs `alg` until all nodes halt or `max_rounds` elapse.
  RunResult run(SyncAlgorithm& alg, int max_rounds);

 private:
  friend class NodeCtx;
  void merge_provenance(int v, const std::vector<int>& origins);
  void audit_round(int round);

  const Graph& g_;
  std::vector<std::string> inbox_;      // flattened: adj offset indexing
  std::vector<char> inbox_present_;
  std::vector<std::string> outbox_;
  std::vector<char> outbox_present_;
  std::vector<char> halted_;
  std::vector<char> crashed_;
  std::vector<std::string> outputs_;
  std::vector<int> halt_round_;
  std::vector<int> offsets_;  // CSR port offsets, size n+1

  const EngineFaultModel* faults_ = nullptr;
  EngineFaultStats fault_stats_;
  ThreadPool* pool_ = nullptr;

  bool audit_ = false;
  bool audit_fail_fast_ = true;
  EngineAuditLog audit_log_;
  std::vector<std::vector<int>> prov_;        // per node, sorted origin sets
  std::vector<std::vector<int>> inbox_prov_;  // per slot, provenance tags
  std::vector<std::vector<int>> outbox_prov_;
  std::vector<std::vector<int>> dist_;  // all-pairs distances (audit only)

  int slot(int v, int port) const {
    LAD_ASSERT(v >= 0 && v < static_cast<int>(offsets_.size()) - 1);
    LAD_ASSERT(port >= 0 && offsets_[v] + port < offsets_[v + 1]);
    return offsets_[v] + port;
  }
};

}  // namespace lad
