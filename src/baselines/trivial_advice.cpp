#include "baselines/trivial_advice.hpp"

namespace lad {

int trivial_bits_per_node(int k) {
  int bits = 0;
  int v = 1;
  while (v < k) {
    v *= 2;
    ++bits;
  }
  return std::max(1, bits);
}

Advice trivial_node_label_advice(const Graph& g, const std::vector<int>& labels, int k) {
  LAD_CHECK(static_cast<int>(labels.size()) == g.n());
  const int width = trivial_bits_per_node(k);
  Advice a(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    LAD_CHECK(labels[v] >= 1 && labels[v] <= k);
    a[static_cast<std::size_t>(v)] =
        BitString::fixed_width(static_cast<std::uint64_t>(labels[v] - 1), width);
  }
  return a;
}

std::vector<int> decode_trivial_node_labels(const Graph& g, const Advice& advice, int k) {
  const int width = trivial_bits_per_node(k);
  std::vector<int> labels(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    int pos = 0;
    labels[static_cast<std::size_t>(v)] =
        1 + static_cast<int>(advice[static_cast<std::size_t>(v)].read_fixed(pos, width));
  }
  return labels;
}

std::vector<char> edge_advice_for_orientation(const Graph& g, const Orientation& o) {
  LAD_CHECK(static_cast<int>(o.size()) == g.m());
  std::vector<char> bits(static_cast<std::size_t>(g.m()));
  for (int e = 0; e < g.m(); ++e) {
    // Bit 1: oriented from the lower-ID endpoint to the higher-ID one.
    const bool low_to_high = (g.id(g.edge_u(e)) < g.id(g.edge_v(e))) ==
                             (o[static_cast<std::size_t>(e)] == EdgeDir::kForward);
    bits[static_cast<std::size_t>(e)] = low_to_high ? 1 : 0;
  }
  return bits;
}

Orientation decode_edge_advice_orientation(const Graph& g, const std::vector<char>& bits) {
  LAD_CHECK(static_cast<int>(bits.size()) == g.m());
  Orientation o(static_cast<std::size_t>(g.m()));
  for (int e = 0; e < g.m(); ++e) {
    const bool u_is_low = g.id(g.edge_u(e)) < g.id(g.edge_v(e));
    const bool low_to_high = bits[static_cast<std::size_t>(e)] != 0;
    o[static_cast<std::size_t>(e)] =
        (u_is_low == low_to_high) ? EdgeDir::kForward : EdgeDir::kBackward;
  }
  return o;
}

}  // namespace lad
