// Linial's color reduction (advice-free baseline, also stage 2 of §6).
//
// One round maps a proper c-coloring to a proper q^2-coloring, q a prime
// with q > Δ·d and q^(d+1) >= c: node colors are interpreted as degree-<=d
// polynomials over F_q; each node picks an evaluation point a that
// disagrees with all neighbors' polynomials and outputs (a, p(a)). Iterating
// reaches O(Δ^2) colors in O(log* c) rounds.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lad {

struct LinialResult {
  std::vector<int> colors;  // proper coloring, values 1..num_colors
  int num_colors = 0;
  int rounds = 0;
};

/// One Linial reduction round from the given proper coloring (colors are
/// 1-based, at most `c`).
LinialResult linial_step(const Graph& g, const std::vector<int>& colors, int c);

/// Iterates linial_step until the palette stops shrinking; starting from the
/// coloring induced by unique IDs this is the classical O(Δ^2)-coloring in
/// O(log* n) rounds.
LinialResult linial_coloring_from_ids(const Graph& g);

/// Iterates linial_step from an arbitrary proper coloring.
LinialResult linial_reduce(const Graph& g, std::vector<int> colors, int c);

/// Reduces a proper coloring to at most k colors (k >= Δ+1) by processing
/// color classes one per round (each class is independent; every member
/// picks the smallest free color). Rounds = initial palette size.
LinialResult reduce_to_k_by_classes(const Graph& g, std::vector<int> colors, int c, int k);

}  // namespace lad
