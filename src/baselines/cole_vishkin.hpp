// Cole–Vishkin 3-coloring of consistently oriented cycles in O(log* n)
// rounds — the classical advice-free baseline that E1/B1 compare against
// (with 1 bit of advice the same problem takes O(1) rounds; without advice
// Linial's lower bound says Ω(log* n) is optimal).
//
// Runs on the synchronous message-passing engine, exercising the
// operational LOCAL semantics end to end.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "local/engine.hpp"

namespace lad {

struct ColeVishkinResult {
  std::vector<int> colors;  // proper 3-coloring, values 1..3
  int rounds = 0;
};

/// 3-colors a cycle. `successor[v]` gives the consistent orientation (the
/// standard model assumption for Cole–Vishkin; the cycle generator provides
/// it). Runs as a real message-passing algorithm on the Engine. When
/// `audit` is non-null the run executes under the provenance auditor
/// (engine.hpp) and the log is written there.
ColeVishkinResult cole_vishkin_cycle(const Graph& g, const std::vector<int>& successor,
                                     EngineAuditLog* audit = nullptr);

/// Convenience: builds the successor map of make_cycle-style graphs by
/// walking the cycle from node 0.
std::vector<int> cycle_successors(const Graph& g);

}  // namespace lad
