// Advice-free baseline for balanced orientation: without advice the problem
// needs Ω(n) rounds (already on a single cycle, both endpoints of a long
// path of the cycle must agree on a direction, which requires information
// to travel the cycle). The baseline orients each Euler trail by the
// canonical ID rule, which forces every node to see its whole trail: the
// measured round count is the longest trail length — Θ(n) on a cycle.
#pragma once

#include "graph/checkers.hpp"
#include "graph/graph.hpp"

namespace lad {

struct GlobalOrientationResult {
  Orientation orientation;
  int rounds = 0;  // longest trail walk = the advice-free cost
};

GlobalOrientationResult orient_without_advice(const Graph& g);

}  // namespace lad
