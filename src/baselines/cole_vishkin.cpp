#include "baselines/cole_vishkin.hpp"

#include <algorithm>
#include <string>

#include "graph/checkers.hpp"

namespace lad {
namespace {

long long bits_of(long long x) {
  long long b = 0;
  while (x > 0) {
    x >>= 1;
    ++b;
  }
  return std::max(1LL, b);
}

// Lowest index at which two distinct values differ, and the bit of `mine`
// there: the Cole–Vishkin reduction step.
long long cv_reduce(long long mine, long long succ) {
  long long diff = mine ^ succ;
  int i = 0;
  while (!(diff & 1)) {
    diff >>= 1;
    ++i;
  }
  return 2LL * i + ((mine >> i) & 1LL);
}

// Deterministic phase schedule, identical at every node (depends only on
// the public ID-space bound n^3): how many CV iterations until the palette
// bound drops to 6.
int cv_iterations(long long n) {
  long long bound = std::max<long long>(8, n * n * n + 1);
  int iters = 0;
  while (bound > 6) {
    bound = 2 * bits_of(bound - 1);
    ++iters;
  }
  return iters;
}

class CvAlgorithm : public SyncAlgorithm {
 public:
  CvAlgorithm(const std::vector<int>& successor, std::vector<int>& out_colors)
      : successor_(successor), out_(out_colors) {}

  void init(const Graph& g) override {
    g_ = &g;
    color_.resize(static_cast<std::size_t>(g.n()));
    for (int v = 0; v < g.n(); ++v) color_[v] = g.id(v);
    cv_rounds_ = cv_iterations(g.n());
  }

  void round(NodeCtx& ctx) override {
    const int v = ctx.node();
    const int succ = successor_[v];
    int pred = succ;
    for (const int u : g_->neighbors(v)) {
      if (u != succ) pred = u;
    }
    const int succ_port = g_->port_of(v, succ);
    const int pred_port = g_->port_of(v, pred);
    const int r = ctx.round_number();

    auto announce = [&] {
      ctx.send(pred_port, std::to_string(color_[v]));
      ctx.send(succ_port, std::to_string(color_[v]));
    };

    if (r == 1) {  // warm-up: announce the initial (ID) coloring
      announce();
      return;
    }

    const long long succ_color = std::stoll(ctx.received(succ_port));
    const long long pred_color = std::stoll(ctx.received(pred_port));

    if (r <= 1 + cv_rounds_) {
      color_[v] = cv_reduce(color_[v], succ_color);
      announce();
      return;
    }

    // Palette is now {0..5}; three rounds eliminate classes 5, 4, 3 (each
    // class is independent, so simultaneous recoloring is safe).
    const int k = r - (2 + cv_rounds_);  // 0, 1, 2
    const long long target = 5 - k;
    if (color_[v] == target) {
      for (long long c = 0; c < 3; ++c) {
        if (c != succ_color && c != pred_color) {
          color_[v] = c;
          break;
        }
      }
    }
    if (k == 2) {
      out_[v] = static_cast<int>(color_[v]) + 1;
      ctx.halt(std::to_string(color_[v]));
      return;
    }
    announce();
  }

 private:
  const std::vector<int>& successor_;
  std::vector<int>& out_;
  const Graph* g_ = nullptr;
  std::vector<long long> color_;
  int cv_rounds_ = 0;
};

}  // namespace

std::vector<int> cycle_successors(const Graph& g) {
  LAD_CHECK(g.n() >= 3);
  std::vector<int> succ(static_cast<std::size_t>(g.n()), -1);
  int prev = 0;
  int cur = g.neighbors(0)[0];
  succ[0] = cur;
  while (cur != 0) {
    const auto nb = g.neighbors(cur);
    LAD_CHECK_MSG(nb.size() == 2, "cycle_successors requires a 2-regular graph");
    const int next = nb[0] == prev ? nb[1] : nb[0];
    succ[cur] = next;
    prev = cur;
    cur = next;
  }
  return succ;
}

ColeVishkinResult cole_vishkin_cycle(const Graph& g, const std::vector<int>& successor,
                                     EngineAuditLog* audit) {
  ColeVishkinResult res;
  res.colors.assign(static_cast<std::size_t>(g.n()), 0);
  CvAlgorithm alg(successor, res.colors);
  Engine eng(g);
  if (audit != nullptr) eng.enable_audit();
  const auto run = eng.run(alg, 1000);
  if (audit != nullptr) *audit = eng.audit_log();
  LAD_CHECK_MSG(run.all_halted, "Cole-Vishkin did not terminate");
  res.rounds = run.rounds;
  LAD_CHECK(is_proper_coloring(g, res.colors, 3));
  return res;
}

}  // namespace lad
