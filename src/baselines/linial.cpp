#include "baselines/linial.hpp"

#include <algorithm>
#include <cstdint>

#include "graph/checkers.hpp"

namespace lad {
namespace {

bool is_prime(int x) {
  if (x < 2) return false;
  for (int d = 2; static_cast<long long>(d) * d <= x; ++d) {
    if (x % d == 0) return false;
  }
  return true;
}

int next_prime(int x) {
  while (!is_prime(x)) ++x;
  return x;
}

// Evaluates the polynomial whose coefficients are the base-q digits of
// `code` at point a over F_q.
int poly_eval(std::int64_t code, int q, int a) {
  std::int64_t value = 0;
  std::int64_t power = 1;
  while (code > 0) {
    value = (value + (code % q) * power) % q;
    power = (power * a) % q;
    code /= q;
  }
  return static_cast<int>(value);
}

int digits_base(std::int64_t c, int q) {
  int d = 0;
  std::int64_t x = c;
  while (x > 0) {
    x /= q;
    ++d;
  }
  return std::max(1, d);
}

}  // namespace

LinialResult linial_step(const Graph& g, const std::vector<int>& colors, int c) {
  LAD_CHECK(is_proper_coloring(g, colors, c));
  const int delta = std::max(1, g.max_degree());
  // Pick q prime with q > Δ * d where d+1 = number of base-q digits of c.
  // Iterate: a larger q shrinks d, so a small fixed point exists.
  int q = next_prime(delta + 2);
  while (true) {
    const int d = digits_base(c, q) - 1;  // polynomial degree
    if (q > delta * std::max(1, d)) break;
    q = next_prime(q + 1);
  }
  const int d = digits_base(c, q) - 1;

  LinialResult res;
  res.colors.assign(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    const std::int64_t my = colors[v] - 1;
    int chosen_a = -1;
    for (int a = 0; a < q && chosen_a < 0; ++a) {
      bool ok = true;
      for (const int u : g.neighbors(v)) {
        const std::int64_t other = colors[u] - 1;
        if (other == my) continue;  // cannot happen in a proper coloring
        if (poly_eval(other, q, a) == poly_eval(my, q, a)) {
          // Same point-value pair only matters if the neighbor could pick
          // the same a; conservatively avoid it.
          ok = false;
          break;
        }
      }
      if (ok) chosen_a = a;
    }
    LAD_CHECK_MSG(chosen_a >= 0, "Linial step found no evaluation point (q=" << q << ", d=" << d
                                                                             << ")");
    res.colors[v] = 1 + chosen_a * q + poly_eval(my, q, chosen_a);
  }
  res.num_colors = q * q;
  res.rounds = 1;
  LAD_CHECK(is_proper_coloring(g, res.colors, res.num_colors));
  return res;
}

LinialResult linial_reduce(const Graph& g, std::vector<int> colors, int c) {
  LinialResult res;
  res.colors = std::move(colors);
  res.num_colors = c;
  res.rounds = 0;
  while (true) {
    auto step = linial_step(g, res.colors, res.num_colors);
    if (step.num_colors >= res.num_colors) break;
    res.colors = std::move(step.colors);
    res.num_colors = step.num_colors;
    res.rounds += 1;
  }
  return res;
}

LinialResult linial_coloring_from_ids(const Graph& g) {
  // Unique IDs are a proper coloring with poly(n) colors; compress the ID
  // space to ranks first (purely to keep the arithmetic in 64 bits — the
  // round count is unchanged, and ranks preserve order-invariance).
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) ids.push_back(g.id(v));
  std::sort(ids.begin(), ids.end());
  std::vector<int> colors(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    colors[v] =
        1 + static_cast<int>(std::lower_bound(ids.begin(), ids.end(), g.id(v)) - ids.begin());
  }
  return linial_reduce(g, std::move(colors), g.n());
}

LinialResult reduce_to_k_by_classes(const Graph& g, std::vector<int> colors, int c, int k) {
  LAD_CHECK(k >= g.max_degree() + 1);
  LAD_CHECK(is_proper_coloring(g, colors, c));
  LinialResult res;
  res.rounds = 0;
  for (int cls = k + 1; cls <= c; ++cls) {
    // All nodes of class cls recolor simultaneously (the class is
    // independent): one round each.
    for (int v = 0; v < g.n(); ++v) {
      if (colors[v] != cls) continue;
      std::vector<char> used(static_cast<std::size_t>(k) + 1, 0);
      for (const int u : g.neighbors(v)) {
        if (colors[u] <= k) used[colors[u]] = 1;
      }
      int free_color = 1;
      while (used[free_color]) ++free_color;
      LAD_CHECK(free_color <= k);
      colors[v] = free_color;
    }
    res.rounds += 1;
  }
  res.colors = std::move(colors);
  res.num_colors = std::min(c, k);
  LAD_CHECK(is_proper_coloring(g, res.colors, res.num_colors));
  return res;
}

}  // namespace lad
