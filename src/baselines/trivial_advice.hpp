// Trivial advice baselines (§1.1): any problem whose solution fits in
// ceil(log2 |Σout|) bits per node can be solved with that many bits by
// encoding the solution verbatim — e.g. β = 2 for 3-coloring. These provide
// the upper reference line for the bits-per-node plots.
#pragma once

#include <vector>

#include "advice/advice.hpp"
#include "graph/checkers.hpp"
#include "graph/graph.hpp"

namespace lad {

/// Encodes a node labeling verbatim with ceil(log2 k) bits per node.
Advice trivial_node_label_advice(const Graph& g, const std::vector<int>& labels, int k);

/// Decodes it back (0 rounds).
std::vector<int> decode_trivial_node_labels(const Graph& g, const Advice& advice, int k);

/// Bits per node the trivial encoding uses for a k-valued label.
int trivial_bits_per_node(int k);

/// §1.4's remark: if advice may be placed on *edges*, one bit per edge
/// trivially encodes any orientation ("oriented from lower to higher ID").
/// The paper's point is that node advice is the hard case; this is the
/// easy reference implementation (0 decoding rounds).
std::vector<char> edge_advice_for_orientation(const Graph& g, const Orientation& o);
Orientation decode_edge_advice_orientation(const Graph& g, const std::vector<char>& bits);

}  // namespace lad
