#include "baselines/global_orientation.hpp"

#include <algorithm>

#include "graph/euler.hpp"

namespace lad {

GlobalOrientationResult orient_without_advice(const Graph& g) {
  const auto trails = euler_partition(g);
  GlobalOrientationResult res;
  res.orientation.assign(static_cast<std::size_t>(g.m()), EdgeDir::kUnset);
  for (const auto& t : trails) {
    const int dir = canonical_trail_direction(g, t) ? +1 : -1;
    const int L = t.length();
    for (int i = 0; i < L; ++i) {
      const int a = t.nodes[static_cast<std::size_t>(i)];
      const int b = t.closed ? t.nodes[static_cast<std::size_t>((i + 1) % L)]
                             : t.nodes[static_cast<std::size_t>(i + 1)];
      const int e = t.edges[static_cast<std::size_t>(i)];
      const int from = dir > 0 ? a : b;
      res.orientation[static_cast<std::size_t>(e)] =
          g.edge_u(e) == from ? EdgeDir::kForward : EdgeDir::kBackward;
    }
    res.rounds = std::max(res.rounds, L);
  }
  return res;
}

}  // namespace lad
