// lad — command-line front end for the local-advice library.
//
// Usage:
//   lad gen <spec|family args...> [--out g.ladg|g.txt]   # graph generation
//   lad orient   <graph.txt>          # §5: 1-bit advice, decode, validate
//   lad compress <graph.txt> <p>      # §1.5: compress a random p-subset
//   lad color3   <graph.txt>          # §7: solve witness + 1-bit schema
//   lad proof    <graph.txt> <mis|matching|3col>   # §1.2 certificate demo
//   lad audit    <source> <alg>       # locality-conformance audit
//   lad faultsim <decoder> <family> <n> [trials] [seed] [--flags]  # fault campaign
//   lad chaos    [--pipelines ...] [--models ...] [--policies ...]  # chaos matrix
//   lad bench    <suite> | --graph SPEC[,SPEC...] [--pipeline P]
//                [--threads K] [--reps K] [--json out.json] [--trace]
//   lad trace    <pipeline> [--graph SPEC | --family F -n N] [--out t.json]
//                                     # telemetry: spans + metric counters
//   lad profile  <pipeline> --graph SPEC [--threads K] [--reps R] [--json f]
//                [--out PERF-generated.md]   # DESIGN.md §13 cost centers
//   lad diffprof <baseline.json> <candidate.json> [--tol-ms X] [--tol-rel R] [--json]
//   lad verify-claims [--family F] [--graphs SPEC,...] [--json]   # DESIGN.md §9.6
//   lad diffbench <baseline.json> <candidate.json> [--tol-ms X] [--tol-rel R] [--json]
//   lad report   [--out EXPERIMENTS-generated.md]   # regenerable claims report
//   lad lint     [--root DIR] [--rule R] [--baseline FILE] [--json]   # static analysis
//   lad dot      <graph.txt>          # Graphviz export
//
// Exit-code convention, uniform across verbs (pinned by cli_exit_codes):
//   0 — success / the checked property holds
//   2 — usage error or unparseable input document
//   3 — soft failure: the property checked does not hold (audit violation,
//       claim FAIL, silent corruption, digest drift, new lint findings)
//   4 — hard failure: internal error, contract violation, unlexable source
//
// Decoder-facing commands (audit, faultsim) dispatch through the Pipeline
// registry (core/pipeline.hpp): any pipeline name the registry knows is a
// valid argument, with no per-decoder switch here.
//
// Graph inputs are GraphSource specs (graph/source.hpp): a generator spec
// "family:params[@seed]" (cycle:1000, torus:32x32@7), a binary ".ladg"
// file (graph/io.hpp §12 format), or a ".txt" edge list. An unknown source
// exits 2 naming the offender. The classic verbs (orient, compress,
// color3, proof, dot) keep reading plain edge-list files.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "advice/advice.hpp"
#include "baselines/cole_vishkin.hpp"
#include "bench/bench_runner.hpp"
#include "core/decompress.hpp"
#include "core/orientation.hpp"
#include "core/pipeline.hpp"
#include "core/proofs.hpp"
#include "core/splitting.hpp"
#include "core/three_coloring.hpp"
#include "faults/campaign.hpp"
#include "faults/chaos.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/rng.hpp"
#include "graph/source.hpp"
#include "lcl/problems.hpp"
#include "lcl/solver.hpp"
#include "lint/lint.hpp"
#include "local/audit.hpp"
#include "local/engine.hpp"
#include "obs/benchdiff.hpp"
#include "obs/claims.hpp"
#include "obs/profile.hpp"
#include "obs/export.hpp"
#include "obs/stopwatch.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "obs/version.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lad;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lad gen <source> [--out FILE]   # source spec form; FILE ending in\n"
               "          .ladg writes the binary format of graph/io.hpp, anything else\n"
               "          (or stdout) the text edge list. Specs: family:params[@seed]\n"
               "          (cycle:1000000, torus:32x32@7, ...), a .ladg file, or a .txt\n"
               "          edge list\n"
               "  lad gen cycle <n> [seed] | path <n> [seed] | grid <w> <h> [seed]\n"
               "          | ladder <m> [seed] | regular <n> <d> [seed]\n"
               "          | banded <n> <band> <avgdeg> <maxdeg> [seed]\n"
               "          | twocycles <n1> <n2> [seed]   # audit-friendly disjoint union\n"
               "  lad orient <graph.txt>\n"
               "  lad compress <graph.txt> <density>\n"
               "  lad color3 <graph.txt>\n"
               "  lad proof <graph.txt> <mis|matching|3col>\n"
               "  lad audit <source> gather [radius]      # engine provenance stats\n"
               "  lad audit <source> cv                   # Cole-Vishkin under the auditor\n"
               "  lad audit <source> <pipeline>           # decoder locality audit; any\n"
               "            registry pipeline name (orientation, splitting, three_coloring,\n"
               "            delta_coloring, subexp_lcl, decompress; orient/split/compress\n"
               "            are accepted aliases)\n"
               "  lad faultsim <pipeline> <cycle|grid|torus> <n> [trials] [seed]\n"
               "            [--crash-recovery K] [--dup P] [--delay P] [--max-delay K]\n"
               "            [--targeting uniform|high_degree|region_boundary]\n"
               "            [--burst K] [--burst-radius R]\n"
               "            [--policy strict|backoff|budgeted]\n"
               "  lad chaos [--pipelines p1,p2,...] [--families f1,f2,...]\n"
               "            [--models mixed,adversarial,churn] [--rates 50,100,...]\n"
               "            [--policies strict,backoff,budgeted] [-n N] [--trials T]\n"
               "            [--seed S] [--threads K] [--out FILE] [--json FILE]\n"
               "            cross-product fault campaign; every cell must end with zero\n"
               "            silent corruptions and all nodes accounted in a DegradeStatus\n"
               "            bucket; writes byte-deterministic markdown (default out:\n"
               "            ROBUSTNESS-generated.md); exit 0 pass, 3 any cell fails\n"
               "  lad bench <suite> | --graph SPEC[,SPEC...] [--pipeline <name>]\n"
               "            [--threads K[,K...]] [--reps K] [--json out.json] [--trace]\n"
               "            suites: e1..e9 r1 gather scale smoke all; --graph benches one\n"
               "            pipeline (default orientation) per graph source, with the\n"
               "            multi-thread re-run rebuilding the CSR in parallel; --trace\n"
               "            embeds per-case telemetry counters in the JSON; --reps K\n"
               "            times each case as min-of-K after one warmup; a comma list\n"
               "            --threads 1,2,4 emits one \"case/t=K\" row per count\n"
               "  lad trace <pipeline> [--graph SPEC | --family cycle|grid|torus] [-n N]\n"
               "            [--seed S]\n"
               "            [--out trace.json] [--jsonl events.jsonl] [--metrics m.prom]\n"
               "            runs encode -> decode -> verify -> verification echo with\n"
               "            telemetry on; prints the metric table, optionally exports a\n"
               "            Chrome trace (chrome://tracing, Perfetto), JSONL events, and\n"
               "            Prometheus text metrics\n"
               "  lad profile <pipeline> --graph SPEC [--threads K] [--reps R] [--seed S]\n"
               "            [--json profile.json] [--out PERF-generated.md]\n"
               "            profiling observatory (DESIGN.md §13): runs encode -> decode ->\n"
               "            verify -> pooled verification echo with telemetry on and prints\n"
               "            the ranked phase x thread cost-center report (self-ms, share,\n"
               "            allocation counts, pool imbalance); the JSON's \"deterministic\"\n"
               "            object is byte-identical across reruns and thread counts\n"
               "  lad verify-claims [--family <pipeline>] [--ns n1,n2,...]\n"
               "            [--graphs SPEC,SPEC,SPEC,...] [--seed S] [--json]\n"
               "            runs every registered pipeline (or one family) over an n-sweep\n"
               "            and checks the measured rounds / bits-per-node / ones-ratio\n"
               "            series against the growth classes and bounds its paper theorem\n"
               "            declares (Pipeline::claims); without --ns each pipeline may\n"
               "            extend the default sweep (Pipeline::sweep_ns); --graphs sweeps\n"
               "            explicit graph sources instead (needs --family and >= 3\n"
               "            sources); exit 0 = all claims hold\n"
               "  lad diffbench <baseline.json> <candidate.json> [--tol-ms X] [--tol-rel R]\n"
               "            [--json]   structural diff of two bench documents: rounds/\n"
               "            bits/digest/case-set exactly, serial wall time with tolerance;\n"
               "            exit 0 clean, 3 timing regression, 4 structural mismatch\n"
               "  lad diffprof <baseline.json> <candidate.json> [--tol-ms X] [--tol-rel R]\n"
               "            [--json]   structural diff of two `lad profile --json`\n"
               "            documents: every deterministic field exactly (digests, message/\n"
               "            advice counts, allocation totals), total wall time with\n"
               "            tolerance; same exit codes as diffbench\n"
               "  lad timeline <pipeline> --graph SPEC [--threads K[,K...]] [--reps R]\n"
               "            [--seed S] [--json timeline.json] [--out TIMELINE-generated.md]\n"
               "            timeline observatory (DESIGN.md §14): per-round time-series\n"
               "            (messages/bytes/faults/repairs/allocs deterministic; wall time,\n"
               "            pool dispatch latency, barrier wait, imbalance measured) plus\n"
               "            the Amdahl critical-path analysis — measured serial fraction at\n"
               "            1 thread, predicted max vs measured speedup per thread count;\n"
               "            the JSON's \"deterministic\" object is byte-identical across\n"
               "            reruns and thread counts (exit 4 if a run diverges)\n"
               "  lad difftl <baseline.json> <candidate.json> [--tol-ms X] [--tol-rel R]\n"
               "            structural diff of two `lad timeline --json` documents:\n"
               "            deterministic fields and the per-round series exactly, per-\n"
               "            thread-count total wall time with tolerance; same exit codes\n"
               "            as diffbench\n"
               "  lad report [--out FILE] [--ns n1,n2,...] [--seed S]\n"
               "            regenerates the claims-conformance report (markdown) from the\n"
               "            real encode/decode/verify stack; default out:\n"
               "            EXPERIMENTS-generated.md\n"
               "  lad lint [--root DIR] [--rule R]... [--baseline FILE]\n"
               "            [--write-baseline FILE] [--list-rules] [--json]\n"
               "            static analysis of src/ and tools/ under --root (default .):\n"
               "            determinism, layering, and telemetry-catalog hygiene rules\n"
               "            (DESIGN.md §10); default baseline ROOT/lint_baseline.json when\n"
               "            present; exit 0 clean, 3 new findings, 4 unlexable source\n"
               "  lad dot <graph.txt>\n"
               "exit codes: 0 ok | 2 usage/parse | 3 checked property fails | 4 internal\n");
  return 2;
}

Graph load(const std::string& path) {
  std::ifstream in(path);
  LAD_CHECK_MSG(in.good(), "cannot open " << path);
  return read_edge_list(in);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// The unified GraphSource front door for the migrated verbs: parse + load,
// naming the offending spec on stderr. A nullopt return means the caller
// should exit 2 (the error is already printed) — source problems are
// input-document problems, not internal errors.
std::optional<GraphSource> parse_source_or_complain(const std::string& spec) {
  std::string err;
  auto src = parse_graph_source(spec, &err);
  if (!src) std::fprintf(stderr, "error: %s\n", err.c_str());
  return src;
}

std::optional<LoadedGraph> load_source_or_complain(const std::string& spec,
                                                   std::uint64_t seed = 1) {
  const auto src = parse_source_or_complain(spec);
  if (!src) return std::nullopt;
  try {
    return load_graph_source(*src, seed);
  } catch (const GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return std::nullopt;
  }
}

// Campaign family tokens (faultsim, chaos) route through the GraphSource
// parser so a bad token names the offender, then narrow to the families
// the fault harness can perturb.
std::optional<faults::GraphFamily> parse_campaign_family(const std::string& tok) {
  const auto src = parse_source_or_complain(tok);
  if (!src) return std::nullopt;
  if (src->kind != GraphSource::Kind::kFamily) {
    std::fprintf(stderr, "error: '%s' is not a campaign family (campaigns generate their "
                         "own instances; expected cycle|grid|torus)\n",
                 tok.c_str());
    return std::nullopt;
  }
  const auto f = faults::parse_family(src->family);
  if (!f) {
    std::fprintf(stderr, "error: unknown family '%s' (campaigns run on cycle|grid|torus)\n",
                 tok.c_str());
  }
  return f;
}

// Spec-form generation: `lad gen torus:1000x1000@7 --out g.ladg`. A FILE
// ending in .ladg gets the binary format; anything else (or stdout) the
// text edge list.
int cmd_gen_source(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  const auto lg = load_source_or_complain(argv[0]);
  if (!lg) return 2;
  if (out_path.empty()) {
    write_edge_list(std::cout, lg->graph);
    return 0;
  }
  try {
    if (out_path.size() >= 5 && out_path.ends_with(".ladg")) {
      write_ladg(out_path, lg->graph);
    } else {
      std::ofstream out(out_path);
      LAD_CHECK_MSG(out.good(), "cannot write " << out_path);
      write_edge_list(out, lg->graph);
    }
  } catch (const GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("wrote %s (%s: n=%d m=%d digest %s)\n", out_path.c_str(), lg->spec.c_str(),
              lg->graph.n(), lg->graph.m(), lg->digest.c_str());
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 1) return usage();
  // Spec form iff the first argument looks like a GraphSource spec
  // (family:params, a path) or any flag follows; bare legacy spellings
  // ("gen cycle 500 1") keep the positional path below byte-identical.
  bool spec_form = std::string(argv[0]).find_first_of(":./") != std::string::npos;
  for (int i = 1; i < argc && !spec_form; ++i) spec_form = argv[i][0] == '-';
  if (spec_form) return cmd_gen_source(argc, argv);
  if (argc < 2) return usage();
  const std::string family = argv[0];
  auto arg = [&](int i, long long dflt) {
    return i < argc ? std::atoll(argv[i]) : dflt;
  };
  Graph g;
  if (family == "cycle") {
    g = make_cycle(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "path") {
    g = make_path(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "grid") {
    g = make_grid(static_cast<int>(arg(1, 10)), static_cast<int>(arg(2, 10)),
                  IdMode::kRandomDense, arg(3, 1));
  } else if (family == "ladder") {
    g = make_circular_ladder(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "regular") {
    g = make_random_regular(static_cast<int>(arg(1, 100)), static_cast<int>(arg(2, 4)),
                            static_cast<std::uint64_t>(arg(3, 1)));
  } else if (family == "twocycles") {
    // Disjoint union of two cycles: the second component is the probe for
    // `lad audit` (its IDs get rotated; the first component is audited).
    g = disjoint_union({make_cycle(static_cast<int>(arg(1, 400))),
                        make_cycle(static_cast<int>(arg(2, 24)))},
                       IdMode::kRandomDense, arg(3, 1));
  } else if (family == "banded") {
    g = make_banded_random(static_cast<int>(arg(1, 500)), static_cast<int>(arg(2, 5)),
                           static_cast<double>(arg(3, 3)), static_cast<int>(arg(4, 6)),
                           static_cast<std::uint64_t>(arg(5, 1)));
  } else {
    // Name the offender: scripts looping over families should see *which*
    // spelling was wrong, not just the generic usage text.
    std::fprintf(stderr, "error: unknown graph family '%s'\n", family.c_str());
    usage();
    return 2;
  }
  write_edge_list(std::cout, g);
  return 0;
}

int cmd_orient(const std::string& path) {
  const Graph g = load(path);
  const auto enc = encode_orientation_advice(g);
  const auto stats = advice_stats(advice_from_bits(enc.bits));
  const auto dec = decode_orientation(g, enc.bits);
  std::printf("n=%d m=%d Δ=%d\n", g.n(), g.m(), g.max_degree());
  std::printf("advice: 1 bit/node, ones ratio %.4f, marked trails %d\n", stats.ones_ratio,
              enc.num_marked_trails);
  const bool balanced = is_balanced_orientation(g, dec.orientation, 1);
  std::printf("decoded in %d LOCAL rounds; almost-balanced: %s\n", dec.rounds,
              balanced ? "yes" : "NO");
  return balanced ? 0 : 3;
}

int cmd_compress(const std::string& path, double density) {
  const Graph g = load(path);
  Rng rng(1);
  std::vector<char> x(static_cast<std::size_t>(g.m()));
  for (auto& b : x) b = rng.flip(density) ? 1 : 0;
  const auto c = compress_edge_set(g, x);
  long long ours = 0, trivial = 0;
  for (int v = 0; v < g.n(); ++v) {
    ours += c.labels[static_cast<std::size_t>(v)].size();
    trivial += g.degree(v);
  }
  const auto r = decompress_edge_set(g, c);
  std::printf("edge set of %d edges compressed: %.3f bits/node (trivial %.3f)\n",
              static_cast<int>(std::count(x.begin(), x.end(), 1)),
              static_cast<double>(ours) / g.n(), static_cast<double>(trivial) / g.n());
  std::printf("decompressed in %d rounds; exact recovery: %s\n", r.rounds,
              r.in_x == x ? "yes" : "NO");
  return r.in_x == x ? 0 : 3;
}

int cmd_color3(const std::string& path) {
  const Graph g = load(path);
  VertexColoringLcl p(3);
  std::fprintf(stderr, "solving for a witness (exact, exponential worst case)...\n");
  const auto witness = solve_lcl(g, p);
  if (!witness) {
    std::printf("graph is not 3-colorable\n");
    return 3;
  }
  const auto enc = encode_three_coloring_advice(g, witness->node_labels);
  const auto dec = decode_three_coloring(g, enc.bits);
  const bool proper = is_proper_coloring(g, dec.coloring, 3);
  std::printf("3-coloring schema: 1 bit/node, %d parity groups, %d LOCAL rounds, valid: %s\n",
              enc.num_groups, dec.rounds, proper ? "yes" : "NO");
  return proper ? 0 : 3;
}

int cmd_proof(const std::string& path, const std::string& which) {
  const Graph g = load(path);
  std::unique_ptr<LclProblem> p;
  if (which == "mis") {
    p = std::make_unique<MisLcl>();
  } else if (which == "matching") {
    p = std::make_unique<MaximalMatchingLcl>();
  } else if (which == "3col") {
    p = std::make_unique<VertexColoringLcl>(3);
  } else {
    return usage();
  }
  SubexpLclParams params;
  params.x = 100;
  const auto proof = make_lcl_proof(g, *p, params);
  const auto res = verify_lcl_proof(g, *p, proof, params);
  const auto stats = advice_stats(advice_from_bits(proof));
  std::printf("certificate for %s: 1 bit/node (ones ratio %.4f), verifier %s in %d rounds\n",
              p->name().c_str(), stats.ones_ratio, res.accepted ? "ACCEPTS" : "rejects",
              res.rounds);
  return res.accepted ? 0 : 3;
}

void print_provenance(const EngineAuditLog& log) {
  std::printf("%6s %8s %12s %12s %10s\n", "round", "active", "max |prov|", "avg |prov|",
              "max radius");
  for (const auto& s : log.per_round) {
    std::printf("%6d %8d %12d %12.2f %10d\n", s.round, s.active_nodes, s.max_set_size,
                s.avg_set_size, s.max_radius);
  }
  if (log.clean()) {
    std::printf("provenance: clean (every node's information stayed inside its ball)\n");
  } else {
    for (const auto& v : log.violations) std::printf("VIOLATION: %s\n", v.detail.c_str());
  }
}

int print_report(const LocalityAuditReport& report, int declared_rounds) {
  std::printf("decoder declared radius: %d rounds\n", declared_rounds);
  std::printf("indistinguishability audit: %d nodes checked, %d skipped (views differ)\n",
              report.nodes_checked, report.nodes_skipped);
  if (report.nodes_checked == 0) {
    std::printf("note: no node had an unchanged radius-%d view; use an instance with "
                "diameter well above the decoder radius for real coverage\n",
                declared_rounds);
  }
  if (report.clean()) {
    std::printf("audit: CLEAN\n");
    return 0;
  }
  for (const auto& v : report.violations) std::printf("VIOLATION: %s\n", v.detail.c_str());
  return 3;
}

// Flooding for `radius` rounds under the provenance auditor: the canonical
// audit-clean engine algorithm (provenance grows exactly one hop per round).
class AuditFlooder : public SyncAlgorithm {
 public:
  explicit AuditFlooder(int radius) : radius_(radius) {}
  void init(const Graph& g) override {
    known_.assign(static_cast<std::size_t>(g.n()), "");
    for (int v = 0; v < g.n(); ++v) known_[static_cast<std::size_t>(v)] = std::to_string(g.id(v));
  }
  void round(NodeCtx& ctx) override {
    auto& k = known_[static_cast<std::size_t>(ctx.node())];
    for (int p = 0; p < ctx.degree(); ++p) {
      if (ctx.has_message(p)) k += "|" + ctx.received(p);
    }
    if (ctx.round_number() > radius_) {
      ctx.halt(k);
      return;
    }
    ctx.broadcast(k);
  }

 private:
  int radius_;
  std::vector<std::string> known_;
};

int cmd_audit(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto lg = load_source_or_complain(argv[0]);
  if (!lg) return 2;
  const Graph& g = lg->graph;
  const std::string which = argv[1];

  if (which == "gather") {
    const int radius = argc >= 3 ? std::atoi(argv[2]) : 3;
    if (radius < 0) return usage();
    AuditFlooder alg(radius);
    Engine eng(g);
    eng.enable_audit(/*fail_fast=*/false);
    const auto run = eng.run(alg, radius + 2);
    std::printf("flooding gather, radius %d, on n=%d m=%d\n", radius, g.n(), g.m());
    print_provenance(eng.audit_log());
    return run.all_halted && eng.audit_log().clean() ? 0 : 3;
  }

  if (which == "cv") {
    EngineAuditLog log;
    const auto res = cole_vishkin_cycle(g, cycle_successors(g), &log);
    std::printf("Cole-Vishkin 3-coloring, %d rounds, on n=%d\n", res.rounds, g.n());
    print_provenance(log);
    return log.clean() ? 0 : 3;
  }

  // Decoder audits: re-encode and re-decode on a perturbed instance; any
  // node whose radius-T view is unchanged must produce the same output.
  // On a disconnected graph the perturbation rotates the IDs of every
  // component except node 0's, so that whole component is auditable (gen
  // twocycles produces such instances); on a connected graph it rotates
  // outside ball(0, 3) and coverage depends on how far the encoder's
  // advice shifts under the relabeling — it is reported, not assumed.
  const auto dist0 = bfs_distances(g, 0);
  const bool connected =
      std::none_of(dist0.begin(), dist0.end(), [](int d) { return d == kUnreachable; });
  const Graph alt = rotate_ids_outside_ball(g, 0, connected ? 3 : g.n());

  // Registry names plus the historical spellings.
  std::string pipeline_name = which;
  if (which == "orient") pipeline_name = "orientation";
  if (which == "split") pipeline_name = "splitting";
  if (which == "compress") pipeline_name = "decompress";
  const Pipeline* pipe = find_pipeline(pipeline_name);

  if (pipe != nullptr && pipe->id() != PipelineId::kDecompress) {
    // Generic registry audit: encode + decode on the base and perturbed
    // instance, compare per-node outputs where views are unchanged. Two
    // pipelines need storage-order-invariant output strings (an edge's
    // 'forward' flips when its endpoint storage order does), so their
    // digests are rewritten tail-relative.
    auto instance = [&pipe](const Graph& gr) {
      PipelineConfig cfg;
      if (pipe->id() == PipelineId::kSubexpLcl) cfg.subexp.x = 60;
      const auto adv = pipe->encode(gr, cfg);
      const auto out = pipe->decode(gr, adv, cfg);
      DecodedInstance inst;
      inst.g = &gr;
      inst.advice = adv.node_strings(gr.n());
      inst.rounds = out.rounds;
      if (pipe->id() == PipelineId::kOrientation) {
        for (int v = 0; v < gr.n(); ++v) {
          std::string s;
          for (const int e : gr.incident_edges(v)) {
            const bool tail =
                (out.orientation[static_cast<std::size_t>(e)] == EdgeDir::kForward) ==
                (gr.edge_u(e) == v);
            s += tail ? '>' : '<';
          }
          inst.outputs.push_back(s);
        }
      } else if (pipe->id() == PipelineId::kSplitting) {
        for (int v = 0; v < gr.n(); ++v) {
          std::string s = std::to_string(out.node_color[static_cast<std::size_t>(v)]) + ":";
          for (const int e : gr.incident_edges(v)) {
            s += std::to_string(out.edge_color[static_cast<std::size_t>(e)]);
          }
          inst.outputs.push_back(s);
        }
      } else {
        inst.outputs = pipe->node_digests(gr, out);
      }
      return inst;
    };
    const auto base = instance(g);
    return print_report(audit_decoded_pair(base, instance(alt)), base.rounds);
  }

  if (pipe != nullptr && pipe->id() == PipelineId::kDecompress) {
    // Input-flip perturbation: the advice for X must not let a node learn
    // about membership changes far outside its decoding radius.
    auto instance = [&g](int flip_edge) {
      std::vector<char> x(static_cast<std::size_t>(g.m()));
      for (int e = 0; e < g.m(); ++e) x[static_cast<std::size_t>(e)] = e % 3 == 0;
      if (flip_edge >= 0) x[static_cast<std::size_t>(flip_edge)] ^= 1;
      const auto c = compress_edge_set(g, x);
      const auto r = decompress_edge_set(g, c);
      DecodedInstance inst;
      inst.g = &g;
      for (int v = 0; v < g.n(); ++v) {
        inst.advice.push_back(c.labels[static_cast<std::size_t>(v)].to_string());
      }
      inst.rounds = r.rounds;
      for (int v = 0; v < g.n(); ++v) {
        std::string s;
        for (const int e : g.incident_edges(v)) {
          s += r.in_x[static_cast<std::size_t>(e)] ? '1' : '0';
        }
        inst.outputs.push_back(s);
      }
      return inst;
    };
    const auto base = instance(-1);
    return print_report(audit_decoded_pair(base, instance(g.m() / 2)), base.rounds);
  }

  std::fprintf(stderr, "error: unknown audit target '%s'\n", which.c_str());
  usage();
  return 2;
}

int cmd_bench(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string suite;
  int i = 0;
  if (argv[0][0] != '-') suite = argv[i++];
  std::vector<int> thread_list = {ThreadPool::default_threads()};
  int reps = 1;
  std::string json_path;
  std::string pipeline_name = "orientation";
  std::vector<std::string> graph_specs;
  bool with_trace = false;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      // Comma list (schema v5): each count re-runs the batch and emits its
      // own "case/t=K" row, so a scaling curve lands in one document.
      thread_list.clear();
      for (const auto& tok : split_csv(argv[++i])) {
        const int t = std::atoi(tok.c_str());
        if (t < 1) return usage();
        thread_list.push_back(t);
      }
      if (thread_list.empty()) return usage();
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) return usage();
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--graph" && i + 1 < argc) {
      for (auto& tok : split_csv(argv[++i])) graph_specs.push_back(std::move(tok));
    } else if (a == "--pipeline" && i + 1 < argc) {
      pipeline_name = argv[++i];
    } else if (a == "--trace") {
      with_trace = true;
    } else {
      return usage();
    }
  }
  if (graph_specs.empty() == suite.empty()) return usage();  // exactly one mode

  bench::BenchSuiteResult res;
  if (!graph_specs.empty()) {
    // Source mode: one case per graph source through one pipeline; the
    // multi-thread re-run rebuilds the CSR on the pool, so `identical`
    // certifies parallel-construction determinism on that exact graph.
    if (find_pipeline(pipeline_name) == nullptr) {
      std::fprintf(stderr, "error: unknown pipeline '%s'\n", pipeline_name.c_str());
      return 2;
    }
    std::vector<GraphSource> sources;
    for (const auto& spec : graph_specs) {
      const auto src = parse_source_or_complain(spec);
      if (!src) return 2;
      sources.push_back(*src);
    }
    try {
      res = bench::run_source_bench(sources, pipeline_name, thread_list, with_trace, reps);
    } catch (const GraphIoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    const auto names = bench::bench_suite_names();
    if (std::find(names.begin(), names.end(), suite) == names.end()) {
      std::fprintf(stderr, "error: unknown bench suite '%s'\n", suite.c_str());
      return 2;
    }
    res = bench::run_bench_suite(suite, thread_list, with_trace, reps);
  }
  std::printf("suite %s, %d threads (%d hardware), min of %d rep(s)\n", res.suite.c_str(),
              res.threads, res.hardware_threads, res.reps);
  std::printf("%-34s %8s %6s %10s %10s %8s %5s\n", "case", "n", "rounds", "1t ms", "ms",
              "speedup", "same");
  bool all_identical = true;
  for (const auto& c : res.cases) {
    std::printf("%-34s %8d %6d %10.2f %10.2f %7.2fx %5s\n", c.name.c_str(), c.n, c.rounds,
                c.wall_ms_1, c.wall_ms, c.speedup_vs_1, c.identical ? "yes" : "NO");
    all_identical = all_identical && c.identical;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    LAD_CHECK_MSG(out.good(), "cannot write " << json_path);
    out << res.to_json();
    std::printf("wrote %s\n", json_path.c_str());
  }
  // A thread count changing any output byte is a determinism-contract
  // violation — fail loudly so CI catches it.
  return all_identical ? 0 : 3;
}

int cmd_faultsim(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto decoder = faults::parse_decoder(argv[0]);
  if (!decoder) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", argv[0]);
    return 2;
  }
  const auto family = parse_campaign_family(argv[1]);
  if (!family) return 2;

  faults::CampaignConfig cfg;
  cfg.decoder = *decoder;
  cfg.family = *family;
  cfg.n = std::atoi(argv[2]);
  if (cfg.n < 8) return usage();
  cfg.trials = 20;
  cfg.seed = 1;
  int i = 3;
  if (i < argc && argv[i][0] != '-') cfg.trials = std::atoi(argv[i++]);
  if (i < argc && argv[i][0] != '-') cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[i++]));
  // Fault/policy knobs all default to the legacy plan, so the flag-free
  // invocation stays byte-identical to the pinned faultsim goldens.
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--crash-recovery" && i + 1 < argc) {
      cfg.plan.engine.crash_recovery_rounds = std::atoi(argv[++i]);
      if (cfg.plan.engine.crash_recovery_rounds < 0) return usage();
    } else if (a == "--dup" && i + 1 < argc) {
      cfg.plan.engine.message_duplicate_prob = std::atof(argv[++i]);
      if (cfg.plan.engine.message_duplicate_prob < 0.0) return usage();
    } else if (a == "--delay" && i + 1 < argc) {
      cfg.plan.engine.message_delay_prob = std::atof(argv[++i]);
      if (cfg.plan.engine.message_delay_prob < 0.0) return usage();
    } else if (a == "--max-delay" && i + 1 < argc) {
      cfg.plan.engine.max_delay_rounds = std::atoi(argv[++i]);
      if (cfg.plan.engine.max_delay_rounds < 1) return usage();
    } else if (a == "--targeting" && i + 1 < argc) {
      const std::string t = argv[++i];
      if (t == "uniform") {
        cfg.plan.advice.targeting = faults::AdviceTargeting::kUniform;
      } else if (t == "high_degree") {
        cfg.plan.advice.targeting = faults::AdviceTargeting::kHighDegree;
      } else if (t == "region_boundary") {
        cfg.plan.advice.targeting = faults::AdviceTargeting::kRegionBoundary;
      } else {
        std::fprintf(stderr, "error: unknown targeting '%s'\n", t.c_str());
        return 2;
      }
    } else if (a == "--burst" && i + 1 < argc) {
      cfg.plan.graph.burst_count = std::atoi(argv[++i]);
      if (cfg.plan.graph.burst_count < 0) return usage();
    } else if (a == "--burst-radius" && i + 1 < argc) {
      cfg.plan.graph.burst_radius = std::atoi(argv[++i]);
      if (cfg.plan.graph.burst_radius < 0) return usage();
    } else if (a == "--policy" && i + 1 < argc) {
      if (!faults::chaos_repair_policy(argv[++i], cfg.policy)) {
        std::fprintf(stderr, "error: unknown repair policy '%s'\n", argv[i]);
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (cfg.decoder == faults::DecoderKind::kSubexpLcl) cfg.subexp.x = 60;

  const auto s = faults::run_fault_campaign(cfg);
  std::printf("%s\n", s.to_string().c_str());
  for (int t = 0; t < s.trials; ++t) {
    const auto& r = s.reports[static_cast<std::size_t>(t)];
    std::printf("trial %3d: faults=%lld detected=%lld repaired=%zu flagged=%zu "
                "valid=%s blast=%d%s\n",
                t, r.faults_injected(), r.detected_violations, r.repaired_nodes.size(),
                r.flagged_nodes.size(), r.output_valid ? "yes" : "no", r.blast_radius,
                r.silent_corruption ? " SILENT-CORRUPTION" : "");
  }
  // The layer's contract: a campaign never ends in silent corruption. A
  // nonzero exit makes that machine-checkable for scripts and CI.
  return s.silent_corruptions == 0 ? 0 : 3;
}

int cmd_chaos(int argc, char** argv) {
  faults::ChaosConfig cfg;
  std::string out_path = "ROBUSTNESS-generated.md";
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--pipelines" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        const auto d = faults::parse_decoder(tok);
        if (!d) {
          std::fprintf(stderr, "error: unknown pipeline '%s'\n", tok.c_str());
          return 2;
        }
        cfg.pipelines.push_back(*d);
      }
    } else if (a == "--families" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        const auto f = parse_campaign_family(tok);
        if (!f) return 2;
        cfg.families.push_back(*f);
      }
    } else if (a == "--models" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        faults::FaultPlan probe;
        if (!faults::chaos_fault_model(tok, probe)) {
          std::fprintf(stderr, "error: unknown fault model '%s'\n", tok.c_str());
          return 2;
        }
        cfg.models.push_back(tok);
      }
    } else if (a == "--rates" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        const int r = std::atoi(tok.c_str());
        if (r < 1 || r > 1000) return usage();
        cfg.rate_percents.push_back(r);
      }
    } else if (a == "--policies" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        lad::robust::RepairPolicy probe;
        if (!faults::chaos_repair_policy(tok, probe)) {
          std::fprintf(stderr, "error: unknown repair policy '%s'\n", tok.c_str());
          return 2;
        }
        cfg.policies.push_back(tok);
      }
    } else if (a == "-n" && i + 1 < argc) {
      cfg.n = std::atoi(argv[++i]);
      if (cfg.n < 8) return usage();
    } else if (a == "--trials" && i + 1 < argc) {
      cfg.trials = std::atoi(argv[++i]);
      if (cfg.trials < 1) return usage();
    } else if (a == "--seed" && i + 1 < argc) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      cfg.threads = std::atoi(argv[++i]);
      if (cfg.threads < 1) return usage();
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage();
    }
  }

  const auto report = faults::run_chaos_campaign(cfg);
  std::printf("chaos: %zu cells, n=%d, trials=%d per cell, seed=%llu\n", report.cells.size(),
              report.n, report.trials, static_cast<unsigned long long>(report.seed));
  for (const auto& c : report.cells) {
    std::printf("%-14s %-6s %-12s %4d%% %-9s faults=%-6lld valid=%d/%d silent=%d "
                "accounted=%s%s\n",
                faults::to_string(c.decoder), faults::to_string(c.family), c.model.c_str(),
                c.rate_percent, c.policy.c_str(), c.summary.faults_injected,
                c.summary.trials_output_valid, c.summary.trials,
                c.summary.silent_corruptions, c.summary.all_nodes_accounted ? "yes" : "NO",
                c.ok() ? "" : "  CELL-FAIL");
  }
  {
    std::ofstream out(out_path);
    LAD_CHECK_MSG(out.good(), "cannot write " << out_path);
    out << report.to_markdown();
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    LAD_CHECK_MSG(out.good(), "cannot write " << json_path);
    out << report.to_json();
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf("chaos %s\n", report.pass() ? "PASS" : "FAIL");
  // Same contract as faultsim, matrix-wide: any cell with a silent
  // corruption or an unaccounted node fails the run.
  return report.pass() ? 0 : 3;
}

// One observed end-to-end run of a pipeline: encode -> decode -> verify on
// a campaign-family instance, then the distributed verification echo (the
// source of genuine message/bit traffic — the combinatorial decoders do
// not themselves push bytes through the engine). Telemetry is runtime-
// enabled for the duration; the registry and trace buffers are cleared
// first so every number printed is attributable to this run.
int cmd_trace(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto decoder = faults::parse_decoder(argv[0]);
  if (!decoder) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", argv[0]);
    return 2;
  }
  faults::GraphFamily family = faults::GraphFamily::kCycle;
  int n = 96;
  std::uint64_t seed = 1;
  std::string graph_spec;
  std::string out_path, jsonl_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--family" && i + 1 < argc) {
      const auto f = faults::parse_family(argv[++i]);
      if (!f) return usage();
      family = *f;
    } else if (a == "--graph" && i + 1 < argc) {
      graph_spec = argv[++i];
    } else if (a == "-n" && i + 1 < argc) {
      n = std::atoi(argv[++i]);
      if (n < 8) return usage();
    } else if (a == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!obs::compiled_in()) {
    std::fprintf(stderr,
                 "error: this build has LAD_TELEMETRY=OFF; reconfigure with "
                 "-DLAD_TELEMETRY=ON to use `lad trace`\n");
    return 2;
  }

  obs::set_enabled(true);
  obs::MetricsRegistry::instance().reset();
  obs::TraceRecorder::instance().clear();
  LAD_TM_THREAD_NAME("lad-main");

  const Pipeline& p = pipeline(*decoder);
  PipelineConfig cfg;
  cfg.seed = seed;
  if (p.id() == PipelineId::kSubexpLcl) cfg.subexp.x = 60;
  Graph g;
  std::string instance_name;
  if (!graph_spec.empty()) {
    auto lg = load_source_or_complain(graph_spec, seed);
    if (!lg) return 2;
    g = std::move(lg->graph);
    instance_name = lg->spec;
  } else {
    g = faults::build_campaign_graph(*decoder, family, n);
    instance_name = faults::to_string(family);
  }

  const auto adv = p.encode(g, cfg);
  const auto out = p.decode(g, adv, cfg);
  const bool ok = p.verify(g, out, cfg);
  const auto echo = faults::run_verification_echo(g, p.node_digests(g, out), /*echo_rounds=*/3);

  const auto stats = adv.stats(g.n());
  std::printf("lad trace — build %s\n", obs::kGitCommit);
  std::printf("pipeline %s (%s) on %s n=%d m=%d seed=%llu\n", p.name(), p.paper_section(),
              instance_name.c_str(), g.n(), g.m(),
              static_cast<unsigned long long>(seed));
  std::printf("advice: %lld bits (%.3f/node); decode: %d LOCAL rounds; verify: %s\n",
              stats.total_bits, obs::per_node(stats.total_bits, g.n()), out.rounds,
              ok ? "ok" : "FAILED");
  std::printf("verification echo: %lld messages, %lld bits on the wire, %d rounds, "
              "%zu unverified\n\n",
              echo.messages, echo.bytes * 8, echo.rounds, echo.unverified_nodes.size());

  std::printf("%s", obs::MetricsRegistry::instance().to_table().c_str());

  auto& rec = obs::TraceRecorder::instance();
  std::printf("\nspans recorded: %zu", rec.event_count() / 2);
  if (rec.dropped() > 0) std::printf(" (%lld dropped at the per-thread cap)", rec.dropped());
  std::printf("\n");

  auto write_file = [](const std::string& path, const std::string& body, const char* what) {
    std::ofstream f(path);
    LAD_CHECK_MSG(f.good(), "cannot write " << path);
    f << body;
    std::printf("wrote %s (%s)\n", path.c_str(), what);
  };
  if (!out_path.empty()) {
    write_file(out_path, rec.to_chrome_json(), "Chrome trace; load in chrome://tracing or Perfetto");
  }
  if (!jsonl_path.empty()) write_file(jsonl_path, rec.to_jsonl(), "JSONL events");
  if (!metrics_path.empty()) {
    write_file(metrics_path, obs::MetricsRegistry::instance().to_prometheus(),
               "Prometheus text format");
  }

  obs::set_enabled(false);
  return ok && echo.unverified_nodes.empty() ? 0 : 3;
}

// Parses "256,512,1024" into sweep sizes; empty result = parse error.
std::vector<int> parse_ns_list(const std::string& s) {
  std::vector<int> ns;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int n = std::atoi(tok.c_str());
    if (n < 8) return {};
    ns.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ns;
}

// Shared option parsing for the two claims-observatory commands
// (verify-claims and report differ only in output form).
struct ClaimsArgs {
  std::vector<int> ns = obs::default_sweep_ns();
  /// --ns pins the sweep exactly; otherwise pipelines may extend it
  /// (Pipeline::sweep_ns) so their fits span more decades.
  bool ns_explicit = false;
  /// --graphs: sweep these sources instead of generated instances.
  std::vector<GraphSource> sources;
  std::string family;
  std::uint64_t seed = 1;
  bool json = false;
  std::string out_path;
  bool ok = true;
};

ClaimsArgs parse_claims_args(int argc, char** argv) {
  ClaimsArgs args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--family" && i + 1 < argc) {
      args.family = argv[++i];
    } else if (a == "--ns" && i + 1 < argc) {
      args.ns = parse_ns_list(argv[++i]);
      args.ns_explicit = true;
      if (args.ns.size() < 3) {
        std::fprintf(stderr, "error: --ns needs at least 3 comma-separated sizes >= 8\n");
        args.ok = false;
        return args;
      }
    } else if (a == "--graphs" && i + 1 < argc) {
      for (const auto& tok : split_csv(argv[++i])) {
        const auto src = parse_source_or_complain(tok);
        if (!src) {
          args.ok = false;
          return args;
        }
        args.sources.push_back(*src);
      }
    } else if (a == "--seed" && i + 1 < argc) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--out" && i + 1 < argc) {
      args.out_path = argv[++i];
    } else {
      args.ok = false;
      return args;
    }
  }
  return args;
}

// Shared claims-observatory run: generated n-sweep by default (with
// per-pipeline extension unless --ns pinned the sizes), or a --graphs
// source sweep. Throws are mapped to exit 2 by the callers' catch blocks.
obs::ClaimsReport run_claims(const ClaimsArgs& args) {
  if (!args.sources.empty()) {
    return obs::verify_claims_sources(args.sources, args.family, args.seed);
  }
  return obs::verify_claims(args.ns, args.family, args.seed,
                            /*extend_sweeps=*/!args.ns_explicit);
}

int cmd_verify_claims(int argc, char** argv) {
  const ClaimsArgs args = parse_claims_args(argc, argv);
  if (!args.ok || !args.out_path.empty()) return usage();
  obs::ClaimsReport report;
  try {
    report = run_claims(args);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s", (args.json ? report.to_json() : report.to_text()).c_str());
  return report.pass() ? 0 : 3;
}

int cmd_report(int argc, char** argv) {
  ClaimsArgs args = parse_claims_args(argc, argv);
  if (!args.ok || args.json) return usage();
  if (args.out_path.empty()) args.out_path = "EXPERIMENTS-generated.md";
  obs::ClaimsReport report;
  try {
    report = run_claims(args);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::ofstream out(args.out_path);
  LAD_CHECK_MSG(out.good(), "cannot write " << args.out_path);
  out << report.to_markdown();

  // Perf trajectory: every checked-in BENCH_*.json generation in the
  // working directory, lenient-parsed (schema v1 through v6 all render),
  // appended as one serial-wall-time table per case. A malformed document
  // degrades to a warning — the claims report itself is the contract.
  std::vector<std::string> bench_files;
  try {
    for (const auto& entry : std::filesystem::directory_iterator(".")) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.ends_with(".json")) bench_files.push_back(name);
    }
  } catch (const std::filesystem::filesystem_error&) {
    // Unreadable cwd: skip the trajectory rather than fail the report.
  }
  std::sort(bench_files.begin(), bench_files.end());
  std::vector<obs::BenchGeneration> generations;
  for (const auto& name : bench_files) {
    std::ifstream in(name);
    if (!in.good()) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      generations.push_back({name, obs::parse_bench_json_lenient(ss.str())});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", name.c_str(), e.what());
    }
  }
  if (!generations.empty()) out << "\n" << obs::perf_trajectory_markdown(generations);

  std::printf("wrote %s (%zu pipeline(s), %zu bench generation(s), overall %s)\n",
              args.out_path.c_str(), report.pipelines.size(), generations.size(),
              report.pass() ? "PASS" : "FAIL");
  return report.pass() ? 0 : 3;
}

int cmd_diffbench(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string baseline_path = argv[0];
  const std::string candidate_path = argv[1];
  obs::BenchDiffOptions opts;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol-ms" && i + 1 < argc) {
      opts.tol_ms = std::atof(argv[++i]);
      if (opts.tol_ms < 0) return usage();
    } else if (a == "--tol-rel" && i + 1 < argc) {
      opts.tol_rel = std::atof(argv[++i]);
      if (opts.tol_rel < 0) return usage();
    } else if (a == "--json") {
      json = true;
    } else {
      return usage();
    }
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    LAD_CHECK_MSG(in.good(), "cannot open " << path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  obs::BenchDiffResult diff;
  try {
    const auto baseline = obs::parse_bench_json(slurp(baseline_path));
    const auto candidate = obs::parse_bench_json(slurp(candidate_path));
    diff = obs::diff_bench(baseline, candidate, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s", (json ? diff.to_json() : diff.to_text()).c_str());
  return static_cast<int>(diff.status());
}

// Profiling observatory (DESIGN.md §13): runs one pipeline end to end
// (encode -> decode -> verify -> pooled verification echo) with telemetry
// on and renders the ranked phase x thread cost-center report. total_ms is
// the min over --reps; the trace/counter snapshot comes from the last rep
// (every rep resets the registry, trace buffers, and pool accounting, and
// the counted quantities are deterministic, so reps agree byte-for-byte on
// everything but timings).
int cmd_profile(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto decoder = faults::parse_decoder(argv[0]);
  if (!decoder) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", argv[0]);
    return 2;
  }
  std::string graph_spec = "cycle:65536";
  int threads = 1;
  int reps = 1;
  std::uint64_t seed = 1;
  std::string json_path, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--graph" && i + 1 < argc) {
      graph_spec = argv[++i];
    } else if (a == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) return usage();
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) return usage();
    } else if (a == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!obs::compiled_in()) {
    std::fprintf(stderr,
                 "error: this build has LAD_TELEMETRY=OFF; reconfigure with "
                 "-DLAD_TELEMETRY=ON to use `lad profile`\n");
    return 2;
  }

  const Pipeline& p = pipeline(*decoder);
  PipelineConfig cfg;
  cfg.seed = seed;
  if (p.id() == PipelineId::kSubexpLcl) cfg.subexp.x = 60;
  auto lg = load_source_or_complain(graph_spec, seed);
  if (!lg) return 2;
  const Graph g = std::move(lg->graph);

  obs::set_enabled(true);
  LAD_TM_THREAD_NAME("lad-main");
  ThreadPool pool(threads);

  // One discarded warmup run before the min-of-K loop (matching `lad
  // bench --reps`): page-cache, allocator, and frequency-governor effects
  // land here instead of skewing the first timed rep. Every timed rep
  // resets the registries below, so the warmup leaves no trace in the
  // reported counters.
  for (int w = 0; w < obs::profile_warmup_runs(reps); ++w) {
    const auto adv = p.encode(g, cfg);
    const auto out = p.decode(g, adv, cfg);
    (void)p.verify(g, out, cfg);
    (void)faults::run_verification_echo(g, p.node_digests(g, out), /*echo_rounds=*/3,
                                        /*faults=*/nullptr, threads > 1 ? &pool : nullptr);
  }

  bool ok = false;
  bool echo_clean = false;
  double total_ms = 0;
  obs::ProfileReport report;
  for (int rep = 0; rep < reps; ++rep) {
    obs::MetricsRegistry::instance().reset();
    obs::TraceRecorder::instance().clear();
    obs::PoolAccounting::instance().reset();

    const obs::Stopwatch sw;
    const auto adv = p.encode(g, cfg);
    const auto out = p.decode(g, adv, cfg);
    ok = p.verify(g, out, cfg);
    const auto echo =
        faults::run_verification_echo(g, p.node_digests(g, out), /*echo_rounds=*/3,
                                      /*faults=*/nullptr, threads > 1 ? &pool : nullptr);
    const double rep_ms = sw.ms();
    echo_clean = echo.unverified_nodes.empty();
    if (rep == 0 || rep_ms < total_ms) total_ms = rep_ms;
    if (rep + 1 < reps) continue;

    obs::ProfileIdentity ident;
    ident.pipeline = p.name();
    ident.source = lg->spec;
    ident.graph_digest = graph_digest_hex(g);
    ident.n = g.n();
    ident.m = g.m();
    ident.seed = seed;
    ident.decode_rounds = out.rounds;
    ident.verify_ok = ok && echo_clean;
    ident.output_digest = obs::fingerprint_hex(p.node_digests(g, out));
    ident.advice_bits = adv.stats(g.n()).total_bits;
    ident.engine_messages = obs::core().engine_messages.value();
    ident.engine_message_bits = obs::core().engine_message_bits.value();

    // Allocation totals per phase: the two counting hooks are pinned to the
    // phase whose buffers they count; the other phases report zero.
    std::vector<obs::PhaseAlloc> allocs;
    for (const auto& phase : obs::phase_taxonomy()) {
      obs::PhaseAlloc row;
      row.phase = phase;
      if (phase == "gather") {
        row.allocs = obs::core().alloc_gather.value();
        row.alloc_bytes = obs::core().alloc_gather_bytes.value();
      } else if (phase == "message-exchange") {
        row.allocs = obs::core().alloc_msgbuf.value();
        row.alloc_bytes = obs::core().alloc_msgbuf_bytes.value();
      }
      allocs.push_back(row);
    }

    report = obs::build_profile_report(
        ident, allocs, obs::TraceRecorder::instance().events_by_thread(),
        obs::PoolAccounting::instance().slots(), obs::TraceRecorder::instance().thread_names(),
        threads, reps, total_ms);
    report.git_commit = obs::kGitCommit;
    report.timestamp = obs::iso8601_utc_now();
  }
  obs::set_enabled(false);

  std::printf("%s", report.to_markdown().c_str());
  auto write_file = [](const std::string& path, const std::string& body, const char* what) {
    std::ofstream f(path);
    LAD_CHECK_MSG(f.good(), "cannot write " << path);
    f << body;
    std::printf("wrote %s (%s)\n", path.c_str(), what);
  };
  if (!json_path.empty()) write_file(json_path, report.to_json(), "profile JSON");
  if (!out_path.empty()) write_file(out_path, report.to_markdown(), "cost-center report");
  return ok && echo_clean ? 0 : 3;
}

int cmd_diffprof(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string baseline_path = argv[0];
  const std::string candidate_path = argv[1];
  obs::BenchDiffOptions opts;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol-ms" && i + 1 < argc) {
      opts.tol_ms = std::atof(argv[++i]);
      if (opts.tol_ms < 0) return usage();
    } else if (a == "--tol-rel" && i + 1 < argc) {
      opts.tol_rel = std::atof(argv[++i]);
      if (opts.tol_rel < 0) return usage();
    } else if (a == "--json") {
      json = true;
    } else {
      return usage();
    }
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    LAD_CHECK_MSG(in.good(), "cannot open " << path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  obs::ProfDiffResult diff;
  try {
    const auto baseline = obs::parse_profile_json(slurp(baseline_path));
    const auto candidate = obs::parse_profile_json(slurp(candidate_path));
    diff = obs::diff_profile(baseline, candidate, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s", (json ? diff.to_json() : diff.to_text()).c_str());
  return static_cast<int>(diff.status());
}

// Timeline observatory (DESIGN.md §14): per-round time-series plus the
// Amdahl/critical-path analysis, one measured run per listed thread count.
// Each run executes encode -> decode -> verify -> pooled verification echo
// with telemetry on; the flight recorder supplies the per-round series and
// WaitAccounting the dispatch/barrier attribution. The deterministic slice
// must be byte-identical across thread counts — a divergence is a §8
// violation and exits with the MISMATCH code 4.
int cmd_timeline(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto decoder = faults::parse_decoder(argv[0]);
  if (!decoder) {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", argv[0]);
    return 2;
  }
  std::string graph_spec = "cycle:65536";
  std::vector<int> thread_list = {1};
  int reps = 1;
  std::uint64_t seed = 1;
  std::string json_path, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--graph" && i + 1 < argc) {
      graph_spec = argv[++i];
    } else if (a == "--threads" && i + 1 < argc) {
      thread_list.clear();
      for (const auto& tok : split_csv(argv[++i])) {
        const int t = std::atoi(tok.c_str());
        if (t < 1) return usage();
        thread_list.push_back(t);
      }
      if (thread_list.empty()) return usage();
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) return usage();
    } else if (a == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!obs::compiled_in()) {
    std::fprintf(stderr,
                 "error: this build has LAD_TELEMETRY=OFF; reconfigure with "
                 "-DLAD_TELEMETRY=ON to use `lad timeline`\n");
    return 2;
  }

  const Pipeline& p = pipeline(*decoder);
  PipelineConfig cfg;
  cfg.seed = seed;
  if (p.id() == PipelineId::kSubexpLcl) cfg.subexp.x = 60;
  auto lg = load_source_or_complain(graph_spec, seed);
  if (!lg) return 2;
  const Graph g = std::move(lg->graph);

  obs::set_enabled(true);
  LAD_TM_THREAD_NAME("lad-main");

  bool ok = false;
  bool echo_clean = false;
  long long flight_dropped = 0;
  obs::ProfileIdentity ident;
  std::vector<obs::TimelineRunInput> runs;
  for (const int threads : thread_list) {
    ThreadPool pool(threads);
    obs::TimelineRunInput run;
    run.threads = threads;
    // Same warmup discipline as `lad profile` (one discarded run when
    // --reps > 1); determinism makes warmup and timed runs byte-identical.
    for (int w = 0; w < obs::profile_warmup_runs(reps); ++w) {
      const auto adv = p.encode(g, cfg);
      const auto out = p.decode(g, adv, cfg);
      (void)p.verify(g, out, cfg);
      (void)faults::run_verification_echo(g, p.node_digests(g, out), /*echo_rounds=*/3,
                                          /*faults=*/nullptr, threads > 1 ? &pool : nullptr);
    }
    for (int rep = 0; rep < reps; ++rep) {
      obs::MetricsRegistry::instance().reset();
      obs::TraceRecorder::instance().clear();
      obs::PoolAccounting::instance().reset();
      obs::FlightRecorder::instance().clear();
      obs::WaitAccounting::instance().reset();

      const obs::Stopwatch sw;
      const auto adv = p.encode(g, cfg);
      const auto out = p.decode(g, adv, cfg);
      ok = p.verify(g, out, cfg);
      const auto echo =
          faults::run_verification_echo(g, p.node_digests(g, out), /*echo_rounds=*/3,
                                        /*faults=*/nullptr, threads > 1 ? &pool : nullptr);
      const double rep_ms = sw.ms();
      echo_clean = echo.unverified_nodes.empty();
      if (rep == 0 || rep_ms < run.total_ms) run.total_ms = rep_ms;
      if (rep + 1 < reps) continue;

      // Last rep: snapshot the round series and the serial/compute split
      // (all deterministic quantities agree across reps by the §8 contract).
      run.split = obs::serial_split_from_trace();
      run.samples = obs::FlightRecorder::instance().samples();
      flight_dropped += obs::FlightRecorder::instance().dropped();

      ident.pipeline = p.name();
      ident.source = lg->spec;
      ident.graph_digest = graph_digest_hex(g);
      ident.n = g.n();
      ident.m = g.m();
      ident.seed = seed;
      ident.decode_rounds = out.rounds;
      ident.verify_ok = ok && echo_clean;
      ident.output_digest = obs::fingerprint_hex(p.node_digests(g, out));
      ident.advice_bits = adv.stats(g.n()).total_bits;
      ident.engine_messages = obs::core().engine_messages.value();
      ident.engine_message_bits = obs::core().engine_message_bits.value();
    }
    runs.push_back(std::move(run));
  }
  obs::set_enabled(false);

  obs::TimelineReport report;
  try {
    report = obs::build_timeline_report(ident, runs);
  } catch (const std::runtime_error& e) {
    // A deterministic-series divergence across thread counts is the same
    // class of failure as a difftl mismatch: hard exit 4.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  }
  report.flight_dropped = flight_dropped;
  report.git_commit = obs::kGitCommit;
  report.timestamp = obs::iso8601_utc_now();

  std::printf("%s", report.to_markdown().c_str());
  auto write_file = [](const std::string& path, const std::string& body, const char* what) {
    std::ofstream f(path);
    LAD_CHECK_MSG(f.good(), "cannot write " << path);
    f << body;
    std::printf("wrote %s (%s)\n", path.c_str(), what);
  };
  if (!json_path.empty()) write_file(json_path, report.to_json(), "timeline JSON");
  if (!out_path.empty()) write_file(out_path, report.to_markdown(), "timeline report");
  return ok && echo_clean ? 0 : 3;
}

int cmd_difftl(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string baseline_path = argv[0];
  const std::string candidate_path = argv[1];
  obs::BenchDiffOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol-ms" && i + 1 < argc) {
      opts.tol_ms = std::atof(argv[++i]);
      if (opts.tol_ms < 0) return usage();
    } else if (a == "--tol-rel" && i + 1 < argc) {
      opts.tol_rel = std::atof(argv[++i]);
      if (opts.tol_rel < 0) return usage();
    } else {
      return usage();
    }
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    LAD_CHECK_MSG(in.good(), "cannot open " << path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  obs::TimelineDiffResult diff;
  try {
    const auto baseline = obs::parse_timeline_json(slurp(baseline_path));
    const auto candidate = obs::parse_timeline_json(slurp(candidate_path));
    diff = obs::diff_timeline(baseline, candidate, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s", diff.to_text().c_str());
  return static_cast<int>(diff.status());
}

int cmd_dot(const std::string& path) {
  const Graph g = load(path);
  std::cout << to_dot(g);
  return 0;
}

// Static analysis over the repository's own sources (DESIGN.md §10):
// determinism rules for the deterministic layers, the architecture-DAG
// layering rule, and telemetry-catalog hygiene. Exit codes follow the
// benchdiff convention: 0 clean, 2 usage, 3 new findings, 4 parse failure.
int cmd_lint(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool baseline_explicit = false;
  std::string write_baseline;
  bool json = false;
  lint::RuleConfig cfg = lint::repo_rule_config();
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--rule" && i + 1 < argc) {
      const std::string r = argv[++i];
      if (!lint::known_rule(r)) {
        std::fprintf(stderr, "error: unknown lint rule '%s' (try --list-rules)\n", r.c_str());
        return 2;
      }
      cfg.filter.push_back(r);
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      baseline_explicit = true;
    } else if (a == "--write-baseline" && i + 1 < argc) {
      write_baseline = argv[++i];
    } else if (a == "--json") {
      json = true;
    } else if (a == "--list-rules") {
      for (const auto& r : lint::rule_catalog()) {
        std::printf("%-26s %s\n", r.name.c_str(), r.summary.c_str());
      }
      return 0;
    } else {
      return usage();
    }
  }
  if (!baseline_explicit) {
    // Convention mirror of BENCH_baseline.json: the checked-in baseline at
    // the lint root is picked up automatically when present.
    const std::string candidate = root + "/lint_baseline.json";
    if (std::ifstream(candidate).good()) baseline_path = candidate;
  }

  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot open baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    baseline_json = ss.str();
  }

  lint::LintReport report;
  try {
    const auto sources = lint::collect_repo_sources(root);
    report = lint::run_lint(sources, cfg, baseline_json);
  } catch (const lint::LintParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline);
    LAD_CHECK_MSG(out.good(), "cannot write " << write_baseline);
    out << report.to_baseline_json();
    std::printf("wrote %s (%zu finding(s) grandfathered)\n", write_baseline.c_str(),
                report.items.size());
  }
  std::printf("%s", (json ? report.to_json() : report.to_text()).c_str());
  return report.clean() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "orient" && argc >= 3) return cmd_orient(argv[2]);
    if (cmd == "compress" && argc >= 4) return cmd_compress(argv[2], std::atof(argv[3]));
    if (cmd == "color3" && argc >= 3) return cmd_color3(argv[2]);
    if (cmd == "proof" && argc >= 4) return cmd_proof(argv[2], argv[3]);
    if (cmd == "audit") return cmd_audit(argc - 2, argv + 2);
    if (cmd == "faultsim") return cmd_faultsim(argc - 2, argv + 2);
    if (cmd == "chaos") return cmd_chaos(argc - 2, argv + 2);
    if (cmd == "bench") return cmd_bench(argc - 2, argv + 2);
    if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
    if (cmd == "profile") return cmd_profile(argc - 2, argv + 2);
    if (cmd == "diffprof") return cmd_diffprof(argc - 2, argv + 2);
    if (cmd == "timeline") return cmd_timeline(argc - 2, argv + 2);
    if (cmd == "difftl") return cmd_difftl(argc - 2, argv + 2);
    if (cmd == "verify-claims") return cmd_verify_claims(argc - 2, argv + 2);
    if (cmd == "diffbench") return cmd_diffbench(argc - 2, argv + 2);
    if (cmd == "report") return cmd_report(argc - 2, argv + 2);
    if (cmd == "lint") return cmd_lint(argc - 2, argv + 2);
    if (cmd == "dot" && argc >= 3) return cmd_dot(argv[2]);
  } catch (const std::exception& e) {
    // Hard failure: a contract violation or any other internal error.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  }
  return usage();
}
