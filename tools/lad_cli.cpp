// lad — command-line front end for the local-advice library.
//
// Usage:
//   lad gen <cycle|path|grid|ladder|regular|banded> <args...>   > g.txt
//   lad orient   <graph.txt>          # §5: 1-bit advice, decode, validate
//   lad compress <graph.txt> <p>      # §1.5: compress a random p-subset
//   lad color3   <graph.txt>          # §7: solve witness + 1-bit schema
//   lad proof    <graph.txt> <mis|matching|3col>   # §1.2 certificate demo
//   lad dot      <graph.txt>          # Graphviz export
//
// Graphs are in the edge-list format of graph/io.hpp.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "advice/advice.hpp"
#include "core/decompress.hpp"
#include "core/orientation.hpp"
#include "core/proofs.hpp"
#include "core/three_coloring.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/rng.hpp"
#include "lcl/problems.hpp"
#include "lcl/solver.hpp"

namespace {

using namespace lad;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lad gen cycle <n> [seed] | path <n> [seed] | grid <w> <h> [seed]\n"
               "          | ladder <m> [seed] | regular <n> <d> [seed]\n"
               "          | banded <n> <band> <avgdeg> <maxdeg> [seed]\n"
               "  lad orient <graph.txt>\n"
               "  lad compress <graph.txt> <density>\n"
               "  lad color3 <graph.txt>\n"
               "  lad proof <graph.txt> <mis|matching|3col>\n"
               "  lad dot <graph.txt>\n");
  return 2;
}

Graph load(const std::string& path) {
  std::ifstream in(path);
  LAD_CHECK_MSG(in.good(), "cannot open " << path);
  return read_edge_list(in);
}

int cmd_gen(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string family = argv[0];
  auto arg = [&](int i, long long dflt) {
    return i < argc ? std::atoll(argv[i]) : dflt;
  };
  Graph g;
  if (family == "cycle") {
    g = make_cycle(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "path") {
    g = make_path(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "grid") {
    g = make_grid(static_cast<int>(arg(1, 10)), static_cast<int>(arg(2, 10)),
                  IdMode::kRandomDense, arg(3, 1));
  } else if (family == "ladder") {
    g = make_circular_ladder(static_cast<int>(arg(1, 100)), IdMode::kRandomDense, arg(2, 1));
  } else if (family == "regular") {
    g = make_random_regular(static_cast<int>(arg(1, 100)), static_cast<int>(arg(2, 4)),
                            static_cast<std::uint64_t>(arg(3, 1)));
  } else if (family == "banded") {
    g = make_banded_random(static_cast<int>(arg(1, 500)), static_cast<int>(arg(2, 5)),
                           static_cast<double>(arg(3, 3)), static_cast<int>(arg(4, 6)),
                           static_cast<std::uint64_t>(arg(5, 1)));
  } else {
    return usage();
  }
  write_edge_list(std::cout, g);
  return 0;
}

int cmd_orient(const std::string& path) {
  const Graph g = load(path);
  const auto enc = encode_orientation_advice(g);
  const auto stats = advice_stats(advice_from_bits(enc.bits));
  const auto dec = decode_orientation(g, enc.bits);
  std::printf("n=%d m=%d Δ=%d\n", g.n(), g.m(), g.max_degree());
  std::printf("advice: 1 bit/node, ones ratio %.4f, marked trails %d\n", stats.ones_ratio,
              enc.num_marked_trails);
  std::printf("decoded in %d LOCAL rounds; almost-balanced: %s\n", dec.rounds,
              is_balanced_orientation(g, dec.orientation, 1) ? "yes" : "NO");
  return 0;
}

int cmd_compress(const std::string& path, double density) {
  const Graph g = load(path);
  Rng rng(1);
  std::vector<char> x(static_cast<std::size_t>(g.m()));
  for (auto& b : x) b = rng.flip(density) ? 1 : 0;
  const auto c = compress_edge_set(g, x);
  long long ours = 0, trivial = 0;
  for (int v = 0; v < g.n(); ++v) {
    ours += c.labels[static_cast<std::size_t>(v)].size();
    trivial += g.degree(v);
  }
  const auto r = decompress_edge_set(g, c);
  std::printf("edge set of %d edges compressed: %.3f bits/node (trivial %.3f)\n",
              static_cast<int>(std::count(x.begin(), x.end(), 1)),
              static_cast<double>(ours) / g.n(), static_cast<double>(trivial) / g.n());
  std::printf("decompressed in %d rounds; exact recovery: %s\n", r.rounds,
              r.in_x == x ? "yes" : "NO");
  return 0;
}

int cmd_color3(const std::string& path) {
  const Graph g = load(path);
  VertexColoringLcl p(3);
  std::fprintf(stderr, "solving for a witness (exact, exponential worst case)...\n");
  const auto witness = solve_lcl(g, p);
  if (!witness) {
    std::printf("graph is not 3-colorable\n");
    return 1;
  }
  const auto enc = encode_three_coloring_advice(g, witness->node_labels);
  const auto dec = decode_three_coloring(g, enc.bits);
  std::printf("3-coloring schema: 1 bit/node, %d parity groups, %d LOCAL rounds, valid: %s\n",
              enc.num_groups, dec.rounds,
              is_proper_coloring(g, dec.coloring, 3) ? "yes" : "NO");
  return 0;
}

int cmd_proof(const std::string& path, const std::string& which) {
  const Graph g = load(path);
  std::unique_ptr<LclProblem> p;
  if (which == "mis") {
    p = std::make_unique<MisLcl>();
  } else if (which == "matching") {
    p = std::make_unique<MaximalMatchingLcl>();
  } else if (which == "3col") {
    p = std::make_unique<VertexColoringLcl>(3);
  } else {
    return usage();
  }
  SubexpLclParams params;
  params.x = 100;
  const auto proof = make_lcl_proof(g, *p, params);
  const auto res = verify_lcl_proof(g, *p, proof, params);
  const auto stats = advice_stats(advice_from_bits(proof));
  std::printf("certificate for %s: 1 bit/node (ones ratio %.4f), verifier %s in %d rounds\n",
              p->name().c_str(), stats.ones_ratio, res.accepted ? "ACCEPTS" : "rejects",
              res.rounds);
  return res.accepted ? 0 : 1;
}

int cmd_dot(const std::string& path) {
  const Graph g = load(path);
  std::cout << to_dot(g);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "orient" && argc >= 3) return cmd_orient(argv[2]);
    if (cmd == "compress" && argc >= 4) return cmd_compress(argv[2], std::atof(argv[3]));
    if (cmd == "color3" && argc >= 3) return cmd_color3(argv[2]);
    if (cmd == "proof" && argc >= 4) return cmd_proof(argv[2], argv[3]);
    if (cmd == "dot" && argc >= 3) return cmd_dot(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
